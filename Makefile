# Developer entry points.  `make help` lists targets.

PYTHON ?= python

.PHONY: help install test test-fast bench bench-small bench-ingest \
	bench-query bench-window bench-soak bench-server smoke-server \
	bench-chaos smoke-chaos bench-wire smoke-wire \
	examples report obs-demo obs-overhead profile-ingest clean

help:
	@echo "install      editable install (falls back to setup.py develop offline)"
	@echo "test         run the full test suite"
	@echo "test-fast    run the test suite without slow-marked tests"
	@echo "bench        run every table/figure benchmark (tiny scale)"
	@echo "bench-small  benchmarks at the EXPERIMENTS.md fidelity scale"
	@echo "examples     run every example script"
	@echo "report       write the full Markdown reproduction report"
	@echo "obs-demo     instrumented R-MAT ingest + metrics/health snapshot"
	@echo "obs-overhead re-measure instrumentation cost on the hot path"
	@echo "bench-ingest re-measure chunked/parallel ingest throughput + RSS"
	@echo "bench-query  re-measure query-engine latency (cold/warm vs scalar)"
	@echo "bench-window re-measure sliding-window maintenance throughput"
	@echo "bench-soak   minutes-long mixed soak with telemetry + drift gates"
	@echo "bench-server re-measure micro-batched vs scalar service ingest"
	@echo "smoke-server quick service boot/throughput/shutdown check (CI)"
	@echo "bench-chaos  re-measure WAL overhead, crash recovery, overload shedding"
	@echo "smoke-chaos  quick crash-recovery/fault-injection check (CI)"
	@echo "bench-wire   re-measure binary wire vs JSON, group commit, 2-worker scale-out"
	@echo "smoke-wire   quick binary-protocol/group-commit sanity check (CI)"
	@echo "profile-ingest  cProfile + per-stage (hashing/scatter) ingest breakdown"
	@echo "clean        remove caches and build artifacts"

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-small:
	REPRO_BENCH_SCALE=small $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

report:
	$(PYTHON) -m repro.experiments report --scale small --out report.md

obs-demo:
	$(PYTHON) -m repro obs --dataset gtgraph --scale small --every 10000

obs-overhead:
	$(PYTHON) -m repro.obs.overhead --out BENCH_obs_overhead.json

bench-ingest:
	$(PYTHON) -m repro.perf.ingest_bench --out BENCH_ingest_throughput.json

bench-query:
	$(PYTHON) benchmarks/bench_query_latency.py --out BENCH_query_latency.json

bench-window:
	$(PYTHON) benchmarks/bench_window_throughput.py --out BENCH_window_throughput.json

bench-soak:
	$(PYTHON) benchmarks/bench_soak.py --out BENCH_soak.json

bench-server:
	$(PYTHON) benchmarks/bench_server.py --out BENCH_server.json

smoke-server:
	$(PYTHON) benchmarks/bench_server.py --smoke

bench-chaos:
	$(PYTHON) benchmarks/bench_chaos.py --out BENCH_chaos.json

smoke-chaos:
	$(PYTHON) benchmarks/bench_chaos.py --smoke

bench-wire:
	$(PYTHON) benchmarks/bench_wire.py --out BENCH_wire.json

smoke-wire:
	$(PYTHON) benchmarks/bench_wire.py --smoke

profile-ingest:
	$(PYTHON) benchmarks/profile_ingest.py

clean:
	rm -rf .pytest_cache .hypothesis build dist *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
