"""Graph evolution: diffing temporal sketch snapshots (paper Section 7).

"We plan to use it for revisiting a set of graph mining problems, e.g.,
finding the evolution of graphs."  Same-configuration sketches are
cell-comparable, so consecutive snapshots diff into: how much changed
(sketch distance), where (changed cells), and -- with extended sketches --
between whom (decoded label pairs).

Run:  python examples/graph_evolution.py
"""

from repro import TCM, sketch_distance, top_changed_edges
from repro.streams.generators import dblp_like


def epoch_summary(stream, lo, hi, seed=11):
    """Extended TCM over the papers published in [lo, hi)."""
    tcm = TCM(d=3, width=96, seed=seed, directed=False, keep_labels=True)
    for edge in stream:
        if lo <= edge.timestamp < hi:
            tcm.update(edge.source, edge.target, edge.weight)
    return tcm


def main() -> None:
    # Timestamps in dblp_like are paper indexes; treat each 1000 papers
    # as one "year" of publication activity.
    stream = dblp_like(n_authors=600, n_papers=3000, seed=77)
    print(f"co-authorship stream: {len(stream)} collaborations")

    year1 = epoch_summary(stream, 0, 1000)
    year2 = epoch_summary(stream, 1000, 2000)
    year3 = epoch_summary(stream, 2000, 3000)

    print("\nhow much did the collaboration graph change?")
    print(f"  year1 -> year2: L1 distance {sketch_distance(year1, year2):.0f}, "
          f"largest single shift {sketch_distance(year1, year2, 'linf'):.0f}")
    print(f"  year2 -> year3: L1 distance {sketch_distance(year2, year3):.0f}")

    print("\nbiggest collaboration changes year2 -> year3:")
    for (x, y), delta in top_changed_edges(year2, year3, k=5):
        direction = "up" if delta > 0 else "down"
        print(f"  {x} -- {y}: {direction} {abs(delta):.0f}")

    # Sanity: a self-diff is exactly zero.
    print(f"\nself-distance (must be 0): "
          f"{sketch_distance(year2, year2):.0f}")


if __name__ == "__main__":
    main()
