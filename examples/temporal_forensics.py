"""Temporal forensics: when did the attack happen, and what is hot now?

Exercises the paper's Section 7 roadmap features:

- :class:`SnapshotRing` -- per-time-bucket sketch snapshots; localize a
  traffic burst in time and query any historical range, long after the
  raw packets are gone.
- :class:`TimeDecayedTCM` -- exponentially decayed summary; rank what is
  hot *now* rather than cumulatively.
- :class:`SketchFilteredStore` -- the sketch as a filter in front of an
  exact store; probing thousands of never-seen host pairs touches the
  exact store almost never.

Run:  python examples/temporal_forensics.py
"""

from repro import SketchFilteredStore, SnapshotRing, TimeDecayedTCM
from repro.streams.generators import ipflow_like
from repro.streams.model import StreamEdge


def build_trace():
    """Background traffic with an injected attack burst at t in [300, 400)."""
    background = ipflow_like(n_hosts=150, n_packets=3000, seed=7)
    edges = []
    for i, edge in enumerate(background):
        edges.append(StreamEdge(edge.source, edge.target, edge.weight,
                                float(i)))
    burst = [StreamEdge("10.66.6.6", "10.0.0.1", 1400.0, float(t))
             for t in range(300, 400)]
    merged = sorted(edges + burst, key=lambda e: e.timestamp)
    return merged


def main() -> None:
    trace = build_trace()
    print(f"trace: {len(trace)} packets")

    # -- when: snapshot ring localizes the burst ---------------------------
    ring = SnapshotRing(bucket_length=250.0, capacity=16,
                        d=3, width=64, seed=1)
    ring.consume(trace)
    print(f"\nsnapshot ring: {len(ring)} buckets covering {ring.span}")
    series = ring.edge_weight_series("10.66.6.6", "10.0.0.1")
    print("attacker->victim bytes per bucket:")
    for bucket, estimate in series:
        start = bucket * ring.bucket_length
        marker = "  <-- burst" if estimate > 1e4 else ""
        print(f"  t=[{start:.0f}, {start + ring.bucket_length:.0f}): "
              f"{estimate:>9.0f}{marker}")

    window = ring.range_summary(250.0, 500.0)
    print(f"merged [250, 500) summary says attacker sent "
          f"{window.edge_weight('10.66.6.6', '10.0.0.1'):.0f} bytes")

    # -- what is hot NOW: the decayed summary ------------------------------
    decayed = TimeDecayedTCM(decay=0.995, d=3, width=64, seed=2)
    decayed.consume(trace)
    cumulative = sum(e.weight for e in trace
                     if e.source == "10.66.6.6")
    print(f"\ndecayed view at t={decayed.now:.0f} "
          f"(half-life {decayed.half_life():.0f} time units):")
    print(f"  attack flow, cumulative bytes : {cumulative:.0f}")
    print(f"  attack flow, decayed estimate : "
          f"{decayed.edge_weight('10.66.6.6', '10.0.0.1'):.0f}  "
          "(burst ended long ago)")

    # -- cheap miss rejection: sketch-filtered exact store -----------------
    store = SketchFilteredStore(d=4, width=128, seed=3)
    for edge in trace:
        store.update(edge.source, edge.target, edge.weight, edge.timestamp)
    probes = [(f"10.200.0.{i % 250}", f"10.201.0.{i % 240}")
              for i in range(2000)]
    for src, dst in probes:
        store.edge_weight(src, dst)
    print(f"\nfiltered exact store: {len(probes)} unseen-pair probes, "
          f"{store.exact_lookups} exact lookups "
          f"(filter rate {store.filter_rate:.1%})")


if __name__ == "__main__":
    main()
