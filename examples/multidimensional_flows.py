"""High-dimensional stream summarization (paper Section 5.1.3).

Network flows are more than (src, dst): real elements carry a protocol,
a port class, a time-of-day... The paper's generalization handles any
number of intra-connected dimensions with one independent method per
dimension -- hash functions for high-cardinality dimensions, *predefined*
mappings for categorical ones (its own example: TCP vs UDP).

This example summarizes a (src, dst, protocol) packet stream with a
3-dimensional TensorSketch and answers point and marginal queries that a
2-D sketch cannot separate.

Run:  python examples/multidimensional_flows.py
"""

import numpy as np

from repro import WILDCARD, TensorSketch
from repro.streams.generators import ipflow_like


def main() -> None:
    trace = ipflow_like(n_hosts=200, n_packets=6000, seed=99)
    rng = np.random.default_rng(7)
    # Tag each packet with a protocol; TCP dominates as on real links.
    protocols = rng.choice(["tcp", "udp", "icmp"], size=len(trace),
                           p=[0.8, 0.15, 0.05])
    elements = [(e.source, e.target, protocols[i], e.weight)
                for i, e in enumerate(trace)]

    sketch = TensorSketch(
        [96, 96, {"tcp": 0, "udp": 1, "icmp": 2}], d=4, seed=1)
    for src, dst, proto, size in elements:
        sketch.update((src, dst, proto), size)
    print(f"summarized {len(elements)} packets into {sketch} "
          f"({sketch.size_in_cells} cells)")

    # Ground truth for a few sanity probes.
    exact = {}
    by_proto = {"tcp": 0.0, "udp": 0.0, "icmp": 0.0}
    for src, dst, proto, size in elements:
        exact[(src, dst, proto)] = exact.get((src, dst, proto), 0.0) + size
        by_proto[proto] += size

    heavy = max(exact, key=exact.get)
    src, dst, proto = heavy
    print(f"\nheaviest (src, dst, protocol) triple: {src} -> {dst} [{proto}]")
    print(f"  exact bytes    : {exact[heavy]:.0f}")
    print(f"  sketch estimate: {sketch.estimate(heavy):.0f}")

    print("\nmarginal queries (wildcards sum out axes):")
    print(f"  all traffic {src} -> {dst}, any protocol: "
          f"{sketch.estimate((src, dst, WILDCARD)):.0f}")
    print(f"  everything {src} sent over tcp: "
          f"{sketch.estimate((src, WILDCARD, 'tcp')):.0f}")

    print("\nper-protocol totals (exact vs estimate):")
    for proto in ("tcp", "udp", "icmp"):
        estimate = sketch.estimate((WILDCARD, WILDCARD, proto))
        print(f"  {proto:<5} exact={by_proto[proto]:>12.0f}  "
              f"estimate={estimate:>12.0f}")

    print(f"\ntotal stream weight estimate: "
          f"{sketch.total_weight_estimate():.0f} "
          f"(exact {sum(by_proto.values()):.0f})")


if __name__ == "__main__":
    main()
