"""Community detection on a summarized collaboration graph.

Appendix B.2 positions TCM as a substrate for community detection; this
example runs weighted label propagation on the exact co-authorship graph
and on its sketch, maps sketch communities back to authors, and measures
the agreement -- showing both the capability and its limit (community
structure survives only mild node compression).

Run:  python examples/community_detection.py
"""

import random

from repro import TCM
from repro.analytics.communities import label_propagation, modularity
from repro.analytics.views import StreamView
from repro.streams.generators import dblp_like


def main() -> None:
    stream = dblp_like(n_authors=400, n_papers=1500, communities=4,
                       crossover=0.05, seed=11)
    print(f"stream: {len(stream)} collaborations among "
          f"{len(stream.nodes)} authors in 4 planted communities")

    # -- exact graph ---------------------------------------------------------
    view = StreamView(stream)
    exact = label_propagation(view, seed=1)
    big = [c for c in exact if len(c) > 5]
    print(f"\nexact label propagation: {len(big)} communities, "
          f"modularity {modularity(view, exact):.3f}")

    # -- on the sketch, at two compression levels ----------------------------
    exact_of = {n: i for i, c in enumerate(exact) for n in c}
    nodes = sorted(stream.nodes)
    rng = random.Random(3)
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(2000)]

    print("\nsketch community detection vs node compression:")
    print("width  authors/bucket  sketch communities  pair agreement")
    for width in (384, 192, 96):
        tcm = TCM.from_stream(stream, d=1, width=width, seed=5)
        sketch_view = tcm.views()[0]
        partition = label_propagation(sketch_view, seed=1)
        bucket_of = {b: i for i, c in enumerate(partition) for b in c}
        sketch_of = {n: bucket_of[sketch_view.node_of(n)] for n in nodes}
        agreement = sum(
            (exact_of[a] == exact_of[b]) == (sketch_of[a] == sketch_of[b])
            for a, b in pairs) / len(pairs)
        blocks = len([c for c in partition if len(c) > 3])
        print(f"{width:>5}  {len(nodes) / width:>14.1f}  "
              f"{blocks:>18}  {agreement:>14.2f}")

    print("\n(the blocks blur into one giant community once several "
          "authors share each bucket)")


if __name__ == "__main__":
    main()
