"""Distributed TCM deployment (paper Section 5.3).

With m computing nodes available, one can afford d x m sketches; queries
fan out to all workers in parallel and merge like one big ensemble,
cutting the collision probability.  This example simulates the deployment
in-process and measures the accuracy gain from adding workers.

Run:  python examples/distributed_deployment.py
"""

from repro.distributed import DistributedTCM
from repro.experiments.common import edge_query_are, edge_workload
from repro.streams.generators import rmat, zipf_weights


def main() -> None:
    weights = zipf_weights(20000, seed=3)
    stream = rmat(2048, 20000, weights=weights, seed=2016)
    workload = edge_workload(stream, limit=1500)
    print(f"stream: {len(stream)} elements, "
          f"{len(stream.distinct_edges)} distinct edges")

    print("\nworkers  total sketches  edge-query ARE")
    for m in (1, 2, 4, 8):
        with DistributedTCM(m=m, d=2, width=48, seed=7) as cluster:
            cluster.ingest(stream)
            are = edge_query_are(stream, cluster.edge_weight, workload)
            print(f"{m:>7}  {cluster.total_sketches:>14}  {are:>14.3f}")

    with DistributedTCM(m=4, d=2, width=48, seed=7) as cluster:
        cluster.ingest(stream)
        nodes = sorted(stream.nodes)
        a, b = nodes[0], nodes[-1]
        print(f"\nparallel fan-out query: reachable({a}, {b}) = "
              f"{cluster.reachable(a, b)}")
        heavy_node = stream.top_nodes(1, "in")[0][0]
        print(f"in-flow of heaviest node {heavy_node} = "
              f"{cluster.in_flow(heavy_node):.0f} "
              f"(exact {stream.in_flow(heavy_node):.0f})")


if __name__ == "__main__":
    main()
