"""Quickstart: summarize a graph stream with TCM and query it.

Reproduces the paper's running example (Fig. 1 / Fig. 3 / Examples 2-7):
a 14-element directed stream, summarized, then queried for edge weights,
node flows, reachability and aggregate subgraphs -- including the wildcard
queries one-dimensional sketches cannot answer.

Run:  python examples/quickstart.py
"""

from repro import TCM, GraphStream, SubgraphQuery, WILDCARD, BoundWildcard


def main() -> None:
    # -- Big Bang: the graph stream of the paper's Fig. 1 -----------------
    stream = GraphStream(directed=True)
    for t, (x, y) in enumerate([
            ("a", "b"), ("a", "c"), ("b", "c"), ("b", "d"), ("c", "e"),
            ("c", "f"), ("e", "d"), ("e", "b"), ("e", "f"), ("f", "a"),
            ("g", "b"), ("d", "g"), ("b", "f"), ("b", "a")]):
        stream.add(x, y, weight=1.0, timestamp=float(t))
    print(f"stream: {len(stream)} elements, {len(stream.nodes)} nodes")

    # -- Big Crunch: the TCM summary --------------------------------------
    # d pairwise-independent hash functions, each a w x w adjacency matrix.
    tcm = TCM.from_stream(stream, d=4, width=64, seed=7)
    print(f"summary: {tcm} ({tcm.size_in_cells} cells)")

    # -- Edge queries (Section 4.1) ----------------------------------------
    print("\nedge queries")
    print("  f_e(a, b) =", tcm.edge_weight("a", "b"))
    print("  f_e(g, b) =", tcm.edge_weight("g", "b"))

    # -- Node queries (Section 4.2) ----------------------------------------
    print("\nnode queries")
    print("  out-flow of b =", tcm.out_flow("b"))
    print("  in-flow of b  =", tcm.in_flow("b"))

    # -- Path queries (Section 4.3): impossible for CountMin ---------------
    print("\npath queries")
    print("  a reaches g?      ", tcm.reachable("a", "g"))   # a->b->d->g
    print("  a reaches 'zzz'?  ", tcm.reachable("a", "zzz"))
    print("  shortest a->g =", tcm.shortest_path_weight("a", "g"), "hops")

    # -- Subgraph queries (Section 4.4) -------------------------------------
    print("\nsubgraph queries")
    q3 = SubgraphQuery([("a", "b"), ("a", "c")])
    print("  Q3 f_g({(a,b),(a,c)})          =", tcm.subgraph_weight(q3))
    q5 = SubgraphQuery([(WILDCARD, "b"), ("b", "c"), ("c", WILDCARD)])
    print("  Q5 wildcard paths through b->c =", tcm.subgraph_weight(q5))
    star = BoundWildcard("1")
    q6 = SubgraphQuery([(star, "b"), ("b", "c"), ("c", star)])
    print("  Q6 triangles closing at *_1    =", tcm.subgraph_weight(q6))
    print("  Q5 decomposed estimate (f'_g)  =",
          tcm.subgraph_weight_decomposed(q5))

    # -- Everything above came from 4 tiny matrices, not the stream. -------
    print("\nexact-vs-estimate check against the raw stream:")
    for x, y in [("a", "b"), ("g", "b"), ("e", "f")]:
        print(f"  ({x},{y}): exact={stream.edge_weight(x, y)} "
              f"estimate={tcm.edge_weight(x, y)}")


if __name__ == "__main__":
    main()
