"""IP-routing style path queries on a summarized network (Section 4.3).

The paper motivates reachability monitoring (multicast availability) and
IP routing (weighted path selection) as the path-query applications.  This
example summarizes a router-level R-MAT topology and answers both, running
the *same* off-the-shelf BFS/Dijkstra used on the exact graph -- the
black-box reuse the paper advertises.

Run:  python examples/network_routing.py
"""

from repro import TCM
from repro.analytics import StreamView, reach, shortest_path_weight
from repro.streams.generators import rmat, zipf_weights


def main() -> None:
    n_routers, n_links = 512, 3000
    latencies = zipf_weights(n_links, alpha=1.8, max_weight=50, seed=9)
    network = rmat(n_routers, n_links, weights=latencies, seed=2016)
    print(f"topology: {len(network.nodes)} routers, "
          f"{len(network.distinct_edges)} distinct links")

    tcm = TCM.from_stream(network, d=5, width=96, seed=5)
    compression = tcm.size_in_cells / (len(network) or 1)
    print(f"summary: {tcm.d} sketches of "
          f"{tcm.sketches[0].rows}x{tcm.sketches[0].cols}")

    exact_view = StreamView(network)
    routers = sorted(network.nodes)
    probes = [(routers[1], routers[-1]), (routers[3], routers[7]),
              (routers[10], routers[200])]

    print("\nreachability monitoring (estimated vs exact):")
    agreements = 0
    for a, b in probes:
        estimated = tcm.reachable(a, b)
        exact = reach(exact_view, a, b)
        agreements += estimated == exact
        print(f"  {a} -> {b}: estimated={estimated} exact={exact}")
    print(f"  agreement: {agreements}/{len(probes)}")

    print("\nweighted routing (shortest-path latency):")
    for a, b in probes:
        exact = shortest_path_weight(exact_view, a, b)
        estimated = tcm.shortest_path_weight(a, b)
        print(f"  {a} -> {b}: estimated={estimated:.0f} exact={exact:.0f}")

    # The sketch never returns "unreachable" for a live route; collisions
    # can only create optimistic extra routes (paper Exp-3).
    false_drops = sum(
        1 for a, b in probes
        if reach(exact_view, a, b) and not tcm.reachable(a, b))
    print(f"\nfalsely dropped live routes: {false_drops} (always 0)")


if __name__ == "__main__":
    main()
