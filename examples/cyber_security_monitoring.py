"""Cyber-security monitoring over an IP-flow stream.

The paper's lead application (Sections 1, 4.2, B.1): watch a backbone
packet trace in real time and surface

- heavy edges (suspicious host pairs exchanging the most bytes),
- heavy nodes (DoS targets: hosts receiving the most traffic),
- conditional heavy hitters (for each DoS target, *who* floods it), and
- a sliding window so old traffic ages out of the summary.

Everything runs on sublinear-space TCM sketches -- the trace itself is
never stored.

Run:  python examples/cyber_security_monitoring.py
"""

from repro import (
    TCM,
    ConditionalHeavyHitterMonitor,
    HeavyEdgeMonitor,
    SlidingWindow,
)
from repro.streams.generators import ipflow_like


def main() -> None:
    trace = ipflow_like(n_hosts=400, n_packets=8000, seed=2016)
    print(f"trace: {len(trace)} packets between {len(trace.nodes)} hosts, "
          f"{trace.total_weight() / 1e6:.1f} MB total")

    # -- heavy host pairs, tracked online ----------------------------------
    edge_monitor = HeavyEdgeMonitor(TCM(d=5, width=72, seed=1), k=5)
    edge_monitor.consume(trace)
    print("\ntop-5 suspicious host pairs (bytes, estimated):")
    for (src, dst), estimate in edge_monitor.top():
        exact = trace.edge_weight(src, dst)
        print(f"  {src} -> {dst}: ~{estimate / 1e3:.0f} KB "
              f"(exact {exact / 1e3:.0f} KB)")

    # -- conditional heavy hitters: DoS targets and their flooders ---------
    chh = ConditionalHeavyHitterMonitor(TCM(d=5, width=72, seed=2),
                                        k=3, l=3, direction="in")
    chh.consume(trace)
    print("\ntop-3 flooded hosts and their top-3 flooders:")
    for victim, in_bytes, flooders in chh.top():
        print(f"  {victim} (~{in_bytes / 1e3:.0f} KB in)")
        for flooder, volume in flooders:
            print(f"      <- {flooder} (~{volume / 1e3:.0f} KB)")

    # -- reachability: is there a forwarding path between two hosts? -------
    tcm = TCM.from_stream(trace, d=5, width=128, seed=3)
    hosts = sorted(trace.nodes)
    a, b = hosts[0], hosts[-1]
    print(f"\nreachability monitoring: {a} -> {b}: {tcm.reachable(a, b)} "
          f"(exact: {trace.reachable(a, b)})")

    # -- sliding window: the summary tracks only the last 2000 time units --
    window = SlidingWindow(TCM(d=4, width=72, seed=4), horizon=2000.0)
    for packet in trace:
        window.observe(packet)
    first, last = trace[0], trace[len(trace) - 1]
    print("\nafter the sliding window pass:")
    print(f"  earliest flow {first.source}->{first.target} in window? "
          f"{window.summary.edge_weight(first.source, first.target) > 0}")
    print(f"  latest flow   {last.source}->{last.target} in window? "
          f"{window.summary.edge_weight(last.source, last.target) > 0}")
    print(f"  live elements: {len(window)} / {len(trace)}")


if __name__ == "__main__":
    main()
