"""Social-network analytics over a co-authorship stream.

Mirrors the paper's DBLP experiments (Figs. 13, 16): find the most
prolific authors, their frequent collaborators, and -- via the *extended*
sketch of Section 5.1.4 -- the heavy triangle connections (who publishes
a lot with *both* members of a strong collaboration).

Run:  python examples/social_network_analysis.py
"""

from repro import (
    TCM,
    ConditionalHeavyHitterMonitor,
    HeavyEdgeMonitor,
    heavy_triangle_connections,
)
from repro.streams.generators import dblp_like


def main() -> None:
    stream = dblp_like(n_authors=800, n_papers=2500, seed=2016)
    print(f"co-authorship stream: {len(stream)} collaborations, "
          f"{len(stream.nodes)} authors")

    # -- conditional heavy hitters: productive authors + collaborators -----
    chh = ConditionalHeavyHitterMonitor(
        TCM(d=5, width=96, seed=1, directed=False), k=5, l=5,
        direction="both")
    chh.consume(stream)
    print("\ntop-5 most productive authors, each with top-5 collaborators")
    print("(the paper's Fig. 13):")
    for author, flow, collaborators in chh.top():
        names = ", ".join(name for name, _ in collaborators)
        print(f"  {author} (~{flow:.0f} edges): {names}")

    # -- heavy triangle connections (Algorithm 2, extended sketch) ----------
    extended = TCM.from_stream(stream, d=5, width=128, seed=2,
                               keep_labels=True)
    edge_monitor = HeavyEdgeMonitor(
        TCM(d=5, width=96, seed=3, directed=False), k=5)
    edge_monitor.consume(stream)
    heavy = [edge for edge, _ in edge_monitor.top()]

    print("\nheavy triangle connections (the paper's Fig. 16):")
    for (x, y), connections in heavy_triangle_connections(extended, heavy,
                                                          l=5):
        names = ", ".join(f"{z} ({score:.1f})" for z, score in connections)
        print(f"  {x} -- {y}:")
        print(f"      {names or '(no common collaborators found)'}")

    # -- connectivity: are two research communities linked? -----------------
    tcm = TCM.from_stream(stream, d=5, width=128, seed=4)
    authors = sorted(stream.nodes)
    a, b = authors[0], authors[len(authors) // 2]
    print(f"\ncollaboration path {a} .. {b}: "
          f"estimated={tcm.reachable(a, b)} exact={stream.reachable(a, b)}")

    # -- PageRank over super-nodes, read back through the extended sketch ---
    ranks = extended.pagerank()[0]
    sketch = extended.sketches[0]
    top_bucket = max(ranks, key=ranks.get)
    members = sorted(sketch.ext(top_bucket))[:5]
    print(f"\nhighest-PageRank super-node holds authors like: "
          f"{', '.join(str(m) for m in members)}")


if __name__ == "__main__":
    main()
