"""Tests for aggregate subgraph queries, wildcards and bound wildcards
(paper Section 4.4, queries Q3-Q6)."""

import pytest

from repro.core.queries import WILDCARD, BoundWildcard, SubgraphQuery
from repro.core.tcm import TCM
from repro.streams.model import GraphStream


def build(stream, d=4, width=128, seed=7):
    return TCM.from_stream(stream, d=d, width=width, seed=seed)


@pytest.fixture
def triangle_stream():
    """a->b->c->a plus a spur edge c->d, with distinct weights."""
    stream = GraphStream(directed=True)
    stream.add("a", "b", 1.0)
    stream.add("b", "c", 2.0)
    stream.add("c", "a", 3.0)
    stream.add("c", "d", 4.0)
    return stream


class TestExplicitQueries:
    def test_q3_two_edges(self, paper_stream):
        """Q3: f_g({(a,b),(a,c)}) = 2 in Fig. 1."""
        tcm = build(paper_stream)
        assert tcm.subgraph_weight([("a", "b"), ("a", "c")]) == 2.0

    def test_q4_triangle(self, triangle_stream):
        """Q4: an explicit 3-clique query sums its edges."""
        tcm = build(triangle_stream)
        assert tcm.subgraph_weight([("a", "b"), ("b", "c"), ("c", "a")]) == 6.0

    def test_missing_edge_returns_zero(self, triangle_stream):
        tcm = build(triangle_stream)
        assert tcm.subgraph_weight([("a", "b"), ("b", "zzz")]) == 0.0

    def test_never_underestimates_under_compression(self, rmat_stream):
        tcm = build(rmat_stream, width=8)
        edges = list(rmat_stream.distinct_edges)[:3]
        exact = rmat_stream.subgraph_weight(edges)
        assert tcm.subgraph_weight(edges) >= exact

    def test_accepts_raw_edge_list_or_query(self, triangle_stream):
        tcm = build(triangle_stream)
        raw = tcm.subgraph_weight([("a", "b")])
        wrapped = tcm.subgraph_weight(SubgraphQuery([("a", "b")]))
        assert raw == wrapped == 1.0


class TestWildcardQueries:
    def test_out_wildcard_counts_all_out_edges(self, triangle_stream):
        tcm = build(triangle_stream)
        # (c, *) matches c->a (3) and c->d (4).
        assert tcm.subgraph_weight([("c", WILDCARD)]) == 7.0

    def test_in_wildcard(self, triangle_stream):
        tcm = build(triangle_stream)
        assert tcm.subgraph_weight([(WILDCARD, "c")]) == 2.0

    def test_q5_path_shape(self, triangle_stream):
        """Q5: {(*, b), (b, c), (c, *)} -- paths into b and out of c."""
        tcm = build(triangle_stream)
        # Matches: (a->b, b->c, c->a) and (a->b, b->c, c->d).
        expected = (1 + 2 + 3) + (1 + 2 + 4)
        assert tcm.subgraph_weight(
            [(WILDCARD, "b"), ("b", "c"), ("c", WILDCARD)]) == expected

    def test_q6_bound_wildcard_closes_triangle(self, triangle_stream):
        """Q6: {(*1, b), (b, c), (c, *1)} forces the same endpoint."""
        tcm = build(triangle_stream)
        # Only *1 = a closes: a->b, b->c, c->a.
        star = BoundWildcard("1")
        assert tcm.subgraph_weight([(star, "b"), ("b", "c"), ("c", star)]) == 6.0

    def test_bound_wildcard_no_match(self, triangle_stream):
        tcm = build(triangle_stream)
        star = BoundWildcard("1")
        # d has no outgoing edge back to b's predecessors.
        assert tcm.subgraph_weight([(star, "d"), ("d", star)]) == 0.0

    def test_double_wildcard_counts_everything(self, triangle_stream):
        tcm = build(triangle_stream)
        assert tcm.subgraph_weight([(WILDCARD, WILDCARD)]) == 10.0


class TestDecomposedOptimization:
    def test_equals_full_on_explicit_queries(self, triangle_stream):
        tcm = build(triangle_stream)
        query = [("a", "b"), ("b", "c")]
        assert tcm.subgraph_weight_decomposed(query) == \
            tcm.subgraph_weight(query) == 3.0

    def test_lower_or_equal_bound_property(self, rmat_stream):
        """f'_g(Q) <= f_g(Q) (paper's optimization note)."""
        tcm = build(rmat_stream, width=16)
        edges = list(rmat_stream.distinct_edges)[:4]
        assert tcm.subgraph_weight_decomposed(edges) <= \
            tcm.subgraph_weight(edges) + 1e-9

    def test_wildcard_becomes_flow_query(self, triangle_stream):
        tcm = build(triangle_stream)
        assert tcm.subgraph_weight_decomposed([("c", WILDCARD)]) == \
            tcm.out_flow("c")
        assert tcm.subgraph_weight_decomposed([(WILDCARD, "c")]) == \
            tcm.in_flow("c")

    def test_double_wildcard_is_total_weight(self, triangle_stream):
        tcm = build(triangle_stream)
        assert tcm.subgraph_weight_decomposed([(WILDCARD, WILDCARD)]) == \
            tcm.total_weight_estimate()

    def test_zero_edge_short_circuits(self, triangle_stream):
        tcm = build(triangle_stream)
        assert tcm.subgraph_weight_decomposed([("a", "b"), ("zz", "qq")]) == 0.0

    def test_bound_wildcards_rejected(self, triangle_stream):
        tcm = build(triangle_stream)
        star = BoundWildcard("1")
        with pytest.raises(ValueError, match="bind"):
            tcm.subgraph_weight_decomposed([(star, "b"), ("c", star)])


class TestUndirectedSubgraph:
    def test_undirected_triangle(self):
        stream = GraphStream(directed=False)
        stream.add("a", "b", 1.0)
        stream.add("b", "c", 2.0)
        stream.add("c", "a", 3.0)
        tcm = build(stream)
        assert tcm.subgraph_weight([("a", "b"), ("b", "c"), ("c", "a")]) == 6.0
        # Orientation doesn't matter for undirected queries.
        assert tcm.subgraph_weight([("b", "a"), ("c", "b"), ("a", "c")]) == 6.0


class TestMatchLimits:
    def test_max_matches_caps_work(self, rmat_stream):
        tcm = build(rmat_stream, width=8, d=1)
        capped = tcm.subgraph_weight([(WILDCARD, WILDCARD)], max_matches=5)
        uncapped = tcm.subgraph_weight([(WILDCARD, WILDCARD)])
        assert 0 < capped <= uncapped
