"""Tests for the binary columnar wire protocol (repro.server.wire).

Three layers: the codec round-trips every op bit-exactly (including the
u32-id compact form and the padded tenant field); malformed frames fail
with precise errors and never crash the decoder; and the HTTP server
negotiates content types -- binary ingest lands in the same coalescer
staging columns as JSON (bit-identical sketches), binary query responses
follow the Accept header, and JSON clients keep working untouched.

Also covers the HTTP/1.1 pipelining contract of ``server/http.py``:
multiple keep-alive requests written in one TCP segment are parsed and
answered in order, and a request split across segments reassembles.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.tcm import TCM
from repro.server import SketchServer, wire
from repro.server.loadgen import _request


def run_async(coro):
    return asyncio.run(coro)


def u64(values):
    return np.asarray(values, dtype=np.uint64)


class TestCodec:
    def test_ingest_round_trip(self):
        src, dst = u64([1, 2, 3]), u64([4, 5, 6])
        wts = np.asarray([1.5, 2.0, 0.5])
        body = wire.encode_ingest("alpha", src, dst, wts)
        frame = wire.decode_frame(body)
        assert frame.op == wire.OP_INGEST
        assert frame.tenant == "alpha"
        assert frame.count == 3
        np.testing.assert_array_equal(frame.sources, src)
        np.testing.assert_array_equal(frame.targets, dst)
        np.testing.assert_array_equal(frame.weights, wts)
        assert frame.timestamps is None

    def test_ingest_default_weights_are_none(self):
        body = wire.encode_ingest("t", u64([1]), u64([2]))
        frame = wire.decode_frame(body)
        assert frame.weights is None

    def test_ingest_with_timestamps(self):
        body = wire.encode_ingest("w", u64([1, 2]), u64([3, 4]),
                                  np.asarray([1.0, 1.0]),
                                  np.asarray([10.0, 20.0]))
        frame = wire.decode_frame(body)
        np.testing.assert_array_equal(frame.timestamps,
                                      np.asarray([10.0, 20.0]))

    def test_u32_ids_widen_to_u64(self):
        src = np.asarray([7, 8], dtype=np.uint32)
        dst = np.asarray([9, 10], dtype=np.uint32)
        body = wire.encode_ingest("t", src, dst, u32_ids=True)
        wide = wire.encode_ingest("t", src.astype(np.uint64),
                                  dst.astype(np.uint64))
        assert len(body) < len(wide)
        frame = wire.decode_frame(body)
        assert frame.sources.dtype == np.uint64
        np.testing.assert_array_equal(frame.sources, u64([7, 8]))
        np.testing.assert_array_equal(frame.targets, u64([9, 10]))

    def test_remove_round_trip(self):
        body = wire.encode_remove("t", u64([1]), u64([2]),
                                  np.asarray([3.0]))
        frame = wire.decode_frame(body)
        assert frame.op == wire.OP_REMOVE
        np.testing.assert_array_equal(frame.weights, np.asarray([3.0]))

    def test_query_kinds_round_trip(self):
        pairs = wire.encode_query("t", "edge", u64([1, 2]), u64([3, 4]))
        frame = wire.decode_frame(pairs)
        assert frame.op == wire.OP_QUERY and frame.kind == "edge"
        assert frame.count == 2
        nodes = wire.encode_query("t", "outflow", u64([5, 6, 7]))
        frame = wire.decode_frame(nodes)
        assert frame.kind == "outflow" and frame.count == 3
        assert frame.targets is None
        total = wire.encode_query("t", "total")
        frame = wire.decode_frame(total)
        assert frame.kind == "total" and frame.count == 0

    def test_advance_round_trip(self):
        frame = wire.decode_frame(wire.encode_advance("w", 123.5))
        assert frame.op == wire.OP_ADVANCE and frame.timestamp == 123.5

    def test_values_round_trip(self):
        values = np.asarray([1.0, 2.5, 0.0])
        out = wire.decode_values(wire.encode_values(values))
        np.testing.assert_array_equal(out, values)

    def test_tenant_padding_keeps_columns_aligned(self):
        # Any tenant-name length must leave the id columns 8-byte
        # aligned so np.frombuffer gets a zero-copy aligned view.
        for name in ("a", "ab", "abcdefg", "abcdefgh", "abcdefghi"):
            frame = wire.decode_frame(
                wire.encode_ingest(name, u64([1]), u64([2])))
            assert frame.tenant == name

    def test_header_is_16_bytes(self):
        assert wire.HEADER_SIZE == 16
        body = wire.encode_ingest("t", u64([1]), u64([2]))
        assert body[:4] == wire.WIRE_MAGIC
        assert body[4] == wire.WIRE_VERSION


class TestCodecErrors:
    def test_too_short(self):
        with pytest.raises(wire.WireError, match="too short"):
            wire.decode_frame(b"TCMW")

    def test_bad_magic(self):
        body = bytearray(wire.encode_ingest("t", u64([1]), u64([2])))
        body[:4] = b"NOPE"
        with pytest.raises(wire.WireError, match="magic"):
            wire.decode_frame(bytes(body))

    def test_version_mismatch_suggests_json(self):
        body = bytearray(wire.encode_ingest("t", u64([1]), u64([2])))
        body[4] = 99
        with pytest.raises(wire.WireError, match="json"):
            wire.decode_frame(bytes(body))

    def test_truncated_columns(self):
        body = wire.encode_ingest("t", u64([1, 2, 3]), u64([4, 5, 6]))
        with pytest.raises(wire.WireError):
            wire.decode_frame(body[:-8])

    def test_unknown_op(self):
        body = bytearray(wire.encode_ingest("t", u64([1]), u64([2])))
        body[5] = 99
        with pytest.raises(wire.WireError, match="op"):
            wire.decode_frame(bytes(body))

    def test_mismatched_lengths_rejected_at_encode(self):
        with pytest.raises(ValueError):
            wire.encode_ingest("t", u64([1, 2]), u64([3]))


class _Client:
    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def json(self, method, path, body=None):
        raw = b"" if body is None else json.dumps(body).encode()
        status, payload = await _request(self.reader, self.writer,
                                         method, path, raw)
        return status, (json.loads(payload) if payload else None)

    async def binary(self, path, body, accept=None):
        head = (f"POST {path} HTTP/1.1\r\nHost: x\r\n"
                f"Content-Type: {wire.CONTENT_TYPE}\r\n"
                f"Content-Length: {len(body)}\r\n")
        if accept is not None:
            head += f"Accept: {accept}\r\n"
        head += "\r\n"
        self.writer.write(head.encode() + body)
        await self.writer.drain()
        return await self.read_response()

    async def read_response(self):
        status_line = await self.reader.readline()
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        payload = await self.reader.readexactly(length) if length else b""
        return status, headers, payload

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _with_server(scenario, **server_kwargs):
    server_kwargs.setdefault("max_delay", 0.002)
    server = SketchServer(port=0, **server_kwargs)
    port = await server.start()
    client = await _Client.open(port)
    try:
        return await scenario(client, server, port)
    finally:
        await client.close()
        await server.stop()


class TestWireOverHTTP:
    def test_binary_ingest_matches_json_ingest(self):
        async def scenario(client, server, port):
            for name in ("bin", "js"):
                status, _ = await client.json(
                    "PUT", f"/sketches/{name}",
                    {"kind": "tcm", "d": 2, "width": 64, "seed": 3})
                assert status == 201
            src = list(range(40))
            dst = [s + 1 for s in src]
            wts = [float(1 + (s % 3)) for s in src]
            status, _, _ = await client.binary(
                "/sketches/bin/ingest",
                wire.encode_ingest("bin", u64(src), u64(dst),
                                   np.asarray(wts)))
            assert status == 200
            status, body = await client.json(
                "POST", "/sketches/js/ingest",
                {"sources": src, "targets": dst, "weights": wts})
            assert status == 200
            # Same seed + same columns => bit-identical matrices.
            status, a = await client.json(
                "POST", "/sketches/bin/query",
                {"kind": "edge", "pairs": list(zip(src, dst))})
            status, b = await client.json(
                "POST", "/sketches/js/query",
                {"kind": "edge", "pairs": list(zip(src, dst))})
            assert a["values"] == b["values"]

        run_async(_with_server(scenario))

    def test_binary_query_content_negotiation(self):
        async def scenario(client, server, port):
            await client.json("PUT", "/sketches/t",
                              {"kind": "tcm", "d": 2, "width": 64})
            await client.binary(
                "/sketches/t/ingest",
                wire.encode_ingest("t", u64([1, 2]), u64([3, 4]),
                                   np.asarray([2.0, 5.0])))
            query = wire.encode_query("t", "edge", u64([1, 2]),
                                      u64([3, 4]))
            status, headers, payload = await client.binary(
                "/sketches/t/query", query, accept=wire.CONTENT_TYPE)
            assert status == 200
            assert headers["content-type"] == wire.CONTENT_TYPE
            np.testing.assert_array_equal(wire.decode_values(payload),
                                          np.asarray([2.0, 5.0]))
            # Without Accept, the same binary query answers in JSON.
            status, headers, payload = await client.binary(
                "/sketches/t/query", query)
            assert status == 200
            assert headers["content-type"].startswith("application/json")
            assert json.loads(payload)["values"] == [2.0, 5.0]

        run_async(_with_server(scenario))

    def test_binary_remove_and_advance(self):
        async def scenario(client, server, port):
            await client.json("PUT", "/sketches/t",
                              {"kind": "tcm", "d": 2, "width": 64})
            await client.binary(
                "/sketches/t/ingest",
                wire.encode_ingest("t", u64([1]), u64([2]),
                                   np.asarray([5.0])))
            status, _, payload = await client.binary(
                "/sketches/t/remove",
                wire.encode_remove("t", u64([1]), u64([2]),
                                   np.asarray([2.0])))
            assert status == 200 and json.loads(payload)["removed"] == 1
            status, body = await client.json(
                "POST", "/sketches/t/query",
                {"kind": "edge", "pairs": [[1, 2]]})
            assert body["values"] == [3.0]

            await client.json("PUT", "/sketches/w",
                              {"kind": "window", "horizon": 100.0,
                               "d": 2, "width": 32})
            status, _, payload = await client.binary(
                "/sketches/w/advance", wire.encode_advance("w", 42.0))
            assert status == 200
            assert json.loads(payload)["watermark"] == 42.0

        run_async(_with_server(scenario))

    def test_window_binary_ingest_with_timestamps(self):
        async def scenario(client, server, port):
            await client.json("PUT", "/sketches/w",
                              {"kind": "window", "horizon": 100.0,
                               "d": 2, "width": 32})
            body = wire.encode_ingest(
                "w", u64([1, 2]), u64([3, 4]), np.asarray([1.0, 1.0]),
                np.asarray([5.0, 6.0]))
            status, _, payload = await client.binary(
                "/sketches/w/ingest", body)
            assert status == 200
            status, body = await client.json("GET", "/sketches/w")
            assert body["watermark"] == 6.0

        run_async(_with_server(scenario))

    def test_tenant_mismatch_is_400(self):
        async def scenario(client, server, port):
            await client.json("PUT", "/sketches/a",
                              {"kind": "tcm", "d": 2, "width": 32})
            body = wire.encode_ingest("b", u64([1]), u64([2]))
            status, _, payload = await client.binary(
                "/sketches/a/ingest", body)
            assert status == 400
            assert "tenant" in json.loads(payload)["error"]

        run_async(_with_server(scenario))

    def test_op_action_mismatch_is_400(self):
        async def scenario(client, server, port):
            await client.json("PUT", "/sketches/t",
                              {"kind": "tcm", "d": 2, "width": 32})
            body = wire.encode_ingest("t", u64([1]), u64([2]))
            status, _, payload = await client.binary(
                "/sketches/t/query", body)
            assert status == 400

        run_async(_with_server(scenario))

    def test_garbage_binary_body_is_400(self):
        async def scenario(client, server, port):
            await client.json("PUT", "/sketches/t",
                              {"kind": "tcm", "d": 2, "width": 32})
            status, _, payload = await client.binary(
                "/sketches/t/ingest", b"this is not a frame")
            assert status == 400
            # The connection survives a bad frame.
            status, body = await client.json("GET", "/healthz")
            assert status == 200

        run_async(_with_server(scenario))

    def test_responses_carry_cached_date_header(self):
        async def scenario(client, server, port):
            status, headers, _ = await client.binary(
                "/sketches/none/ingest",
                wire.encode_ingest("none", u64([1]), u64([2])))
            # 404 (no tenant) still carries the Date header.
            assert status == 404
            assert headers["date"].endswith(" GMT")
            status2, headers2, _ = await client.binary(
                "/sketches/none/ingest",
                wire.encode_ingest("none", u64([1]), u64([2])))
            # Same second => byte-identical cached value (no reformat).
            a, b = headers["date"], headers2["date"]
            assert a == b or abs(
                int(a.split(":")[2][:2]) - int(b.split(":")[2][:2])) <= 1

        run_async(_with_server(scenario))


class TestHTTPPipelining:
    def test_two_requests_in_one_segment_answered_in_order(self):
        async def scenario(client, server, port):
            await client.json("PUT", "/sketches/t",
                              {"kind": "tcm", "d": 2, "width": 32})
            ingest = json.dumps({"sources": [1], "targets": [2],
                                 "weights": [7.0]}).encode()
            query = json.dumps({"kind": "edge",
                                "pairs": [[1, 2]]}).encode()
            blob = (
                b"POST /sketches/t/ingest HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(ingest)).encode() +
                b"\r\n\r\n" + ingest +
                b"POST /sketches/t/query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(query)).encode() +
                b"\r\n\r\n" + query)
            # One write, one TCP segment, two pipelined requests.
            client.writer.write(blob)
            await client.writer.drain()
            status, _, payload = await client.read_response()
            assert status == 200
            assert json.loads(payload)["ingested"] == 1
            status, _, payload = await client.read_response()
            assert status == 200
            # Read-your-writes holds across the pipelined pair.
            assert json.loads(payload)["values"] == [7.0]

        run_async(_with_server(scenario))

    def test_request_split_across_segments(self):
        async def scenario(client, server, port):
            await client.json("PUT", "/sketches/t",
                              {"kind": "tcm", "d": 2, "width": 32})
            body = wire.encode_ingest("t", u64([9]), u64([10]),
                                      np.asarray([3.0]))
            head = (f"POST /sketches/t/ingest HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Type: {wire.CONTENT_TYPE}\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n").encode()
            blob = head + body
            # Dribble the request: a split mid-header and mid-body.
            for chunk in (blob[:20], blob[20:len(head) + 7],
                          blob[len(head) + 7:]):
                client.writer.write(chunk)
                await client.writer.drain()
                await asyncio.sleep(0.01)
            status, _, payload = await client.read_response()
            assert status == 200
            assert json.loads(payload)["ingested"] == 1
            status, resp = await client.json(
                "POST", "/sketches/t/query",
                {"kind": "edge", "pairs": [[9, 10]]})
            assert resp["values"] == [3.0]

        run_async(_with_server(scenario))
