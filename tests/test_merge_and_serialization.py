"""Tests for sketch mergeability and disk round-trips."""

import numpy as np
import pytest

from repro.core.aggregation import Aggregation
from repro.core.serialization import load_tcm, save_tcm
from repro.core.tcm import TCM
from repro.streams.generators import dblp_like, ipflow_like


def split_stream(stream, fraction=0.5):
    cut = int(len(stream) * fraction)
    return ([stream[i] for i in range(cut)],
            [stream[i] for i in range(cut, len(stream))])


class TestMerge:
    def test_merge_equals_whole_stream(self, ipflow_stream):
        first, second = split_stream(ipflow_stream)
        a = TCM(d=3, width=48, seed=5)
        b = TCM(d=3, width=48, seed=5)
        for e in first:
            a.update(e.source, e.target, e.weight)
        for e in second:
            b.update(e.source, e.target, e.weight)
        whole = TCM(d=3, width=48, seed=5)
        for e in ipflow_stream:
            whole.update(e.source, e.target, e.weight)
        a.merge_from(b)
        for s1, s2 in zip(a.sketches, whole.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix)

    def test_merge_different_seeds_rejected(self):
        a = TCM(d=2, width=16, seed=1)
        b = TCM(d=2, width=16, seed=2)
        with pytest.raises(ValueError, match="hashes"):
            a.merge_from(b)

    def test_merge_different_d_rejected(self):
        a = TCM(d=2, width=16, seed=1)
        b = TCM(d=3, width=16, seed=1)
        with pytest.raises(ValueError, match="d="):
            a.merge_from(b)

    def test_merge_min_aggregation(self):
        a = TCM(d=2, width=32, seed=1, aggregation=Aggregation.MIN)
        b = TCM(d=2, width=32, seed=1, aggregation=Aggregation.MIN)
        a.update("x", "y", 5.0)
        b.update("x", "y", 2.0)
        a.merge_from(b)
        assert a.edge_weight("x", "y") == 2.0

    def test_merge_min_keeps_untouched_cells(self):
        a = TCM(d=1, width=32, seed=1, aggregation=Aggregation.MIN)
        b = TCM(d=1, width=32, seed=1, aggregation=Aggregation.MIN)
        a.update("only_a", "t", 7.0)
        b.update("only_b", "t", 3.0)
        a.merge_from(b)
        assert a.edge_weight("only_a", "t") == 7.0
        assert a.edge_weight("only_b", "t") == 3.0

    def test_merge_max_aggregation(self):
        a = TCM(d=2, width=32, seed=1, aggregation=Aggregation.MAX)
        b = TCM(d=2, width=32, seed=1, aggregation=Aggregation.MAX)
        a.update("x", "y", 5.0)
        b.update("x", "y", 9.0)
        a.merge_from(b)
        assert a.edge_weight("x", "y") == 9.0

    def test_merge_extended_labels_union(self):
        a = TCM(d=1, width=32, seed=1, keep_labels=True)
        b = TCM(d=1, width=32, seed=1, keep_labels=True)
        a.update("p", "q", 1.0)
        b.update("r", "s", 1.0)
        a.merge_from(b)
        sketch = a.sketches[0]
        assert "p" in sketch.ext(sketch.node_of("p"))
        assert "r" in sketch.ext(sketch.node_of("r"))

    def test_merge_plain_into_extended_rejected(self):
        a = TCM(d=1, width=32, seed=1, keep_labels=True)
        b = TCM(d=1, width=32, seed=1)
        with pytest.raises(ValueError, match="extended"):
            a.merge_from(b)

    def test_merge_preserves_queries(self, dblp_stream):
        first, second = split_stream(dblp_stream)
        a = TCM(d=3, width=64, seed=9, directed=False)
        b = TCM(d=3, width=64, seed=9, directed=False)
        for e in first:
            a.update(e.source, e.target, e.weight)
        for e in second:
            b.update(e.source, e.target, e.weight)
        a.merge_from(b)
        for x, y in list(dblp_stream.distinct_edges)[:50]:
            assert a.edge_weight(x, y) >= dblp_stream.edge_weight(x, y)


class TestSerialization:
    def round_trip(self, tcm, tmp_path):
        path = tmp_path / "sketch.npz"
        save_tcm(tcm, path)
        return load_tcm(path)

    def test_round_trip_matrices(self, tmp_path, ipflow_stream):
        tcm = TCM.from_stream(ipflow_stream, d=3, width=48, seed=2)
        loaded = self.round_trip(tcm, tmp_path)
        assert loaded.d == 3
        for s1, s2 in zip(tcm.sketches, loaded.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix)

    def test_round_trip_queries_agree(self, tmp_path, ipflow_stream):
        tcm = TCM.from_stream(ipflow_stream, d=3, width=48, seed=2)
        loaded = self.round_trip(tcm, tmp_path)
        for x, y in list(ipflow_stream.distinct_edges)[:50]:
            assert loaded.edge_weight(x, y) == tcm.edge_weight(x, y)
        nodes = sorted(ipflow_stream.nodes)[:10]
        for n in nodes:
            assert loaded.in_flow(n) == tcm.in_flow(n)
        assert loaded.reachable(nodes[0], nodes[1]) == \
            tcm.reachable(nodes[0], nodes[1])

    def test_round_trip_undirected(self, tmp_path, dblp_stream):
        tcm = TCM.from_stream(dblp_stream, d=2, width=32, seed=3)
        loaded = self.round_trip(tcm, tmp_path)
        assert not loaded.directed
        for x, y in list(dblp_stream.distinct_edges)[:30]:
            assert loaded.edge_weight(x, y) == tcm.edge_weight(x, y)

    def test_round_trip_extended_labels(self, tmp_path):
        tcm = TCM(d=2, width=16, seed=4, keep_labels=True)
        tcm.update("alice", "bob", 2.0)
        tcm.update(42, 43, 1.0)
        loaded = self.round_trip(tcm, tmp_path)
        sketch = loaded.sketches[0]
        assert "alice" in sketch.ext(sketch.node_of("alice"))
        assert 42 in sketch.ext(sketch.node_of(42))

    def test_round_trip_nonsquare(self, tmp_path):
        tcm = TCM(shapes=[(16, 4), (4, 16)], seed=5)
        tcm.update("a", "b", 3.0)
        loaded = self.round_trip(tcm, tmp_path)
        assert not loaded.is_graphical
        assert loaded.edge_weight("a", "b") == 3.0

    def test_round_trip_min_aggregation(self, tmp_path):
        tcm = TCM(d=2, width=16, seed=6, aggregation=Aggregation.MIN)
        tcm.update("a", "b", 0.0)
        tcm.update("a", "b", 9.0)
        loaded = self.round_trip(tcm, tmp_path)
        assert loaded.aggregation is Aggregation.MIN
        assert loaded.edge_weight("a", "b") == 0.0

    def test_loaded_sketch_continues_updating(self, tmp_path):
        tcm = TCM(d=2, width=16, seed=7)
        tcm.update("a", "b", 1.0)
        loaded = self.round_trip(tcm, tmp_path)
        loaded.update("a", "b", 2.0)
        assert loaded.edge_weight("a", "b") == 3.0

    def test_merge_after_load(self, tmp_path):
        """Shard on two 'machines', serialize, load, merge."""
        shard1 = TCM(d=2, width=32, seed=8)
        shard2 = TCM(d=2, width=32, seed=8)
        shard1.update("x", "y", 1.0)
        shard2.update("x", "y", 2.0)
        save_tcm(shard1, tmp_path / "s1.npz")
        save_tcm(shard2, tmp_path / "s2.npz")
        a = load_tcm(tmp_path / "s1.npz")
        b = load_tcm(tmp_path / "s2.npz")
        a.merge_from(b)
        assert a.edge_weight("x", "y") == 3.0

    def test_float_label_rejected_in_extended(self, tmp_path):
        from repro.core.serialization import _encode_label
        with pytest.raises(TypeError):
            _encode_label(1.5)

    def test_version_check(self, tmp_path, monkeypatch):
        tcm = TCM(d=1, width=8, seed=9)
        path = tmp_path / "sketch.npz"
        save_tcm(tcm, path)
        import repro.core.serialization as ser
        monkeypatch.setattr(ser, "_FORMAT_VERSION", 99)
        with pytest.raises(ValueError, match="version"):
            load_tcm(path)
