"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.tcm import TCM
from repro.streams.generators import dblp_like, ipflow_like, rmat, zipf_weights
from repro.streams.model import GraphStream


@pytest.fixture
def paper_stream() -> GraphStream:
    """The 14-element directed stream of the paper's Fig. 1.

    Edges (all weight 1): a->b, a->c, b->c, b->d, c->e, c->f, e->d, e->b,
    e->f, f->a, g->b, d->g, b->f, b->a.
    """
    stream = GraphStream(directed=True)
    edges = [("a", "b"), ("a", "c"), ("b", "c"), ("b", "d"), ("c", "e"),
             ("c", "f"), ("e", "d"), ("e", "b"), ("e", "f"), ("f", "a"),
             ("g", "b"), ("d", "g"), ("b", "f"), ("b", "a")]
    for t, (x, y) in enumerate(edges):
        stream.add(x, y, 1.0, float(t))
    return stream


@pytest.fixture
def small_directed() -> GraphStream:
    """A small weighted directed stream with repeats."""
    stream = GraphStream(directed=True)
    stream.add("a", "b", 2.0, 0.0)
    stream.add("a", "b", 3.0, 1.0)
    stream.add("b", "c", 1.0, 2.0)
    stream.add("c", "a", 4.0, 3.0)
    stream.add("a", "c", 5.0, 4.0)
    return stream


@pytest.fixture
def small_undirected() -> GraphStream:
    stream = GraphStream(directed=False)
    stream.add("x", "y", 1.0, 0.0)
    stream.add("y", "x", 2.0, 1.0)
    stream.add("y", "z", 3.0, 2.0)
    return stream


@pytest.fixture
def rmat_stream() -> GraphStream:
    weights = zipf_weights(500, seed=5)
    return rmat(64, 500, weights=weights, seed=5)


@pytest.fixture
def dblp_stream() -> GraphStream:
    return dblp_like(n_authors=150, n_papers=300, seed=11)


@pytest.fixture
def ipflow_stream() -> GraphStream:
    return ipflow_like(n_hosts=80, n_packets=1500, seed=13)


@pytest.fixture
def wide_tcm() -> TCM:
    """A TCM wide enough that collisions are unlikely on toy streams."""
    return TCM(d=4, width=128, seed=42)
