"""Run the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro.core.queries
import repro.core.tcm
import repro.core.tensor
import repro.hashing.labels
import repro.metrics.bounds

MODULES = [
    repro.hashing.labels,
    repro.core.queries,
    repro.core.tcm,
    repro.core.tensor,
    repro.metrics.bounds,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
