"""Public-API stability tests: every advertised name exists and imports."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.streams",
    "repro.analytics",
    "repro.baselines",
    "repro.metrics",
    "repro.distributed",
    "repro.hashing",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_top_level_surface():
    import repro
    expected = {
        "TCM", "GraphSketch", "Aggregation", "GraphStream", "StreamEdge",
        "SlidingWindow", "SubgraphQuery", "Wildcard", "BoundWildcard",
        "WILDCARD", "HeavyEdgeMonitor", "HeavyNodeMonitor",
        "ConditionalHeavyHitterMonitor", "heavy_triangle_connections",
        "save_tcm", "load_tcm", "TensorSketch", "SnapshotRing",
        "SketchFilteredStore", "TimeDecayedTCM", "sketch_distance",
        "top_changed_cells", "top_changed_edges",
    }
    assert expected <= set(repro.__all__)


def test_version_is_pep440ish():
    import repro
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(part.isdigit() for part in parts)


def test_every_public_callable_has_docstring():
    import repro
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        if callable(obj):
            assert obj.__doc__, f"repro.{name} has no docstring"


def test_py_typed_marker_shipped():
    import pathlib
    import repro
    package_dir = pathlib.Path(repro.__file__).parent
    assert (package_dir / "py.typed").exists()


def test_ingest_throughput_helper():
    """exp5's scalar-vs-vectorized helper returns sane positive rates."""
    from repro.experiments.exp5_efficiency import ingest_throughput
    scalar_rate, vector_rate = ingest_throughput("ipflow", "tiny", d=2)
    assert scalar_rate > 0
    assert vector_rate > scalar_rate
