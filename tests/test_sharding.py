"""Tests for multi-process sharded serving (repro.server.sharding).

Unit coverage for the pure pieces (hash affinity, topology objects,
metrics label injection), in-process coverage for the HTTP surface (two
``SketchServer`` instances wearing manual ``ShardInfo`` hats exercise
421 routing, ``/cluster`` and ``/cluster/metrics`` without forking), and
one subprocess test that boots ``tcm serve --workers 2`` for real:
binary-wire ingest on tenants owned by each worker, cross-worker 421,
and a clean SIGTERM drain.
"""

import asyncio
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.server import SketchServer, wire
from repro.server.sharding import ShardInfo, _inject_worker_label, shard_of

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def run_async(coro):
    return asyncio.run(coro)


class TestShardOf:
    def test_deterministic_and_in_range(self):
        names = [f"tenant-{i}" for i in range(200)]
        for workers in (1, 2, 3, 8):
            owners = [shard_of(name, workers) for name in names]
            assert owners == [shard_of(name, workers) for name in names]
            assert all(0 <= o < workers for o in owners)

    def test_spreads_tenants(self):
        owners = {shard_of(f"tenant-{i}", 4) for i in range(64)}
        assert owners == {0, 1, 2, 3}

    def test_single_worker_owns_everything(self):
        assert shard_of("anything", 1) == 0

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)


class TestShardInfo:
    def test_owner_and_ports(self):
        shard = ShardInfo(1, 3, "127.0.0.1", 8080)
        assert shard.ports == [0, 0, 0]
        shard.ports[:] = [9001, 9002, 9003]
        name = "some-tenant"
        assert shard.owner(name) == shard_of(name, 3)

    def test_index_validation(self):
        with pytest.raises(ValueError):
            ShardInfo(3, 3, "127.0.0.1", 8080)
        with pytest.raises(ValueError):
            ShardInfo(-1, 2, "127.0.0.1", 8080)


class TestInjectWorkerLabel:
    def test_bare_and_labeled_samples(self):
        page = ("# HELP x a counter\n"
                "# TYPE x counter\n"
                "x 5\n"
                'y{tenant="a"} 2.5\n'
                "\n")
        out = _inject_worker_label(page, 3)
        lines = out.splitlines()
        assert lines[0].startswith("# HELP")
        assert 'x{worker="3"} 5' in lines
        assert 'y{worker="3",tenant="a"} 2.5' in lines


def _pick_tenants(workers):
    """One tenant name owned by each of ``workers`` shards."""
    chosen = {}
    i = 0
    while len(chosen) < workers:
        name = f"tenant-{i}"
        owner = shard_of(name, workers)
        chosen.setdefault(owner, name)
        i += 1
    return [chosen[w] for w in range(workers)]


async def _two_worker_cluster(scenario):
    """Two in-process servers wearing a 2-worker topology."""
    shards = [ShardInfo(i, 2, "127.0.0.1", 0) for i in range(2)]
    servers = [SketchServer(port=0, max_delay=0.002, shard=shards[i])
               for i in range(2)]
    try:
        ports = [await server.start() for server in servers]
        for shard in shards:
            shard.shared_port = ports[0]
            shard.ports[:] = ports
        await scenario(servers, ports)
    finally:
        for server in servers:
            await server.stop()


async def _json_call(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        raw = b"" if body is None else json.dumps(body).encode()
        writer.write((f"{method} {path} HTTP/1.1\r\nHost: x\r\n"
                      "Content-Type: application/json\r\n"
                      f"Content-Length: {len(raw)}\r\n"
                      "Connection: close\r\n\r\n").encode() + raw)
        await writer.drain()
        blob = await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass
    head, _, payload = blob.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    headers = head.decode().lower()
    if "content-type: text/plain" in headers:
        return status, payload.decode()
    return status, (json.loads(payload) if payload else None)


class TestInProcessCluster:
    def test_owned_tenant_served_wrong_worker_421(self):
        async def scenario(servers, ports):
            t0, t1 = _pick_tenants(2)
            config = {"kind": "tcm", "d": 2, "width": 64}
            # Owner accepts.
            status, _ = await _json_call(ports[0], "PUT",
                                         f"/sketches/{t0}", config)
            assert status == 201
            # Non-owner refuses with the owner's coordinates.
            status, body = await _json_call(ports[1], "PUT",
                                            f"/sketches/{t0}", config)
            assert status == 421
            assert body["worker"] == 0
            assert body["port"] == ports[0]
            assert body["workers"] == 2
            # Actions on a misplaced tenant 421 too.
            status, body = await _json_call(
                ports[0], "POST", f"/sketches/{t1}/ingest",
                {"sources": [1], "targets": [2]})
            assert status == 421 and body["worker"] == 1

        run_async(_two_worker_cluster(scenario))

    def test_admin_routes_are_not_sharded(self):
        async def scenario(servers, ports):
            for port in ports:
                status, _ = await _json_call(port, "GET", "/healthz")
                assert status == 200
                status, body = await _json_call(port, "GET", "/sketches")
                assert status == 200

        run_async(_two_worker_cluster(scenario))

    def test_cluster_topology(self):
        async def scenario(servers, ports):
            for index, port in enumerate(ports):
                status, body = await _json_call(port, "GET", "/cluster")
                assert status == 200
                assert body["workers"] == 2
                assert body["worker"] == index
                assert body["ports"] == ports

        run_async(_two_worker_cluster(scenario))

    def test_cluster_metrics_aggregates_both_workers(self):
        async def scenario(servers, ports):
            status, text = await _json_call(ports[0], "GET",
                                            "/cluster/metrics")
            assert status == 200
            assert 'worker="0"' in text
            assert 'worker="1"' in text

        run_async(_two_worker_cluster(scenario))

    def test_dead_peer_degrades_to_comment(self):
        async def scenario(servers, ports):
            await servers[1].stop()
            status, text = await _json_call(ports[0], "GET",
                                            "/cluster/metrics")
            assert status == 200
            assert 'worker="0"' in text
            assert "# worker 1" in text and "unreachable" in text

        run_async(_two_worker_cluster(scenario))


# -- the real thing: fork two workers ----------------------------------------

def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _call(port, method, path, body=None, content_type="application/json",
          raw=False):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    if isinstance(body, (bytes, bytearray)):
        payload = bytes(body)
    else:
        payload = None if body is None else json.dumps(body)
    conn.request(method, path, body=payload,
                 headers={"Content-Type": content_type})
    response = conn.getresponse()
    data = response.read()
    conn.close()
    if raw:
        return response.status, data
    return response.status, (json.loads(data) if data else None)


@pytest.mark.slow
@pytest.mark.skipif(not hasattr(socket, "SO_REUSEPORT"),
                    reason="sharded serve needs SO_REUSEPORT")
class TestShardedServe:
    def test_two_worker_lifecycle(self, tmp_path):
        port = _free_port()
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--host",
             "127.0.0.1", "--port", str(port), "--workers", "2",
             "--no-obs", "--data-dir", str(tmp_path)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env)
        try:
            deadline = time.monotonic() + 30.0
            cluster = None
            while time.monotonic() < deadline and cluster is None:
                if proc.poll() is not None:
                    raise RuntimeError(
                        f"server exited early ({proc.returncode}): "
                        f"{proc.stdout.read()}")
                try:
                    status, cluster = _call(port, "GET", "/cluster")
                except OSError:
                    time.sleep(0.05)
            assert cluster is not None, "cluster did not come up in 30s"
            assert cluster["workers"] == 2
            ports = cluster["ports"]
            assert len(ports) == 2 and all(p > 0 for p in ports)

            # One tenant per worker, created and fed over binary wire
            # through each owner's direct port.
            tenants = _pick_tenants(2)
            for owner, tenant in enumerate(tenants):
                status, _ = _call(ports[owner], "PUT",
                                  f"/sketches/{tenant}",
                                  {"kind": "tcm", "d": 2, "width": 64,
                                   "seed": 7})
                assert status == 201
                frame = wire.encode_ingest(
                    tenant,
                    np.arange(20, dtype=np.uint64),
                    np.arange(20, 40, dtype=np.uint64),
                    np.full(20, 2.0))
                status, body = _call(ports[owner], "POST",
                                     f"/sketches/{tenant}/ingest",
                                     body=frame,
                                     content_type=wire.CONTENT_TYPE)
                assert status == 200 and body["ingested"] == 20
                status, body = _call(ports[owner], "POST",
                                     f"/sketches/{tenant}/query",
                                     {"kind": "edge", "pairs": [[0, 20]]})
                assert status == 200 and body["values"] == [2.0]

            # Cross-worker request bounces with the owner's port.
            status, body = _call(ports[1 - shard_of(tenants[0], 2)],
                                 "GET", f"/sketches/{tenants[0]}")
            assert status == 421
            assert body["port"] == ports[shard_of(tenants[0], 2)]
        finally:
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=20)
        output = proc.stdout.read()
        assert code == 0, output
        assert "worker 0 shut down cleanly" in output
        assert "worker 1 shut down cleanly" in output
        assert "tcm serve: shut down cleanly" in output
