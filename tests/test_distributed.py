"""Tests for the simulated distributed TCM (paper Section 5.3)."""

import pytest

from repro.core.tcm import TCM
from repro.distributed import DistributedTCM
from repro.streams.generators import path_stream, rmat


class TestConstruction:
    def test_worker_count(self):
        with DistributedTCM(m=3, d=2, width=16, seed=0) as cluster:
            assert len(cluster.workers) == 3
            assert cluster.total_sketches == 6

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            DistributedTCM(m=0, d=1, width=8)

    def test_workers_have_independent_hashes(self):
        with DistributedTCM(m=2, d=1, width=64, seed=0) as cluster:
            cluster.update("a", "b", 1.0)
            matrices = [w.tcm.sketches[0].matrix for w in cluster.workers]
            # Same content mass, but placed by different hash functions.
            assert matrices[0].sum() == matrices[1].sum() == 1.0


class TestQueries:
    def test_edge_weight(self, small_directed):
        with DistributedTCM(m=2, d=2, width=64, seed=1) as cluster:
            cluster.ingest(small_directed)
            assert cluster.edge_weight("a", "b") == 5.0

    def test_flows(self, small_directed):
        with DistributedTCM(m=2, d=2, width=64, seed=1) as cluster:
            cluster.ingest(small_directed)
            assert cluster.out_flow("a") == small_directed.out_flow("a")
            assert cluster.in_flow("c") == small_directed.in_flow("c")

    def test_reachability_conjunction(self, paper_stream):
        with DistributedTCM(m=2, d=2, width=128, seed=1) as cluster:
            cluster.ingest(paper_stream)
            assert cluster.reachable("a", "g")
            assert not cluster.reachable("a", "marsupial")

    def test_parallel_and_sequential_agree(self, small_directed):
        parallel = DistributedTCM(m=3, d=1, width=32, seed=2, parallel=True)
        serial = DistributedTCM(m=3, d=1, width=32, seed=2, parallel=False)
        parallel.ingest(small_directed)
        serial.ingest(small_directed)
        for x, y in small_directed.distinct_edges:
            assert parallel.edge_weight(x, y) == serial.edge_weight(x, y)
        parallel.close()

    def test_never_underestimates(self):
        stream = rmat(32, 400, seed=3)
        with DistributedTCM(m=2, d=2, width=8, seed=3) as cluster:
            cluster.ingest(stream)
            for x, y in list(stream.distinct_edges)[:50]:
                assert cluster.edge_weight(x, y) >= stream.edge_weight(x, y)


class TestScalingBenefit:
    def test_m_workers_match_dm_sketch_tcm(self, small_directed):
        """d x m distributed sketches estimate no worse than a single
        d-sketch TCM (Section 5.3's point)."""
        stream = rmat(32, 600, seed=4)
        single = TCM(d=2, width=8, seed=100)
        single.ingest(stream)
        with DistributedTCM(m=4, d=2, width=8, seed=100) as cluster:
            cluster.ingest(stream)
            worse = 0
            for x, y in list(stream.distinct_edges)[:100]:
                if cluster.edge_weight(x, y) > single.edge_weight(x, y):
                    worse += 1
            # The first worker shares the single TCM's seed, so the
            # cluster's min can never exceed the single sketch's estimate.
            assert worse == 0

    def test_double_close_is_safe(self):
        cluster = DistributedTCM(m=2, d=1, width=8, seed=0)
        cluster.close()
        cluster.close()
