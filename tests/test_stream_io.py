"""Tests for plain-text stream I/O."""

import pytest

from repro.streams.io import iter_stream_file, read_stream, write_stream
from repro.streams.model import GraphStream


@pytest.fixture
def stream_file(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text(
        "# comment line\n"
        "\n"
        "a b 2.5 1.0\n"
        "b c\n"
        "c a 4\n")
    return path


class TestRead:
    def test_round_elements(self, stream_file):
        edges = list(iter_stream_file(stream_file))
        assert len(edges) == 3

    def test_full_fields(self, stream_file):
        edge = list(iter_stream_file(stream_file))[0]
        assert (edge.source, edge.target) == ("a", "b")
        assert edge.weight == 2.5
        assert edge.timestamp == 1.0

    def test_default_weight(self, stream_file):
        edge = list(iter_stream_file(stream_file))[1]
        assert edge.weight == 1.0

    def test_default_timestamp_is_line_number(self, stream_file):
        edge = list(iter_stream_file(stream_file))[1]
        assert edge.timestamp == 4.0  # 4th line in the file

    def test_read_stream_builds_graph(self, stream_file):
        stream = read_stream(stream_file, directed=True)
        assert stream.edge_weight("a", "b") == 2.5
        assert len(stream) == 3

    def test_malformed_field_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b 1 2 3 4\n")
        with pytest.raises(ValueError, match="expected 2-4 fields"):
            list(iter_stream_file(path))

    def test_single_field_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("lonely\n")
        with pytest.raises(ValueError):
            list(iter_stream_file(path))

    def test_bad_numeric(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b notanumber\n")
        with pytest.raises(ValueError, match="bad numeric"):
            list(iter_stream_file(path))

    def test_error_includes_line_number(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b 1\nc d oops\n")
        with pytest.raises(ValueError, match=":2"):
            list(iter_stream_file(path))


class TestWrite:
    def test_round_trip(self, tmp_path, small_directed):
        path = tmp_path / "out.txt"
        count = write_stream(small_directed, path)
        assert count == 5
        loaded = read_stream(path, directed=True)
        assert len(loaded) == 5
        assert loaded.edge_weight("a", "b") == small_directed.edge_weight("a", "b")
        assert loaded.out_flow("a") == small_directed.out_flow("a")

    def test_round_trip_undirected(self, tmp_path, small_undirected):
        path = tmp_path / "out.txt"
        write_stream(small_undirected, path)
        loaded = read_stream(path, directed=False)
        assert loaded.edge_weight("x", "y") == 3.0

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.txt"
        assert write_stream(GraphStream(), path) == 0
        assert len(read_stream(path)) == 0
