"""Tests for the textual subgraph-query syntax."""

import pytest

from repro.core.queries import WILDCARD, BoundWildcard, SubgraphQuery
from repro.core.query_parser import (
    QuerySyntaxError,
    format_subgraph_query,
    parse_edge,
    parse_subgraph_query,
)


class TestParseEdge:
    def test_directed(self):
        assert parse_edge("a->b") == ("a", "b")

    def test_whitespace_tolerant(self):
        assert parse_edge("  a  ->  b  ") == ("a", "b")

    def test_undirected_token(self):
        assert parse_edge("a--b") == ("a", "b")

    def test_free_wildcard(self):
        edge = parse_edge("*->b")
        assert edge[0] is WILDCARD or repr(edge[0]) == "*"
        assert edge[1] == "b"

    def test_bound_wildcard(self):
        edge = parse_edge("*1->b")
        assert edge[0] == BoundWildcard("1")

    def test_ip_labels(self):
        assert parse_edge("10.0.0.1->10.0.0.9") == ("10.0.0.1", "10.0.0.9")

    def test_missing_arrow(self):
        with pytest.raises(QuerySyntaxError):
            parse_edge("a b")

    def test_double_arrow(self):
        with pytest.raises(QuerySyntaxError):
            parse_edge("a->b->c")

    def test_empty_side(self):
        with pytest.raises(QuerySyntaxError):
            parse_edge("->b")


class TestParseQuery:
    def test_single_edge(self):
        query = parse_subgraph_query("a->b")
        assert len(query) == 1

    def test_comma_separated(self):
        query = parse_subgraph_query("a->b, b->c, c->a")
        assert len(query) == 3
        assert not query.has_wildcards

    def test_q5(self):
        query = parse_subgraph_query("*->b, b->c, c->*")
        assert query.has_wildcards
        assert not query.has_bound_wildcards

    def test_q6(self):
        query = parse_subgraph_query("*1->b, b->c, c->*1")
        assert query.bound_tags == {"1"}

    def test_empty_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_subgraph_query("   ")

    def test_trailing_comma_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_subgraph_query("a->b,")

    def test_evaluates_like_programmatic_query(self, paper_stream):
        from repro.core.tcm import TCM
        tcm = TCM.from_stream(paper_stream, d=3, width=128, seed=1)
        parsed = parse_subgraph_query("a->b, a->c")
        programmatic = SubgraphQuery([("a", "b"), ("a", "c")])
        assert tcm.subgraph_weight(parsed) == \
            tcm.subgraph_weight(programmatic) == 2.0


class TestFormat:
    def test_round_trip(self):
        text = "*1->b, b->c, c->*1"
        query = parse_subgraph_query(text)
        assert format_subgraph_query(query) == text

    def test_free_wildcard_round_trip(self):
        text = "*->b, c->*"
        assert format_subgraph_query(parse_subgraph_query(text)) == text

    def test_undirected_arrow(self):
        query = parse_subgraph_query("a->b")
        assert format_subgraph_query(query, directed=False) == "a--b"


class TestCliSubgraph:
    def test_cli_subgraph_query(self, tmp_path, capsys, paper_stream):
        from repro.cli import main
        from repro.streams.io import write_stream

        trace = tmp_path / "paper.txt"
        write_stream(paper_stream, trace)
        sketch = tmp_path / "paper.npz"
        main(["summarize", str(trace), str(sketch), "--width", "128"])
        capsys.readouterr()
        assert main(["query", str(sketch), "subgraph", "a->b, a->c"]) == 0
        assert float(capsys.readouterr().out) == 2.0
