"""Tests for the Markdown reproduction-report generator."""

import pytest

from repro.experiments.report_markdown import _markdown_table, generate_report


class TestMarkdownTable:
    def test_structure(self):
        table = _markdown_table(["a", "b"], [(1, 2.5), ("x", True)])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| x | yes |" in lines

    def test_empty_rows(self):
        table = _markdown_table(["a"], [])
        assert len(table.splitlines()) == 2


@pytest.mark.slow
class TestGenerateReport:
    def test_full_report_tiny(self):
        document = generate_report("tiny")
        assert document.startswith("# TCM reproduction report")
        # Every artifact family appears.
        for marker in ("Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11",
                       "Fig. 12", "Fig. 13", "Fig. 14", "Fig. 15",
                       "Fig. 16", "Fig. 17", "Table 2", "Table 3",
                       "Table 4", "Table 5", "C.3", "C.4"):
            assert marker in document, f"missing {marker}"
        assert document.count("## ") >= 30


class TestCliReport:
    def test_report_to_file(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import report_markdown
        from repro.experiments.__main__ import main

        # Stub the heavy generation: the CLI plumbing is what's under test.
        monkeypatch.setattr(report_markdown, "generate_report",
                            lambda scale: f"# stub report ({scale})\n")
        out = tmp_path / "report.md"
        assert main(["report", "--scale", "tiny", "--out", str(out)]) == 0
        assert out.read_text().startswith("# stub report (tiny)")

    def test_report_to_stdout(self, capsys, monkeypatch):
        from repro.experiments import report_markdown
        from repro.experiments.__main__ import main

        monkeypatch.setattr(report_markdown, "generate_report",
                            lambda scale: "# stub report\n")
        assert main(["report", "--scale", "tiny"]) == 0
        assert "# stub report" in capsys.readouterr().out
