"""Tests for the exponentially time-decayed TCM."""

import math

import pytest

from repro.core.decay import TimeDecayedTCM
from repro.streams.model import StreamEdge


class TestConstruction:
    def test_decay_validation(self):
        with pytest.raises(ValueError):
            TimeDecayedTCM(0.0)
        with pytest.raises(ValueError):
            TimeDecayedTCM(1.0)

    def test_half_life(self):
        decayed = TimeDecayedTCM(0.5)
        assert decayed.half_life() == pytest.approx(1.0)
        slow = TimeDecayedTCM(0.99)
        assert slow.half_life() == pytest.approx(math.log(2) / -math.log(0.99))


class TestDecaySemantics:
    def test_no_time_no_decay(self):
        decayed = TimeDecayedTCM(0.5, d=2, width=32, seed=1)
        decayed.observe("a", "b", 8.0)
        assert decayed.edge_weight("a", "b") == pytest.approx(8.0)

    def test_weight_halves_per_half_life(self):
        decayed = TimeDecayedTCM(0.5, d=2, width=32, seed=1)
        decayed.observe("a", "b", 8.0, timestamp=0.0)
        decayed.advance_to(1.0)
        assert decayed.edge_weight("a", "b") == pytest.approx(4.0)
        decayed.advance_to(3.0)
        assert decayed.edge_weight("a", "b") == pytest.approx(1.0)

    def test_new_elements_enter_undecayed(self):
        decayed = TimeDecayedTCM(0.5, d=2, width=32, seed=1)
        decayed.observe("a", "b", 8.0, timestamp=0.0)
        decayed.observe("a", "b", 8.0, timestamp=1.0)
        # old: 8*0.5 = 4, new: 8 -> total 12.
        assert decayed.edge_weight("a", "b") == pytest.approx(12.0)

    def test_time_cannot_regress(self):
        decayed = TimeDecayedTCM(0.9)
        decayed.advance_to(5.0)
        with pytest.raises(ValueError):
            decayed.advance_to(4.0)

    def test_flows_decay_too(self):
        decayed = TimeDecayedTCM(0.5, d=2, width=32, seed=1)
        decayed.observe("a", "b", 4.0, timestamp=0.0)
        decayed.advance_to(2.0)
        assert decayed.out_flow("a") == pytest.approx(1.0)
        assert decayed.in_flow("b") == pytest.approx(1.0)

    def test_total_weight_decays(self):
        decayed = TimeDecayedTCM(0.5, d=2, width=32, seed=1)
        decayed.observe("a", "b", 4.0, timestamp=0.0)
        decayed.observe("c", "d", 4.0, timestamp=0.0)
        decayed.advance_to(1.0)
        assert decayed.total_weight_estimate() == pytest.approx(4.0)

    def test_reachability_survives_decay(self):
        decayed = TimeDecayedTCM(0.5, d=2, width=64, seed=1)
        decayed.observe("a", "b", 1.0, timestamp=0.0)
        decayed.observe("b", "c", 1.0, timestamp=0.0)
        decayed.advance_to(50.0)
        assert decayed.reachable("a", "c")

    def test_consume_stream(self):
        decayed = TimeDecayedTCM(0.5, d=2, width=32, seed=1)
        edges = [StreamEdge("x", "y", 2.0, float(t)) for t in range(4)]
        assert decayed.consume(edges) == 4
        # 2*(0.5^3 + 0.5^2 + 0.5 + 1) = 3.75.
        assert decayed.edge_weight("x", "y") == pytest.approx(3.75)


class TestRenormalization:
    def test_long_run_stays_finite(self):
        """Advancing far past many half-lives must not under/overflow."""
        decayed = TimeDecayedTCM(0.5, d=1, width=16, seed=1)
        for t in range(0, 3000, 100):
            decayed.observe("a", "b", 1.0, timestamp=float(t))
        # After 3000 time units (=half-lives) the scale crossed the
        # renormalization band many times over.
        estimate = decayed.edge_weight("a", "b")
        assert math.isfinite(estimate)
        # Geometric series: latest element dominates; total < 2.
        assert 1.0 <= estimate < 2.0

    def test_renormalized_values_match_unrenormalized(self):
        fast_forward = TimeDecayedTCM(0.5, d=1, width=16, seed=1)
        fast_forward.observe("a", "b", 8.0, timestamp=0.0)
        fast_forward.advance_to(500.0)  # forces renormalization
        fast_forward.observe("a", "b", 8.0)
        assert fast_forward.edge_weight("a", "b") == pytest.approx(8.0)

    def test_scale_underflow_to_zero_is_survivable(self):
        """A time jump past all float range wipes history cleanly and
        keeps accepting new elements (no division by zero)."""
        decayed = TimeDecayedTCM(0.5, d=1, width=8, seed=1)
        decayed.observe("a", "b", 5.0, timestamp=0.0)
        decayed.advance_to(1e9)  # decay**1e9 underflows to exactly 0.0
        decayed.observe("a", "b", 7.0)
        assert decayed.edge_weight("a", "b") == pytest.approx(7.0)

    @pytest.mark.parametrize("sparse", [False, True])
    def test_renormalization_bumps_sketch_epochs(self, sparse):
        """Folding the scale into the cells is an out-of-band mutation;
        it must move every sketch epoch so cached indexes invalidate."""
        decayed = TimeDecayedTCM(0.1, d=2, width=16, seed=1, sparse=sparse)
        decayed.observe("a", "b", 4.0, timestamp=0.0)
        before = [s.epoch for s in decayed.tcm.sketches]
        decayed.advance_to(125.0)  # 0.1**125 < 1e-120: forces a renorm
        after = [s.epoch for s in decayed.tcm.sketches]
        assert all(b > a for b, a in zip(after, before))
        assert decayed.edge_weight("a", "b") == pytest.approx(4.0 * 0.1**125)

    @pytest.mark.parametrize("sparse", [False, True])
    def test_renormalization_invalidates_query_engine_caches(self, sparse):
        decayed = TimeDecayedTCM(0.1, d=2, width=16, seed=1, sparse=sparse)
        decayed.observe("a", "b", 4.0, timestamp=0.0)
        engine = decayed.tcm.query_engine
        assert decayed.out_flow("a") == pytest.approx(4.0)
        warm = engine.cache_stats()
        assert decayed.out_flow("a") == pytest.approx(4.0)
        assert engine.cache_stats()["hits"] > warm["hits"]
        decayed.advance_to(125.0)  # renormalizes: epochs move
        # A stale row-sum cache would return the un-scaled flow here.
        assert decayed.out_flow("a") == pytest.approx(4.0 * 0.1**125)
        assert engine.cache_stats()["invalidations"] > \
            warm["invalidations"]

    def test_sparse_backend_matches_dense_semantics(self):
        dense = TimeDecayedTCM(0.5, d=2, width=32, seed=1)
        sparse = TimeDecayedTCM(0.5, d=2, width=32, seed=1, sparse=True)
        for decayed in (dense, sparse):
            decayed.observe("a", "b", 8.0, timestamp=0.0)
            decayed.observe("a", "b", 8.0, timestamp=1.0)
        assert sparse.edge_weight("a", "b") == \
            pytest.approx(dense.edge_weight("a", "b"))

    def test_recent_burst_outranks_old_heavyweight(self):
        """The motivating query: what is hot *now*."""
        decayed = TimeDecayedTCM(0.9, d=2, width=64, seed=2)
        for t in range(50):
            decayed.observe("old", "victim", 100.0, timestamp=float(t))
        for t in range(50, 120):
            decayed.observe("new", "victim", 10.0, timestamp=float(t))
        assert decayed.edge_weight("new", "victim") > \
            decayed.edge_weight("old", "victim")
