"""Tests for fault injection (repro.server.faults) and degradation.

The FaultPlan knobs must be deterministic and composable with the WAL
writer (a failed write/fsync rolls the segment back to a clean prefix),
and the server must degrade -- 503 on storage errors, 429 + Retry-After
on backlog/lag shedding -- instead of crashing or corrupting state.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.server import SketchServer
from repro.server.durability import WalWriter, scan_segment
from repro.server.faults import (
    FAULT_PLAN_ENV,
    FaultInjected,
    FaultPlan,
    append_garbage,
    tear_tail,
)
from repro.server.http import BackpressureController
from repro.server.loadgen import _Driver, _request


def keys(values):
    return np.asarray(values, dtype=np.uint64)


def weights(values):
    return np.asarray(values, dtype=np.float64)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="fsync_delay"):
            FaultPlan(fsync_delay=-1.0)
        with pytest.raises(ValueError, match="crash_after_records"):
            FaultPlan(crash_after_records=-2)

    def test_from_json_rejects_unknown_keys(self):
        plan = FaultPlan.from_json('{"fail_write_after": 3}')
        assert plan.fail_write_after == 3
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_json('{"explode": true}')
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json('[1, 2]')
        with pytest.raises(ValueError, match="bad fault plan JSON"):
            FaultPlan.from_json('{nope')

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        plan = FaultPlan.from_env(
            {FAULT_PLAN_ENV: '{"fail_fsync_after": 1}'})
        assert plan.fail_fsync_after == 1
        assert plan.describe()["fail_fsync_after"] == 1

    def test_write_faults_fire_after_threshold(self):
        plan = FaultPlan(fail_write_after=2)
        plan.on_write(10)
        plan.on_write(10)
        with pytest.raises(FaultInjected):
            plan.on_write(10)
        assert plan.writes == 2

    def test_fsync_faults_fire_after_threshold(self):
        plan = FaultPlan(fail_fsync_after=1)
        plan.on_fsync()
        with pytest.raises(FaultInjected):
            plan.on_fsync()


class TestTailCorruptors:
    def test_tear_tail_and_append_garbage(self, tmp_path):
        path = tmp_path / "wal-00000001.log"
        path.write_bytes(b"x" * 100)
        assert tear_tail(str(path), 30) == 70
        assert path.stat().st_size == 70
        assert tear_tail(str(path), 1000) == 0
        assert append_garbage(str(path), nbytes=16, seed=1) == 16
        # Deterministic: same seed, same bytes.
        first = path.read_bytes()
        path.write_bytes(b"")
        append_garbage(str(path), nbytes=16, seed=1)
        assert path.read_bytes() == first
        with pytest.raises(ValueError):
            tear_tail(str(path), -1)
        with pytest.raises(ValueError):
            append_garbage(str(path), nbytes=-1)


class TestWalUnderFaults:
    def test_failed_write_rolls_back_to_clean_prefix(self, tmp_path):
        plan = FaultPlan(fail_write_after=2)
        wal = WalWriter(str(tmp_path), fsync="off", faults=plan)
        wal.append_advance(1.0)
        wal.append_advance(2.0)
        with pytest.raises(OSError):
            wal.append_advance(3.0)
        assert wal.records == 2
        wal.close()
        records, torn = scan_segment(wal.path)
        assert torn == 0  # rollback truncated the failed frame away
        assert [r.timestamp for r in records] == [1.0, 2.0]

    def test_failed_fsync_rolls_back_the_record(self, tmp_path):
        plan = FaultPlan(fail_fsync_after=1)
        wal = WalWriter(str(tmp_path), fsync="always", faults=plan)
        wal.append_advance(1.0)
        with pytest.raises(OSError):
            wal.append_advance(2.0)
        records, torn = scan_segment(wal.path)
        assert torn == 0
        assert [r.timestamp for r in records] == [1.0]

    def test_crash_counter_advances(self, tmp_path):
        # crash_after_records=None must never exit; the counter still
        # tracks durable records for the chaos bench's reporting.
        plan = FaultPlan()
        wal = WalWriter(str(tmp_path), fsync="off", faults=plan)
        wal.append_advance(1.0)
        wal.append_advance(2.0)
        assert plan.records == 2


class TestBackpressure:
    def test_tiered_shedding(self):
        controller = BackpressureController(lag_limit=0.2)
        controller.lag = 0.0
        assert controller.shed_reason("ingest") is None
        assert controller.shed_reason("expensive_query") is None
        assert controller.shed_reason("cheap_query") is None
        controller.lag = 0.11  # >= 0.5 * limit: expensive queries first
        assert controller.shed_reason("expensive_query") == "query_class"
        assert controller.shed_reason("ingest") is None
        controller.lag = 0.21  # >= limit: ingest too
        assert controller.shed_reason("ingest") == "lag"
        assert controller.shed_reason("cheap_query") is None
        controller.lag = 0.41  # >= 2 * limit: everything expensive
        assert controller.shed_reason("cheap_query") == "lag"
        assert controller.retry_after() >= 2 * 0.41

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            BackpressureController(lag_limit=0.0)


async def _call(client, method, path, body=None):
    reader, writer = client
    raw = b"" if body is None else json.dumps(body).encode()
    status, payload = await _request(reader, writer, method, path, raw)
    return status, (json.loads(payload) if payload else None)


class TestServerDegradation:
    def test_storage_error_is_503_and_server_survives(self, tmp_path):
        async def scenario():
            plan = FaultPlan(fail_write_after=1)
            server = SketchServer(port=0, max_delay=0.002,
                                  data_dir=str(tmp_path), faults=plan,
                                  snapshot_interval=None, batching=False)
            port = await server.start()
            client = await asyncio.open_connection("127.0.0.1", port)
            try:
                status, _ = await _call(
                    client, "PUT", "/sketches/a",
                    {"kind": "tcm", "d": 2, "width": 32, "seed": 1})
                assert status == 201
                status, _ = await _call(
                    client, "POST", "/sketches/a/ingest",
                    {"sources": [1], "targets": [2]})
                assert status == 200
                # The disk is now "full": ingest fails with 503, is NOT
                # acked, and the process keeps serving.
                status, body = await _call(
                    client, "POST", "/sketches/a/ingest",
                    {"sources": [3], "targets": [4]})
                assert status == 503
                assert "storage error" in body["error"]
                status, body = await _call(client, "GET", "/healthz")
                assert status == 200
                # The failed batch never mutated the sketch.
                status, body = await _call(
                    client, "POST", "/sketches/a/query",
                    {"kind": "edge", "pairs": [[3, 4]]})
                assert status == 200 and body["values"] == [0.0]
            finally:
                client[1].close()
                await server.stop()

        asyncio.run(scenario())

    def test_backlog_exceeded_sheds_429_then_retry_succeeds(self):
        async def scenario():
            server = SketchServer(port=0, max_batch=1 << 20,
                                  max_delay=60.0, max_backlog=10)
            port = await server.start()
            client = await asyncio.open_connection("127.0.0.1", port)
            try:
                status, _ = await _call(
                    client, "PUT", "/sketches/a",
                    {"kind": "tcm", "d": 2, "width": 32, "seed": 1})
                assert status == 201
                tenant = server.registry.get("a")
                # Fill the staging buffer directly (the deadline is far
                # away, so it stays full until flushed).
                staged = tenant.ingest.add(
                    np.arange(8, dtype=np.uint64),
                    np.arange(8, dtype=np.uint64),
                    np.ones(8))
                status, body = await _call(
                    client, "POST", "/sketches/a/ingest",
                    {"sources": [1, 2, 3], "targets": [4, 5, 6]})
                assert status == 429
                assert body["retry_after"] > 0
                # Drain, then the retry is admitted (its own batch stays
                # staged behind the far-away deadline, so flush it too).
                tenant.ingest.flush("barrier")
                assert await staged == 8
                retry = asyncio.ensure_future(_call(
                    client, "POST", "/sketches/a/ingest",
                    {"sources": [1, 2, 3], "targets": [4, 5, 6]}))
                await asyncio.sleep(0.05)
                tenant.ingest.flush("barrier")
                status, body = await asyncio.wait_for(retry, timeout=5.0)
                assert status == 200 and body["ingested"] == 3
            finally:
                client[1].close()
                await server.stop()

        asyncio.run(scenario())

    def test_lag_shed_includes_retry_after(self):
        async def scenario():
            server = SketchServer(port=0, max_delay=0.002, lag_limit=0.1)
            port = await server.start()
            server.backpressure.lag = 1.0  # force full shed
            client = await asyncio.open_connection("127.0.0.1", port)
            try:
                await _call(client, "PUT", "/sketches/a",
                            {"kind": "tcm", "d": 2, "width": 32,
                             "seed": 1})
                status, body = await _call(
                    client, "POST", "/sketches/a/ingest",
                    {"sources": [1], "targets": [2]})
                # The probe task may have decayed the forced lag a bit
                # by now, but it is far above every threshold.
                assert status == 429 and body["retry_after"] > 0
                status, body = await _call(
                    client, "POST", "/sketches/a/query",
                    {"kind": "reach", "pairs": [[1, 2]]})
                assert status == 429
                # healthz is never shed.
                status, body = await _call(client, "GET", "/healthz")
                assert status == 200 and body["loop_lag"] > 0.2
            finally:
                client[1].close()
                await server.stop()

        asyncio.run(scenario())


class TestLoadgenResilience:
    def test_driver_counts_connection_errors_without_crashing(self):
        async def scenario():
            # A server that accepts and immediately slams the door.
            async def slam(reader, writer):
                writer.close()

            listener = await asyncio.start_server(slam, "127.0.0.1", 0)
            port = listener.sockets[0].getsockname()[1]
            driver = _Driver("127.0.0.1", port, request_timeout=2.0,
                             max_retries=1, backoff_base=0.01,
                             backoff_cap=0.02, seed=1)
            conn = {"reader": None, "writer": None}
            status = await driver.send(conn, "ingest", "/x", b"{}")
            listener.close()
            await listener.wait_closed()
            return driver, status

        driver, status = asyncio.run(scenario())
        assert status is None
        assert driver.errors == 1
        assert driver.errors_by_class["connection"] == 1
        assert driver.retries == 1

    def test_driver_refused_connection_is_an_error_class(self):
        async def scenario():
            with_port = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0)
            port = with_port.sockets[0].getsockname()[1]
            with_port.close()
            await with_port.wait_closed()
            driver = _Driver("127.0.0.1", port, request_timeout=2.0,
                             max_retries=0, backoff_base=0.01,
                             backoff_cap=0.02, seed=1)
            status = await driver.send({"reader": None, "writer": None},
                                       "ingest", "/x", b"{}")
            return driver, status

        driver, status = asyncio.run(scenario())
        assert status is None
        assert driver.errors_by_class["connection"] == 1
        assert driver.retries == 0

    def test_driver_retries_429_with_retry_after_hint(self):
        async def scenario():
            hits = []

            async def flaky(reader, writer):
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    length = 0
                    while True:
                        header = await reader.readline()
                        if header in (b"\r\n", b"\n", b""):
                            break
                        name, _, value = header.partition(b":")
                        if name.strip().lower() == b"content-length":
                            length = int(value.strip())
                    if length:
                        await reader.readexactly(length)
                    hits.append(1)
                    if len(hits) == 1:
                        body = json.dumps(
                            {"error": "overloaded",
                             "retry_after": 0.01}).encode()
                        status_line = b"HTTP/1.1 429 Too Many Requests\r\n"
                    else:
                        body = json.dumps({"ingested": 3}).encode()
                        status_line = b"HTTP/1.1 200 OK\r\n"
                    writer.write(
                        status_line
                        + b"Content-Type: application/json\r\n"
                        + b"Content-Length: %d\r\n\r\n" % len(body)
                        + body)
                    await writer.drain()

            listener = await asyncio.start_server(flaky, "127.0.0.1", 0)
            port = listener.sockets[0].getsockname()[1]
            driver = _Driver("127.0.0.1", port, request_timeout=2.0,
                             max_retries=2, backoff_base=0.01,
                             backoff_cap=0.02, seed=1)
            conn = {"reader": None, "writer": None}
            status = await driver.send(conn, "ingest", "/x", b"{}")
            await driver._drop(conn)
            listener.close()
            await listener.wait_closed()
            return driver, status, len(hits)

        driver, status, hits = asyncio.run(scenario())
        assert status == 200 and hits == 2
        assert driver.errors == 0
        assert driver.ingested == 3
        assert driver.errors_by_class["http_429"] == 1
        assert driver.retries == 1
        assert driver.backoff_seconds > 0

    def test_open_loop_mode_against_real_server(self):
        from repro.server.loadgen import run_loadgen

        async def scenario():
            server = SketchServer(port=0, max_delay=0.002)
            port = await server.start()
            try:
                return await run_loadgen(
                    "127.0.0.1", port, connections=4, requests=32,
                    elements=16, rate=400.0, cleanup=True)
            finally:
                await server.stop()

        summary = asyncio.run(scenario())
        assert summary["mode"] == "open"
        assert summary["offered_rate"] == 400.0
        assert summary["errors"] == 0
        assert summary["accepted_requests"] == 32
        assert summary["accepted_latency_ms"]["p99"] >= 0
