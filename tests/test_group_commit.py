"""Tests for WAL group-commit pipelining (GroupCommitPipeline).

Covers the pipeline at three levels: the unit (records staged in one
cycle land as a single ``OP_BATCH`` frame with one shared fsync, and a
failed fsync rejects the whole group with a clean rollback); the
durability manager (``snapshot_all_async`` drains staged records before
snapshotting, so an applied-but-unwritten record can never double-apply
on recovery); and the server (concurrent durable ingests recover
bit-identically through the pipelined WAL).

Also carries the boot-time hygiene satellite: orphaned ``*.tmp``
snapshot/meta files planted in a tenant directory are pruned during
recovery and never restored from.
"""

import asyncio
import json
import os
import struct

import numpy as np
import pytest

from repro.core.tcm import TCM
from repro.server import SketchServer
from repro.server.durability import (
    _FRAME_HEADER,
    OP_BATCH,
    OP_INGEST,
    SEGMENT_MAGIC,
    DurabilityManager,
    GroupCommitPipeline,
    WalWriter,
    list_segments,
    list_snapshots,
    scan_segment,
)
from repro.server.faults import FaultPlan
from repro.server.loadgen import _request
from repro.server.registry import SketchRegistry


def run_async(coro):
    return asyncio.run(coro)


def keys(values):
    return np.asarray(values, dtype=np.uint64)


def weights(values):
    return np.asarray(values, dtype=np.float64)


def matrices(sketch):
    if hasattr(sketch, "_ring"):
        return [np.asarray(s.matrix).copy()
                for sub in sketch._ring for s in sub.sketches]
    return [np.asarray(s.matrix).copy() for s in sketch.sketches]


def frame_ops(path):
    """The raw top-level frame ops of one segment (no batch expansion)."""
    ops = []
    with open(path, "rb") as fh:
        blob = fh.read()
    offset = len(SEGMENT_MAGIC)
    while offset + _FRAME_HEADER.size <= len(blob):
        op, flags, _, length, crc = _FRAME_HEADER.unpack_from(blob, offset)
        ops.append(op)
        offset += _FRAME_HEADER.size + length
    return ops


class TestPipelineUnit:
    def test_staged_records_become_one_batch_frame(self, tmp_path):
        async def scenario():
            pipeline = GroupCommitPipeline()
            pipeline.start()
            wal = WalWriter(str(tmp_path), fsync="always")
            wal.group = pipeline
            # Three appends with no await between them land in the same
            # open group -> one OP_BATCH frame, one crc, one fsync.
            for i in range(3):
                wal.append_ingest(keys([i]), keys([i + 10]),
                                  weights([1.0 + i]))
            barrier = pipeline.barrier(wal)
            assert barrier is not None
            assert await barrier == 3
            await pipeline.stop()
            wal.close()

        run_async(scenario())
        segments = list_segments(str(tmp_path))
        assert len(segments) == 1
        assert frame_ops(segments[0][1]) == [OP_BATCH]
        records, torn = scan_segment(segments[0][1])
        assert torn == 0
        assert len(records) == 3
        for i, record in enumerate(records):
            assert record.op == "ingest"
            np.testing.assert_array_equal(record.sources, keys([i]))
            np.testing.assert_array_equal(record.weights,
                                          weights([1.0 + i]))

    def test_single_record_group_stays_plain_frame(self, tmp_path):
        async def scenario():
            pipeline = GroupCommitPipeline()
            pipeline.start()
            wal = WalWriter(str(tmp_path), fsync="always")
            wal.group = pipeline
            wal.append_ingest(keys([1]), keys([2]), weights([1.0]))
            await pipeline.barrier(wal)
            await pipeline.stop()
            wal.close()

        run_async(scenario())
        segments = list_segments(str(tmp_path))
        assert frame_ops(segments[0][1]) == [OP_INGEST]

    def test_consecutive_cycles_write_separate_frames(self, tmp_path):
        async def scenario():
            pipeline = GroupCommitPipeline()
            pipeline.start()
            wal = WalWriter(str(tmp_path), fsync="always")
            wal.group = pipeline
            for batch in range(2):
                wal.append_ingest(keys([batch, batch]),
                                  keys([7, 8]), weights([1.0, 1.0]))
                wal.append_ingest(keys([batch + 100]), keys([9]),
                                  weights([2.0]))
                await pipeline.barrier(wal)
            assert pipeline.cycles >= 2
            await pipeline.stop()
            wal.close()

        run_async(scenario())
        segments = list_segments(str(tmp_path))
        assert frame_ops(segments[0][1]) == [OP_BATCH, OP_BATCH]
        records, torn = scan_segment(segments[0][1])
        assert len(records) == 4 and torn == 0

    def test_fsync_failure_rejects_whole_group_and_rolls_back(
            self, tmp_path):
        async def scenario():
            pipeline = GroupCommitPipeline()
            pipeline.start()
            wal = WalWriter(str(tmp_path), fsync="always",
                            faults=FaultPlan(fail_fsync_after=0))
            wal.group = pipeline
            wal.append_ingest(keys([1]), keys([2]), weights([1.0]))
            wal.append_ingest(keys([3]), keys([4]), weights([2.0]))
            barrier = pipeline.barrier(wal)
            with pytest.raises(OSError):
                await barrier
            await pipeline.stop()
            wal.close()
            return wal.records

        records_counter = run_async(scenario())
        assert records_counter == 0
        segments = list_segments(str(tmp_path))
        records, torn = scan_segment(segments[0][1])
        # The failed group frame was rolled back: clean empty prefix.
        assert records == [] and torn == 0

    def test_stop_drains_open_group(self, tmp_path):
        async def scenario():
            pipeline = GroupCommitPipeline()
            pipeline.start()
            wal = WalWriter(str(tmp_path), fsync="off")
            wal.group = pipeline
            wal.append_ingest(keys([5]), keys([6]), weights([4.0]))
            barrier = pipeline.barrier(wal)
            # No explicit await of the barrier: stop() must still
            # commit the staged record before the task exits.
            await pipeline.stop()
            assert barrier.done() and barrier.result() == 1
            wal.close()

        run_async(scenario())
        segments = list_segments(str(tmp_path))
        records, _ = scan_segment(segments[0][1])
        assert len(records) == 1

    def test_run_exclusive_commits_staged_records_first(self, tmp_path):
        async def scenario():
            pipeline = GroupCommitPipeline()
            pipeline.start()
            wal = WalWriter(str(tmp_path), fsync="off")
            wal.group = pipeline
            wal.append_ingest(keys([1]), keys([2]), weights([1.0]))
            # The safe point sees the record already on disk.
            committed = await pipeline.run_exclusive(lambda: wal.records)
            assert committed == 1
            assert pipeline.barrier(wal) is None
            await pipeline.stop()
            wal.close()

        run_async(scenario())

    def test_run_exclusive_without_start_runs_inline(self, tmp_path):
        async def scenario():
            pipeline = GroupCommitPipeline()
            return await pipeline.run_exclusive(lambda: 42)

        assert run_async(scenario()) == 42

    def test_inactive_pipeline_appends_inline(self, tmp_path):
        wal = WalWriter(str(tmp_path), fsync="off")
        wal.group = GroupCommitPipeline()  # never started
        wal.append_ingest(keys([1]), keys([2]), weights([1.0]))
        assert wal.records == 1
        wal.close()


class TestDurableBarrier:
    def test_no_durability_means_no_barrier(self):
        registry = SketchRegistry()
        tenant = registry.create("t", "tcm", d=2, width=32)
        assert tenant.durable_barrier() is None

    def test_inactive_pipeline_means_no_barrier(self, tmp_path):
        registry = SketchRegistry()
        registry.durability = DurabilityManager(str(tmp_path), fsync="off")
        tenant = registry.create("t", "tcm", d=2, width=32)
        assert tenant.wal is not None
        assert tenant.durable_barrier() is None


class TestManagerSafePoints:
    def test_snapshot_all_async_drains_before_snapshot(self, tmp_path):
        async def scenario():
            registry = SketchRegistry()
            manager = DurabilityManager(str(tmp_path), fsync="off")
            registry.durability = manager
            tenant = registry.create("alpha", "tcm", d=2, width=32,
                                     seed=3)
            manager.start_pipeline()
            # Stage an applied-but-unwritten record, then snapshot.
            tenant.wal.append_ingest(keys([1]), keys([2]), weights([5.0]))
            tenant._apply_tcm_batch(keys([1]), keys([2]), weights([5.0]),
                                    None)
            reports = await manager.snapshot_all_async(registry)
            assert [r["tenant"] for r in reports] == ["alpha"]
            await manager.stop_pipeline()
            manager.close_all(registry)
            return [m.copy() for m in matrices(tenant.sketch)]

        reference = run_async(scenario())
        # The snapshot covers the staged record; replaying the WAL tail
        # on top of it must not double-apply.
        recovered_registry = SketchRegistry()
        report = DurabilityManager(str(tmp_path), fsync="off").recover(
            recovered_registry)
        assert report["replay_errors"] == 0
        recovered = recovered_registry.get("alpha")
        for got, want in zip(matrices(recovered.sketch), reference):
            np.testing.assert_array_equal(got, want)


class TestTmpFilePruning:
    def test_orphan_tmp_files_pruned_and_never_restored(self, tmp_path):
        registry = SketchRegistry()
        manager = DurabilityManager(str(tmp_path), fsync="off")
        registry.durability = manager
        tenant = registry.create("alpha", "tcm", d=2, width=32, seed=11)
        tenant._apply_tcm_batch(keys([1, 2]), keys([3, 4]),
                                weights([1.0, 2.0]), None)
        manager.snapshot_tenant(tenant)
        tenant._apply_tcm_batch(keys([5]), keys([6]), weights([3.0]), None)
        reference = [m.copy() for m in matrices(tenant.sketch)]
        directory = manager.tenant_dir("alpha")
        del registry, tenant

        # Plant crash artifacts: a half-written snapshot with a HIGHER
        # seq than the real one (the scariest case -- if recovery ever
        # considered it, it would shadow the good snapshot) and a torn
        # meta rewrite.
        orphan_snap = os.path.join(directory, ".snapshot-99999999.tmp.npz")
        with open(orphan_snap, "wb") as fh:
            fh.write(b"half-written garbage, not an npz")
        orphan_meta = os.path.join(directory, ".meta.json.tmp")
        with open(orphan_meta, "wb") as fh:
            fh.write(b'{"torn":')

        recovered_registry = SketchRegistry()
        report = DurabilityManager(str(tmp_path), fsync="off").recover(
            recovered_registry)
        assert report["tmp_files_pruned"] == 2
        assert report["replay_errors"] == 0
        assert not os.path.exists(orphan_snap)
        assert not os.path.exists(orphan_meta)
        # The planted seq never surfaced as a restorable snapshot ...
        assert all(seq < 99999999
                   for seq, _ in list_snapshots(directory))
        # ... and the recovered state is the real pre-crash state.
        recovered = recovered_registry.get("alpha")
        for got, want in zip(matrices(recovered.sketch), reference):
            np.testing.assert_array_equal(got, want)

    def test_attach_prunes_existing_tmp_files(self, tmp_path):
        manager = DurabilityManager(str(tmp_path), fsync="off")
        directory = manager.tenant_dir("fresh")
        os.makedirs(directory)
        planted = os.path.join(directory, ".snapshot-00000001.tmp.npz")
        with open(planted, "wb") as fh:
            fh.write(b"junk")
        registry = SketchRegistry()
        registry.durability = manager
        registry.create("fresh", "tcm", d=2, width=32)
        assert not os.path.exists(planted)
        manager.close_all(registry)


class TestServerGroupCommit:
    def test_concurrent_durable_ingests_recover_bit_identically(
            self, tmp_path):
        lanes = 8
        rng = np.random.default_rng(41)
        payloads = [(rng.integers(0, 200, 25).tolist(),
                     rng.integers(0, 200, 25).tolist(),
                     rng.integers(1, 5, 25).astype(float).tolist())
                    for _ in range(lanes)]

        async def scenario():
            server = SketchServer(port=0, max_delay=0.002,
                                  data_dir=str(tmp_path), fsync="always")
            port = await server.start()
            assert server.durability.pipeline.active

            async def call(reader, writer, method, path, body):
                raw = json.dumps(body).encode()
                status, payload = await _request(reader, writer, method,
                                                 path, raw)
                return status, json.loads(payload)

            conns = [await asyncio.open_connection("127.0.0.1", port)
                     for _ in range(lanes)]
            try:
                status, _ = await call(*conns[0], "PUT", "/sketches/t",
                                       {"kind": "tcm", "d": 3,
                                        "width": 64, "seed": 13})
                assert status == 201
                results = await asyncio.gather(*(
                    call(reader, writer, "POST", "/sketches/t/ingest",
                         {"sources": s, "targets": d, "weights": w})
                    for (reader, writer), (s, d, w)
                    in zip(conns, payloads)))
                assert all(status == 200 and body["ingested"] == 25
                           for status, body in results)
            finally:
                for _, writer in conns:
                    writer.close()
                await server.stop()

        run_async(scenario())

        # Every acked ingest survives; recovered state is bit-identical
        # to an in-memory reference fed the same columns.
        reference = TCM(d=3, width=64, seed=13)
        for sources, targets, wts in payloads:
            reference.ingest_columns(sources, targets, wts)
        recovered_registry = SketchRegistry()
        report = DurabilityManager(str(tmp_path), fsync="off").recover(
            recovered_registry)
        assert report["replay_errors"] == 0
        recovered = recovered_registry.get("t")
        for got, want in zip(matrices(recovered.sketch),
                             matrices(reference)):
            np.testing.assert_array_equal(got, want)
