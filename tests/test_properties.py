"""Property-based tests (hypothesis) for the core invariants of DESIGN.md."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.hashing.family import HashFamily, PairwiseHash
from repro.hashing.labels import label_to_int
from repro.streams.model import GraphStream

# Strategy: small streams of (src, dst, weight) triples over a tiny label
# universe so collisions and repeats actually happen.
labels = st.integers(min_value=0, max_value=30).map(lambda i: f"n{i}")
weights = st.floats(min_value=0.0, max_value=100.0,
                    allow_nan=False, allow_infinity=False)
elements = st.lists(st.tuples(labels, labels, weights), min_size=1,
                    max_size=60)
widths = st.integers(min_value=2, max_value=32)
d_values = st.integers(min_value=1, max_value=5)

common = settings(max_examples=60, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


def build_stream(triples, directed=True):
    stream = GraphStream(directed=directed)
    for t, (x, y, w) in enumerate(triples):
        stream.add(x, y, w, float(t))
    return stream


class TestOverApproximation:
    """Invariant 1: sum-aggregated estimates never fall below the truth."""

    @common
    @given(elements, widths, d_values)
    def test_edge_estimates(self, triples, width, d):
        stream = build_stream(triples)
        tcm = TCM.from_stream(stream, d=d, width=width, seed=1)
        for x, y in stream.distinct_edges:
            assert tcm.edge_weight(x, y) >= stream.edge_weight(x, y) - 1e-6

    @common
    @given(elements, widths, d_values)
    def test_node_flows(self, triples, width, d):
        stream = build_stream(triples)
        tcm = TCM.from_stream(stream, d=d, width=width, seed=1)
        for node in stream.nodes:
            assert tcm.out_flow(node) >= stream.out_flow(node) - 1e-6
            assert tcm.in_flow(node) >= stream.in_flow(node) - 1e-6

    @common
    @given(elements, widths, d_values)
    def test_undirected_edge_estimates(self, triples, width, d):
        stream = build_stream(triples, directed=False)
        tcm = TCM.from_stream(stream, d=d, width=width, seed=1)
        for x, y in stream.distinct_edges:
            assert tcm.edge_weight(x, y) >= stream.edge_weight(x, y) - 1e-6

    @common
    @given(elements, widths, d_values)
    def test_undirected_flows(self, triples, width, d):
        stream = build_stream(triples, directed=False)
        tcm = TCM.from_stream(stream, d=d, width=width, seed=1)
        for node in stream.nodes:
            assert tcm.flow(node) >= stream.flow(node) - 1e-6


class TestMonotonicityInD:
    """Invariant 2: adding hash functions never increases an estimate."""

    @common
    @given(elements, widths)
    def test_edge_estimates_shrink(self, triples, width):
        stream = build_stream(triples)
        small = TCM.from_stream(stream, d=2, width=width, seed=3)
        # Same seed: the first two sketches of `big` equal `small`'s.
        big = TCM.from_stream(stream, d=5, width=width, seed=3)
        for x, y in stream.distinct_edges:
            assert big.edge_weight(x, y) <= small.edge_weight(x, y) + 1e-9


class TestReachabilityOverApproximation:
    """Invariant 3: reachable in the stream => reachable in the TCM."""

    @common
    @given(elements, widths, d_values)
    def test_no_false_unreachable(self, triples, width, d):
        stream = build_stream(triples)
        tcm = TCM.from_stream(stream, d=d, width=width, seed=5)
        nodes = sorted(stream.nodes)[:8]
        for a in nodes:
            for b in nodes:
                if stream.reachable(a, b):
                    assert tcm.reachable(a, b)


class TestDeletionInverse:
    """Invariant 4: deletion exactly inverts insertion for sum/count."""

    @common
    @given(elements, widths, d_values)
    def test_insert_then_delete_everything(self, triples, width, d):
        tcm = TCM(d=d, width=width, seed=7)
        for x, y, w in triples:
            tcm.update(x, y, w)
        for x, y, w in triples:
            tcm.remove(x, y, w)
        for sketch in tcm.sketches:
            np.testing.assert_allclose(sketch.matrix, 0.0, atol=1e-6)

    @common
    @given(elements, widths)
    def test_count_mode_delete(self, triples, width):
        tcm = TCM(d=2, width=width, seed=7, aggregation=Aggregation.COUNT)
        for x, y, w in triples:
            tcm.update(x, y, w)
        for x, y, w in triples:
            tcm.remove(x, y, w)
        for sketch in tcm.sketches:
            np.testing.assert_allclose(sketch.matrix, 0.0, atol=1e-6)


class TestOrderIndependence:
    """Invariant 7: sum aggregation is order-independent."""

    @common
    @given(elements, widths, st.randoms(use_true_random=False))
    def test_shuffled_stream_same_sketch(self, triples, width, rnd):
        forward = TCM(d=2, width=width, seed=9)
        for x, y, w in triples:
            forward.update(x, y, w)
        shuffled = list(triples)
        rnd.shuffle(shuffled)
        backward = TCM(d=2, width=width, seed=9)
        for x, y, w in shuffled:
            backward.update(x, y, w)
        for s1, s2 in zip(forward.sketches, backward.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix, atol=1e-6)


class TestVectorizedConsistency:
    """ingest() (vectorized) must equal element-wise update()."""

    @common
    @given(elements, widths, d_values)
    def test_ingest_equals_updates(self, triples, width, d):
        stream = build_stream(triples)
        bulk = TCM(d=d, width=width, seed=11)
        bulk.ingest(stream)
        scalar = TCM(d=d, width=width, seed=11)
        for x, y, w in triples:
            scalar.update(x, y, w)
        for s1, s2 in zip(bulk.sketches, scalar.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix, atol=1e-6)

    @common
    @given(elements, widths)
    def test_ingest_equals_updates_undirected(self, triples, width):
        stream = build_stream(triples, directed=False)
        bulk = TCM(d=2, width=width, seed=11, directed=False)
        bulk.ingest(stream)
        scalar = TCM(d=2, width=width, seed=11, directed=False)
        for x, y, w in triples:
            scalar.update(x, y, w)
        for s1, s2 in zip(bulk.sketches, scalar.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix, atol=1e-6)


class TestHashProperties:
    @common
    @given(st.integers(min_value=0, max_value=2 ** 64 - 1),
           st.integers(min_value=0, max_value=1000))
    def test_hash_many_matches_scalar(self, key, seed):
        h = HashFamily.uniform(1, 97, seed=seed)[0]
        assert h.hash_many(np.array([key], dtype=np.uint64))[0] == \
            h.hash_int(key)

    @common
    @given(st.text(max_size=40))
    def test_label_round_trip_stable(self, text):
        assert label_to_int(text) == label_to_int(text)
        assert 0 <= label_to_int(text) < 2 ** 64

    @common
    @given(st.integers(min_value=1, max_value=2 ** 61 - 2),
           st.integers(min_value=0, max_value=2 ** 61 - 2),
           st.integers(min_value=1, max_value=1000))
    def test_hash_in_range(self, a, b, width):
        h = PairwiseHash(a=a, b=b, width=width)
        for key in (0, 1, 2 ** 61 - 1, 2 ** 64 - 1):
            assert 0 <= h.hash_int(key) < width


class TestMergeability:
    """merge(sketch(A), sketch(B)) == sketch(A ++ B), for any split."""

    @common
    @given(elements, widths, st.integers(min_value=0, max_value=60))
    def test_merge_equals_concatenation(self, triples, width, cut):
        cut = min(cut, len(triples))
        first = TCM(d=2, width=width, seed=21)
        second = TCM(d=2, width=width, seed=21)
        whole = TCM(d=2, width=width, seed=21)
        for x, y, w in triples[:cut]:
            first.update(x, y, w)
        for x, y, w in triples[cut:]:
            second.update(x, y, w)
        for x, y, w in triples:
            whole.update(x, y, w)
        first.merge_from(second)
        for s1, s2 in zip(first.sketches, whole.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix, atol=1e-6)


class TestTensorSketchProperties:
    coords = st.tuples(st.integers(0, 15), st.integers(0, 15),
                       st.integers(0, 1))
    tensor_elements = st.lists(st.tuples(coords, weights), min_size=1,
                               max_size=40)

    @common
    @given(tensor_elements)
    def test_point_estimates_over_approximate(self, items):
        from repro.core.tensor import TensorSketch
        sketch = TensorSketch([4, 4, 2], d=2, seed=23)
        truth = {}
        for coords, w in items:
            sketch.update(coords, w)
            truth[coords] = truth.get(coords, 0.0) + w
        for coords, exact in truth.items():
            assert sketch.estimate(coords) >= exact - 1e-6

    @common
    @given(tensor_elements)
    def test_marginals_over_approximate(self, items):
        from repro.core.queries import WILDCARD
        from repro.core.tensor import TensorSketch
        sketch = TensorSketch([4, 4, 2], d=2, seed=23)
        by_source = {}
        for coords, w in items:
            sketch.update(coords, w)
            by_source[coords[0]] = by_source.get(coords[0], 0.0) + w
        for source, exact in by_source.items():
            estimate = sketch.estimate((source, WILDCARD, WILDCARD))
            assert estimate >= exact - 1e-6


class TestSparseDenseAgreement:
    """Invariant 9: the sparse backend matches the dense one exactly."""

    @common
    @given(elements, widths, d_values)
    def test_directed_agreement(self, triples, width, d):
        stream = build_stream(triples)
        dense = TCM.from_stream(stream, d=d, width=width, seed=31)
        sparse = TCM(d=d, width=width, seed=31, directed=True, sparse=True)
        sparse.ingest(stream)
        for x, y in stream.distinct_edges:
            assert sparse.edge_weight(x, y) == \
                pytest.approx(dense.edge_weight(x, y))
        for node in stream.nodes:
            assert sparse.out_flow(node) == \
                pytest.approx(dense.out_flow(node))

    @common
    @given(elements, widths)
    def test_undirected_agreement(self, triples, width):
        stream = build_stream(triples, directed=False)
        dense = TCM.from_stream(stream, d=2, width=width, seed=31)
        sparse = TCM(d=2, width=width, seed=31, directed=False, sparse=True)
        sparse.ingest(stream)
        for x, y in stream.distinct_edges:
            assert sparse.edge_weight(x, y) == \
                pytest.approx(dense.edge_weight(x, y))
        for node in stream.nodes:
            assert sparse.flow(node) == pytest.approx(dense.flow(node))


class TestTemporalProperties:
    """Window and snapshot-ring invariants over arbitrary streams."""

    timed_elements = st.lists(
        st.tuples(labels, labels, st.floats(min_value=0.0, max_value=20.0,
                                            allow_nan=False)),
        min_size=1, max_size=50)

    @common
    @given(timed_elements, st.floats(min_value=1.0, max_value=30.0))
    def test_window_equals_fresh_summary_of_live_elements(self, triples,
                                                          horizon):
        from repro.streams.model import StreamEdge
        from repro.streams.window import SlidingWindow

        window = SlidingWindow(TCM(d=2, width=16, seed=41), horizon)
        edges = [StreamEdge(x, y, w, float(t))
                 for t, (x, y, w) in enumerate(triples)]
        for edge in edges:
            window.observe(edge)
        cutoff = window.watermark - horizon
        live = [e for e in edges if e.timestamp >= cutoff]
        fresh = TCM(d=2, width=16, seed=41)
        for e in live:
            fresh.update(e.source, e.target, e.weight)
        for s1, s2 in zip(window.summary.sketches, fresh.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix, atol=1e-6)

    @common
    @given(timed_elements, st.integers(min_value=2, max_value=10))
    def test_ring_range_equals_whole_stream(self, triples, bucket_length):
        """Merging the full retained range reproduces the whole summary
        (when nothing was evicted)."""
        from repro.core.snapshots import SnapshotRing
        from repro.streams.model import StreamEdge

        ring = SnapshotRing(float(bucket_length), capacity=100,
                            d=2, width=16, seed=43)
        for t, (x, y, w) in enumerate(triples):
            ring.observe(StreamEdge(x, y, w, float(t)))
        merged = ring.range_summary(0.0, float(len(triples)))
        whole = TCM(d=2, width=16, seed=43)
        for t, (x, y, w) in enumerate(triples):
            whole.update(x, y, w)
        for s1, s2 in zip(merged.sketches, whole.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix, atol=1e-6)


class TestExtendedSketchPartition:
    """Invariant 6: ext() buckets partition the observed label universe."""

    @common
    @given(elements, widths)
    def test_partition(self, triples, width):
        stream = build_stream(triples)
        tcm = TCM.from_stream(stream, d=1, width=width, seed=13,
                              keep_labels=True)
        sketch = tcm.sketches[0]
        seen = set()
        for bucket in range(sketch.rows):
            bucket_labels = sketch.ext(bucket)
            assert not (seen & bucket_labels)  # disjoint
            seen |= bucket_labels
        assert seen == stream.nodes
