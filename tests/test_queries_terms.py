"""Tests for subgraph query terms and validation."""

import pytest

from repro.core.queries import (
    WILDCARD,
    BoundWildcard,
    SubgraphQuery,
    Wildcard,
    is_wildcard,
)


class TestTerms:
    def test_wildcard_repr(self):
        assert repr(WILDCARD) == "*"

    def test_bound_wildcard_repr(self):
        assert repr(BoundWildcard("j")) == "*_j"

    def test_bound_wildcard_needs_tag(self):
        with pytest.raises(ValueError):
            BoundWildcard("")

    def test_equal_tags_are_equal(self):
        assert BoundWildcard("1") == BoundWildcard("1")
        assert BoundWildcard("1") != BoundWildcard("2")

    def test_is_wildcard(self):
        assert is_wildcard(WILDCARD)
        assert is_wildcard(Wildcard())
        assert is_wildcard(BoundWildcard("x"))
        assert not is_wildcard("a")
        assert not is_wildcard(3)


class TestSubgraphQuery:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SubgraphQuery([])

    def test_bad_edge_arity(self):
        with pytest.raises(ValueError):
            SubgraphQuery([("a", "b", "c")])

    def test_len_and_iter(self):
        q = SubgraphQuery([("a", "b"), ("b", "c")])
        assert len(q) == 2
        assert list(q) == [("a", "b"), ("b", "c")]

    def test_constants(self):
        q = SubgraphQuery([(WILDCARD, "b"), ("b", "c")])
        assert q.constants == {"b", "c"}

    def test_has_wildcards(self):
        assert not SubgraphQuery([("a", "b")]).has_wildcards
        assert SubgraphQuery([(WILDCARD, "b")]).has_wildcards

    def test_has_bound_wildcards(self):
        assert not SubgraphQuery([(WILDCARD, "b")]).has_bound_wildcards
        assert SubgraphQuery([(BoundWildcard("1"), "b")]).has_bound_wildcards

    def test_bound_tags(self):
        q = SubgraphQuery([(BoundWildcard("1"), BoundWildcard("2")),
                           (BoundWildcard("1"), "c")])
        assert q.bound_tags == {"1", "2"}

    def test_decomposed_support(self):
        assert SubgraphQuery([("a", WILDCARD)]).supports_decomposed_estimate()
        assert not SubgraphQuery(
            [(BoundWildcard("1"), "b")]).supports_decomposed_estimate()

    def test_repr_round_trip_readable(self):
        q = SubgraphQuery([("a", "b")])
        assert "a" in repr(q) and "b" in repr(q)
