"""Tests for the flight recorder (repro.obs.flight), runtime sampling
(repro.obs.runtime), reporter lifecycle and Prometheus label escaping."""

import json
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.core.tcm import TCM
from repro.obs.accuracy import DriftEvent
from repro.obs.export import (
    PeriodicReporter,
    _escape_label_value,
    render_prometheus,
)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import (
    RuntimeSampler,
    latency_quantiles,
    rss_bytes,
    rss_slope,
)
from repro.obs.tracing import Tracer


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()


class TestFlightRecorder:
    def test_ring_buffer_evicts_oldest(self):
        flight = FlightRecorder(capacity=3)
        for i in range(5):
            flight.mark(f"note-{i}")
        notes = [e.payload["note"] for e in flight.events()]
        assert notes == ["note-2", "note-3", "note-4"]
        assert flight.recorded == 5
        assert len(flight) == 3

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_saturation_warnings_dedup_across_ticks(self):
        flight = FlightRecorder()
        tcm = TCM(d=2, width=4, seed=0)
        for i in range(200):
            tcm.update(i, i + 1, 1.0)
        # 200 structured edges land the 2x(4x4) sketch at load exactly
        # 0.5 and collision rate ~0.36; the default thresholds compare
        # strictly, so pass explicit lower ones.
        first = flight.check_saturation(tcm, summary="s",
                                        load_threshold=0.4,
                                        collision_threshold=0.3)
        again = flight.check_saturation(tcm, summary="s",
                                        load_threshold=0.4,
                                        collision_threshold=0.3)
        assert first            # a 4-wide sketch is saturated
        assert again            # warnings still returned ...
        saturation_events = flight.events("saturation")
        # ... but each warning shape is buffered only once.
        assert len(saturation_events) == len(first)

    def test_span_capture_is_incremental(self):
        obs.enable()            # spans are a no-op while obs is disabled
        tracer = Tracer()
        flight = FlightRecorder()
        with tracer.span("first"):
            pass
        assert flight.capture_spans(tracer) == 1
        assert flight.capture_spans(tracer) == 0
        with tracer.span("second"):
            pass
        assert flight.capture_spans(tracer) == 1
        names = [e.payload["name"] for e in flight.events("span")]
        assert names == ["first", "second"]

    def test_record_drift_and_dump_roundtrip(self):
        flight = FlightRecorder()
        event = DriftEvent("error", "up", 7, 1.5, 0.3, 0.25)
        flight.record_drift(event, summary="soak")
        flight.mark("phase", detail="post-shift")
        doc = json.loads(flight.dump_json())
        assert doc["counts"] == {"drift": 1, "mark": 1}
        drift = [e for e in doc["events"] if e["kind"] == "drift"][0]
        assert drift["signal"] == "error"
        assert drift["direction"] == "up"
        assert drift["summary"] == "soak"

    def test_clear_resets_dedup_and_cursor(self):
        flight = FlightRecorder()
        tcm = TCM(d=2, width=4, seed=0)
        for i in range(200):
            tcm.update(i, i + 1, 1.0)
        flight.check_saturation(tcm, load_threshold=0.4,
                                collision_threshold=0.3)
        flight.clear()
        assert len(flight) == 0
        assert flight.recorded == 0
        flight.check_saturation(tcm, load_threshold=0.4,
                                collision_threshold=0.3)
        assert flight.events("saturation")    # dedup state was dropped

    def test_counts_events_metric_when_enabled(self):
        obs.enable()
        flight = FlightRecorder()
        flight.mark("x")
        rendered = render_prometheus()
        assert 'flight_events_total{kind="mark"} 1' in rendered


class TestRuntimeSampler:
    def test_sample_reads_positive_rss(self):
        assert rss_bytes() > 0
        sampler = RuntimeSampler()
        point = sampler.sample()
        assert point.rss_bytes > 0
        assert point.elapsed >= 0.0
        assert len(point.gc_collections) == 3

    def test_slope_fit_on_synthetic_series(self):
        assert rss_slope([0.0, 1.0, 2.0], [100, 200, 300]) == \
            pytest.approx(100.0)
        assert rss_slope([0.0, 1.0], [100, 100]) == pytest.approx(0.0)
        assert rss_slope([1.0], [100]) == 0.0
        assert rss_slope([2.0, 2.0], [1, 5]) == 0.0   # degenerate time axis

    def test_summary_and_warmup_skip(self):
        sampler = RuntimeSampler()
        for _ in range(6):
            sampler.sample()
        summary = sampler.summary(warmup_skip=2)
        assert summary["samples"] == 6
        assert summary["rss_peak_bytes"] >= summary["rss_end_bytes"] > 0
        assert isinstance(summary["rss_slope_bytes_per_sec"], float)

    def test_decimation_keeps_whole_run_span(self):
        sampler = RuntimeSampler(max_samples=4)
        for _ in range(9):
            sampler.sample()
        assert len(sampler.samples) <= 5
        times, _ = sampler.rss_series()
        assert times[0] < times[-1]

    def test_background_thread_lifecycle(self):
        sampler = RuntimeSampler()
        sampler.start(interval=0.01)
        thread = sampler._thread
        assert thread.is_alive()
        sampler.start(interval=0.01)              # idempotent: same thread
        assert sampler._thread is thread
        time.sleep(0.05)
        sampler.stop()
        assert not thread.is_alive()
        assert sampler.samples                    # final sample flushed
        sampler.stop()                            # idempotent

    def test_exports_gauges_when_enabled(self):
        obs.enable()
        sampler = RuntimeSampler()
        sampler.sample()
        rendered = render_prometheus()
        assert "process_rss_bytes" in rendered


class TestLatencyQuantiles:
    def test_histogram_quantiles_reported_per_labelset(self):
        registry = MetricsRegistry()
        h = registry.histogram("op_seconds", "", labelnames=("kind",),
                               buckets=(0.001, 0.01, 0.1, 1.0))
        for _ in range(99):
            h.labels("fast").observe(0.005)
        h.labels("fast").observe(0.5)
        out = latency_quantiles(registry)
        row = out["op_seconds{kind=fast}"]
        assert row["p50"] == pytest.approx(0.01)
        assert row["p99"] == pytest.approx(0.01)
        assert row["count"] == 100.0

    def test_quantile_matches_numpy_up_to_bucket_resolution(self):
        """Histogram.quantile returns the log-bucket upper bound holding
        the rank -- i.e. the smallest bucket bound >= numpy's exact
        percentile of the same data."""
        registry = MetricsRegistry()
        buckets = tuple(10.0 ** e for e in range(-6, 2))
        h = registry.histogram("q_seconds", "", buckets=buckets)
        rng = np.random.default_rng(3)
        data = rng.lognormal(mean=-6.0, sigma=2.0, size=5000)
        for x in data:
            h.observe(float(x))
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(data, q))
            estimate = h.quantile(q)
            covering = min(b for b in buckets if b >= min(exact, buckets[-1]))
            assert estimate == pytest.approx(covering)

    def test_empty_histograms_skipped(self):
        registry = MetricsRegistry()
        registry.histogram("never_observed_seconds", "")
        assert latency_quantiles(registry) == {}


class TestPeriodicReporterLifecycle:
    def test_start_stop_idempotent_no_thread_leak(self):
        lines = []
        reporter = PeriodicReporter(every=10, interval=0.01,
                                    emit=lines.append)
        before = threading.active_count()
        reporter.start()
        thread = reporter._thread
        reporter.start()                          # no second thread
        assert reporter._thread is thread
        assert threading.active_count() == before + 1
        summary = reporter.stop()
        assert not thread.is_alive()
        assert threading.active_count() == before
        assert summary is not None and "elements" in summary
        assert reporter.stop() is None            # repeat stop is a no-op

    def test_stop_flushes_final_report_line(self):
        lines = []
        reporter = PeriodicReporter(every=1000, interval=None,
                                    emit=lines.append)
        reporter.interval = 60.0                  # heartbeat never fires

        class Edge:
            source, target = "a", "b"

        reporter.start()
        reporter.observe(Edge())
        reporter.stop()
        assert any("done: 1 elements" in line for line in lines)

    def test_restart_after_stop(self):
        reporter = PeriodicReporter(every=10, interval=0.01, emit=lambda s: None)
        reporter.start()
        reporter.stop()
        reporter.start()
        assert reporter.running
        reporter.stop()
        assert not reporter.running

    def test_start_requires_positive_interval(self):
        reporter = PeriodicReporter(every=10, interval=None)
        with pytest.raises(ValueError, match="positive interval"):
            reporter.start()


class TestPrometheusLabelEscaping:
    def test_escape_order_backslash_first(self):
        assert _escape_label_value('a\\n"b"\nc') == 'a\\\\n\\"b\\"\\nc'

    def test_hostile_label_values_render_one_line_each(self):
        """Quotes, newlines and backslashes in label values must not
        break the exposition format (one sample per line, parseable)."""
        registry = MetricsRegistry()
        gauge = registry.gauge("hostile_gauge", "h", labelnames=("name",))
        hostile = 'ev"il\nlabel\\value'
        gauge.labels(hostile).set(1.0)
        rendered = render_prometheus(registry)
        sample_lines = [l for l in rendered.splitlines()
                        if l.startswith("hostile_gauge{")]
        assert len(sample_lines) == 1
        line = sample_lines[0]
        assert '\\n' in line and '\\"' in line and "\\\\" in line
        # Reversing the escapes recovers the original value exactly.
        value = line[len('hostile_gauge{name="'):line.rindex('"')]
        unescaped = (value.replace("\\\\", "\x00")
                     .replace('\\"', '"').replace("\\n", "\n")
                     .replace("\x00", "\\"))
        assert unescaped == hostile
