"""Tests for the sample-based baselines."""

import pytest

from repro.baselines.sampling import (
    ReservoirEdgeSample,
    SampledEdgeStore,
    SampledNodeStore,
)
from repro.streams.generators import ipflow_like
from repro.streams.model import GraphStream


class TestSampledEdgeStore:
    def test_full_rate_is_exact(self, small_directed):
        store = SampledEdgeStore(1.0, seed=1)
        store.ingest(small_directed)
        assert store.edge_weight("a", "b") == 5.0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            SampledEdgeStore(0.0)
        with pytest.raises(ValueError):
            SampledEdgeStore(1.5)

    def test_undirected_folding(self):
        store = SampledEdgeStore(1.0, seed=1, directed=False)
        store.update("a", "b", 1.0)
        store.update("b", "a", 1.0)
        assert store.edge_weight("a", "b") == 2.0

    def test_scaling(self):
        """Estimates scale by 1/rate and are unbiased in expectation."""
        totals = []
        for seed in range(30):
            store = SampledEdgeStore(0.5, seed=seed)
            for _ in range(100):
                store.update("x", "y", 1.0)
            totals.append(store.edge_weight("x", "y"))
        mean = sum(totals) / len(totals)
        assert 85 < mean < 115

    def test_undercount_possible(self):
        store = SampledEdgeStore(0.01, seed=1)
        store.update("x", "y", 1.0)
        assert store.edge_weight("x", "y") in (0.0, 100.0)

    def test_top_edges(self, small_directed):
        store = SampledEdgeStore(1.0, seed=1)
        store.ingest(small_directed)
        top = store.top_edges(1)
        assert top[0][0] in {("a", "b"), ("a", "c")}

    def test_len_counts_distinct(self, small_directed):
        store = SampledEdgeStore(1.0, seed=1)
        store.ingest(small_directed)
        assert len(store) == 4


class TestSampledNodeStore:
    def test_directions(self, small_directed):
        in_store = SampledNodeStore(1.0, seed=1, direction="in")
        in_store.ingest(small_directed)
        assert in_store.flow("c") == small_directed.in_flow("c")
        out_store = SampledNodeStore(1.0, seed=1, direction="out")
        out_store.ingest(small_directed)
        assert out_store.flow("a") == small_directed.out_flow("a")

    def test_both(self, small_undirected):
        store = SampledNodeStore(1.0, seed=1, direction="both")
        store.ingest(small_undirected)
        assert store.flow("y") == small_undirected.flow("y")

    def test_top_nodes(self, small_directed):
        store = SampledNodeStore(1.0, seed=1, direction="out")
        store.ingest(small_directed)
        assert store.top_nodes(1)[0][0] == "a"

    def test_validation(self):
        with pytest.raises(ValueError):
            SampledNodeStore(0.5, direction="weird")


class TestReservoirEdgeSample:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReservoirEdgeSample(0)

    def test_under_capacity_is_exact(self, small_directed):
        reservoir = ReservoirEdgeSample(100, seed=1)
        reservoir.ingest(small_directed)
        assert reservoir.scale == 1.0
        assert reservoir.edge_weight("a", "b") == 5.0

    def test_bounded_memory(self):
        reservoir = ReservoirEdgeSample(10, seed=1)
        for i in range(1000):
            reservoir.update(f"s{i}", f"t{i}", 1.0)
        assert len(reservoir) == 10

    def test_scale_reflects_seen(self):
        reservoir = ReservoirEdgeSample(10, seed=1)
        for i in range(100):
            reservoir.update("a", "b", 1.0)
        assert reservoir.scale == 10.0

    def test_unbiased_total(self):
        """Scaled totals should be close to the true total on average."""
        estimates = []
        for seed in range(30):
            reservoir = ReservoirEdgeSample(50, seed=seed)
            for _ in range(500):
                reservoir.update("x", "y", 2.0)
            estimates.append(reservoir.edge_weight("x", "y"))
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(1000.0, rel=0.01)

    def test_top_edges_finds_heavy(self):
        stream = ipflow_like(n_hosts=50, n_packets=2000, seed=7)
        reservoir = ReservoirEdgeSample(500, seed=1)
        reservoir.ingest(stream)
        truth = {e for e, _ in stream.top_edges(5)}
        found = {e for e, _ in reservoir.top_edges(5)}
        assert len(found & truth) >= 3

    def test_node_flows(self):
        reservoir = ReservoirEdgeSample(100, seed=1)
        reservoir.update("a", "b", 2.0)
        reservoir.update("c", "b", 3.0)
        flows = reservoir.node_flows("in")
        assert flows["b"] == 5.0

    def test_undirected_keys(self):
        reservoir = ReservoirEdgeSample(100, seed=1, directed=False)
        reservoir.update("b", "a", 1.0)
        reservoir.update("a", "b", 1.0)
        assert reservoir.edge_weight("a", "b") == 2.0

    def test_top_nodes_direction(self):
        reservoir = ReservoirEdgeSample(100, seed=1)
        reservoir.update("hub", "x", 5.0)
        reservoir.update("hub", "y", 5.0)
        assert reservoir.top_nodes(1, direction="out")[0][0] == "hub"
