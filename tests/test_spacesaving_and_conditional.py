"""Tests for Space-Saving and the conditional node query helper."""

import pytest

from repro.baselines.spacesaving import (
    SpaceSaving,
    SpaceSavingEdges,
    SpaceSavingNodes,
)
from repro.core.tcm import TCM
from repro.streams.generators import ipflow_like
from repro.streams.model import GraphStream


class TestSpaceSaving:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)

    def test_exact_below_k(self):
        counter = SpaceSaving(10)
        for i in range(5):
            for _ in range(i + 1):
                counter.update(f"item{i}")
        assert counter.estimate("item4") == 5.0
        assert counter.error_of("item4") == 0.0

    def test_bounded_counters(self):
        counter = SpaceSaving(8)
        for i in range(1000):
            counter.update(f"item{i}")
        assert len(counter) == 8

    def test_overcount_bounded_by_error(self):
        counter = SpaceSaving(8)
        truth = {}
        for i in range(2000):
            item = "hot" if i % 3 == 0 else f"cold{i}"
            counter.update(item)
            truth[item] = truth.get(item, 0) + 1
        for item, _ in counter.top(8):
            estimate = counter.estimate(item)
            exact = truth.get(item, 0)
            assert counter.guaranteed(item) <= exact <= estimate

    def test_heavy_item_always_tracked(self):
        """Items above N/k frequency are guaranteed present."""
        counter = SpaceSaving(10)
        for i in range(1000):
            counter.update("dominant" if i % 2 == 0 else f"noise{i}")
        assert counter.estimate("dominant") >= 500.0

    def test_weighted(self):
        counter = SpaceSaving(4)
        counter.update("a", 10.0)
        counter.update("b", 1.0)
        assert counter.top(1)[0] == ("a", 10.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            SpaceSaving(2).update("a", -1.0)

    def test_total_weight(self):
        counter = SpaceSaving(2)
        counter.update("a", 2.0)
        counter.update("b", 3.0)
        assert counter.total_weight == 5.0


class TestSpaceSavingGraph:
    def test_edges_find_heavy(self):
        stream = ipflow_like(n_hosts=80, n_packets=2500, seed=6)
        tracker = SpaceSavingEdges(k=50)
        tracker.ingest(stream)
        truth = {e for e, _ in stream.top_edges(10)}
        found = {e for e, _ in tracker.top_edges(10)}
        assert len(found & truth) >= 7

    def test_edges_undirected_fold(self):
        tracker = SpaceSavingEdges(k=4, directed=False)
        tracker.update("b", "a", 1.0)
        tracker.update("a", "b", 2.0)
        assert tracker.edge_weight("a", "b") == 3.0

    def test_nodes_find_heavy(self):
        stream = ipflow_like(n_hosts=80, n_packets=2500, seed=6)
        tracker = SpaceSavingNodes(k=40, direction="in")
        tracker.ingest(stream)
        truth = {n for n, _ in stream.top_nodes(10, "in")}
        found = {n for n, _ in tracker.top_nodes(10)}
        assert len(found & truth) >= 7

    def test_nodes_direction_validation(self):
        with pytest.raises(ValueError):
            SpaceSavingNodes(k=4, direction="around")

    def test_nodes_both(self):
        tracker = SpaceSavingNodes(k=8, direction="both")
        tracker.update("a", "b", 2.0)
        assert tracker.flow("a") == 2.0
        assert tracker.flow("b") == 2.0


class TestHeaviestNeighbours:
    @pytest.fixture
    def fan_in_stream(self):
        stream = GraphStream(directed=True)
        for i, weight in enumerate([50.0, 30.0, 10.0, 1.0]):
            stream.add(f"sender{i}", "hub", weight, float(i))
        stream.add("hub", "downstream", 5.0, 10.0)
        return stream

    def test_requires_extended(self, fan_in_stream):
        tcm = TCM.from_stream(fan_in_stream, d=2, width=64, seed=1)
        with pytest.raises(ValueError, match="keep_labels"):
            tcm.heaviest_neighbours("hub")

    def test_in_direction_ranks_senders(self, fan_in_stream):
        tcm = TCM.from_stream(fan_in_stream, d=2, width=64, seed=1,
                              keep_labels=True)
        top = tcm.heaviest_neighbours("hub", k=3, direction="in")
        assert [n for n, _ in top] == ["sender0", "sender1", "sender2"]
        assert top[0][1] == 50.0

    def test_out_direction(self, fan_in_stream):
        tcm = TCM.from_stream(fan_in_stream, d=2, width=64, seed=1,
                              keep_labels=True)
        top = tcm.heaviest_neighbours("hub", k=2, direction="out")
        assert top[0][0] == "downstream"

    def test_k_bounds_result(self, fan_in_stream):
        tcm = TCM.from_stream(fan_in_stream, d=2, width=64, seed=1,
                              keep_labels=True)
        assert len(tcm.heaviest_neighbours("hub", k=2, direction="in")) == 2

    def test_both_on_undirected(self):
        stream = GraphStream(directed=False)
        stream.add("a", "x", 9.0)
        stream.add("a", "y", 1.0)
        tcm = TCM.from_stream(stream, d=2, width=64, seed=2,
                              keep_labels=True)
        top = tcm.heaviest_neighbours("a", k=2, direction="both")
        assert top[0] == ("x", 9.0)

    def test_validation(self, fan_in_stream):
        tcm = TCM.from_stream(fan_in_stream, d=1, width=64, seed=1,
                              keep_labels=True)
        with pytest.raises(ValueError):
            tcm.heaviest_neighbours("hub", k=0)
        with pytest.raises(ValueError):
            tcm.heaviest_neighbours("hub", direction="sideways")

    def test_paper_example_2(self, paper_stream):
        """'Which is the most frequent node linking to node a?' -- b or f
        in Fig. 1 (both send weight 1)."""
        tcm = TCM.from_stream(paper_stream, d=3, width=128, seed=3,
                              keep_labels=True)
        top = tcm.heaviest_neighbours("a", k=2, direction="in")
        assert {n for n, _ in top} == {"b", "f"}
