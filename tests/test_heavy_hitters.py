"""Tests for the streaming heavy-hitter monitors and Algorithm 1."""

import pytest

from repro.core.heavy_hitters import (
    ConditionalHeavyHitterMonitor,
    HeavyEdgeMonitor,
    HeavyNodeMonitor,
)
from repro.core.tcm import TCM
from repro.streams.model import GraphStream


def wide_tcm(directed=True, seed=1):
    return TCM(d=4, width=128, seed=seed, directed=directed)


@pytest.fixture
def skewed_stream():
    """100 elements: one dominant edge, one dominant receiver."""
    stream = GraphStream(directed=True)
    t = 0
    for _ in range(40):
        stream.add("big_src", "big_dst", 10.0, float(t))
        t += 1
    for i in range(60):
        stream.add(f"s{i}", f"r{i % 10}", 1.0, float(t))
        t += 1
    return stream


class TestHeavyEdgeMonitor:
    def test_finds_dominant_edge(self, skewed_stream):
        monitor = HeavyEdgeMonitor(wide_tcm(), k=5)
        monitor.consume(skewed_stream)
        top = monitor.top()
        assert top[0][0] == ("big_src", "big_dst")
        assert top[0][1] == 400.0

    def test_top_is_sorted(self, skewed_stream):
        monitor = HeavyEdgeMonitor(wide_tcm(), k=10)
        monitor.consume(skewed_stream)
        weights = [w for _, w in monitor.top()]
        assert weights == sorted(weights, reverse=True)

    def test_bounded_size(self, skewed_stream):
        monitor = HeavyEdgeMonitor(wide_tcm(), k=3)
        monitor.consume(skewed_stream)
        assert len(monitor.top()) == 3

    def test_k_validation(self):
        with pytest.raises(ValueError):
            HeavyEdgeMonitor(wide_tcm(), k=0)

    def test_matches_ground_truth_on_wide_sketch(self, ipflow_stream):
        monitor = HeavyEdgeMonitor(TCM(d=4, width=256, seed=3), k=10)
        monitor.consume(ipflow_stream)
        truth = {e for e, _ in ipflow_stream.top_edges(10)}
        found = {e for e, _ in monitor.top()}
        assert len(found & truth) >= 8

    def test_undirected_canonical_keys(self):
        stream = GraphStream(directed=False)
        for _ in range(5):
            stream.add("b", "a", 1.0)
            stream.add("a", "b", 1.0)
        monitor = HeavyEdgeMonitor(wide_tcm(directed=False), k=3)
        monitor.consume(stream)
        top = monitor.top()
        assert len(top) == 1  # both orientations fold into one edge
        assert top[0][1] == 10.0


class TestHeavyNodeMonitor:
    def test_finds_dominant_receiver(self, skewed_stream):
        monitor = HeavyNodeMonitor(wide_tcm(), k=3, direction="in")
        monitor.consume(skewed_stream)
        assert monitor.top()[0][0] == "big_dst"

    def test_out_direction(self, skewed_stream):
        monitor = HeavyNodeMonitor(wide_tcm(), k=3, direction="out")
        monitor.consume(skewed_stream)
        assert monitor.top()[0][0] == "big_src"

    def test_both_requires_undirected(self):
        with pytest.raises(ValueError):
            HeavyNodeMonitor(wide_tcm(directed=True), k=3, direction="both")

    def test_directed_direction_requires_directed(self):
        with pytest.raises(ValueError):
            HeavyNodeMonitor(wide_tcm(directed=False), k=3, direction="in")

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            HeavyNodeMonitor(wide_tcm(), k=3, direction="up")

    def test_undirected_both(self, dblp_stream):
        monitor = HeavyNodeMonitor(wide_tcm(directed=False), k=10,
                                   direction="both")
        monitor.consume(dblp_stream)
        truth = {n for n, _ in dblp_stream.top_nodes(10, direction="both")}
        found = {n for n, _ in monitor.top()}
        assert len(found & truth) >= 7


class TestConditionalHeavyHitters:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConditionalHeavyHitterMonitor(wide_tcm(), k=0, l=1)
        with pytest.raises(ValueError):
            ConditionalHeavyHitterMonitor(wide_tcm(), k=1, l=0)
        with pytest.raises(ValueError):
            ConditionalHeavyHitterMonitor(wide_tcm(), k=1, l=1,
                                          direction="both")

    def test_structure_of_result(self, skewed_stream):
        monitor = ConditionalHeavyHitterMonitor(wide_tcm(), k=2, l=3)
        monitor.consume(skewed_stream)
        top = monitor.top()
        assert len(top) <= 2
        node, flow, neighbours = top[0]
        assert isinstance(flow, float)
        assert len(neighbours) <= 3

    def test_finds_heavy_node_and_its_neighbour(self, skewed_stream):
        monitor = ConditionalHeavyHitterMonitor(wide_tcm(), k=2, l=2)
        monitor.consume(skewed_stream)
        top = monitor.top()
        assert top[0][0] == "big_dst"
        assert top[0][2][0][0] == "big_src"

    def test_neighbour_lists_bounded(self):
        stream = GraphStream(directed=True)
        for i in range(50):
            stream.add(f"sender{i}", "hub", float(i + 1), float(i))
        monitor = ConditionalHeavyHitterMonitor(wide_tcm(), k=1, l=5)
        monitor.consume(stream)
        node, _, neighbours = monitor.top()[0]
        assert node == "hub"
        assert len(neighbours) == 5
        # The heaviest senders should be kept.
        kept = {n for n, _ in neighbours}
        assert "sender49" in kept and "sender48" in kept

    def test_eviction_of_light_hitters(self):
        stream = GraphStream(directed=True)
        # ten early light receivers, then two massive ones
        for i in range(10):
            stream.add("s", f"light{i}", 1.0, float(i))
        for i in range(20):
            stream.add("s", "heavy_a", 5.0, float(10 + i))
            stream.add("s", "heavy_b", 5.0, float(30 + i))
        monitor = ConditionalHeavyHitterMonitor(wide_tcm(), k=2, l=2)
        monitor.consume(stream)
        names = [node for node, _, _ in monitor.top()]
        assert set(names) == {"heavy_a", "heavy_b"}

    def test_out_direction(self, skewed_stream):
        monitor = ConditionalHeavyHitterMonitor(wide_tcm(), k=1, l=1,
                                                direction="out")
        monitor.consume(skewed_stream)
        node, _, neighbours = monitor.top()[0]
        assert node == "big_src"
        assert neighbours[0][0] == "big_dst"

    def test_undirected_both(self, dblp_stream):
        monitor = ConditionalHeavyHitterMonitor(
            wide_tcm(directed=False), k=5, l=5, direction="both")
        monitor.consume(dblp_stream)
        top = monitor.top()
        assert 1 <= len(top) <= 5
        # Verify the top hitter's neighbours are real collaborators.
        node, _, neighbours = top[0]
        for neighbour, _ in neighbours:
            assert dblp_stream.edge_weight(node, neighbour) > 0

    def test_refreshed_flow_estimates(self):
        """Tracked hitters' flows refresh as more weight arrives."""
        stream = GraphStream(directed=True)
        monitor = ConditionalHeavyHitterMonitor(wide_tcm(), k=2, l=2)
        monitor.observe("s", "hub", 1.0)
        first = dict((n, f) for n, f, _ in monitor.top())["hub"]
        monitor.observe("s", "hub", 9.0)
        second = dict((n, f) for n, f, _ in monitor.top())["hub"]
        assert second == first + 9.0
