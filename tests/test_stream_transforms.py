"""Tests for stream transformations."""

import pytest

from repro.streams.model import GraphStream, StreamEdge
from repro.streams.transforms import (
    batches,
    filter_edges,
    map_weights,
    materialize,
    merge_streams,
    relabel,
    sample_edges,
    shard,
    shift_time,
    time_slice,
)


@pytest.fixture
def edges():
    return [StreamEdge(f"s{i % 3}", f"t{i % 2}", float(i + 1), float(i))
            for i in range(10)]


class TestElementwise:
    def test_filter(self, edges):
        heavy = list(filter_edges(edges, lambda e: e.weight > 5))
        assert len(heavy) == 5
        assert all(e.weight > 5 for e in heavy)

    def test_map_weights(self, edges):
        doubled = list(map_weights(edges, lambda w: 2 * w))
        assert [e.weight for e in doubled] == [2.0 * (i + 1) for i in range(10)]
        assert [e.timestamp for e in doubled] == [e.timestamp for e in edges]

    def test_relabel(self, edges):
        upper = list(relabel(edges, lambda n: n.upper()))
        assert upper[0].source == "S0"
        assert upper[0].target == "T0"

    def test_sample_rate_one_keeps_all(self, edges):
        assert len(list(sample_edges(edges, 1.0, seed=1))) == 10

    def test_sample_rate_validation(self, edges):
        with pytest.raises(ValueError):
            list(sample_edges(edges, 0.0))

    def test_sample_is_seeded(self, edges):
        a = [e.timestamp for e in sample_edges(edges, 0.5, seed=3)]
        b = [e.timestamp for e in sample_edges(edges, 0.5, seed=3)]
        assert a == b


class TestTimeOperations:
    def test_time_slice(self, edges):
        window = list(time_slice(edges, 3.0, 6.0))
        assert [e.timestamp for e in window] == [3.0, 4.0, 5.0]

    def test_time_slice_validation(self, edges):
        with pytest.raises(ValueError):
            list(time_slice(edges, 5.0, 5.0))

    def test_shift_time(self, edges):
        shifted = list(shift_time(edges, 100.0))
        assert shifted[0].timestamp == 100.0

    def test_merge_preserves_order(self, edges):
        left = edges[:5]
        right = list(shift_time(edges[:5], 0.5))
        merged = list(merge_streams(left, right))
        stamps = [e.timestamp for e in merged]
        assert stamps == sorted(stamps)
        assert len(merged) == 10


class TestBatching:
    def test_batches(self, edges):
        chunks = list(batches(edges, 4))
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_batch_validation(self, edges):
        with pytest.raises(ValueError):
            list(batches(edges, 0))


class TestSharding:
    def test_round_robin(self, edges):
        shards = shard(edges, 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        assert sum(len(s) for s in shards) == 10

    def test_by_source_groups_sources(self, edges):
        shards = shard(edges, 2, by="source")
        for piece in shards:
            sources = {e.source for e in piece}
            for other in shards:
                if other is not piece:
                    assert not sources & {e.source for e in other}

    def test_by_time_contiguous(self, edges):
        shards = shard(edges, 2, by="time")
        assert [e.timestamp for e in shards[0]] == [float(i) for i in range(5)]

    def test_unknown_strategy(self, edges):
        with pytest.raises(ValueError):
            shard(edges, 2, by="vibes")

    def test_invalid_count(self, edges):
        with pytest.raises(ValueError):
            shard(edges, 0)


class TestMaterialize:
    def test_round_trip(self, edges):
        stream = materialize(edges)
        assert len(stream) == 10
        assert stream.edge_weight("s0", "t0") > 0

    def test_pipeline(self, edges):
        stream = materialize(
            map_weights(filter_edges(edges, lambda e: e.weight > 3),
                        lambda w: 1.0))
        assert len(stream) == 7
        assert stream.total_weight() == 7.0
