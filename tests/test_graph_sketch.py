"""Tests for the single graphical sketch (square and extended variants)."""

import numpy as np
import pytest

from repro.core.aggregation import Aggregation
from repro.core.graph_sketch import GraphSketch, label_keys
from repro.hashing.family import HashFamily


def make_sketch(width=32, seed=0, **kwargs):
    return GraphSketch(HashFamily.uniform(1, width, seed=seed)[0], **kwargs)


class TestConstruction:
    def test_square_is_graphical(self):
        assert make_sketch().is_graphical

    def test_shape(self):
        sketch = make_sketch(width=16)
        assert sketch.shape == (16, 16)
        assert sketch.size_in_cells == 256

    def test_matrix_read_only(self):
        sketch = make_sketch()
        with pytest.raises(ValueError):
            sketch.matrix[0, 0] = 1

    def test_repr_mentions_shape(self):
        assert "32x32" in repr(make_sketch(width=32))


class TestUpdateAndEstimate:
    def test_single_edge(self):
        sketch = make_sketch()
        sketch.update("a", "b", 3.0)
        assert sketch.edge_estimate("a", "b") == 3.0

    def test_accumulation(self):
        sketch = make_sketch()
        sketch.update("a", "b", 2.0)
        sketch.update("a", "b", 3.5)
        assert sketch.edge_estimate("a", "b") == 5.5

    def test_self_loop(self):
        sketch = make_sketch()
        sketch.update("a", "a", 2.0)
        assert sketch.edge_estimate("a", "a") == 2.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            make_sketch().update("a", "b", -1.0)

    def test_estimate_never_underestimates(self):
        """Sum aggregation over-approximates (Theorem 1, direction 1)."""
        sketch = make_sketch(width=4)  # force collisions
        truth = {}
        for i in range(200):
            x, y, w = f"s{i % 13}", f"t{i % 7}", float(i % 5 + 1)
            sketch.update(x, y, w)
            truth[(x, y)] = truth.get((x, y), 0.0) + w
        for (x, y), exact in truth.items():
            assert sketch.edge_estimate(x, y) >= exact

    def test_flows_directed(self):
        sketch = make_sketch(width=64)
        sketch.update("a", "b", 2.0)
        sketch.update("a", "c", 3.0)
        sketch.update("d", "a", 4.0)
        assert sketch.out_flow("a") >= 5.0
        assert sketch.in_flow("a") >= 4.0

    def test_total_mass_equals_inserted(self):
        sketch = make_sketch(width=8)
        for i in range(50):
            sketch.update(f"x{i}", f"y{i}", 2.0)
        assert sketch.matrix.sum() == pytest.approx(100.0)


class TestDeletion:
    def test_remove_inverts_update(self):
        sketch = make_sketch()
        sketch.update("a", "b", 5.0)
        sketch.remove("a", "b", 5.0)
        assert sketch.edge_estimate("a", "b") == 0.0

    def test_partial_remove(self):
        sketch = make_sketch()
        sketch.update("a", "b", 5.0)
        sketch.remove("a", "b", 2.0)
        assert sketch.edge_estimate("a", "b") == 3.0

    def test_remove_rejected_for_min(self):
        sketch = make_sketch(aggregation=Aggregation.MIN)
        sketch.update("a", "b", 1.0)
        with pytest.raises(ValueError, match="min"):
            sketch.remove("a", "b", 1.0)

    def test_remove_rejected_for_max(self):
        sketch = make_sketch(aggregation=Aggregation.MAX)
        with pytest.raises(ValueError, match="max"):
            sketch.remove("a", "b", 1.0)


class TestAggregations:
    def test_count(self):
        sketch = make_sketch(aggregation=Aggregation.COUNT)
        sketch.update("a", "b", 100.0)
        sketch.update("a", "b", 200.0)
        assert sketch.edge_estimate("a", "b") == 2.0

    def test_count_remove(self):
        sketch = make_sketch(aggregation=Aggregation.COUNT)
        sketch.update("a", "b", 100.0)
        sketch.remove("a", "b", 100.0)
        assert sketch.edge_estimate("a", "b") == 0.0

    def test_min(self):
        sketch = make_sketch(aggregation=Aggregation.MIN)
        sketch.update("a", "b", 5.0)
        sketch.update("a", "b", 2.0)
        sketch.update("a", "b", 7.0)
        assert sketch.edge_estimate("a", "b") == 2.0

    def test_max(self):
        sketch = make_sketch(aggregation=Aggregation.MAX)
        sketch.update("a", "b", 5.0)
        sketch.update("a", "b", 9.0)
        sketch.update("a", "b", 2.0)
        assert sketch.edge_estimate("a", "b") == 9.0

    def test_min_empty_cell_reads_zero(self):
        sketch = make_sketch(aggregation=Aggregation.MIN)
        assert sketch.edge_estimate("never", "seen") == 0.0

    def test_min_distinguishes_empty_from_zero(self):
        sketch = make_sketch(aggregation=Aggregation.MIN)
        sketch.update("a", "b", 0.0)
        sketch.update("a", "b", 4.0)
        assert sketch.edge_estimate("a", "b") == 0.0


class TestUndirected:
    def test_symmetric_estimate(self):
        sketch = make_sketch(directed=False)
        sketch.update("a", "b", 3.0)
        assert sketch.edge_estimate("a", "b") == 3.0
        assert sketch.edge_estimate("b", "a") == 3.0

    def test_both_orientations_accumulate(self):
        sketch = make_sketch(directed=False)
        sketch.update("a", "b", 1.0)
        sketch.update("b", "a", 2.0)
        assert sketch.edge_estimate("a", "b") == 3.0

    def test_single_cell_storage(self):
        """An undirected element occupies exactly one matrix cell."""
        sketch = make_sketch(directed=False)
        sketch.update("a", "b", 1.0)
        assert int((sketch.matrix > 0).sum()) == 1
        assert sketch.matrix.sum() == pytest.approx(1.0)

    def test_flow(self):
        sketch = make_sketch(directed=False, width=64)
        sketch.update("a", "b", 2.0)
        sketch.update("c", "a", 3.0)
        assert sketch.flow("a") >= 5.0
        assert sketch.flow("b") >= 2.0

    def test_flow_self_loop_counted_once(self):
        sketch = make_sketch(directed=False, width=64)
        sketch.update("a", "a", 2.0)
        assert sketch.flow("a") == 2.0

    def test_out_in_flow_raise(self):
        sketch = make_sketch(directed=False)
        with pytest.raises(ValueError):
            sketch.out_flow("a")
        with pytest.raises(ValueError):
            sketch.in_flow("a")

    def test_directed_flow_raises(self):
        with pytest.raises(ValueError):
            make_sketch().flow("a")

    def test_remove_undirected(self):
        sketch = make_sketch(directed=False)
        sketch.update("a", "b", 3.0)
        sketch.remove("b", "a", 3.0)  # reversed orientation still cancels
        assert sketch.edge_estimate("a", "b") == 0.0

    def test_successors_symmetric(self):
        sketch = make_sketch(directed=False, width=16)
        sketch.update("a", "b", 1.0)
        ha, hb = sketch.node_of("a"), sketch.node_of("b")
        assert hb in sketch.successors(ha)
        assert ha in sketch.successors(hb)

    def test_bucket_edge_weight_symmetric(self):
        sketch = make_sketch(directed=False, width=16)
        sketch.update("a", "b", 2.5)
        ha, hb = sketch.node_of("a"), sketch.node_of("b")
        assert sketch.bucket_edge_weight(ha, hb) == 2.5
        assert sketch.bucket_edge_weight(hb, ha) == 2.5


class TestTopology:
    def test_successors_predecessors(self):
        sketch = make_sketch(width=32)
        sketch.update("a", "b", 1.0)
        ha, hb = sketch.node_of("a"), sketch.node_of("b")
        assert hb in sketch.successors(ha)
        assert ha in sketch.predecessors(hb)

    def test_no_phantom_edges(self):
        sketch = make_sketch(width=32)
        sketch.update("a", "b", 1.0)
        total_successor_count = sum(len(sketch.successors(i))
                                    for i in range(sketch.rows))
        assert total_successor_count == 1


class TestExtendedSketch:
    def test_ext_records_labels(self):
        sketch = make_sketch(keep_labels=True)
        sketch.update("a", "b", 1.0)
        assert "a" in sketch.ext(sketch.node_of("a"))
        assert "b" in sketch.ext(sketch.node_of("b"))

    def test_ext_requires_flag(self):
        with pytest.raises(ValueError, match="keep_labels"):
            make_sketch().ext(0)

    def test_ext_partitions_label_universe(self):
        sketch = make_sketch(width=4, keep_labels=True)
        labels = [f"n{i}" for i in range(40)]
        for i, x in enumerate(labels):
            sketch.update(x, labels[(i + 1) % len(labels)], 1.0)
        collected = []
        for bucket in range(sketch.rows):
            collected.extend(sketch.ext(bucket))
        assert sorted(collected) == sorted(labels)  # no dup, no loss

    def test_ext_returns_copy(self):
        sketch = make_sketch(keep_labels=True)
        sketch.update("a", "b", 1.0)
        sketch.ext(sketch.node_of("a")).clear()
        assert "a" in sketch.ext(sketch.node_of("a"))


class TestUpdateMany:
    def test_matches_scalar_updates(self):
        h = HashFamily.uniform(1, 16, seed=4)[0]
        scalar = GraphSketch(h)
        bulk = GraphSketch(h)
        sources = [f"s{i % 5}" for i in range(100)]
        targets = [f"t{i % 7}" for i in range(100)]
        weights = np.array([float(i % 3 + 1) for i in range(100)])
        for s, t, w in zip(sources, targets, weights):
            scalar.update(s, t, w)
        bulk.update_many(label_keys(sources), label_keys(targets), weights)
        np.testing.assert_allclose(bulk.matrix, scalar.matrix)

    def test_matches_scalar_undirected(self):
        h = HashFamily.uniform(1, 16, seed=5)[0]
        scalar = GraphSketch(h, directed=False)
        bulk = GraphSketch(h, directed=False)
        sources = [f"s{i % 6}" for i in range(80)]
        targets = [f"s{(i + 3) % 6}" for i in range(80)]
        weights = np.ones(80)
        for s, t in zip(sources, targets):
            scalar.update(s, t, 1.0)
        bulk.update_many(label_keys(sources), label_keys(targets), weights)
        np.testing.assert_allclose(bulk.matrix, scalar.matrix)

    def test_min_matches_scalar_updates(self):
        h = HashFamily.uniform(1, 8, seed=9)[0]
        scalar = GraphSketch(h, aggregation=Aggregation.MIN)
        bulk = GraphSketch(h, aggregation=Aggregation.MIN)
        sources = [f"s{i % 5}" for i in range(60)]
        targets = [f"t{i % 4}" for i in range(60)]
        weights = np.array([float((i * 7) % 11) for i in range(60)])
        for s, t, w in zip(sources, targets, weights):
            scalar.update(s, t, w)
        bulk.update_many(label_keys(sources), label_keys(targets), weights)
        assert np.array_equal(bulk.matrix, scalar.matrix)
        assert np.array_equal(bulk._touched, scalar._touched)

    def test_max_matches_scalar_updates(self):
        h = HashFamily.uniform(1, 8, seed=10)[0]
        scalar = GraphSketch(h, aggregation=Aggregation.MAX)
        bulk = GraphSketch(h, aggregation=Aggregation.MAX)
        sources = [f"s{i % 6}" for i in range(60)]
        targets = [f"t{i % 5}" for i in range(60)]
        weights = np.array([float((i * 5) % 13) for i in range(60)])
        for s, t, w in zip(sources, targets, weights):
            scalar.update(s, t, w)
        bulk.update_many(label_keys(sources), label_keys(targets), weights)
        assert np.array_equal(bulk.matrix, scalar.matrix)
        assert np.array_equal(bulk._touched, scalar._touched)

    def test_min_zero_weight_distinct_from_untouched(self):
        h = HashFamily.uniform(1, 8, seed=11)[0]
        sketch = GraphSketch(h, aggregation=Aggregation.MIN)
        sketch.update_many(label_keys(["a"]), label_keys(["b"]),
                           np.array([0.0]))
        assert sketch.edge_estimate("a", "b") == 0.0
        assert sketch._touched.sum() == 1

    def test_labels_require_label_arguments(self):
        sketch = make_sketch(keep_labels=True)
        with pytest.raises(ValueError):
            sketch.update_many(np.array([1], dtype=np.uint64),
                               np.array([2], dtype=np.uint64),
                               np.array([1.0]))

    def test_labels_recorded_in_bulk(self):
        h = HashFamily.uniform(1, 16, seed=12)[0]
        scalar = GraphSketch(h, keep_labels=True)
        bulk = GraphSketch(h, keep_labels=True)
        sources = [f"s{i % 5}" for i in range(40)]
        targets = [f"t{i % 7}" for i in range(40)]
        weights = np.ones(40)
        for s, t in zip(sources, targets):
            scalar.update(s, t, 1.0)
        bulk.update_many(label_keys(sources), label_keys(targets), weights,
                         source_labels=sources, target_labels=targets)
        assert np.array_equal(bulk.matrix, scalar.matrix)
        assert bulk._row_labels == scalar._row_labels
        assert bulk._col_labels == scalar._col_labels

    def test_negative_weights_rejected_like_scalar(self):
        sketch = make_sketch()
        with pytest.raises(ValueError):
            sketch.update_many(np.array([1, 2], dtype=np.uint64),
                               np.array([3, 4], dtype=np.uint64),
                               np.array([1.0, -2.0]))

    def test_count_aggregation_ignores_weights(self):
        h = HashFamily.uniform(1, 16, seed=6)[0]
        sketch = GraphSketch(h, aggregation=Aggregation.COUNT)
        sketch.update_many(label_keys(["a", "a"]), label_keys(["b", "b"]),
                           np.array([100.0, 50.0]))
        assert sketch.edge_estimate("a", "b") == 2.0


class TestClear:
    def test_clear_resets_matrix(self):
        sketch = make_sketch()
        sketch.update("a", "b", 1.0)
        sketch.clear()
        assert sketch.matrix.sum() == 0.0

    def test_clear_resets_labels(self):
        sketch = make_sketch(keep_labels=True)
        sketch.update("a", "b", 1.0)
        sketch.clear()
        assert sketch.ext(sketch.node_of("a")) == set()

    def test_clear_resets_min_occupancy(self):
        sketch = make_sketch(aggregation=Aggregation.MIN)
        sketch.update("a", "b", 0.0)
        sketch.clear()
        sketch.update("a", "b", 5.0)
        assert sketch.edge_estimate("a", "b") == 5.0
