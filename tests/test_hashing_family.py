"""Tests for the Carter-Wegman pairwise-independent hash family."""

import numpy as np
import pytest

from repro.hashing.family import MERSENNE_PRIME_61, HashFamily, PairwiseHash
from repro.hashing.labels import label_to_int


class TestPairwiseHash:
    def test_range(self):
        h = PairwiseHash(a=12345, b=678, width=17)
        for key in range(1000):
            assert 0 <= h.hash_int(key) < 17

    def test_deterministic(self):
        h = PairwiseHash(a=99991, b=7, width=64)
        assert h("label") == h("label")

    def test_scalar_matches_formula(self):
        h = PairwiseHash(a=3, b=5, width=10)
        key = 1234567
        expected = ((3 * key + 5) % MERSENNE_PRIME_61) % 10
        assert h.hash_int(key) == expected

    def test_call_converts_labels(self):
        h = PairwiseHash(a=31337, b=42, width=100)
        assert h("x") == h.hash_int(label_to_int("x"))

    def test_width_one_maps_everything_to_zero(self):
        h = PairwiseHash(a=7, b=9, width=1)
        assert all(h.hash_int(k) == 0 for k in range(100))

    @pytest.mark.parametrize("a", [0, MERSENNE_PRIME_61])
    def test_invalid_a_rejected(self, a):
        with pytest.raises(ValueError):
            PairwiseHash(a=a, b=0, width=4)

    def test_invalid_b_rejected(self):
        with pytest.raises(ValueError):
            PairwiseHash(a=1, b=MERSENNE_PRIME_61, width=4)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            PairwiseHash(a=1, b=0, width=0)

    def test_frozen_and_hashable(self):
        h = PairwiseHash(a=5, b=6, width=7)
        assert hash(h) == hash(PairwiseHash(a=5, b=6, width=7))
        with pytest.raises(AttributeError):
            h.a = 9


class TestHashMany:
    """The vectorized path must agree bit-for-bit with the scalar path."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_scalar_random_functions(self, seed):
        family = HashFamily.uniform(1, 101, seed=seed)
        h = family[0]
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 2 ** 63, size=500, dtype=np.int64).astype(np.uint64)
        vectorized = h.hash_many(keys)
        scalar = np.array([h.hash_int(int(k)) for k in keys])
        np.testing.assert_array_equal(vectorized, scalar)

    def test_matches_scalar_on_extreme_keys(self):
        h = PairwiseHash(a=MERSENNE_PRIME_61 - 1, b=MERSENNE_PRIME_61 - 1,
                         width=97)
        keys = np.array([0, 1, 2 ** 61 - 2, 2 ** 61 - 1, 2 ** 61,
                         2 ** 64 - 1, 2 ** 63, 123456789], dtype=np.uint64)
        vectorized = h.hash_many(keys)
        scalar = np.array([h.hash_int(int(k)) for k in keys])
        np.testing.assert_array_equal(vectorized, scalar)

    def test_empty_input(self):
        h = PairwiseHash(a=7, b=3, width=11)
        assert len(h.hash_many(np.array([], dtype=np.uint64))) == 0

    def test_string_label_keys(self):
        h = PairwiseHash(a=424242, b=171717, width=53)
        labels = [f"ip-{i}.example" for i in range(300)]
        keys = np.array([label_to_int(s) for s in labels], dtype=np.uint64)
        vectorized = h.hash_many(keys)
        scalar = np.array([h(s) for s in labels])
        np.testing.assert_array_equal(vectorized, scalar)


class TestHashFamily:
    def test_uniform_sizes(self):
        family = HashFamily.uniform(5, 32, seed=1)
        assert len(family) == 5
        assert all(h.width == 32 for h in family)

    def test_mixed_widths(self):
        family = HashFamily([8, 16, 4], seed=2)
        assert [h.width for h in family] == [8, 16, 4]

    def test_seeded_reproducibility(self):
        f1 = HashFamily.uniform(3, 64, seed=9)
        f2 = HashFamily.uniform(3, 64, seed=9)
        assert [h.a for h in f1] == [h.a for h in f2]
        assert [h.b for h in f1] == [h.b for h in f2]

    def test_different_seeds_differ(self):
        f1 = HashFamily.uniform(3, 64, seed=1)
        f2 = HashFamily.uniform(3, 64, seed=2)
        assert [h.a for h in f1] != [h.a for h in f2]

    def test_functions_within_family_differ(self):
        family = HashFamily.uniform(4, 64, seed=5)
        params = {(h.a, h.b) for h in family}
        assert len(params) == 4

    def test_empty_widths_rejected(self):
        with pytest.raises(ValueError):
            HashFamily([])

    def test_invalid_d_rejected(self):
        with pytest.raises(ValueError):
            HashFamily.uniform(0, 8)

    def test_indexing(self):
        family = HashFamily.uniform(3, 10, seed=0)
        assert family[0] is list(family)[0]

    def test_distribution_roughly_uniform(self):
        """Buckets of a pairwise hash should be near-uniform over many keys."""
        h = HashFamily.uniform(1, 10, seed=3)[0]
        counts = np.zeros(10)
        for key in range(20000):
            counts[h.hash_int(key)] += 1
        # Each bucket expects 2000; allow generous 15% deviation.
        assert counts.min() > 1700
        assert counts.max() < 2300

    def test_pairwise_collision_rate(self):
        """Collision probability across random key pairs is ~1/width."""
        width = 50
        rng = np.random.default_rng(7)
        collisions = 0
        trials = 400
        for t in range(trials):
            h = HashFamily.uniform(1, width, seed=1000 + t)[0]
            x, y = rng.integers(0, 2 ** 60, size=2)
            if h.hash_int(int(x)) == h.hash_int(int(y)):
                collisions += 1
        rate = collisions / trials
        assert rate < 3.5 / width  # expectation 1/50 = 0.02; cap at 0.07
