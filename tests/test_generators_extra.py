"""Tests for the Barabási–Albert generator and the tcm diff command."""

import pytest

from repro.streams.generators import barabasi_albert


class TestBarabasiAlbert:
    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, attachments=0)
        with pytest.raises(ValueError):
            barabasi_albert(2, attachments=2)

    def test_element_count(self):
        m = 3
        n = 100
        stream = barabasi_albert(n, attachments=m, seed=1)
        clique = (m + 1) * m // 2
        assert len(stream) == clique + (n - m - 1) * m

    def test_all_nodes_present(self):
        stream = barabasi_albert(50, attachments=2, seed=2)
        assert stream.nodes == set(range(50))

    def test_undirected(self):
        stream = barabasi_albert(20, attachments=2, seed=3)
        assert not stream.directed

    def test_connected(self):
        stream = barabasi_albert(60, attachments=2, seed=4)
        nodes = sorted(stream.nodes)
        assert all(stream.reachable(nodes[0], n) for n in nodes[1:])

    def test_no_duplicate_attachments_per_node(self):
        """Each arriving node attaches to distinct targets."""
        stream = barabasi_albert(40, attachments=3, seed=5)
        assert all(stream.edge_weight(*e) == 1.0
                   for e in stream.distinct_edges)

    def test_power_law_head(self):
        """Early nodes accumulate far more degree than the median node."""
        stream = barabasi_albert(400, attachments=2, seed=6)
        flows = sorted((stream.flow(n) for n in stream.nodes), reverse=True)
        assert flows[0] > 8 * flows[len(flows) // 2]

    def test_reproducible(self):
        a = barabasi_albert(50, attachments=2, seed=7)
        b = barabasi_albert(50, attachments=2, seed=7)
        assert [(e.source, e.target) for e in a] == \
            [(e.source, e.target) for e in b]


class TestCliDiff:
    @pytest.fixture
    def sketch_pair(self, tmp_path):
        from repro.cli import main
        from repro.streams.io import write_stream
        from repro.streams.model import GraphStream

        before_stream = GraphStream(directed=True)
        before_stream.add("a", "b", 5.0, 0.0)
        after_stream = GraphStream(directed=True)
        after_stream.add("a", "b", 5.0, 0.0)
        after_stream.add("x", "y", 9.0, 1.0)

        paths = []
        for name, stream in (("before", before_stream),
                             ("after", after_stream)):
            trace = tmp_path / f"{name}.txt"
            write_stream(stream, trace)
            sketch = tmp_path / f"{name}.npz"
            main(["summarize", str(trace), str(sketch), "--width", "64",
                  "--keep-labels"])
            paths.append(sketch)
        return paths

    def test_diff_output(self, sketch_pair, capsys):
        from repro.cli import main
        capsys.readouterr()
        assert main(["diff", str(sketch_pair[0]), str(sketch_pair[1])]) == 0
        out = capsys.readouterr().out
        assert "L1 distance   9" in out
        assert "x -> y: +9" in out

    def test_diff_without_labels_shows_cells(self, tmp_path, capsys):
        from repro.cli import main
        from repro.streams.io import write_stream
        from repro.streams.model import GraphStream

        stream = GraphStream(directed=True)
        stream.add("a", "b", 1.0, 0.0)
        trace = tmp_path / "t.txt"
        write_stream(stream, trace)
        main(["summarize", str(trace), str(tmp_path / "s1.npz"),
              "--width", "32"])
        stream.add("a", "b", 4.0, 1.0)
        write_stream(stream, trace)
        main(["summarize", str(trace), str(tmp_path / "s2.npz"),
              "--width", "32"])
        capsys.readouterr()
        assert main(["diff", str(tmp_path / "s1.npz"),
                     str(tmp_path / "s2.npz")]) == 0
        out = capsys.readouterr().out
        assert "cell (" in out
        assert "+4" in out
