"""Tests for the vectorized batch query path."""

import numpy as np
import pytest

from repro.core.aggregation import Aggregation
from repro.core.graph_sketch import label_keys
from repro.core.tcm import TCM


class TestSketchEdgeEstimates:
    def test_matches_scalar(self, ipflow_stream):
        tcm = TCM.from_stream(ipflow_stream, d=1, width=32, seed=1)
        sketch = tcm.sketches[0]
        pairs = sorted(ipflow_stream.distinct_edges, key=repr)[:200]
        sources = label_keys([x for x, _ in pairs])
        targets = label_keys([y for _, y in pairs])
        batch = sketch.edge_estimates(sources, targets)
        scalar = np.array([sketch.edge_estimate(x, y) for x, y in pairs])
        np.testing.assert_allclose(batch, scalar)

    def test_matches_scalar_undirected(self, dblp_stream):
        tcm = TCM.from_stream(dblp_stream, d=1, width=32, seed=1)
        sketch = tcm.sketches[0]
        pairs = sorted(dblp_stream.distinct_edges, key=repr)[:200]
        # Query in the reversed orientation on purpose.
        sources = label_keys([y for _, y in pairs])
        targets = label_keys([x for x, _ in pairs])
        batch = sketch.edge_estimates(sources, targets)
        scalar = np.array([sketch.edge_estimate(x, y) for x, y in pairs])
        np.testing.assert_allclose(batch, scalar)


class TestTcmEdgeWeights:
    def test_matches_scalar(self, ipflow_stream):
        tcm = TCM.from_stream(ipflow_stream, d=4, width=32, seed=2)
        pairs = sorted(ipflow_stream.distinct_edges, key=repr)[:300]
        batch = tcm.edge_weights(pairs)
        scalar = np.array([tcm.edge_weight(x, y) for x, y in pairs])
        np.testing.assert_allclose(batch, scalar)

    def test_empty_batch(self):
        tcm = TCM(d=2, width=8, seed=1)
        assert len(tcm.edge_weights([])) == 0

    def test_min_aggregation_merges_with_max(self):
        from repro.streams.model import GraphStream
        stream = GraphStream()
        stream.add("a", "b", 5.0)
        stream.add("a", "b", 3.0)
        tcm = TCM.from_stream(stream, d=3, width=16, seed=3,
                              aggregation=Aggregation.MIN)
        batch = tcm.edge_weights([("a", "b")])
        assert batch[0] == tcm.edge_weight("a", "b")

    def test_unseen_pairs_zero_when_wide(self, small_directed):
        tcm = TCM.from_stream(small_directed, d=3, width=128, seed=4)
        batch = tcm.edge_weights([("nope", "never"), ("a", "b")])
        assert batch[0] == 0.0
        assert batch[1] == 5.0

    def test_nonsquare_batch(self):
        tcm = TCM(shapes=[(32, 8), (8, 32)], seed=5)
        tcm.update("a", "b", 4.0)
        assert tcm.edge_weights([("a", "b")])[0] >= 4.0
