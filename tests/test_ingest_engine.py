"""Equivalence suite for the chunked/vectorized ingest engine.

The engine's contract: chunked ``ingest`` produces bit-identical state to
the per-edge ``update`` loop across every aggregation, orientation,
backend and label mode; ``ingest_conservative`` with ``chunk_size=1`` is
exactly the per-edge conservative loop, and with larger chunks keeps the
one-sided guarantee while never exceeding the per-edge estimates.
"""

import itertools

import numpy as np
import pytest

from repro.core.aggregation import Aggregation
from repro.core.tcm import DEFAULT_CHUNK_SIZE, TCM
from repro.streams.generators import ipflow_like, rmat, zipf_weights
from repro.streams.model import GraphStream, StreamEdge


def make_stream(directed: bool, n: int = 400, seed: int = 3) -> GraphStream:
    """Repeat-heavy integer-weighted stream (exact under reordering)."""
    rng = np.random.default_rng(seed)
    stream = GraphStream(directed=directed)
    nodes = [f"n{i}" for i in range(40)]
    for t in range(n):
        x, y = rng.choice(len(nodes), size=2)
        stream.add(nodes[x], nodes[y], float(rng.integers(1, 8)), float(t))
    return stream


def assert_same_state(a: TCM, b: TCM) -> None:
    """Bit-identical sketch state: matrices, touched masks, label maps."""
    assert a.d == b.d
    for sa, sb in zip(a.sketches, b.sketches):
        np.testing.assert_array_equal(sa.matrix, sb.matrix)
        touched_a = getattr(sa, "_touched", None)
        touched_b = getattr(sb, "_touched", None)
        if touched_a is not None or touched_b is not None:
            np.testing.assert_array_equal(touched_a, touched_b)
        for attr in ("_row_labels", "_col_labels"):
            assert getattr(sa, attr, None) == getattr(sb, attr, None)


def build_pair(stream, *, chunk_size, aggregation=Aggregation.SUM,
               keep_labels=False, sparse=False, d=3, width=24, seed=9):
    config = dict(d=d, width=width, seed=seed, directed=stream.directed,
                  aggregation=aggregation, keep_labels=keep_labels,
                  sparse=sparse)
    reference = TCM(**config)
    for edge in stream:
        reference.update(edge.source, edge.target, edge.weight)
    chunked = TCM(**config)
    chunked.ingest(iter(stream), chunk_size=chunk_size)
    return reference, chunked


class TestChunkedEquivalence:
    """ingest(chunk_size=k) == per-edge update, bit for bit."""

    @pytest.mark.parametrize("aggregation", list(Aggregation))
    @pytest.mark.parametrize("directed", [True, False])
    @pytest.mark.parametrize("sparse", [False, True])
    def test_matrix_bit_identical(self, aggregation, directed, sparse):
        if sparse and aggregation not in (Aggregation.SUM,
                                          Aggregation.COUNT):
            pytest.skip("sparse backend is sum/count only")
        stream = make_stream(directed)
        reference, chunked = build_pair(stream, chunk_size=17,
                                        aggregation=aggregation,
                                        sparse=sparse)
        assert_same_state(reference, chunked)

    @pytest.mark.parametrize("directed", [True, False])
    @pytest.mark.parametrize("sparse", [False, True])
    def test_keep_labels_bookkeeping(self, directed, sparse):
        stream = make_stream(directed, n=200)
        reference, chunked = build_pair(stream, chunk_size=13,
                                        keep_labels=True, sparse=sparse)
        assert_same_state(reference, chunked)

    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 399, 400, 10_000])
    def test_any_chunk_size(self, chunk_size):
        stream = make_stream(directed=True)
        reference, chunked = build_pair(stream, chunk_size=chunk_size,
                                        aggregation=Aggregation.MIN)
        assert_same_state(reference, chunked)

    def test_float_weights_bit_identical_for_sum(self):
        # np.add.at applies additions in stream order, so even arbitrary
        # float weights round identically to the scalar loop.
        stream = ipflow_like(n_hosts=30, n_packets=500, seed=2)
        reference, chunked = build_pair(stream, chunk_size=31)
        assert_same_state(reference, chunked)

    def test_rmat_stream(self):
        stream = rmat(64, 600, weights=zipf_weights(600, seed=4), seed=4)
        reference, chunked = build_pair(stream, chunk_size=64,
                                        aggregation=Aggregation.MAX)
        assert_same_state(reference, chunked)


class TestLazyIteration:
    """ingest never materializes the stream: chunks interleave with pulls."""

    def test_first_chunk_applied_before_stream_exhausted(self):
        tcm = TCM(d=2, width=16, seed=1)
        applied_midway = []

        def edges():
            for i in range(25):
                if i == 20:
                    # Four chunks of 5 have been pulled; at least the
                    # first must already be in the sketch if ingest is
                    # lazy (a list(stream) would see 0.0 here).
                    applied_midway.append(tcm.total_weight_estimate())
                yield StreamEdge(f"s{i}", f"t{i}", 1.0, float(i))

        tcm.ingest(edges(), chunk_size=5)
        assert applied_midway and applied_midway[0] > 0.0
        assert tcm.total_weight_estimate() == pytest.approx(25.0)

    def test_one_shot_iterator_fully_consumed(self):
        stream = make_stream(directed=True, n=100)
        reference, _ = build_pair(stream, chunk_size=9)
        tcm = TCM(d=3, width=24, seed=9)
        tcm.ingest(iter(list(stream)), chunk_size=9)
        assert_same_state(reference, tcm)

    def test_conservative_is_lazy_too(self):
        tcm = TCM(d=2, width=16, seed=1)
        seen = []

        def edges():
            for i in range(12):
                if i == 10:
                    seen.append(tcm.total_weight_estimate())
                yield StreamEdge("a", f"t{i}", 1.0, float(i))

        tcm.ingest_conservative(edges(), chunk_size=4)
        assert seen and seen[0] > 0.0


class TestValidation:
    def test_chunk_size_must_be_positive(self):
        tcm = TCM(d=2, width=16, seed=1)
        with pytest.raises(ValueError, match="chunk_size"):
            tcm.ingest([], chunk_size=0)
        with pytest.raises(ValueError, match="chunk_size"):
            tcm.ingest_conservative([], chunk_size=-1)

    def test_negative_weight_rejected_in_columns(self):
        tcm = TCM(d=2, width=16, seed=1)
        with pytest.raises(ValueError, match="non-negative"):
            tcm.ingest_columns(["a", "b"], ["c", "d"], [1.0, -2.0])

    def test_column_length_mismatch_rejected(self):
        tcm = TCM(d=2, width=16, seed=1)
        with pytest.raises(ValueError):
            tcm.ingest_columns(["a", "b"], ["c"])
        with pytest.raises(ValueError):
            tcm.ingest_columns(["a"], ["c"], [1.0, 2.0])

    def test_columns_default_unit_weights(self):
        tcm = TCM(d=2, width=16, seed=1)
        tcm.ingest_columns(["a", "b"], ["c", "d"])
        assert tcm.edge_weight("a", "c") >= 1.0
        assert tcm.total_weight_estimate() == pytest.approx(2.0)

    def test_conservative_requires_sum(self):
        tcm = TCM(d=2, width=16, seed=1, aggregation=Aggregation.MIN)
        with pytest.raises(ValueError, match="sum aggregation"):
            tcm.ingest_conservative(make_stream(True, n=10))


class TestConservativeBatched:
    def build_pair(self, stream, chunk_size, sparse=False):
        config = dict(d=3, width=24, seed=9, directed=stream.directed,
                      sparse=sparse)
        reference = TCM(**config)
        for edge in stream:
            reference.update_conservative(edge.source, edge.target,
                                          edge.weight)
        batched = TCM(**config)
        batched.ingest_conservative(iter(stream), chunk_size=chunk_size)
        return reference, batched

    @pytest.mark.parametrize("directed", [True, False])
    @pytest.mark.parametrize("sparse", [False, True])
    def test_chunk_one_is_exactly_per_edge(self, directed, sparse):
        stream = make_stream(directed, n=250)
        reference, batched = self.build_pair(stream, chunk_size=1,
                                             sparse=sparse)
        for sa, sb in zip(reference.sketches, batched.sketches):
            np.testing.assert_array_equal(sa.matrix, sb.matrix)

    @pytest.mark.parametrize("chunk_size", [10, 100])
    def test_batched_keeps_one_sided_guarantee(self, chunk_size):
        stream = make_stream(directed=True, n=400)
        truth = {}
        for edge in stream:
            truth[(edge.source, edge.target)] = \
                truth.get((edge.source, edge.target), 0.0) + edge.weight
        reference, batched = self.build_pair(stream, chunk_size=chunk_size)
        for (x, y), exact in truth.items():
            estimate = batched.edge_weight(x, y)
            # Never undercounts, and never exceeds the per-edge
            # conservative estimate (the batch floor is tighter).
            assert estimate >= exact - 1e-9
            assert estimate <= reference.edge_weight(x, y) + 1e-9

    def test_batched_tighter_than_plain_sum(self):
        stream = make_stream(directed=True, n=400)
        plain = TCM(d=3, width=8, seed=9)
        plain.ingest(iter(stream))
        _, batched = self.build_pair(stream, chunk_size=50)
        pairs = sorted({(e.source, e.target) for e in stream})
        plain_total = sum(plain.edge_weight(x, y) for x, y in pairs)
        batched_total = sum(batched.edge_weight(x, y) for x, y in pairs)
        assert batched_total <= plain_total + 1e-9


class TestIngestChunk:
    def test_chunk_matches_streaming(self):
        stream = make_stream(directed=True, n=90)
        reference, _ = build_pair(stream, chunk_size=30)
        tcm = TCM(d=3, width=24, seed=9)
        edges = list(stream)
        for start in range(0, len(edges), 30):
            tcm.ingest_chunk(edges[start:start + 30])
        assert_same_state(reference, tcm)

    def test_empty_chunk_is_noop(self):
        tcm = TCM(d=2, width=16, seed=1)
        tcm.ingest_chunk([])
        assert tcm.total_weight_estimate() == 0.0

    def test_default_chunk_size_sane(self):
        assert DEFAULT_CHUNK_SIZE >= 1024


class TestReplayHubChunked:
    def test_replay_chunked_matches_replay(self):
        from repro.streams.replay import MonitoringHub

        stream = make_stream(directed=True, n=120)
        ref_hub = MonitoringHub()
        reference = ref_hub.attach("tcm", TCM(d=3, width=24, seed=9))
        assert ref_hub.replay(stream) == 120

        chunk_hub = MonitoringHub()
        chunked = chunk_hub.attach("tcm", TCM(d=3, width=24, seed=9))
        assert chunk_hub.replay_chunked(iter(stream), chunk_size=16) == 120
        assert_same_state(reference, chunked)
