"""Tests for the CountSketch baseline."""

import pytest

from repro.baselines.countsketch import CountSketch, EdgeCountSketch
from repro.streams.generators import ipflow_like


class TestCountSketch:
    def test_validation(self):
        with pytest.raises(ValueError):
            CountSketch(0, 8)
        with pytest.raises(ValueError):
            CountSketch(3, 0)

    def test_exact_when_spacious(self):
        sketch = CountSketch(5, 1024, seed=1)
        sketch.update("key", 7.0)
        assert sketch.estimate("key") == pytest.approx(7.0)

    def test_accumulation(self):
        sketch = CountSketch(5, 1024, seed=1)
        sketch.update("key", 3.0)
        sketch.update("key", 4.0)
        assert sketch.estimate("key") == pytest.approx(7.0)

    def test_negative_updates_supported(self):
        """Turnstile model: weights may go down and even negative."""
        sketch = CountSketch(5, 1024, seed=1)
        sketch.update("key", 3.0)
        sketch.update("key", -5.0)
        assert sketch.estimate("key") == pytest.approx(-2.0)

    def test_remove(self):
        sketch = CountSketch(5, 1024, seed=1)
        sketch.update("key", 3.0)
        sketch.remove("key", 3.0)
        assert sketch.estimate("key") == pytest.approx(0.0)

    def test_unbiasedness(self):
        """Across seeds, the mean error is ~0 (unlike CountMin's bias)."""
        frequencies = {f"k{i}": float(i + 1) for i in range(60)}
        errors = []
        for seed in range(20):
            sketch = CountSketch(5, 16, seed=seed)  # heavy collisions
            for key, freq in frequencies.items():
                sketch.update(key, freq)
            errors.extend(sketch.estimate(k) - f
                          for k, f in frequencies.items())
        mean_error = sum(errors) / len(errors)
        total = sum(frequencies.values())
        assert abs(mean_error) < 0.02 * total

    def test_two_sided_errors_exist(self):
        """Under collisions some estimates fall below the truth --
        impossible for CountMin/TCM."""
        sketch = CountSketch(1, 4, seed=3)
        for i in range(100):
            sketch.update(f"k{i}", 1.0)
        undercounts = sum(1 for i in range(100)
                          if sketch.estimate(f"k{i}") < 1.0)
        assert undercounts > 0

    def test_clear(self):
        sketch = CountSketch(3, 32, seed=1)
        sketch.update("key", 1.0)
        sketch.clear()
        assert sketch.estimate("key") == 0.0

    def test_size(self):
        assert CountSketch(3, 100).size_in_cells == 300


class TestEdgeCountSketch:
    def test_edge_weight(self):
        sketch = EdgeCountSketch(5, 512, seed=1)
        sketch.update("a", "b", 4.0)
        assert sketch.edge_weight("a", "b") == pytest.approx(4.0)

    def test_directional(self):
        sketch = EdgeCountSketch(5, 2048, seed=1)
        sketch.update("a", "b", 4.0)
        assert sketch.edge_weight("b", "a") == pytest.approx(0.0)

    def test_undirected_folds(self):
        sketch = EdgeCountSketch(5, 512, seed=1, directed=False)
        sketch.update("a", "b", 1.0)
        sketch.update("b", "a", 2.0)
        assert sketch.edge_weight("a", "b") == pytest.approx(3.0)

    def test_accuracy_comparable_to_countmin_in_rmse(self):
        """On a congested workload, CountSketch RMSE is in CountMin's
        ballpark (its advantage is the unbiasedness, not magnitude)."""
        from repro.baselines.countmin import EdgeCountMin

        stream = ipflow_like(n_hosts=80, n_packets=2500, seed=5)
        cs = EdgeCountSketch(5, 400, seed=2)
        cm = EdgeCountMin(5, 400, seed=2)
        cs.ingest(stream)
        cm.ingest(stream)
        edges = sorted(stream.distinct_edges, key=repr)

        def rmse(estimator):
            squares = [(estimator(*e) - stream.edge_weight(*e)) ** 2
                       for e in edges]
            return (sum(squares) / len(squares)) ** 0.5

        assert rmse(cs.edge_weight) < 5 * rmse(cm.edge_weight) + 1.0
