"""Tests for the parameter-sweep drivers."""

import pytest

from repro.experiments.sweeps import accuracy_grid, cheapest_configuration


class TestAccuracyGrid:
    def test_shape(self):
        rows = accuracy_grid("gtgraph", "tiny", ratios=(1 / 20, 1 / 60),
                             d_values=(1, 3))
        assert len(rows) == 2
        assert len(rows[0]) == 3  # label + 2 d columns

    def test_monotone_in_d(self):
        rows = accuracy_grid("gtgraph", "tiny", ratios=(1 / 60,),
                             d_values=(1, 5))
        assert rows[0][2] <= rows[0][1]

    def test_monotone_in_compression(self):
        rows = accuracy_grid("gtgraph", "tiny", ratios=(1 / 20, 1 / 80),
                             d_values=(3,))
        assert rows[0][1] <= rows[1][1]

    def test_countmin_variant(self):
        rows = accuracy_grid("gtgraph", "tiny", ratios=(1 / 40,),
                             d_values=(3,), summary="countmin")
        assert rows[0][1] >= 0

    def test_summary_validation(self):
        with pytest.raises(ValueError):
            accuracy_grid("gtgraph", "tiny", summary="magic")


class TestCheapestConfiguration:
    def test_finds_a_config(self):
        result = cheapest_configuration("gtgraph", target_are=50.0,
                                        scale="tiny",
                                        ratios=(1 / 20, 1 / 40),
                                        d_values=(1, 3))
        assert result is not None
        ratio, d, are, cells = result
        assert are <= 50.0
        assert cells > 0

    def test_impossible_budget(self):
        result = cheapest_configuration("gtgraph", target_are=-1.0,
                                        scale="tiny",
                                        ratios=(1 / 40,), d_values=(1,))
        assert result is None

    def test_prefers_cheaper_space(self):
        """With a loose budget, the minimal-space grid point wins."""
        result = cheapest_configuration("gtgraph", target_are=1e9,
                                        scale="tiny",
                                        ratios=(1 / 20, 1 / 80),
                                        d_values=(1, 3))
        ratio, d, _, _ = result
        assert d == 1
        assert ratio == 1 / 80
