"""Tests for shadow-truth accuracy telemetry (repro.obs.accuracy).

The comparator's exactness invariant is the module's load-bearing claim:
for every currently sampled key, the stored aggregate equals replaying
the entire stream for that key.  The property tests here assert it
against a brute-force replay across aggregations, batch shapes, and
insert+delete mixes; the drift tests assert the detector's two promises
(fires on an injected R-MAT parameter shift, stays silent on a
stationary stream).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.obs.accuracy import (
    AccuracyTracker,
    DriftDetector,
    PageHinkley,
    RotatingShadowTruth,
    ShadowTruthComparator,
    shadow_truth_for,
)
from repro.streams.generators import rmat
from repro.streams.rotating import RotatingWindowTCM


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()


def brute_force(ops, aggregation):
    """Replay (op, source, target, weight) tuples exactly, per edge key."""
    values = {}
    counts = {}
    for op, s, t, w in ops:
        key = (s, t)
        if op == "del":
            delta = 1.0 if aggregation is Aggregation.COUNT else w
            values[key] = values.get(key, 0.0) - delta
            continue
        counts[key] = counts.get(key, 0) + 1
        if key not in values:
            values[key] = 1.0 if aggregation is Aggregation.COUNT else w
        elif aggregation is Aggregation.SUM:
            values[key] += w
        elif aggregation is Aggregation.COUNT:
            values[key] += 1.0
        elif aggregation is Aggregation.MIN:
            values[key] = min(values[key], w)
        else:
            values[key] = max(values[key], w)
    return values


def feed_in_batches(comparator, ops, batch_size):
    """Feed ops through the vectorized column paths in batches."""
    inserts = []
    for op, s, t, w in ops:
        if op == "ins":
            inserts.append((s, t, w))
            continue
        if inserts:
            _flush(comparator, inserts, batch_size)
            inserts = []
        comparator.remove(s, t, w)
    if inserts:
        _flush(comparator, inserts, batch_size)


def _flush(comparator, inserts, batch_size):
    for lo in range(0, len(inserts), batch_size):
        batch = inserts[lo:lo + batch_size]
        comparator.observe_columns(
            [s for s, _, _ in batch], [t for _, t, _ in batch],
            np.array([w for _, _, w in batch], dtype=np.float64))


edge_ops = st.lists(
    st.tuples(st.sampled_from(["ins", "ins", "ins", "del"]),
              st.integers(0, 30), st.integers(0, 30),
              st.floats(0.5, 16.0, allow_nan=False)),
    min_size=1, max_size=300)


class TestComparatorExactness:
    @settings(max_examples=40, deadline=None)
    @given(ops=edge_ops, batch_size=st.sampled_from([1, 7, 64, 300]),
           seed=st.integers(0, 3))
    def test_sum_exact_under_insert_delete(self, ops, batch_size, seed):
        comparator = ShadowTruthComparator(Aggregation.SUM, sample_size=16,
                                           seed=seed)
        feed_in_batches(comparator, ops, batch_size)
        exact = brute_force(ops, Aggregation.SUM)
        for s, t, value in comparator.sampled():
            assert value == pytest.approx(exact[(s, t)])

    @settings(max_examples=30, deadline=None)
    @given(ops=edge_ops, batch_size=st.sampled_from([1, 13, 300]),
           aggregation=st.sampled_from([Aggregation.MIN, Aggregation.MAX,
                                        Aggregation.COUNT]))
    def test_min_max_count_exact(self, ops, batch_size, aggregation):
        inserts = [op for op in ops if op[0] == "ins"]
        comparator = ShadowTruthComparator(aggregation, sample_size=16,
                                           seed=1)
        feed_in_batches(comparator, inserts, batch_size)
        exact = brute_force(inserts, aggregation)
        for s, t, value in comparator.sampled():
            assert value == pytest.approx(exact[(s, t)])

    @settings(max_examples=25, deadline=None)
    @given(ops=edge_ops, seed=st.integers(0, 5))
    def test_sample_is_bottom_k_of_distinct_keys(self, ops, seed):
        """The final sample is exactly the bottom-k distinct keys by rank."""
        inserts = [op for op in ops if op[0] == "ins"]
        comparator = ShadowTruthComparator(Aggregation.SUM, sample_size=8,
                                           seed=seed)
        feed_in_batches(comparator, inserts, 300)
        pairs = sorted({(s, t) for _, s, t, _ in inserts})
        if not pairs:
            assert len(comparator) == 0
            return
        keys, ranks = comparator.hash_columns([s for s, _ in pairs],
                                              [t for _, t in pairs])
        by_rank = sorted(zip(ranks.tolist(), keys.tolist()))
        expected = {key for _, key in by_rank[:comparator.sample_size]}
        assert set(comparator._tracked.keys()) == expected

    def test_batch_order_independent_of_chunking(self):
        rng = np.random.default_rng(5)
        sources = rng.integers(0, 50, size=2000).tolist()
        targets = rng.integers(0, 50, size=2000).tolist()
        weights = rng.uniform(0.1, 9.0, size=2000)
        whole = ShadowTruthComparator(Aggregation.SUM, sample_size=32, seed=2)
        whole.observe_columns(sources, targets, weights)
        chunked = ShadowTruthComparator(Aggregation.SUM, sample_size=32,
                                        seed=2)
        for lo in range(0, 2000, 170):
            chunked.observe_columns(sources[lo:lo + 170],
                                    targets[lo:lo + 170],
                                    weights[lo:lo + 170])
        assert sorted(whole.sampled()) == pytest.approx(
            sorted(chunked.sampled()))

    def test_cold_start_single_giant_batch(self):
        """One batch far larger than sample_size lands exactly."""
        rng = np.random.default_rng(11)
        n = 50_000
        sources = rng.integers(0, 4000, size=n).tolist()
        targets = rng.integers(0, 4000, size=n).tolist()
        weights = rng.uniform(0.5, 4.0, size=n)
        comparator = ShadowTruthComparator(Aggregation.SUM, sample_size=64,
                                           seed=3)
        comparator.observe_columns(sources, targets, weights)
        exact = brute_force(
            [("ins", s, t, w)
             for s, t, w in zip(sources, targets, weights)],
            Aggregation.SUM)
        assert len(comparator) == 64
        for s, t, value in comparator.sampled():
            assert value == pytest.approx(exact[(s, t)])

    def test_hash_columns_shared_between_same_seed_trackers(self):
        a = ShadowTruthComparator(Aggregation.SUM, sample_size=8, seed=9)
        b = ShadowTruthComparator(Aggregation.COUNT, sample_size=4, seed=9)
        sources = list(range(100))
        targets = list(range(100, 200))
        hashed = a.hash_columns(sources, targets)
        pair_b, ranks_b = b.hash_columns(sources, targets)
        assert np.array_equal(hashed[0], pair_b)
        assert np.array_equal(hashed[1], ranks_b)
        # Feeding the precomputed pair gives the same state as rehashing.
        b2 = ShadowTruthComparator(Aggregation.COUNT, sample_size=4, seed=9)
        b.observe_columns(sources, targets, hashed=hashed)
        b2.observe_columns(sources, targets)
        assert sorted(b.sampled()) == sorted(b2.sampled())

    def test_rejects_delete_on_min(self):
        comparator = ShadowTruthComparator(Aggregation.MIN)
        with pytest.raises(ValueError, match="does not support deletion"):
            comparator.remove("a", "b", 1.0)

    def test_memory_is_bounded_by_sample_size(self):
        comparator = ShadowTruthComparator(Aggregation.SUM, sample_size=32,
                                           seed=0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            comparator.observe_columns(
                rng.integers(0, 100_000, size=1000).tolist(),
                rng.integers(0, 100_000, size=1000).tolist())
        assert len(comparator) == 32
        assert comparator.memory_bytes() == 32 * 160


class TestRotatingShadowTruth:
    def test_expiry_matches_live_buckets(self):
        """Weight outside the horizon vanishes from the exact truth."""
        truth = RotatingShadowTruth(horizon=8.0, buckets=4, sample_size=64,
                                    seed=0)
        # One element per time unit for the same key; span = 2.0.
        for ts in range(12):
            truth.observe_timestamped(["a"], ["b"], np.array([1.0]),
                                      np.array([float(ts)]))
        exact = truth.exact_weight("a", "b")
        # Live buckets: the current (partial) bucket plus `buckets` older
        # ones; anything below bucket_index - buckets has been dropped.
        span = truth.span
        oldest_live = truth._bucket_index - truth.buckets
        expected = sum(1.0 for ts in range(12)
                       if ts // span >= oldest_live)
        assert exact == pytest.approx(expected)

    def test_live_weight_drops_on_rotation(self):
        truth = RotatingShadowTruth(horizon=4.0, buckets=2, sample_size=8,
                                    seed=0)
        truth.observe_timestamped(["x"], ["y"], np.array([5.0]),
                                  np.array([0.0]))
        before = truth.live_weight
        truth.observe_timestamped(["x"], ["y"], np.array([1.0]),
                                  np.array([100.0]))
        assert before == pytest.approx(5.0)
        assert truth.live_weight == pytest.approx(1.0)

    def test_matches_rotating_window_semantics(self):
        """Truth and RotatingWindowTCM agree on a collision-free stream."""
        window = RotatingWindowTCM(8.0, buckets=4, d=2, width=64, seed=1)
        truth = shadow_truth_for(window, sample_size=256, seed=1)
        assert isinstance(truth, RotatingShadowTruth)
        rng = np.random.default_rng(2)
        for step in range(40):
            s = int(rng.integers(0, 8))
            t = int(rng.integers(0, 8))
            w = float(rng.uniform(1, 3))
            ts = step * 0.3
            window.observe(s, t, w, timestamp=ts)
            truth.observe_timestamped([s], [t], np.array([w]),
                                      np.array([ts]))
        for s, t, exact in truth.sampled():
            estimate = window.edge_weight(s, t)
            # A sketch never underestimates SUM; with 8 nodes on a
            # 64-wide sketch there are no collisions, so it is exact.
            assert estimate == pytest.approx(exact)


class TestPageHinkley:
    def test_silent_on_stationary_series(self):
        ph = PageHinkley(delta=0.01, lamb=0.25)
        rng = np.random.default_rng(0)
        for x in rng.normal(0.5, 0.005, size=200):
            assert ph.update(float(x)) is None

    def test_fires_upward_on_step_change(self):
        ph = PageHinkley(delta=0.01, lamb=0.25)
        fired = []
        for x in [0.1] * 20 + [0.9] * 20:
            direction = ph.update(x)
            if direction:
                fired.append(direction)
        assert "up" in fired

    def test_fires_downward_when_bidirectional(self):
        ph = PageHinkley(delta=0.01, lamb=0.25, bidirectional=True)
        fired = [ph.update(x) for x in [0.9] * 20 + [0.1] * 20]
        assert "down" in [f for f in fired if f]

    def test_warmup_defers_alarms(self):
        ph = PageHinkley(delta=0.0, lamb=0.001, min_samples=10)
        for i, x in enumerate([0.0] * 5 + [10.0] * 4):
            assert ph.update(x) is None, f"alarmed during warmup at {i}"


class TestDriftDetector:
    def test_error_shift_fires_and_resets(self):
        detector = DriftDetector(min_samples=4)
        events = []
        for x in [0.1] * 10 + [2.0] * 10:
            events.extend(detector.update(error=x))
        assert any(e.signal == "error" and e.direction == "up"
                   for e in events)

    def test_occupancy_growth_decay_is_silent(self):
        """A stationary fill curve (slowing growth) never alarms."""
        detector = DriftDetector(min_samples=4)
        occupancy = 0.0
        events = []
        for step in range(60):
            occupancy += (0.9 - occupancy) * 0.05   # saturating fill
            events.extend(detector.update(occupancy=occupancy))
        assert events == []

    def test_occupancy_growth_jump_fires(self):
        detector = DriftDetector(min_samples=4)
        events = []
        occupancy = 0.0
        deltas = [0.001] * 30 + [0.05] * 10         # key-space expansion
        for delta in deltas:
            occupancy += delta
            events.extend(detector.update(occupancy=min(occupancy, 1.0)))
        assert any(e.signal == "occupancy" for e in events)


class TestAccuracyTracker:
    def _ingest(self, tcm, tracker, stream):
        sources, targets, weights = [], [], []
        for edge in stream:
            sources.append(edge.source)
            targets.append(edge.target)
            weights.append(edge.weight)
        tcm.ingest_columns(sources, targets,
                           np.array(weights, dtype=np.float64))
        tracker.observe_columns(sources, targets,
                                np.array(weights, dtype=np.float64))

    def test_tick_reports_exact_on_oversized_sketch(self):
        """No collisions => observed ARE 0, FPR 0, epsilon 0."""
        tcm = TCM(d=4, width=256, seed=0)
        tracker = AccuracyTracker(tcm, sample_size=32, seed=0)
        self._ingest(tcm, tracker, rmat(16, 2000, seed=3))
        report = tracker.tick()
        assert report.sampled_keys == 32
        assert report.mean_are == pytest.approx(0.0)
        assert report.false_positive_rate == pytest.approx(0.0)
        assert report.observed_epsilon == pytest.approx(0.0)

    def test_saturated_sketch_reports_positive_error(self):
        tcm = TCM(d=2, width=8, seed=0)
        tracker = AccuracyTracker(tcm, sample_size=32, seed=0)
        self._ingest(tcm, tracker, rmat(512, 4000, seed=4))
        report = tracker.tick()
        assert report.mean_are > 0.1
        assert report.false_positive_rate > 0.5

    def test_drift_fires_on_rmat_shift_and_not_before(self):
        """The acceptance scenario: silent while stationary, alarmed
        after the generator's quadrant parameters shift."""
        tcm = TCM(d=4, width=96, seed=0)
        tracker = AccuracyTracker(tcm, sample_size=64, seed=0,
                                  name="drift-test")
        stationary_events = 0
        for _ in range(12):
            self._ingest(tcm, tracker, rmat(256, 2500, seed=7,
                                            partition=(0.45, 0.15,
                                                       0.15, 0.25)))
            stationary_events += len(tracker.tick().drift_events)
        shifted_events = 0
        for _ in range(12):
            self._ingest(tcm, tracker, rmat(256, 2500, seed=8,
                                            partition=(0.05, 0.35,
                                                       0.45, 0.15)))
            shifted_events += len(tracker.tick().drift_events)
        assert stationary_events == 0
        assert shifted_events >= 1

    def test_gauges_exported_when_enabled(self):
        obs.enable()
        tcm = TCM(d=2, width=64, seed=0)
        tracker = AccuracyTracker(tcm, sample_size=8, seed=0, name="gauged")
        self._ingest(tcm, tracker, rmat(16, 500, seed=1))
        tracker.tick()
        rendered = obs.render_prometheus()
        assert 'accuracy_observed_are{summary="gauged"}' in rendered
        assert 'accuracy_sampled_keys{summary="gauged"} 8' in rendered

    def test_flight_records_drift_events(self):
        flight = obs.FlightRecorder(capacity=16)
        detector = DriftDetector(min_samples=2)
        tcm = TCM(d=2, width=64, seed=0)
        tracker = AccuracyTracker(tcm, sample_size=8, seed=0,
                                  detector=detector, flight=flight)
        # Drive the detector directly through ticks with injected error.
        for x in [0.0] * 5 + [5.0] * 5:
            detector_events = detector.update(error=x)
            for event in detector_events:
                flight.record_drift(event, summary="injected")
        assert any(e.kind == "drift" for e in flight.events())
