"""Tests for the Theorem 1 calibration driver."""

import pytest

from repro.experiments.calibration import calibration_table


class TestCalibrationTable:
    def test_structure(self):
        rows = calibration_table("gtgraph", "tiny",
                                 targets=((0.05, 0.2),), trials=2)
        assert len(rows) == 1
        epsilon, delta, d, w, rate = rows[0]
        assert (epsilon, delta) == (0.05, 0.2)
        assert d >= 1 and w >= 1
        assert 0.0 <= rate <= 1.0

    def test_guarantee_holds(self):
        rows = calibration_table("gtgraph", "tiny",
                                 targets=((0.05, 0.2), (0.02, 0.1)),
                                 trials=2)
        for epsilon, delta, d, w, rate in rows:
            assert rate <= delta

    def test_tighter_eps_means_bigger_sketch(self):
        rows = calibration_table("gtgraph", "tiny",
                                 targets=((0.05, 0.1), (0.01, 0.1)),
                                 trials=1)
        assert rows[1][3] > rows[0][3]  # w grows as eps shrinks

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            calibration_table(trials=0)
