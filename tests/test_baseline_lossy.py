"""Tests for Manku-Motwani lossy counting."""

import pytest

from repro.baselines.lossy_counting import LossyCounter


class TestLossyCounter:
    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            LossyCounter(0.0)
        with pytest.raises(ValueError):
            LossyCounter(1.0)

    def test_counts_without_pruning(self):
        counter = LossyCounter(0.5)
        counter.update("a")
        assert counter.estimate("a") == 1.0

    def test_undercount_bound(self):
        """estimate <= true and true - estimate <= eps * N."""
        epsilon = 0.02
        counter = LossyCounter(epsilon)
        truth = {}
        for i in range(5000):
            item = f"i{i % 100}" if i % 3 else "hot"
            counter.update(item)
            truth[item] = truth.get(item, 0) + 1
        for item, exact in truth.items():
            estimate = counter.estimate(item)
            assert estimate <= exact
            assert exact - estimate <= epsilon * counter.stream_length

    def test_space_bounded(self):
        counter = LossyCounter(0.01)
        for i in range(20000):
            counter.update(f"unique_{i}")
        # All items are singletons: the structure stays near 1/eps entries.
        assert len(counter) <= 2 * int(1 / 0.01)

    def test_frequent_items_no_false_negatives(self):
        counter = LossyCounter(0.01)
        for i in range(1000):
            counter.update("dominant")
            counter.update(f"noise_{i}")
        support = 0.25
        found = dict(counter.frequent_items(support))
        assert "dominant" in found

    def test_frequent_items_sorted(self):
        counter = LossyCounter(0.1)
        for _ in range(50):
            counter.update("a")
        for _ in range(30):
            counter.update("b")
        items = counter.frequent_items(0.2)
        assert items[0][0] == "a"

    def test_support_validation(self):
        counter = LossyCounter(0.1)
        counter.update("a")
        with pytest.raises(ValueError):
            counter.frequent_items(0.0)

    def test_weighted_updates(self):
        counter = LossyCounter(0.5)
        counter.update("a", 5.0)
        assert counter.estimate("a") == 5.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            LossyCounter(0.1).update("a", -1.0)

    def test_unseen_item_zero(self):
        assert LossyCounter(0.1).estimate("nope") == 0.0

    def test_stream_length(self):
        counter = LossyCounter(0.1)
        for _ in range(7):
            counter.update("x")
        assert counter.stream_length == 7
