"""Robustness tests for sketch files: corruption and interop."""

import numpy as np
import pytest

from repro.core.serialization import load_tcm, save_tcm
from repro.core.tcm import TCM


class TestCorruptFiles:
    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a numpy archive")
        with pytest.raises(Exception):
            load_tcm(path)

    def test_missing_keys(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, format_version=np.int64(1), d=np.int64(1),
                 directed=np.bool_(True))
        with pytest.raises(KeyError):
            load_tcm(path)

    def test_truncated_matrix_set(self, tmp_path):
        """d says 2 but only one matrix present."""
        tcm = TCM(d=1, width=8, seed=1)
        path = tmp_path / "one.npz"
        save_tcm(tcm, path)
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["d"] = np.int64(2)
        np.savez(tmp_path / "two.npz", **payload)
        with pytest.raises(KeyError):
            load_tcm(tmp_path / "two.npz")

    def test_no_pickle_ever(self, tmp_path):
        """Files must load with allow_pickle=False (security posture)."""
        tcm = TCM(d=2, width=16, seed=1, keep_labels=True)
        tcm.update("alice", "bob", 1.0)
        path = tmp_path / "s.npz"
        save_tcm(tcm, path)
        with np.load(path, allow_pickle=False) as archive:
            assert len(archive.files) > 0  # loads cleanly without pickle


class TestSparseInterop:
    def test_sparse_tcm_serializes_via_dense_matrices(self, tmp_path):
        """Sparse summaries persist through the same format (densified);
        the loaded sketch answers identically."""
        sparse = TCM(d=2, width=16, seed=3, sparse=True)
        sparse.update("a", "b", 4.0)
        sparse.update("c", "d", 1.0)
        path = tmp_path / "sparse.npz"
        save_tcm(sparse, path)
        loaded = load_tcm(path)
        assert loaded.edge_weight("a", "b") == 4.0
        assert loaded.edge_weight("c", "d") == 1.0

    def test_dense_and_sparse_files_identical(self, tmp_path):
        dense = TCM(d=2, width=16, seed=3)
        sparse = TCM(d=2, width=16, seed=3, sparse=True)
        for tcm in (dense, sparse):
            tcm.update("x", "y", 2.0)
        save_tcm(dense, tmp_path / "dense.npz")
        save_tcm(sparse, tmp_path / "sparse.npz")
        a = load_tcm(tmp_path / "dense.npz")
        b = load_tcm(tmp_path / "sparse.npz")
        for s1, s2 in zip(a.sketches, b.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix)
