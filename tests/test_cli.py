"""Tests for the ``tcm`` command-line tool."""

import pytest

from repro.cli import main
from repro.streams.io import write_stream


@pytest.fixture
def trace_file(tmp_path, ipflow_stream):
    path = tmp_path / "trace.txt"
    write_stream(ipflow_stream, path)
    return path


@pytest.fixture
def sketch_file(tmp_path, trace_file):
    path = tmp_path / "sketch.npz"
    main(["summarize", str(trace_file), str(path), "--d", "3",
          "--width", "48"])
    return path


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = tmp_path / "dataset.txt"
        assert main(["generate", "dblp", str(out), "--scale", "tiny"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert out.exists()

    def test_generate_rejects_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "facebook", str(tmp_path / "x.txt")])


class TestStats:
    def test_stats_report(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "elements" in out
        assert "distinct edges" in out
        assert "weight histogram" in out


class TestSummarizeAndInfo:
    def test_summarize_creates_sketch(self, trace_file, tmp_path, capsys):
        out = tmp_path / "s.npz"
        assert main(["summarize", str(trace_file), str(out)]) == 0
        assert out.exists()
        assert "summarized" in capsys.readouterr().out

    def test_info(self, sketch_file, capsys):
        assert main(["info", str(sketch_file)]) == 0
        out = capsys.readouterr().out
        assert "sketches     3" in out
        assert "48x48" in out

    def test_summarize_extended(self, trace_file, tmp_path, capsys):
        out = tmp_path / "ext.npz"
        assert main(["summarize", str(trace_file), str(out),
                     "--keep-labels", "--width", "32"]) == 0
        assert main(["info", str(out)]) == 0
        assert "extended" in capsys.readouterr().out


class TestQuery:
    def test_edge_query(self, sketch_file, ipflow_stream, capsys):
        edge = next(iter(sorted(ipflow_stream.distinct_edges, key=repr)))
        assert main(["query", str(sketch_file), "edge",
                     edge[0], edge[1]]) == 0
        estimate = float(capsys.readouterr().out)
        # %g output keeps 6 significant digits.
        assert estimate >= ipflow_stream.edge_weight(*edge) * (1 - 1e-5)

    def test_reach_query(self, sketch_file, ipflow_stream, capsys):
        edge = next(iter(sorted(ipflow_stream.distinct_edges, key=repr)))
        assert main(["query", str(sketch_file), "reach",
                     edge[0], edge[1]]) == 0
        assert capsys.readouterr().out.strip() == "reachable"

    def test_shortest_query(self, sketch_file, ipflow_stream, capsys):
        edge = next(iter(sorted(ipflow_stream.distinct_edges, key=repr)))
        assert main(["query", str(sketch_file), "shortest",
                     edge[0], edge[1]]) == 0
        assert float(capsys.readouterr().out) > 0

    def test_inflow_query(self, sketch_file, ipflow_stream, capsys):
        node = sorted(ipflow_stream.nodes)[0]
        assert main(["query", str(sketch_file), "inflow", node]) == 0
        assert float(capsys.readouterr().out) >= 0

    def test_edge_query_missing_second_node(self, sketch_file):
        with pytest.raises(SystemExit):
            main(["query", str(sketch_file), "edge", "a"])

    def test_unknown_kind_rejected(self, sketch_file):
        with pytest.raises(SystemExit):
            main(["query", str(sketch_file), "teleport", "a", "b"])

    def test_missing_kind_rejected(self, sketch_file):
        with pytest.raises(SystemExit):
            main(["query", str(sketch_file)])


class TestQueryBatch:
    def test_batch_file_matches_scalar_queries(self, tmp_path, sketch_file,
                                               ipflow_stream, capsys):
        from repro.core.serialization import load_tcm

        edge = next(iter(sorted(ipflow_stream.distinct_edges, key=repr)))
        node = sorted(ipflow_stream.nodes)[0]
        batch = tmp_path / "queries.txt"
        batch.write_text(
            "# a comment and a blank line are skipped\n\n"
            f"edge {edge[0]} {edge[1]}\n"
            f"reach {edge[0]} {edge[1]}\n"
            f"shortest {edge[0]} {edge[1]}\n"
            f"outflow {node}\n"
            f"inflow {node}\n")
        assert main(["query", str(sketch_file), "--batch", str(batch)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        tcm = load_tcm(sketch_file)
        assert float(lines[0]) == pytest.approx(tcm.edge_weight(*edge),
                                                rel=1e-5)
        assert lines[1] == "reachable"
        assert float(lines[2]) == pytest.approx(
            tcm.shortest_path_weight(*edge), rel=1e-5)
        assert float(lines[3]) == pytest.approx(tcm.out_flow(node), rel=1e-5)
        assert float(lines[4]) == pytest.approx(tcm.in_flow(node), rel=1e-5)

    def test_batch_rejects_malformed_line(self, tmp_path, sketch_file):
        batch = tmp_path / "bad.txt"
        batch.write_text("reach only_one_label\n")
        with pytest.raises(SystemExit):
            main(["query", str(sketch_file), "--batch", str(batch)])

    def test_batch_rejects_unknown_kind(self, tmp_path, sketch_file):
        batch = tmp_path / "bad.txt"
        batch.write_text("teleport a b\n")
        with pytest.raises(SystemExit):
            main(["query", str(sketch_file), "--batch", str(batch)])


class TestModuleEntryPoint:
    def test_python_m_repro(self, trace_file):
        import subprocess
        import sys
        result = subprocess.run(
            [sys.executable, "-m", "repro", "stats", str(trace_file)],
            capture_output=True, text=True)
        assert result.returncode == 0
        assert "elements" in result.stdout


class TestIngest:
    def test_ingest_creates_sketch(self, trace_file, tmp_path, capsys):
        out = tmp_path / "chunked.npz"
        assert main(["ingest", str(trace_file), str(out),
                     "--d", "3", "--width", "48",
                     "--chunk-size", "500"]) == 0
        assert out.exists()
        assert "ingested" in capsys.readouterr().out

    def test_ingest_matches_summarize(self, trace_file, sketch_file,
                                      tmp_path, ipflow_stream):
        from repro.core.serialization import load_tcm
        out = tmp_path / "chunked.npz"
        assert main(["ingest", str(trace_file), str(out), "--d", "3",
                     "--width", "48", "--chunk-size", "100"]) == 0
        chunked = load_tcm(out)
        reference = load_tcm(sketch_file)
        for x, y in sorted(ipflow_stream.distinct_edges, key=repr)[:50]:
            assert chunked.edge_weight(x, y) == \
                pytest.approx(reference.edge_weight(x, y))

    def test_ingest_parallel(self, trace_file, tmp_path, capsys):
        out = tmp_path / "parallel.npz"
        assert main(["ingest", str(trace_file), str(out), "--d", "3",
                     "--width", "48", "--parallel", "2",
                     "--chunk-size", "200"]) == 0
        assert out.exists()
        assert "workers" in capsys.readouterr().out

    def test_ingest_conservative(self, trace_file, tmp_path, capsys):
        out = tmp_path / "cons.npz"
        assert main(["ingest", str(trace_file), str(out), "--d", "3",
                     "--width", "48", "--conservative"]) == 0
        assert "conservative" in capsys.readouterr().out

    def test_conservative_parallel_rejected(self, trace_file, tmp_path):
        with pytest.raises(SystemExit, match="mergeable"):
            main(["ingest", str(trace_file), str(tmp_path / "x.npz"),
                  "--conservative", "--parallel", "2"])

    def test_bad_parallel_rejected(self, trace_file, tmp_path):
        with pytest.raises(SystemExit, match="parallel"):
            main(["ingest", str(trace_file), str(tmp_path / "x.npz"),
                  "--parallel", "0"])
