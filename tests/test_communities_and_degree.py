"""Tests for label propagation, modularity and degree estimation."""

import pytest

from repro.analytics.communities import label_propagation, modularity
from repro.analytics.views import StreamView
from repro.core.tcm import TCM
from repro.streams.generators import clique_stream
from repro.streams.model import GraphStream


@pytest.fixture
def two_cliques():
    """Two dense 4-cliques joined by a single weak bridge."""
    stream = GraphStream(directed=False)
    t = 0
    for group in (["a1", "a2", "a3", "a4"], ["b1", "b2", "b3", "b4"]):
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                for _ in range(3):  # weight 3 per internal pair
                    stream.add(group[i], group[j], 1.0, float(t))
                    t += 1
    stream.add("a1", "b1", 1.0, float(t))
    return stream


class TestLabelPropagation:
    def test_finds_the_two_cliques(self, two_cliques):
        communities = label_propagation(StreamView(two_cliques), seed=1)
        as_sets = [frozenset(c) for c in communities]
        assert frozenset({"a1", "a2", "a3", "a4"}) in as_sets
        assert frozenset({"b1", "b2", "b3", "b4"}) in as_sets

    def test_single_clique_single_community(self):
        stream = clique_stream(["x", "y", "z", "w"])
        communities = label_propagation(StreamView(stream), seed=1)
        assert len(communities) == 1

    def test_deterministic(self, two_cliques):
        view = StreamView(two_cliques)
        assert label_propagation(view, seed=4) == \
            label_propagation(view, seed=4)

    def test_isolated_nodes_singletons(self):
        stream = GraphStream(directed=False)
        stream.add("a", "b", 1.0)
        stream.add("c", "c", 1.0)  # self-loop only: effectively isolated
        communities = label_propagation(StreamView(stream))
        assert {"c"} in communities

    def test_validation(self, two_cliques):
        with pytest.raises(ValueError):
            label_propagation(StreamView(two_cliques), max_iterations=0)

    def test_runs_on_sketch(self, two_cliques):
        tcm = TCM.from_stream(two_cliques, d=1, width=64, seed=2)
        communities = label_propagation(tcm.views()[0], seed=1)
        # Super-node communities must separate the two clique images.
        sketch = tcm.sketches[0]
        a_buckets = {sketch.node_of(f"a{i}") for i in range(1, 5)}
        b_buckets = {sketch.node_of(f"b{i}") for i in range(1, 5)}
        community_of = {}
        for index, community in enumerate(communities):
            for bucket in community:
                community_of[bucket] = index
        assert len({community_of[b] for b in a_buckets}) == 1
        assert len({community_of[b] for b in b_buckets}) == 1


class TestModularity:
    def test_good_partition_positive(self, two_cliques):
        view = StreamView(two_cliques)
        good = [{"a1", "a2", "a3", "a4"}, {"b1", "b2", "b3", "b4"}]
        assert modularity(view, good) > 0.3

    def test_bad_partition_lower(self, two_cliques):
        view = StreamView(two_cliques)
        good = [{"a1", "a2", "a3", "a4"}, {"b1", "b2", "b3", "b4"}]
        bad = [{"a1", "b2", "a3", "b4"}, {"b1", "a2", "b3", "a4"}]
        assert modularity(view, bad) < modularity(view, good)

    def test_empty_graph(self):
        assert modularity(StreamView(GraphStream(directed=False)), []) == 0.0

    def test_lp_partition_scores_well(self, two_cliques):
        view = StreamView(two_cliques)
        communities = label_propagation(view, seed=1)
        assert modularity(view, communities) > 0.3


class TestDegreeEstimate:
    def test_exact_when_wide(self):
        stream = GraphStream(directed=True)
        for i in range(7):
            stream.add("hub", f"leaf{i}", 1.0)
        tcm = TCM.from_stream(stream, d=3, width=256, seed=1)
        assert tcm.degree_estimate("hub", "out") == 7
        assert tcm.degree_estimate("leaf0", "in") == 1

    def test_capped_by_width(self):
        stream = GraphStream(directed=True)
        for i in range(100):
            stream.add("hub", f"leaf{i}", 1.0)
        tcm = TCM.from_stream(stream, d=2, width=8, seed=1)
        assert tcm.degree_estimate("hub", "out") <= 8

    def test_validation(self):
        tcm = TCM(d=1, width=8, seed=1)
        with pytest.raises(ValueError):
            tcm.degree_estimate("a", "sideways")


class TestBatchFlows:
    def test_matches_scalar(self, ipflow_stream):
        import numpy as np
        tcm = TCM.from_stream(ipflow_stream, d=3, width=48, seed=2)
        nodes = sorted(ipflow_stream.nodes)[:50]
        np.testing.assert_allclose(
            tcm.out_flows(nodes),
            [tcm.out_flow(n) for n in nodes])
        np.testing.assert_allclose(
            tcm.in_flows(nodes),
            [tcm.in_flow(n) for n in nodes])

    def test_empty_batch(self):
        tcm = TCM(d=1, width=8, seed=1)
        assert len(tcm.out_flows([])) == 0

    def test_undirected_rejected(self):
        tcm = TCM(d=1, width=8, seed=1, directed=False)
        with pytest.raises(ValueError):
            tcm.out_flows(["a"])

    def test_works_on_sparse(self, ipflow_stream):
        import numpy as np
        tcm = TCM(d=2, width=48, seed=2, sparse=True)
        tcm.ingest(ipflow_stream)
        nodes = sorted(ipflow_stream.nodes)[:30]
        np.testing.assert_allclose(
            tcm.out_flows(nodes),
            [tcm.out_flow(n) for n in nodes])
