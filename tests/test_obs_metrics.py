"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro import obs
from repro.core.tcm import TCM
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts disabled with zeroed default-registry values."""
    obs.disable()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()


class TestLogBuckets:
    def test_log_scale(self):
        assert log_buckets(1e-2, 1.0, per_decade=1) == (0.01, 0.1, 1.0)

    def test_half_decades(self):
        buckets = log_buckets(1e-2, 1.0, per_decade=2)
        assert len(buckets) == 5
        assert buckets[0] == pytest.approx(0.01)
        assert buckets[1] == pytest.approx(0.0316227766)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 0.1)
        with pytest.raises(ValueError):
            log_buckets(1e-3, 1.0, per_decade=0)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        c = registry.counter("x_total", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels(self):
        c = MetricsRegistry().counter("x_total", labelnames=("kind",))
        c.labels("a").inc(2)
        c.labels("b").inc(3)
        assert c.labels("a").value == 2
        assert c.value == 5  # family value sums children
        # same label combination returns the same child
        assert c.labels("a") is c.labels("a")

    def test_labeled_family_rejects_direct_inc(self):
        c = MetricsRegistry().counter("x_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            c.inc()

    def test_wrong_label_arity(self):
        c = MetricsRegistry().counter("x_total", labelnames=("a", "b"))
        with pytest.raises(ValueError):
            c.labels("only-one")

    def test_unlabeled_rejects_labels_call(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.labels("a")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_labels(self):
        g = MetricsRegistry().gauge("g", labelnames=("shard",))
        g.labels(0).set(1.5)
        assert g.labels("0").value == 1.5  # label values stringify


class TestHistogram:
    def test_bucketing(self):
        h = MetricsRegistry().histogram("h", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(5.555)
        assert h.bucket_counts == [1, 2, 3, 4]  # cumulative, +Inf last

    def test_boundary_lands_in_its_bucket(self):
        # le semantics: an observation equal to a bound belongs to it.
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 1, 1]

    def test_mean_and_quantile(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 0.5, 50.0, 50.0):
            h.observe(v)
        assert h.mean == pytest.approx(25.25)
        assert h.quantile(0.25) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.1))

    def test_labels(self):
        h = MetricsRegistry().histogram("h", labelnames=("kind",),
                                        buckets=(1.0,))
        h.labels("a").observe(0.5)
        h.labels("b").observe(2.0)
        assert h.count == 2
        assert h.labels("a").count == 1


class TestRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help")
        b = registry.counter("x_total")
        assert a is b

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x", labelnames=("b",))

    def test_reset_preserves_handles(self):
        registry = MetricsRegistry()
        c = registry.counter("x_total")
        c.inc(5)
        registry.reset()
        assert c.value == 0
        assert registry.get("x_total") is c  # handle still registered
        c.inc()
        assert c.value == 1

    def test_reset_clears_labeled_children(self):
        registry = MetricsRegistry()
        c = registry.counter("x_total", labelnames=("k",))
        c.labels("a").inc(3)
        registry.reset()
        assert c.value == 0

    def test_collect_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.gauge("a")
        assert [m.name for m in registry.collect()] == ["a", "b_total"]


class TestRenderPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests").inc(3)
        registry.gauge("temp", "temperature").set(21.5)
        text = obs.render_prometheus(registry)
        assert "# TYPE req_total counter" in text
        assert "req_total 3" in text
        assert "temp 21.5" in text

    def test_labels_and_histogram_exposition(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", "latency", labelnames=("kind",),
                               buckets=(0.1, 1.0))
        h.labels("edge").observe(0.05)
        text = obs.render_prometheus(registry)
        assert 'lat_bucket{kind="edge",le="0.1"} 1' in text
        assert 'lat_bucket{kind="edge",le="+Inf"} 1' in text
        assert 'lat_count{kind="edge"} 1' in text


class TestNoOpFastPath:
    def test_disabled_instrumentation_records_nothing(self):
        tcm = TCM(d=2, width=16, seed=1)
        tcm.update("a", "b", 2.0)
        tcm.edge_weight("a", "b")
        assert obs.OBS.tcm_updates.value == 0
        assert obs.OBS.query_seconds.count == 0

    def test_enabled_instrumentation_records(self):
        tcm = TCM(d=2, width=16, seed=1)
        obs.enable()
        tcm.update("a", "b", 2.0)
        tcm.update("b", "c", 3.0)
        tcm.edge_weight("a", "b")
        assert obs.OBS.tcm_updates.value == 2
        assert obs.OBS.tcm_update_weight.value == 5.0
        assert obs.OBS.query_seconds.labels("edge_weight").count == 1

    def test_ingest_counters(self, small_directed):
        obs.enable()
        tcm = TCM(d=2, width=16, seed=1)
        tcm.ingest(small_directed)
        assert obs.OBS.tcm_ingest_elements.value == len(small_directed)
        assert obs.OBS.tcm_ingest_seconds.count == 1

    def test_snapshot_roundtrip(self):
        import json
        obs.enable()
        tcm = TCM(d=2, width=16, seed=1)
        tcm.update("a", "b")
        doc = json.loads(obs.json_snapshot(tcms={"t": tcm}))
        assert doc["enabled"] is True
        assert doc["metrics"]["tcm_updates_total"]["samples"][0]["value"] == 1
        assert doc["health"]["t"]["d"] == 2
