"""Tests for the parallel sharded build (repro.distributed.parallel).

Same-seed workers build independent partial summaries whose cells are
sums over disjoint stream shards, so ``merge_from`` reconstructs the
single-process summary exactly -- bit-identical for integer/dyadic
weights (float addition commutes there), estimate-identical otherwise.
The equivalence tests use integer weights so equality is exact.
"""

import collections

import numpy as np
import pytest

from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.distributed.parallel import ParallelTCMBuilder, parallel_ingest
from tests.test_ingest_engine import assert_same_state, make_stream

Edge = collections.namedtuple("Edge", "source target weight timestamp")


def multi_builder(**kwargs):
    # These tests exercise the multiprocess transports themselves, so
    # they opt out of the honest single-core fallback (this reference
    # box has one hardware core; see TestSingleCoreFallback).
    kwargs.setdefault("single_core_fallback", False)
    return ParallelTCMBuilder(**kwargs)


def single_process(stream, **config):
    tcm = TCM(**config)
    tcm.ingest(iter(stream))
    return tcm


class TestParallelEquivalence:
    @pytest.mark.parametrize("aggregation", list(Aggregation))
    def test_matches_single_process(self, aggregation):
        stream = make_stream(directed=True, n=300)
        config = dict(d=3, width=24, seed=9, aggregation=aggregation)
        reference = single_process(stream, **config)
        built = multi_builder(workers=2, chunk_size=32,
                              **config).build(iter(stream))
        assert_same_state(reference, built)

    def test_undirected(self):
        stream = make_stream(directed=False, n=200)
        config = dict(d=3, width=24, seed=9, directed=False)
        reference = single_process(stream, **config)
        built = multi_builder(workers=2, chunk_size=17,
                              **config).build(iter(stream))
        assert_same_state(reference, built)

    def test_keep_labels(self):
        stream = make_stream(directed=True, n=200)
        config = dict(d=2, width=24, seed=9, keep_labels=True)
        reference = single_process(stream, **config)
        built = multi_builder(workers=3, chunk_size=11,
                              **config).build(iter(stream))
        assert_same_state(reference, built)

    def test_sparse_backend(self):
        stream = make_stream(directed=True, n=200)
        config = dict(d=2, width=24, seed=9, sparse=True)
        reference = single_process(stream, **config)
        built = multi_builder(workers=2, chunk_size=25,
                              **config).build(iter(stream))
        for sa, sb in zip(reference.sketches, built.sketches):
            np.testing.assert_array_equal(sa.matrix, sb.matrix)

    def test_single_worker_shortcut(self):
        stream = make_stream(directed=True, n=150)
        config = dict(d=3, width=24, seed=9)
        reference = single_process(stream, **config)
        built = ParallelTCMBuilder(workers=1, chunk_size=16,
                                   **config).build(iter(stream))
        assert_same_state(reference, built)

    def test_empty_stream(self):
        built = multi_builder(workers=2, d=2, width=16,
                              seed=1).build(iter([]))
        assert built.total_weight_estimate() == 0.0

    def test_parallel_ingest_honors_stream_direction(self):
        stream = make_stream(directed=False, n=120)
        built = parallel_ingest(stream, workers=2, chunk_size=16,
                                single_core_fallback=False,
                                d=3, width=24, seed=9)
        assert not built.directed
        reference = TCM(d=3, width=24, seed=9, directed=False)
        reference.ingest(iter(stream))
        assert_same_state(reference, built)


class TestTransportSelection:
    """The builder picks shared memory when it can, queues when it must."""

    def test_dense_build_uses_shared_memory(self):
        stream = make_stream(directed=True, n=200)
        builder = multi_builder(workers=2, chunk_size=32,
                                d=2, width=24, seed=9)
        builder.build(iter(stream))
        assert builder.last_build_info["mode"] == "shared_memory"
        assert builder.last_build_info["shm_bytes"] > 0

    def test_sparse_build_falls_back_to_queue(self):
        stream = make_stream(directed=True, n=120)
        builder = multi_builder(workers=2, chunk_size=32,
                                d=2, width=24, seed=9, sparse=True)
        builder.build(iter(stream))
        assert builder.last_build_info["mode"] == "queue"

    def test_keep_labels_build_falls_back_to_queue(self):
        stream = make_stream(directed=True, n=120)
        builder = multi_builder(workers=2, chunk_size=32,
                                d=2, width=24, seed=9,
                                keep_labels=True)
        builder.build(iter(stream))
        assert builder.last_build_info["mode"] == "queue"

    def test_single_worker_skips_both_transports(self):
        stream = make_stream(directed=True, n=80)
        builder = ParallelTCMBuilder(workers=1, chunk_size=32,
                                     d=2, width=24, seed=9)
        builder.build(iter(stream))
        assert builder.last_build_info["mode"] == "single"

    def test_forced_queue_transport_matches_shared_memory(self):
        stream = make_stream(directed=True, n=200)
        config = dict(d=2, width=24, seed=9)
        shm = multi_builder(workers=2, chunk_size=32,
                            use_shared_memory=True, **config)
        queued = multi_builder(workers=2, chunk_size=32,
                               use_shared_memory=False, **config)
        assert_same_state(shm.build(iter(stream)),
                          queued.build(iter(stream)))
        assert shm.last_build_info["mode"] == "shared_memory"
        assert queued.last_build_info["mode"] == "queue"

    def test_forcing_shared_memory_on_sparse_config_rejected(self):
        with pytest.raises(ValueError, match="shared.memory"):
            ParallelTCMBuilder(workers=2, d=2, width=16, seed=1,
                               sparse=True, use_shared_memory=True)

    def test_shm_gauge_returns_to_zero_after_build(self):
        from repro.obs import instruments
        instruments.enable()
        try:
            stream = make_stream(directed=True, n=150)
            builder = ParallelTCMBuilder(workers=2, chunk_size=32,
                                         d=2, width=24, seed=9)
            builder.build(iter(stream))
            assert instruments.OBS.parallel_shm_bytes.value == 0.0
        finally:
            instruments.disable()

    def test_shm_worker_failure_surfaces(self):
        # Same contract as the queue transport: a worker hitting a bad
        # weight must fail the whole build loudly, and the parent must
        # still unlink its segments (no leak -> no tracker warnings).
        edges = [Edge("a", "b", 1.0, 0.0), Edge("c", "d", -5.0, 1.0)]
        builder = multi_builder(workers=2, chunk_size=1,
                                d=2, width=16, seed=1,
                                use_shared_memory=True)
        with pytest.raises(RuntimeError, match="worker"):
            builder.build(iter(edges))


class TestSingleCoreFallback:
    """On a one-core box a multi-worker build degrades to chunked ingest."""

    def test_fallback_forced(self, monkeypatch):
        import repro.distributed.parallel as parallel_mod
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)
        stream = make_stream(directed=True, n=200)
        config = dict(d=3, width=24, seed=9)
        builder = ParallelTCMBuilder(workers=4, chunk_size=32, **config)
        built = builder.build(iter(stream))
        info = builder.last_build_info
        assert info["mode"] == "single_fallback"
        assert info["workers"] == 1
        assert info["requested_workers"] == 4
        assert "cpu_count" in info["reason"]
        assert_same_state(single_process(stream, **config), built)

    def test_fallback_emits_flight_mark(self, monkeypatch):
        from repro.obs.flight import FLIGHT
        import repro.distributed.parallel as parallel_mod
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)
        recorded_before = FLIGHT.recorded
        builder = ParallelTCMBuilder(workers=2, d=2, width=16, seed=1)
        builder.build(iter(make_stream(directed=True, n=50)))
        assert FLIGHT.recorded > recorded_before
        marks = [e for e in FLIGHT.events()
                 if e.kind == "mark"
                 and e.payload.get("note") == "parallel single-core fallback"]
        assert marks and marks[-1].payload["requested_workers"] == 2

    def test_no_fallback_on_multicore(self, monkeypatch):
        import repro.distributed.parallel as parallel_mod
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 8)
        stream = make_stream(directed=True, n=120)
        builder = ParallelTCMBuilder(workers=2, chunk_size=32,
                                     d=2, width=24, seed=9)
        builder.build(iter(stream))
        assert builder.last_build_info["mode"] == "shared_memory"

    def test_opt_out_keeps_transport(self, monkeypatch):
        import repro.distributed.parallel as parallel_mod
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)
        stream = make_stream(directed=True, n=120)
        builder = ParallelTCMBuilder(workers=2, chunk_size=32,
                                     single_core_fallback=False,
                                     d=2, width=24, seed=9)
        builder.build(iter(stream))
        assert builder.last_build_info["mode"] == "shared_memory"


class TestParallelValidation:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelTCMBuilder(workers=0, d=2, width=16, seed=1)

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelTCMBuilder(workers=2, chunk_size=0,
                               d=2, width=16, seed=1)

    def test_rejects_unseeded_config(self):
        # Workers must hash identically or the merge is meaningless.
        with pytest.raises(ValueError, match="seed"):
            ParallelTCMBuilder(workers=2, d=2, width=16, seed=None)

    def test_worker_failure_surfaces(self):
        # StreamEdge validates weight >= 0 at construction, so smuggle
        # the bad weight through a bare namedtuple; the worker's
        # update_many rejects it and build() must re-raise, not hang.
        edges = [Edge("a", "b", 1.0, 0.0), Edge("c", "d", -5.0, 1.0)]
        builder = multi_builder(workers=2, chunk_size=1,
                                d=2, width=16, seed=1)
        with pytest.raises(RuntimeError, match="worker"):
            builder.build(iter(edges))
