"""Tests for the Aggregation enum and community-structured generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import Aggregation
from repro.core.decay import TimeDecayedTCM
from repro.streams.generators import dblp_like


class TestAggregationEnum:
    def test_invertibility(self):
        assert Aggregation.SUM.invertible
        assert Aggregation.COUNT.invertible
        assert not Aggregation.MIN.invertible
        assert not Aggregation.MAX.invertible

    def test_overestimation_direction(self):
        assert Aggregation.SUM.overestimates
        assert Aggregation.COUNT.overestimates
        assert Aggregation.MAX.overestimates
        assert not Aggregation.MIN.overestimates

    def test_merge_directions(self):
        assert Aggregation.SUM.merge([3.0, 1.0, 2.0]) == 1.0
        assert Aggregation.MIN.merge([3.0, 1.0, 2.0]) == 3.0

    def test_round_trip_by_value(self):
        for aggregation in Aggregation:
            assert Aggregation(aggregation.value) is aggregation


class TestCommunityGeneration:
    def test_validation(self):
        with pytest.raises(ValueError):
            dblp_like(100, 100, communities=0)
        with pytest.raises(ValueError):
            dblp_like(10, 100, communities=4)
        with pytest.raises(ValueError):
            dblp_like(100, 100, communities=2, crossover=1.5)

    def test_default_single_community_unchanged(self):
        """communities=1 must reproduce the historical default stream."""
        a = dblp_like(100, 200, seed=5)
        b = dblp_like(100, 200, communities=1, seed=5)
        assert [(e.source, e.target) for e in a] == \
            [(e.source, e.target) for e in b]

    def test_zero_crossover_blocks_disconnected(self):
        stream = dblp_like(120, 400, communities=3, crossover=0.0, seed=7)
        # author ids are rank*communities + community: id % 3 = community.
        for x, y in stream.distinct_edges:
            cx = int(str(x).split("_")[1]) % 3
            cy = int(str(y).split("_")[1]) % 3
            assert cx == cy

    def test_crossover_creates_bridges(self):
        stream = dblp_like(120, 600, communities=3, crossover=0.3, seed=7)
        crossing = sum(
            1 for x, y in stream.distinct_edges
            if int(str(x).split("_")[1]) % 3 != int(str(y).split("_")[1]) % 3)
        assert crossing > 0

    def test_block_structure_detectable(self):
        from repro.analytics.communities import label_propagation
        from repro.analytics.views import StreamView
        stream = dblp_like(160, 800, communities=4, crossover=0.03, seed=9)
        communities = label_propagation(StreamView(stream), seed=1)
        big = [c for c in communities if len(c) > 5]
        assert len(big) == 4


class TestDecayProperty:
    """The decayed estimate equals the analytic geometric aggregate."""

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=50.0,
                              allow_nan=False), min_size=1, max_size=15),
           st.floats(min_value=0.3, max_value=0.95))
    def test_closed_form(self, weights, decay):
        decayed = TimeDecayedTCM(decay, d=2, width=64, seed=1)
        for t, weight in enumerate(weights):
            decayed.observe("a", "b", weight, timestamp=float(t))
        final_t = len(weights) - 1
        expected = sum(w * decay ** (final_t - t)
                       for t, w in enumerate(weights))
        assert decayed.edge_weight("a", "b") == pytest.approx(expected,
                                                              rel=1e-9)
