"""The kernel layer's contract: registry semantics plus bit-identity.

``repro.core.kernels`` promises that every backend produces *bit
identical* sketch state to the per-element scalar loop, for arbitrary
float weights.  This suite checks that promise three ways:

- primitive-level: each scatter kernel against the unbuffered
  ``ufunc.at`` reference it replaced, including the dense/compact
  bincount variants and the unit-count fast-path gate near 2**52;
- model-level (hypothesis): chunked ``TCM.ingest_columns`` /
  ``remove_many`` against the scalar ``update`` / ``remove`` loop across
  aggregations, orientations and backends;
- twin-level: the plain-Python numba bodies (which jit verbatim) against
  the numpy kernels and against ``PairwiseHash.hash_int``, so the fused
  path is exercised even on machines without numba.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.aggregation import Aggregation
from repro.core.kernels import (
    NumpyKernels,
    _EXACT_COUNT_LIMIT,
    _hash_coefficients,
    _kb_fused_scatter,
    _kb_hash_key,
    _kb_scatter_add,
    _kb_scatter_extreme,
    _kb_scatter_floor,
    _kb_scatter_sub,
    available_backends,
    dedup_keys,
)
from repro.core.tcm import TCM
from repro.hashing.family import HashFamily
from repro.hashing.labels import label_keys

HAS_NUMBA = "numba" in available_backends()


@pytest.fixture(autouse=True)
def _restore_default_backend():
    """Tests mutate the process-wide default; always put it back."""
    yield
    kernels.reset()


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_available_always_offers_auto_and_numpy(self):
        names = available_backends()
        assert "auto" in names
        assert "numpy" in names

    def test_set_backend_numpy(self):
        assert kernels.set_backend("numpy") == "numpy"
        assert kernels.active_backend() == "numpy"
        assert isinstance(kernels.get_backend(), NumpyKernels)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.resolve_backend("fortran")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        kernels.reset()
        assert kernels.active_backend() == "numpy"

    def test_env_var_bogus_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "cuda")
        kernels.reset()
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.get_backend()

    def test_explicit_name_does_not_change_default(self):
        kernels.set_backend("numpy")
        kernels.get_backend("auto")
        assert kernels.active_backend() == "numpy"

    def test_use_backend_restores_previous(self):
        kernels.set_backend("numpy")
        with kernels.use_backend("auto") as backend:
            assert backend is kernels.get_backend()
        assert kernels.active_backend() == "numpy"

    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed here")
    def test_numba_request_fails_loudly_when_absent(self):
        with pytest.raises(ValueError, match="numba is not importable"):
            kernels.resolve_backend("numba")

    @pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
    def test_numba_selectable_when_present(self):
        assert kernels.set_backend("numba") == "numba"
        assert kernels.get_backend().fused

    def test_auto_resolves_to_concrete_backend(self):
        name = kernels.set_backend("auto")
        assert name in ("numpy", "numba")


class TestDedupKeys:
    def test_small_batch_skips_dedup(self):
        keys = np.arange(10, dtype=np.uint64)
        unique, inverse = dedup_keys(keys)
        assert unique is keys
        assert inverse is None

    def test_repetitive_batch_dedups_losslessly(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 50, size=5000).astype(np.uint64)
        unique, inverse = dedup_keys(keys)
        assert inverse is not None
        assert unique.shape[0] <= 50
        np.testing.assert_array_equal(unique[inverse], keys)

    def test_mostly_distinct_batch_skips_dedup(self):
        keys = np.arange(5000, dtype=np.uint64)
        unique, inverse = dedup_keys(keys)
        assert inverse is None


# -- primitive kernels vs ufunc.at references --------------------------------


def random_batch(rng, n, shape, unit=False):
    rows = rng.integers(0, shape[0], size=n).astype(np.int64)
    cols = rng.integers(0, shape[1], size=n).astype(np.int64)
    if unit:
        values = np.ones(n, dtype=np.float64)
    else:
        values = np.exp(rng.normal(size=n)).astype(np.float64)
    return rows, cols, values


@pytest.mark.parametrize("shape,n", [
    ((4, 8), 500),        # dense variant: table smaller than 4n
    ((64, 256), 100),     # compact variant: table much larger than batch
])
class TestScatterAddSub:
    def test_add_matches_add_at(self, shape, n):
        rng = np.random.default_rng(1)
        rows, cols, values = random_batch(rng, n, shape)
        expected = rng.normal(size=shape)
        actual = expected.copy()
        np.add.at(expected, (rows, cols), values)
        NumpyKernels().scatter_add(actual, rows, cols, values)
        np.testing.assert_array_equal(actual, expected)

    def test_sub_matches_subtract_at(self, shape, n):
        rng = np.random.default_rng(2)
        rows, cols, values = random_batch(rng, n, shape)
        expected = np.abs(rng.normal(size=shape)) * 100
        actual = expected.copy()
        np.subtract.at(expected, (rows, cols), values)
        NumpyKernels().scatter_sub(actual, rows, cols, values)
        np.testing.assert_array_equal(actual, expected)

    def test_unit_weights_match_scalar_loop(self, shape, n):
        rng = np.random.default_rng(3)
        rows, cols, values = random_batch(rng, n, shape, unit=True)
        expected = np.zeros(shape)
        actual = expected.copy()
        np.add.at(expected, (rows, cols), values)
        NumpyKernels().scatter_add(actual, rows, cols, None)
        np.testing.assert_array_equal(actual, expected)


class TestCountFastPathGate:
    """Unit-count bincount is only exact below 2**53; check the gate."""

    def test_near_limit_falls_back_to_seeded_path(self):
        # A cell sitting just below the fast-path gate: integer addition
        # is no longer guaranteed associative, so the kernel must replay
        # the +1s per cell exactly like the scalar loop.
        matrix = np.full((2, 2), _EXACT_COUNT_LIMIT - 1.5)
        expected = matrix.copy()
        rows = np.zeros(8, dtype=np.int64)
        cols = np.zeros(8, dtype=np.int64)
        for _ in range(8):
            expected[0, 0] += 1.0
        NumpyKernels().scatter_add(matrix, rows, cols, None)
        np.testing.assert_array_equal(matrix, expected)

    def test_far_from_limit_takes_fast_path_exactly(self):
        matrix = np.zeros((3, 5))
        rng = np.random.default_rng(4)
        rows = rng.integers(0, 3, size=1000).astype(np.int64)
        cols = rng.integers(0, 5, size=1000).astype(np.int64)
        expected = matrix.copy()
        np.add.at(expected, (rows, cols), 1.0)
        NumpyKernels().scatter_add(matrix, rows, cols, None)
        np.testing.assert_array_equal(matrix, expected)


class TestScatterExtremeAndFloor:
    @pytest.mark.parametrize("minimum", [True, False])
    def test_extreme_matches_scalar_loop(self, minimum):
        rng = np.random.default_rng(5)
        shape = (8, 16)
        rows, cols, values = random_batch(rng, 400, shape)
        exp_mat = np.zeros(shape)
        exp_touch = np.zeros(shape, dtype=bool)
        for r, c, v in zip(rows, cols, values):
            if not exp_touch[r, c]:
                exp_mat[r, c] = v
                exp_touch[r, c] = True
            elif minimum:
                exp_mat[r, c] = min(exp_mat[r, c], v)
            else:
                exp_mat[r, c] = max(exp_mat[r, c], v)
        mat = np.zeros(shape)
        touch = np.zeros(shape, dtype=bool)
        NumpyKernels().scatter_extreme(mat, touch, rows, cols, values,
                                       minimum)
        np.testing.assert_array_equal(mat, exp_mat)
        np.testing.assert_array_equal(touch, exp_touch)

    def test_floor_matches_maximum_at(self):
        rng = np.random.default_rng(6)
        shape = (8, 16)
        rows, cols, floors = random_batch(rng, 400, shape)
        expected = np.abs(rng.normal(size=shape))
        actual = expected.copy()
        np.maximum.at(expected, (rows, cols), floors)
        NumpyKernels().scatter_floor(actual, rows, cols, floors)
        np.testing.assert_array_equal(actual, expected)


class TestScatterAdd1D:
    def test_matches_add_at(self):
        rng = np.random.default_rng(7)
        table = rng.normal(size=64)
        expected = table.copy()
        idx = rng.integers(0, 64, size=500).astype(np.int64)
        values = np.exp(rng.normal(size=500))
        np.add.at(expected, idx, values)
        NumpyKernels().scatter_add_1d(table, idx, values)
        np.testing.assert_array_equal(table, expected)

    def test_unit_weights(self):
        table = np.zeros(16)
        idx = np.array([3, 3, 3, 0, 15], dtype=np.int64)
        NumpyKernels().scatter_add_1d(table, idx, None)
        assert table[3] == 3.0 and table[0] == 1.0 and table[15] == 1.0


class TestSegmentCellSums:
    def test_groups_and_sums(self):
        rows = np.array([0, 1, 0, 1], dtype=np.int64)
        cols = np.array([2, 0, 2, 0], dtype=np.int64)
        values = np.array([1.5, 2.0, 0.5, 3.0])
        cells, sums = NumpyKernels().segment_cell_sums(rows, cols, 4, values)
        np.testing.assert_array_equal(cells, [2, 4])
        np.testing.assert_array_equal(sums, [2.0, 5.0])


class TestEmptyBatches:
    def test_all_primitives_noop_on_empty(self):
        backend = NumpyKernels()
        matrix = np.ones((4, 4))
        touched = np.zeros((4, 4), dtype=bool)
        empty_i = np.empty(0, dtype=np.int64)
        empty_f = np.empty(0, dtype=np.float64)
        backend.scatter_add(matrix, empty_i, empty_i, empty_f)
        backend.scatter_sub(matrix, empty_i, empty_i, None)
        backend.scatter_extreme(matrix, touched, empty_i, empty_i, empty_f,
                                True)
        backend.scatter_floor(matrix, empty_i, empty_i, empty_f)
        backend.scatter_add_1d(matrix[0], empty_i, empty_f)
        np.testing.assert_array_equal(matrix, np.ones((4, 4)))
        assert not touched.any()


# -- hypothesis: kernel path == scalar path over whole models ----------------

labels = st.integers(min_value=0, max_value=25).map(lambda i: f"n{i}")
float_weights = st.floats(min_value=0.0, max_value=50.0,
                          allow_nan=False, allow_infinity=False)
elements = st.lists(st.tuples(labels, labels, float_weights),
                    min_size=1, max_size=80)

common = settings(max_examples=40, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


def assert_same_state(a: TCM, b: TCM) -> None:
    for sa, sb in zip(a.sketches, b.sketches):
        np.testing.assert_array_equal(sa.matrix, sb.matrix)
        ta, tb = getattr(sa, "_touched", None), getattr(sb, "_touched", None)
        if ta is not None or tb is not None:
            np.testing.assert_array_equal(ta, tb)


def columns(triples):
    sources = [x for x, _, _ in triples]
    targets = [y for _, y, _ in triples]
    weights = np.array([w for _, _, w in triples], dtype=np.float64)
    return sources, targets, weights


class TestKernelPathMatchesScalarPath:
    @common
    @given(elements,
           st.sampled_from(list(Aggregation)),
           st.booleans(), st.booleans())
    def test_ingest_columns(self, triples, aggregation, directed, sparse):
        if sparse and aggregation not in (Aggregation.SUM,
                                          Aggregation.COUNT):
            return
        config = dict(d=3, width=16, seed=7, directed=directed,
                      aggregation=aggregation, sparse=sparse)
        scalar = TCM(**config)
        for x, y, w in triples:
            scalar.update(x, y, w)
        vectorized = TCM(**config)
        sources, targets, weights = columns(triples)
        vectorized.ingest_columns(sources, targets, weights)
        assert_same_state(scalar, vectorized)

    @common
    @given(elements, st.booleans(), st.booleans())
    def test_remove_many(self, triples, directed, sparse):
        config = dict(d=3, width=16, seed=7, directed=directed,
                      aggregation=Aggregation.SUM, sparse=sparse)
        sources, targets, weights = columns(triples)
        if sparse:
            # The sparse backend applies one grouped total per cell (its
            # documented, pre-kernel semantics), which only matches the
            # scalar loop bitwise when addition is exact under
            # regrouping -- so pin its weights to integers.  The dense
            # path keeps the arbitrary-float check.
            weights = np.floor(weights)
        scalar = TCM(**config)
        vectorized = TCM(**config)
        for tcm in (scalar, vectorized):
            tcm.ingest_columns(sources, targets, weights * 2.0)
        for x, y, w in zip(sources, targets, weights):
            scalar.remove(x, y, float(w))
        vectorized.remove_many(sources, targets, weights)
        assert_same_state(scalar, vectorized)

    @common
    @given(elements, st.booleans())
    def test_conservative_chunk_one_is_scalar_loop(self, triples, directed):
        # The batched conservative path bottoms out in scatter_floor;
        # with chunk_size=1 it must reproduce the per-edge algorithm
        # exactly, and with larger chunks stay one-sided below it
        # (tests/test_ingest_engine.py covers the larger-chunk bound).
        config = dict(d=3, width=16, seed=7, directed=directed)
        scalar = TCM(**config)
        for x, y, w in triples:
            scalar.update_conservative(x, y, w)
        batched = TCM(**config)
        batched.ingest_conservative(
            (type("E", (), {"source": x, "target": y, "weight": w,
                            "timestamp": 0.0})() for x, y, w in triples),
            chunk_size=1)
        assert_same_state(scalar, batched)

    @common
    @given(elements, st.booleans())
    def test_keep_labels_legacy_path_unchanged(self, triples, directed):
        config = dict(d=2, width=16, seed=3, directed=directed,
                      keep_labels=True)
        scalar = TCM(**config)
        for x, y, w in triples:
            scalar.update(x, y, w)
        vectorized = TCM(**config)
        sources, targets, weights = columns(triples)
        vectorized.ingest_columns(sources, targets, weights)
        assert_same_state(scalar, vectorized)


# -- numba twins: the plain-Python bodies vs the numpy kernels ---------------


class TestNumbaTwinBodies:
    """The ``_kb_*`` bodies run unjitted here; jitted they are the numba
    backend, so parity with numpy kernels proves cross-backend identity
    even on machines without numba."""

    def test_hash_key_matches_pairwise_hash(self):
        family = HashFamily.uniform(4, 37, seed=11)
        rng = np.random.default_rng(8)
        keys = rng.integers(0, 2 ** 63, size=200, dtype=np.uint64)
        for h in family:
            a_hi, a_lo, b, width = _hash_coefficients(h)
            for key in keys:
                assert int(_kb_hash_key(a_hi, a_lo, b, width,
                                        np.uint64(key))) == h.hash_int(
                                            int(key))

    def test_scatter_add_sub_match_numpy(self):
        rng = np.random.default_rng(9)
        shape = (8, 16)
        rows, cols, values = random_batch(rng, 300, shape)
        ref = rng.normal(size=shape)
        twin = ref.copy()
        NumpyKernels().scatter_add(ref, rows, cols, values)
        flat = rows * shape[1] + cols
        _kb_scatter_add(twin.reshape(-1), flat, values)
        np.testing.assert_array_equal(twin, ref)
        NumpyKernels().scatter_sub(ref, rows, cols, values)
        _kb_scatter_sub(twin.reshape(-1), flat, values)
        np.testing.assert_array_equal(twin, ref)

    @pytest.mark.parametrize("minimum", [True, False])
    def test_scatter_extreme_matches_numpy(self, minimum):
        rng = np.random.default_rng(10)
        shape = (6, 10)
        rows, cols, values = random_batch(rng, 200, shape)
        ref_mat, ref_touch = np.zeros(shape), np.zeros(shape, dtype=bool)
        twin_mat, twin_touch = ref_mat.copy(), ref_touch.copy()
        NumpyKernels().scatter_extreme(ref_mat, ref_touch, rows, cols,
                                       values, minimum)
        _kb_scatter_extreme(twin_mat.reshape(-1), twin_touch.reshape(-1),
                            rows * shape[1] + cols, values, minimum)
        np.testing.assert_array_equal(twin_mat, ref_mat)
        np.testing.assert_array_equal(twin_touch, ref_touch)

    def test_scatter_floor_matches_numpy(self):
        rng = np.random.default_rng(11)
        shape = (6, 10)
        rows, cols, floors = random_batch(rng, 200, shape)
        ref = np.abs(rng.normal(size=shape))
        twin = ref.copy()
        NumpyKernels().scatter_floor(ref, rows, cols, floors)
        _kb_scatter_floor(twin.reshape(-1), rows * shape[1] + cols, floors)
        np.testing.assert_array_equal(twin, ref)

    @pytest.mark.parametrize("op,aggregation", [
        (0, Aggregation.SUM), (1, Aggregation.SUM),
        (2, Aggregation.MIN), (3, Aggregation.MAX),
    ])
    def test_fused_scatter_matches_hash_then_scatter(self, op, aggregation):
        family = HashFamily.uniform(2, 12, seed=21)
        row_hash, col_hash = family[0], family[1]
        rng = np.random.default_rng(12)
        n = 150
        skeys = label_keys([f"s{i}" for i in rng.integers(0, 20, size=n)])
        tkeys = label_keys([f"t{i}" for i in rng.integers(0, 20, size=n)])
        values = np.exp(rng.normal(size=n))
        shape = (row_hash.width, col_hash.width)
        ref_mat = np.zeros(shape)
        ref_touch = np.zeros(shape, dtype=bool)
        rows = row_hash.hash_many(skeys)
        cols = col_hash.hash_many(tkeys)
        backend = NumpyKernels()
        if op == 0:
            backend.scatter_add(ref_mat, rows, cols, values)
        elif op == 1:
            backend.scatter_sub(ref_mat, rows, cols, values)
        else:
            backend.scatter_extreme(ref_mat, ref_touch, rows, cols, values,
                                    op == 2)
        twin_mat = np.zeros(shape)
        twin_touch = np.zeros(shape, dtype=bool)
        ra_hi, ra_lo, rb, rw = _hash_coefficients(row_hash)
        ca_hi, ca_lo, cb, cw = _hash_coefficients(col_hash)
        _kb_fused_scatter(twin_mat.reshape(-1), twin_touch.reshape(-1),
                          np.uint64(shape[1]), ra_hi, ra_lo, rb, rw,
                          ca_hi, ca_lo, cb, cw, skeys, tkeys, values,
                          op)
        np.testing.assert_array_equal(twin_mat, ref_mat)
        np.testing.assert_array_equal(twin_touch, ref_touch)


# -- numba present: the jitted backend against numpy, end to end -------------


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestNumbaBackendEquivalence:
    @pytest.mark.parametrize("aggregation", list(Aggregation))
    def test_ingest_bit_identical_across_backends(self, aggregation):
        rng = np.random.default_rng(13)
        n = 2000
        sources = [f"n{i}" for i in rng.integers(0, 60, size=n)]
        targets = [f"n{i}" for i in rng.integers(0, 60, size=n)]
        weights = np.exp(rng.normal(size=n))
        config = dict(d=3, width=32, seed=5, aggregation=aggregation)
        with kernels.use_backend("numpy"):
            ref = TCM(**config)
            ref.ingest_columns(sources, targets, weights)
        with kernels.use_backend("numba"):
            jitted = TCM(**config)
            jitted.ingest_columns(sources, targets, weights)
        assert_same_state(ref, jitted)

    def test_removal_bit_identical_across_backends(self):
        rng = np.random.default_rng(14)
        n = 1500
        sources = [f"n{i}" for i in rng.integers(0, 40, size=n)]
        targets = [f"n{i}" for i in rng.integers(0, 40, size=n)]
        weights = np.exp(rng.normal(size=n))
        built = {}
        for name in ("numpy", "numba"):
            with kernels.use_backend(name):
                tcm = TCM(d=2, width=32, seed=9)
                tcm.ingest_columns(sources, targets, weights * 2.0)
                tcm.remove_many(sources, targets, weights)
                built[name] = tcm
        assert_same_state(built["numpy"], built["numba"])
