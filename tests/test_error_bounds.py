"""Statistical validation of the paper's error bounds (Appendix A).

Theorem 1: with ``d = ceil(ln(1/delta))`` hash functions and width
``w = ceil(e / eps)``, the edge estimate satisfies

    fe_hat(x, y) <= fe(x, y) + eps * n     with probability >= 1 - delta

where ``n`` is the total stream weight.  Lemma 1.2 gives the same form
for node flows.  These are one-sided (the lower bound
``fe_hat >= fe`` is deterministic and property-tested elsewhere).

We validate empirically: build many independently-seeded TCMs over a
fixed random stream and check the violation frequency stays below
``delta`` with slack for sampling noise.
"""

import math

import numpy as np
import pytest

from repro.core.tcm import TCM
from repro.streams.model import GraphStream


def build_random_stream(n_elements=600, n_labels=80, seed=0) -> GraphStream:
    rng = np.random.default_rng(seed)
    stream = GraphStream(directed=True)
    src = rng.integers(0, n_labels, size=n_elements)
    dst = rng.integers(0, n_labels, size=n_elements)
    for t in range(n_elements):
        stream.add(int(src[t]), int(dst[t]), 1.0, float(t))
    return stream


class TestTheorem1:
    @pytest.mark.parametrize("epsilon,delta", [(0.05, 0.05), (0.1, 0.2)])
    def test_edge_bound_violation_rate(self, epsilon, delta):
        stream = build_random_stream(seed=11)
        n = stream.total_weight()
        d = max(1, math.ceil(math.log(1.0 / delta)))
        width = math.ceil(math.e / epsilon)
        edges = sorted(stream.distinct_edges, key=repr)[:40]

        trials = 60
        violations = 0
        for trial in range(trials):
            tcm = TCM(d=d, width=width, seed=10_000 + trial)
            tcm.ingest(stream)
            for x, y in edges:
                exact = stream.edge_weight(x, y)
                if tcm.edge_weight(x, y) > exact + epsilon * n:
                    violations += 1
        rate = violations / (trials * len(edges))
        # The bound guarantees rate <= delta; allow 50% slack for the
        # finite sample (binomial noise).
        assert rate <= 1.5 * delta

    def test_lower_bound_is_deterministic(self):
        stream = build_random_stream(seed=13)
        tcm = TCM(d=2, width=8, seed=3)
        tcm.ingest(stream)
        for x, y in stream.distinct_edges:
            assert tcm.edge_weight(x, y) >= stream.edge_weight(x, y)


class TestLemma12:
    def test_node_flow_bound_violation_rate(self):
        epsilon, delta = 0.1, 0.1
        stream = build_random_stream(seed=17)
        n = stream.total_weight()
        d = max(1, math.ceil(math.log(1.0 / delta)))
        width = math.ceil(math.e / epsilon)
        nodes = sorted(stream.nodes, key=repr)[:30]

        trials = 50
        violations = 0
        for trial in range(trials):
            tcm = TCM(d=d, width=width, seed=20_000 + trial)
            tcm.ingest(stream)
            for node in nodes:
                exact = stream.out_flow(node)
                if tcm.out_flow(node) > exact + epsilon * n * math.e:
                    # Lemma 1.2's flow bound sums a whole row, so its eps
                    # is per-row; the e factor accounts for w = e/eps.
                    violations += 1
        rate = violations / (trials * len(nodes))
        assert rate <= 1.5 * delta

    def test_more_space_shrinks_error(self):
        """Halving eps (doubling w) at fixed d reduces mean edge error."""
        stream = build_random_stream(seed=19)
        edges = sorted(stream.distinct_edges, key=repr)[:50]

        def mean_error(width: int) -> float:
            errors = []
            for trial in range(10):
                tcm = TCM(d=3, width=width, seed=30_000 + trial)
                tcm.ingest(stream)
                errors.extend(tcm.edge_weight(x, y) - stream.edge_weight(x, y)
                              for x, y in edges)
            return float(np.mean(errors))

        assert mean_error(32) < mean_error(16) < mean_error(8)
