"""Tests for TCM edge, node, path and whole-graph queries (paper Section 4)."""

import math

import pytest

from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM


def build(stream, d=4, width=64, seed=7, **kwargs):
    return TCM.from_stream(stream, d=d, width=width, seed=seed, **kwargs)


class TestEdgeQueries:
    def test_exact_on_wide_sketch(self, paper_stream):
        tcm = build(paper_stream, width=128)
        for x, y in paper_stream.distinct_edges:
            assert tcm.edge_weight(x, y) == paper_stream.edge_weight(x, y)

    def test_never_underestimates(self, rmat_stream):
        tcm = build(rmat_stream, width=8)  # heavy collisions
        for x, y in rmat_stream.distinct_edges:
            assert tcm.edge_weight(x, y) >= rmat_stream.edge_weight(x, y)

    def test_q1_example4(self, paper_stream):
        """Q1: aggregated edge weight from b to c is 1 (precise)."""
        tcm = build(paper_stream)
        assert tcm.edge_weight("b", "c") == 1.0

    def test_missing_edge_zero_when_wide(self, paper_stream):
        tcm = build(paper_stream, width=128)
        assert tcm.edge_weight("a", "g") == 0.0

    def test_merge_is_min(self, rmat_stream):
        tcm = build(rmat_stream, width=8)
        for x, y in list(rmat_stream.distinct_edges)[:20]:
            per_sketch = [s.edge_estimate(x, y) for s in tcm.sketches]
            assert tcm.edge_weight(x, y) == min(per_sketch)

    def test_removal(self, small_directed):
        tcm = build(small_directed)
        tcm.remove("a", "b", 5.0)
        assert tcm.edge_weight("a", "b") == 0.0


class TestNodeQueries:
    def test_out_flow(self, paper_stream):
        tcm = build(paper_stream, width=128)
        # b has out-edges to c, d, f, a in Fig. 1.
        assert tcm.out_flow("b") == 4.0

    def test_in_flow(self, paper_stream):
        tcm = build(paper_stream, width=128)
        # b receives from a, e, g.
        assert tcm.in_flow("b") == 3.0

    def test_flows_never_underestimate(self, rmat_stream):
        tcm = build(rmat_stream, width=8)
        for node in rmat_stream.nodes:
            assert tcm.out_flow(node) >= rmat_stream.out_flow(node)
            assert tcm.in_flow(node) >= rmat_stream.in_flow(node)

    def test_undirected_flow(self, small_undirected):
        tcm = build(small_undirected, width=64)
        assert tcm.flow("y") == 6.0

    def test_flow_on_directed_raises(self, small_directed):
        tcm = build(small_directed)
        with pytest.raises(ValueError):
            tcm.flow("a")


class TestReachability:
    def test_paper_example_path(self, paper_stream):
        tcm = build(paper_stream, width=128)
        assert tcm.reachable("a", "g")   # a -> b -> d -> g
        assert tcm.reachable("a", "d")

    def test_no_false_negatives(self, rmat_stream):
        """Reachable pairs are always detected, even under collisions."""
        tcm = build(rmat_stream, width=8)
        nodes = sorted(rmat_stream.nodes)[:20]
        for a in nodes:
            for b in nodes:
                if rmat_stream.reachable(a, b):
                    assert tcm.reachable(a, b)

    def test_unreachable_detected_when_wide(self, paper_stream):
        tcm = build(paper_stream, width=256, d=6)
        # Nothing leaves the sink-free component toward an unseen node.
        assert not tcm.reachable("a", "nonexistent_node")

    def test_self_reachability(self, paper_stream):
        tcm = build(paper_stream)
        assert tcm.reachable("a", "a")

    def test_max_hops(self, paper_stream):
        tcm = build(paper_stream, width=128)
        # a -> b is one hop; a -> g needs three.
        assert tcm.reachable("a", "b", max_hops=1)
        assert not tcm.reachable("a", "g", max_hops=2)
        assert tcm.reachable("a", "g", max_hops=3)

    def test_undirected_reachability(self, small_undirected):
        tcm = build(small_undirected, width=64)
        assert tcm.reachable("x", "z")
        assert tcm.reachable("z", "x")


class TestShortestPath:
    def test_direct_edge(self, small_directed):
        tcm = build(small_directed, width=128)
        assert tcm.shortest_path_weight("b", "c") == 1.0

    def test_multi_hop(self, paper_stream):
        tcm = build(paper_stream, width=128)
        assert tcm.shortest_path_weight("a", "g") == 3.0

    def test_unreachable_is_inf(self, paper_stream):
        tcm = build(paper_stream, width=256, d=6)
        assert math.isinf(tcm.shortest_path_weight("a", "unknown"))

    def test_same_node_zero(self, paper_stream):
        tcm = build(paper_stream)
        assert tcm.shortest_path_weight("a", "a") == 0.0


class TestTriangleCount:
    def test_paper_stream_triangles(self, paper_stream):
        """Fig. 1 contains directed triangles, e.g. a->b->... count must be
        at least the true count on a wide sketch."""
        from repro.analytics.triangles import count_triangles
        from repro.analytics.views import StreamView

        tcm = build(paper_stream, width=128)
        exact = count_triangles(StreamView(paper_stream), directed=True)
        assert tcm.triangle_count() == exact

    def test_compressed_count_is_sane(self, rmat_stream):
        """Under compression the count is not a one-sided bound (corner
        collapse destroys triangles, collisions create them), but it must
        stay a non-negative integer in the right order of magnitude."""
        from repro.analytics.triangles import count_triangles
        from repro.analytics.views import StreamView

        tcm = build(rmat_stream, width=8)
        exact = count_triangles(StreamView(rmat_stream), directed=True)
        estimate = tcm.triangle_count()
        assert isinstance(estimate, int)
        assert 0 <= estimate
        assert estimate <= 10 * max(exact, 1)


class TestPagerank:
    def test_returns_one_dict_per_sketch(self, paper_stream):
        tcm = build(paper_stream, d=3, width=32)
        ranks = tcm.pagerank()
        assert len(ranks) == 3
        for rank in ranks:
            assert sum(rank.values()) == pytest.approx(1.0)


class TestTotalWeight:
    def test_total_weight_estimate(self, small_directed):
        tcm = build(small_directed)
        assert tcm.total_weight_estimate() == small_directed.total_weight()


class TestAggregationVariants:
    def test_count_mode(self, small_directed):
        tcm = build(small_directed, aggregation=Aggregation.COUNT)
        assert tcm.edge_weight("a", "b") == 2.0  # two elements

    def test_min_mode_merges_with_max(self):
        from repro.streams.model import GraphStream
        stream = GraphStream()
        stream.add("a", "b", 5.0)
        stream.add("a", "b", 3.0)
        tcm = build(stream, aggregation=Aggregation.MIN, width=4)
        # min aggregation under-approximates; merge across sketches is max.
        assert tcm.edge_weight("a", "b") <= 3.0
        per_sketch = [s.edge_estimate("a", "b") for s in tcm.sketches]
        assert tcm.edge_weight("a", "b") == max(per_sketch)

    def test_max_mode(self):
        from repro.streams.model import GraphStream
        stream = GraphStream()
        stream.add("a", "b", 5.0)
        stream.add("a", "b", 9.0)
        tcm = build(stream, aggregation=Aggregation.MAX, width=64)
        assert tcm.edge_weight("a", "b") == 9.0
