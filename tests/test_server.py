"""Tests for the micro-batching sketch service (repro.server).

Three layers: the coalescers directly (flush triggers, future
resolution, error propagation), the HTTP front end over a real loopback
socket (routing, validation, read-your-writes), and the multi-tenant
concurrency contract -- interleaved batched ingest + queries on several
named sketches must be **bit-identical** to a serial replay of the same
elements, because staged-key batch ingest applies exactly the same
uint64 keys and float64 weights the scalar path would.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.tcm import TCM
from repro.server import (
    IngestCoalescer,
    QueryCoalescer,
    SketchRegistry,
    SketchServer,
)
from repro.server.loadgen import _request, run_loadgen


def run_async(coro):
    return asyncio.run(coro)


def cols(pairs, weights=None):
    src = np.asarray([p[0] for p in pairs], dtype=np.uint64)
    dst = np.asarray([p[1] for p in pairs], dtype=np.uint64)
    wts = (np.ones(len(pairs)) if weights is None
           else np.asarray(weights, dtype=np.float64))
    return src, dst, wts


class TestIngestCoalescer:
    def test_size_trigger_flushes_immediately(self):
        async def scenario():
            batches = []
            coalescer = IngestCoalescer(
                lambda s, t, w, ts: batches.append(len(s)),
                max_batch=4, max_delay=60.0)
            f1 = coalescer.add(*cols([(1, 2), (3, 4)]))
            assert not f1.done() and len(coalescer) == 2
            f2 = coalescer.add(*cols([(5, 6), (7, 8)]))
            # Hitting max_batch flushes synchronously: one apply call.
            assert batches == [4]
            assert await f1 == 2 and await f2 == 2
            assert len(coalescer) == 0

        run_async(scenario())

    def test_deadline_trigger(self):
        async def scenario():
            batches = []
            coalescer = IngestCoalescer(
                lambda s, t, w, ts: batches.append(len(s)),
                max_batch=1024, max_delay=0.005)
            future = coalescer.add(*cols([(1, 2)]))
            # Nothing staged reaches max_batch; the deadline must fire.
            assert await asyncio.wait_for(future, timeout=2.0) == 1
            assert batches == [1]

        run_async(scenario())

    def test_batch_error_fails_every_staged_future(self):
        async def scenario():
            def explode(s, t, w, ts):
                raise RuntimeError("bad batch")

            coalescer = IngestCoalescer(explode, max_batch=2,
                                        max_delay=60.0)
            f1 = coalescer.add(*cols([(1, 2)]))
            f2 = coalescer.add(*cols([(3, 4)]))
            with pytest.raises(RuntimeError, match="bad batch"):
                await f1
            with pytest.raises(RuntimeError, match="bad batch"):
                await f2

        run_async(scenario())

    def test_unbatched_mode_applies_scalar_immediately(self):
        async def scenario():
            batch_calls, scalar_calls = [], []
            coalescer = IngestCoalescer(
                lambda s, t, w, ts: batch_calls.append(len(s)),
                apply_scalar=lambda s, t, w, ts: scalar_calls.append(
                    len(s)),
                batching=False)
            future = coalescer.add(*cols([(1, 2), (3, 4)]))
            assert future.done() and await future == 2
            assert scalar_calls == [2] and batch_calls == []

        run_async(scenario())

    def test_staging_grows_past_max_batch(self):
        async def scenario():
            batches = []
            coalescer = IngestCoalescer(
                lambda s, t, w, ts: batches.append(len(s)),
                max_batch=4, max_delay=60.0)
            pairs = [(i, i + 1) for i in range(50)]
            future = coalescer.add(*cols(pairs))
            assert await future == 50
            assert batches == [50]

        run_async(scenario())

    def test_flush_into_tcm_matches_direct_ingest(self):
        async def scenario():
            tcm = TCM(d=2, width=32, seed=5)
            coalescer = IngestCoalescer(
                lambda s, t, w, ts: tcm.ingest_keys(s, t, w),
                max_batch=8, max_delay=60.0)
            coalescer.add(*cols([(1, 2), (3, 4)], weights=[2.0, 5.0]))
            coalescer.flush()
            reference = TCM(d=2, width=32, seed=5)
            reference.update(1, 2, 2.0)
            reference.update(3, 4, 5.0)
            for a, b in zip(tcm.sketches, reference.sketches):
                np.testing.assert_array_equal(a.matrix, b.matrix)

        run_async(scenario())


class TestQueryCoalescer:
    def test_groups_by_kind_one_runner_call_each(self):
        async def scenario():
            calls = []

            def runner(kind, payload):
                calls.append((kind, len(payload)))
                if kind == "total":
                    return 42.0
                return np.arange(len(payload), dtype=np.float64)

            coalescer = QueryCoalescer(runner, max_batch=1024,
                                       max_delay=60.0)
            f_edge_a = coalescer.add("edge", [(1, 2), (3, 4)])
            f_edge_b = coalescer.add("edge", [(5, 6)])
            f_flow = coalescer.add("flow", [7, 8, 9])
            f_total = coalescer.add("total", [])
            coalescer.flush()
            assert sorted(calls) == [("edge", 3), ("flow", 3),
                                     ("total", 0)]
            assert await f_edge_a == [0.0, 1.0]
            assert await f_edge_b == [2.0]
            assert await f_flow == [0.0, 1.0, 2.0]
            assert await f_total == [42.0]

        run_async(scenario())

    def test_before_flush_runs_first(self):
        async def scenario():
            order = []
            coalescer = QueryCoalescer(
                lambda kind, payload: order.append("query") or [],
                before_flush=lambda: order.append("ingest-flush"),
                max_batch=1024, max_delay=60.0)
            coalescer.add("edge", [(1, 2)])
            coalescer.flush()
            assert order == ["ingest-flush", "query"]

        run_async(scenario())

    def test_unknown_kind_rejected(self):
        async def scenario():
            coalescer = QueryCoalescer(lambda kind, payload: [])
            with pytest.raises(ValueError, match="unknown query kind"):
                coalescer.add("shortest", [(1, 2)])

        run_async(scenario())

    def test_runner_error_fails_that_familys_futures(self):
        async def scenario():
            def runner(kind, payload):
                if kind == "edge":
                    raise RuntimeError("edge broke")
                return np.zeros(len(payload))

            coalescer = QueryCoalescer(runner, max_batch=1024,
                                       max_delay=60.0)
            f_edge = coalescer.add("edge", [(1, 2)])
            f_flow = coalescer.add("flow", [3])
            coalescer.flush()
            with pytest.raises(RuntimeError, match="edge broke"):
                await f_edge
            assert await f_flow == [0.0]

        run_async(scenario())


class TestRegistry:
    def test_create_get_delete(self):
        registry = SketchRegistry()
        registry.create("alpha", "tcm", d=2, width=32, seed=1)
        assert "alpha" in registry and registry.names() == ["alpha"]
        with pytest.raises(ValueError, match="already exists"):
            registry.create("alpha", "tcm")
        registry.delete("alpha")
        assert len(registry) == 0
        with pytest.raises(KeyError):
            registry.get("alpha")

    def test_rejects_keep_labels_and_unknown_keys(self):
        registry = SketchRegistry()
        with pytest.raises(ValueError, match="keep_labels"):
            registry.create("x", "tcm", keep_labels=True)
        with pytest.raises(ValueError, match="unknown sketch config"):
            registry.create("x", "tcm", frobnicate=3)
        with pytest.raises(ValueError, match="horizon"):
            registry.create("x", "window", d=2, width=32)

    def test_window_tenant_rejects_remove_tcm_rejects_advance(self):
        async def scenario():
            registry = SketchRegistry()
            plain = registry.create("plain", "tcm", d=2, width=32, seed=1)
            window = registry.create("ring", "window", horizon=100.0,
                                     d=2, width=32, seed=1)
            with pytest.raises(ValueError, match="advance"):
                plain.advance(5.0)
            with pytest.raises(ValueError, match="rotation"):
                window.remove([1], [2], np.ones(1))

        run_async(scenario())


class _Client:
    """Minimal keep-alive JSON client over the loadgen request helper."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def call(self, method, path, body=None):
        raw = b"" if body is None else json.dumps(body).encode()
        status, payload = await _request(self.reader, self.writer,
                                         method, path, raw)
        return status, (json.loads(payload) if payload else None)

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _with_server(scenario, **server_kwargs):
    server_kwargs.setdefault("max_delay", 0.002)
    server = SketchServer(port=0, **server_kwargs)
    port = await server.start()
    client = await _Client.open(port)
    try:
        return await scenario(client, server, port)
    finally:
        await client.close()
        await server.stop()


class TestServerHTTP:
    def test_healthz_and_unknown_routes(self):
        async def scenario(client, server, port):
            status, body = await client.call("GET", "/healthz")
            assert status == 200 and body["status"] == "ok"
            status, body = await client.call("GET", "/nope")
            assert status == 404
            status, body = await client.call("POST", "/sketches/x/zap")
            assert status == 404

        run_async(_with_server(scenario))

    def test_sketch_lifecycle(self):
        async def scenario(client, server, port):
            status, body = await client.call(
                "PUT", "/sketches/alpha",
                {"kind": "tcm", "d": 2, "width": 32, "seed": 1})
            assert status == 201 and body["name"] == "alpha"
            status, _ = await client.call(
                "PUT", "/sketches/alpha", {"kind": "tcm"})
            assert status == 409
            status, body = await client.call("GET", "/sketches")
            assert status == 200 and body["sketches"] == ["alpha"]
            status, body = await client.call("GET", "/sketches/alpha")
            assert status == 200 and body["kind"] == "tcm"
            status, body = await client.call("GET", "/sketches/ghost")
            assert status == 404
            status, body = await client.call("DELETE", "/sketches/alpha")
            assert status == 200
            status, body = await client.call("GET", "/sketches")
            assert body["sketches"] == []

        run_async(_with_server(scenario))

    def test_bad_bodies_get_400(self):
        async def scenario(client, server, port):
            await client.call("PUT", "/sketches/a",
                              {"d": 2, "width": 32, "seed": 1})
            status, body = await client.call(
                "POST", "/sketches/a/ingest", {"sources": "oops"})
            assert status == 400 and "sources" in body["error"]
            status, body = await client.call(
                "POST", "/sketches/a/ingest",
                {"sources": [1], "targets": [2, 3]})
            assert status == 400
            status, body = await client.call(
                "POST", "/sketches/a/ingest",
                {"sources": [1], "targets": [2], "weights": [1, 2]})
            assert status == 400
            status, body = await client.call(
                "POST", "/sketches/a/query", {"kind": "bogus"})
            assert status == 400
            status, body = await client.call(
                "POST", "/sketches/a/query", {"kind": "edge"})
            assert status == 400
            status, body = await client.call(
                "PUT", "/sketches/bad", {"keep_labels": True})
            assert status == 400 and "keep_labels" in body["error"]

        run_async(_with_server(scenario))

    def test_ingest_then_query_reads_own_writes(self):
        async def scenario(client, server, port):
            await client.call("PUT", "/sketches/a",
                              {"d": 3, "width": 64, "seed": 2})
            status, body = await client.call(
                "POST", "/sketches/a/ingest",
                {"sources": ["u", "v", "u"], "targets": ["v", "w", "v"],
                 "weights": [1.0, 2.0, 3.0]})
            assert status == 200 and body["ingested"] == 3
            assert body["batched"] is True
            status, body = await client.call(
                "POST", "/sketches/a/query",
                {"kind": "edge", "pairs": [["u", "v"], ["v", "w"],
                                           ["x", "y"]]})
            assert status == 200
            reference = TCM(d=3, width=64, seed=2)
            reference.ingest_columns(["u", "v", "u"], ["v", "w", "v"],
                                     [1.0, 2.0, 3.0])
            expected = reference.edge_weights(
                [("u", "v"), ("v", "w"), ("x", "y")])
            assert body["values"] == expected.tolist()
            status, body = await client.call(
                "POST", "/sketches/a/query",
                {"kind": "outflow", "nodes": ["u", "v"]})
            assert body["values"] == reference.out_flows(
                ["u", "v"]).tolist()
            status, body = await client.call(
                "POST", "/sketches/a/query",
                {"kind": "reach", "pairs": [["u", "w"], ["w", "u"]]})
            assert body["values"] == [True, False]
            status, body = await client.call(
                "POST", "/sketches/a/query", {"kind": "total"})
            assert body["values"] == [6.0]

        run_async(_with_server(scenario))

    def test_remove_after_staged_ingest(self):
        async def scenario(client, server, port):
            await client.call("PUT", "/sketches/a",
                              {"d": 2, "width": 32, "seed": 3})
            await client.call("POST", "/sketches/a/ingest",
                              {"sources": [1], "targets": [2],
                               "weights": [5.0]})
            status, body = await client.call(
                "POST", "/sketches/a/remove",
                {"sources": [1], "targets": [2], "weights": [2.0]})
            assert status == 200 and body["removed"] == 1
            status, body = await client.call(
                "POST", "/sketches/a/query",
                {"kind": "edge", "pairs": [[1, 2]]})
            assert body["values"] == [3.0]

        run_async(_with_server(scenario))

    def test_window_tenant_ingest_advance_expiry(self):
        async def scenario(client, server, port):
            await client.call(
                "PUT", "/sketches/w",
                {"kind": "window", "horizon": 100.0, "buckets": 4,
                 "d": 2, "width": 32, "seed": 4})
            status, body = await client.call(
                "POST", "/sketches/w/ingest",
                {"sources": ["a"], "targets": ["b"], "weights": [7.0],
                 "timestamps": [10.0]})
            assert status == 200 and body["ingested"] == 1
            status, body = await client.call(
                "POST", "/sketches/w/query",
                {"kind": "edge", "pairs": [["a", "b"]]})
            assert body["values"] == [7.0]
            status, body = await client.call(
                "POST", "/sketches/w/advance", {"timestamp": 500.0})
            assert status == 200 and body["watermark"] == 500.0
            status, body = await client.call(
                "POST", "/sketches/w/query",
                {"kind": "edge", "pairs": [["a", "b"]]})
            assert body["values"] == [0.0]
            status, body = await client.call(
                "POST", "/sketches/w/remove",
                {"sources": ["a"], "targets": ["b"]})
            assert status == 400
            status, body = await client.call(
                "POST", "/sketches/w/advance", {"timestamp": "later"})
            assert status == 400

        run_async(_with_server(scenario))

    def test_metrics_and_stats_endpoints(self):
        from repro.obs import instruments

        async def scenario(client, server, port):
            await client.call("PUT", "/sketches/a",
                              {"d": 2, "width": 32, "seed": 1})
            await client.call("POST", "/sketches/a/ingest",
                              {"sources": [1], "targets": [2]})
            raw = b""
            status, payload = await _request(
                client.reader, client.writer, "GET", "/metrics", raw)
            assert status == 200
            text = payload.decode()
            assert "server_requests_total" in text
            assert "server_batch_flushes_total" in text
            status, body = await client.call("GET", "/stats")
            assert status == 200
            assert any(key.startswith("server_request_seconds")
                       for key in body["latency"])
            assert body["sketches"][0]["name"] == "a"

        instruments.enable()
        try:
            run_async(_with_server(scenario))
        finally:
            instruments.disable()

    def test_unbatched_server_answers_identically(self):
        async def scenario(client, server, port):
            await client.call("PUT", "/sketches/a",
                              {"d": 2, "width": 32, "seed": 9})
            status, body = await client.call(
                "POST", "/sketches/a/ingest",
                {"sources": [1, 2], "targets": [3, 4],
                 "weights": [1.0, 2.0]})
            assert status == 200 and body["batched"] is False
            status, body = await client.call(
                "POST", "/sketches/a/query",
                {"kind": "edge", "pairs": [[1, 3], [2, 4]]})
            assert body["values"] == [1.0, 2.0]

        run_async(_with_server(scenario, batching=False))


class TestProtocolHardening:
    """Malformed or abusive requests get 4xx, never a 500 or a crash."""

    @staticmethod
    async def _raw(port, blob):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(blob)
            await writer.drain()
            status_line = await reader.readline()
            body = await reader.read(4096)
            return int(status_line.split()[1]), body
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def test_oversized_body_gets_413(self):
        async def scenario(client, server, port):
            await client.call("PUT", "/sketches/a",
                              {"d": 2, "width": 32, "seed": 1})
            big = {"sources": list(range(500)),
                   "targets": list(range(500))}
            status, body = await client.call(
                "POST", "/sketches/a/ingest", big)
            assert status == 413 and "too large" in body["error"]
            # The connection is closed (the body was never read), but
            # the server survives: a fresh connection still works.
            fresh = await _Client.open(port)
            try:
                status, body = await fresh.call("GET", "/healthz")
                assert status == 200
            finally:
                await fresh.close()

        run_async(_with_server(scenario, max_body=1024))

    def test_bad_content_length_gets_400(self):
        async def scenario(client, server, port):
            status, _ = await self._raw(
                port,
                b"POST /sketches/a/ingest HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: banana\r\n\r\n")
            assert status == 400
            status, _ = await self._raw(
                port,
                b"POST /sketches/a/ingest HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: -5\r\n\r\n")
            assert status == 400

        run_async(_with_server(scenario))

    def test_invalid_utf8_body_gets_400_not_500(self):
        async def scenario(client, server, port):
            await client.call("PUT", "/sketches/a",
                              {"d": 2, "width": 32, "seed": 1})
            payload = b'\xff\xfe\x80{"no'
            status, body = await self._raw(
                port,
                b"POST /sketches/a/ingest HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                b"Content-Length: %d\r\n\r\n%b" % (len(payload), payload))
            assert status == 400

        run_async(_with_server(scenario))

    def test_truncated_json_gets_400(self):
        async def scenario(client, server, port):
            await client.call("PUT", "/sketches/a",
                              {"d": 2, "width": 32, "seed": 1})
            payload = b'{"sources": [1, 2'
            status, body = await self._raw(
                port,
                b"POST /sketches/a/ingest HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: %d\r\n\r\n%b"
                % (len(payload), payload))
            assert status == 400

        run_async(_with_server(scenario))

    def test_connection_cap_sheds_503(self):
        async def scenario(client, server, port):
            # The fixture client is connection #1; the cap is 1.
            status, body = await client.call("GET", "/healthz")
            assert status == 200
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            try:
                status_line = await reader.readline()
                assert b"503" in status_line
                raw = await reader.read(4096)
                assert b"Retry-After" in raw
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
            status, body = await client.call("GET", "/healthz")
            assert status == 200

        run_async(_with_server(scenario, max_connections=1))


class TestMultiTenantConcurrency:
    """Interleaved batched traffic == serial replay, per tenant, exactly."""

    def test_interleaved_ingest_bit_identical_to_serial_replay(self):
        rng = np.random.default_rng(11)
        tenants = {
            "red": [(int(s), int(t), float(w)) for s, t, w in
                    zip(rng.integers(0, 500, 300),
                        rng.integers(0, 500, 300),
                        rng.integers(1, 5, 300))],
            "blue": [(int(s), int(t), float(w)) for s, t, w in
                     zip(rng.integers(0, 500, 300),
                         rng.integers(0, 500, 300),
                         rng.integers(1, 5, 300))],
        }
        config = {"d": 3, "width": 64, "seed": 13}
        probes = [[int(a), int(b)] for a, b in
                  zip(rng.integers(0, 500, 64), rng.integers(0, 500, 64))]

        async def scenario(client, server, port):
            for name in tenants:
                await client.call("PUT", f"/sketches/{name}",
                                  dict(config, kind="tcm"))

            async def drive(name, elements):
                # Its own connection, so requests genuinely interleave.
                worker = await _Client.open(port)
                try:
                    mid_queries = 0
                    for lo in range(0, len(elements), 25):
                        chunk = elements[lo:lo + 25]
                        status, body = await worker.call(
                            "POST", f"/sketches/{name}/ingest",
                            {"sources": [e[0] for e in chunk],
                             "targets": [e[1] for e in chunk],
                             "weights": [e[2] for e in chunk]})
                        assert status == 200
                        assert body["ingested"] == len(chunk)
                        status, body = await worker.call(
                            "POST", f"/sketches/{name}/query",
                            {"kind": "edge", "pairs": probes[:8]})
                        assert status == 200 and len(body["values"]) == 8
                        mid_queries += 1
                    return mid_queries
                finally:
                    await worker.close()

            done = await asyncio.gather(
                *(drive(name, elements)
                  for name, elements in tenants.items()))
            assert all(count > 0 for count in done)
            answers = {}
            for name in tenants:
                status, body = await client.call(
                    "POST", f"/sketches/{name}/query",
                    {"kind": "edge", "pairs": probes})
                assert status == 200
                answers[name] = body["values"]
            return answers

        answers = run_async(_with_server(scenario))
        for name, elements in tenants.items():
            reference = TCM(**config)
            for s, t, w in elements:
                reference.update(s, t, w)
            expected = reference.edge_weights(
                [(a, b) for a, b in probes])
            # Bit-identical: same keys, same float64 sums, no tolerance.
            assert answers[name] == expected.tolist(), name

    def test_epoch_cache_invalidation_across_batches(self):
        # A coalesced query warms the engine's epoch caches; a later
        # micro-batch must invalidate them so the next coalesced query
        # sees the new weights, not the cached ones.
        async def scenario(client, server, port):
            await client.call("PUT", "/sketches/a",
                              {"d": 2, "width": 32, "seed": 21})
            await client.call("POST", "/sketches/a/ingest",
                              {"sources": [1], "targets": [2]})
            status, body = await client.call(
                "POST", "/sketches/a/query",
                {"kind": "reach", "pairs": [[1, 3]]})
            assert body["values"] == [False]
            await client.call("POST", "/sketches/a/ingest",
                              {"sources": [2], "targets": [3]})
            status, body = await client.call(
                "POST", "/sketches/a/query",
                {"kind": "reach", "pairs": [[1, 3]]})
            assert body["values"] == [True]

        run_async(_with_server(scenario))

    def test_batched_and_unbatched_servers_agree(self):
        # The coalesced path must be an optimization, not a semantic
        # change: equal traffic against a batching and a non-batching
        # server ends in identical sketches.
        traffic = [([1, 2, 3], [4, 5, 6], [1.0, 2.0, 3.0]),
                   ([1, 7], [4, 8], [5.0, 1.0])]
        probes = [[1, 4], [2, 5], [3, 6], [7, 8]]

        async def scenario(client, server, port):
            await client.call("PUT", "/sketches/a",
                              {"d": 2, "width": 32, "seed": 31})
            for sources, targets, weights in traffic:
                await client.call("POST", "/sketches/a/ingest",
                                  {"sources": sources, "targets": targets,
                                   "weights": weights})
            status, body = await client.call(
                "POST", "/sketches/a/query",
                {"kind": "edge", "pairs": probes})
            return body["values"]

        batched = run_async(_with_server(scenario))
        unbatched = run_async(_with_server(scenario, batching=False))
        assert batched == unbatched


class TestLoadgen:
    def test_loadgen_against_inprocess_server(self):
        async def scenario():
            server = SketchServer(port=0, max_delay=0.002)
            port = await server.start()
            try:
                summary = await run_loadgen(
                    "127.0.0.1", port, connections=4, requests=40,
                    elements=32, query_ratio=0.25, cleanup=True)
            finally:
                await server.stop()
            return summary

        summary = run_async(scenario())
        assert summary["errors"] == 0
        assert summary["ingested_elements"] > 0
        assert summary["latency_ms"]["p50"] <= summary["latency_ms"]["p99"]
        assert summary["req_per_s"] > 0
