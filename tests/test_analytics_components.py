"""Tests for connected-component analytics."""

import pytest

from repro.analytics.components import (
    count_components,
    same_component,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.analytics.views import SketchView, StreamView
from repro.core.tcm import TCM
from repro.streams.generators import path_stream, rmat
from repro.streams.model import GraphStream


@pytest.fixture
def two_islands():
    stream = GraphStream(directed=True)
    stream.add("a", "b", 1.0)
    stream.add("b", "c", 1.0)
    stream.add("x", "y", 1.0)
    return stream


class TestWeakComponents:
    def test_counts(self, two_islands):
        components = weakly_connected_components(StreamView(two_islands))
        assert len(components) == 2

    def test_largest_first(self, two_islands):
        components = weakly_connected_components(StreamView(two_islands))
        assert components[0] == {"a", "b", "c"}
        assert components[1] == {"x", "y"}

    def test_direction_ignored(self):
        stream = GraphStream(directed=True)
        stream.add("a", "b", 1.0)
        stream.add("c", "b", 1.0)  # opposite orientation still connects
        components = weakly_connected_components(StreamView(stream))
        assert len(components) == 1

    def test_same_component(self, two_islands):
        view = StreamView(two_islands)
        assert same_component(view, "a", "c")
        assert not same_component(view, "a", "x")

    def test_count_helper(self, two_islands):
        assert count_components(StreamView(two_islands)) == 2


class TestStrongComponents:
    def test_cycle_is_one_scc(self):
        stream = GraphStream(directed=True)
        stream.add("a", "b", 1.0)
        stream.add("b", "c", 1.0)
        stream.add("c", "a", 1.0)
        sccs = strongly_connected_components(StreamView(stream))
        assert sccs[0] == {"a", "b", "c"}

    def test_path_is_singletons(self):
        view = StreamView(path_stream(["a", "b", "c"]))
        sccs = strongly_connected_components(view)
        assert all(len(c) == 1 for c in sccs)
        assert len(sccs) == 3

    def test_two_cycles_with_bridge(self):
        stream = GraphStream(directed=True)
        for x, y in [("a", "b"), ("b", "a"), ("b", "c"),
                     ("c", "d"), ("d", "c")]:
            stream.add(x, y, 1.0)
        sccs = strongly_connected_components(StreamView(stream))
        assert {"a", "b"} in sccs
        assert {"c", "d"} in sccs

    def test_count_strong(self):
        view = StreamView(path_stream(["a", "b", "c"]))
        assert count_components(view, strongly=True) == 3

    def test_paper_stream_big_scc(self, paper_stream):
        """Fig. 1's graph has a large cycle through a,b,c,e,f."""
        sccs = strongly_connected_components(StreamView(paper_stream))
        assert {"a", "b", "c", "e", "f", "d", "g"} == sccs[0]


class TestOnSketches:
    def test_components_never_split_under_hashing(self):
        """Nodes connected in the stream stay connected in every sketch."""
        stream = rmat(64, 200, seed=5)
        tcm = TCM.from_stream(stream, d=2, width=16, seed=1)
        exact = weakly_connected_components(StreamView(stream))
        for view in tcm.views():
            sketch_components = weakly_connected_components(view)
            bucket_component = {}
            for i, component in enumerate(sketch_components):
                for bucket in component:
                    bucket_component[bucket] = i
            for component in exact:
                buckets = {view.node_of(node) for node in component}
                assert len({bucket_component[b] for b in buckets}) == 1

    def test_sketch_component_count_never_exceeds_exact(self):
        stream = rmat(64, 100, seed=6)
        tcm = TCM.from_stream(stream, d=1, width=16, seed=2)
        view = tcm.views()[0]
        # Exclude never-touched buckets (they are singleton components).
        touched = {b for b in view.nodes()
                   if list(view.successors(b))
                   or any(view.edge_weight(p, b) > 0 for p in view.nodes())}
        exact_count = count_components(StreamView(stream))
        sketch_components = [c for c in weakly_connected_components(view)
                             if c & touched]
        assert len(sketch_components) <= exact_count
