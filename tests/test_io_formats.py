"""Tests for CSV and gzip stream-file support."""

import gzip

import pytest

from repro.streams.io import iter_stream_file, read_stream, write_stream
from repro.streams.model import GraphStream


class TestCsv:
    def test_plain_csv(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("a,b,2.5,1.0\nb,c,1\n")
        edges = list(iter_stream_file(path))
        assert len(edges) == 2
        assert edges[0].weight == 2.5
        assert edges[1].weight == 1.0

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("source,target,weight\na,b,2\n")
        edges = list(iter_stream_file(path))
        assert len(edges) == 1
        assert edges[0].source == "a"

    def test_src_header_variant(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("src,dst\na,b\n")
        assert len(list(iter_stream_file(path))) == 1

    def test_spaces_around_commas(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("a , b , 3.0\n")
        edge = list(iter_stream_file(path))[0]
        assert (edge.source, edge.target, edge.weight) == ("a", "b", 3.0)

    def test_malformed_csv(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("a,b,1,2,3\n")
        with pytest.raises(ValueError, match="expected 2-4"):
            list(iter_stream_file(path))


class TestGzip:
    def test_read_gzipped_edge_list(self, tmp_path):
        path = tmp_path / "edges.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("a b 2.0 0.0\nb c 3.0 1.0\n")
        stream = read_stream(path)
        assert len(stream) == 2
        assert stream.edge_weight("b", "c") == 3.0

    def test_write_gzipped(self, tmp_path, small_directed):
        path = tmp_path / "out.txt.gz"
        count = write_stream(small_directed, path)
        assert count == 5
        # Really gzip on disk:
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"
        loaded = read_stream(path)
        assert loaded.edge_weight("a", "b") == 5.0

    def test_gzipped_csv(self, tmp_path):
        path = tmp_path / "edges.csv.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("source,target,weight\na,b,7\n")
        edges = list(iter_stream_file(path))
        assert edges[0].weight == 7.0

    def test_round_trip_preserves_summaries(self, tmp_path, ipflow_stream):
        from repro.core.tcm import TCM
        path = tmp_path / "trace.txt.gz"
        write_stream(ipflow_stream, path)
        loaded = read_stream(path, directed=True)
        a = TCM.from_stream(ipflow_stream, d=2, width=32, seed=1)
        b = TCM.from_stream(loaded, d=2, width=32, seed=1)
        for s1, s2 in zip(a.sketches, b.sketches):
            assert (abs(s1.matrix - s2.matrix) < 1e-9).all()


class TestCliWithFormats:
    def test_cli_summarize_csv(self, tmp_path, capsys):
        from repro.cli import main
        trace = tmp_path / "edges.csv"
        trace.write_text("source,target,weight,timestamp\n"
                         "a,b,2,0\nb,c,3,1\n")
        sketch = tmp_path / "s.npz"
        assert main(["summarize", str(trace), str(sketch),
                     "--width", "32"]) == 0
        capsys.readouterr()
        assert main(["query", str(sketch), "edge", "b", "c"]) == 0
        assert float(capsys.readouterr().out) == 3.0
