"""Tests for StreamEdge and the exact GraphStream store."""

import pytest

from repro.streams.model import GraphStream, StreamEdge


class TestStreamEdge:
    def test_defaults(self):
        edge = StreamEdge("a", "b")
        assert edge.weight == 1.0
        assert edge.timestamp == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            StreamEdge("a", "b", weight=-1.0)

    def test_zero_weight_allowed(self):
        assert StreamEdge("a", "b", weight=0.0).weight == 0.0

    def test_reversed(self):
        edge = StreamEdge("a", "b", 2.0, 5.0)
        rev = edge.reversed()
        assert (rev.source, rev.target) == ("b", "a")
        assert rev.weight == 2.0
        assert rev.timestamp == 5.0

    def test_frozen(self):
        edge = StreamEdge("a", "b")
        with pytest.raises(AttributeError):
            edge.weight = 9.0


class TestDirectedAggregation:
    def test_len_counts_elements_not_edges(self, small_directed):
        assert len(small_directed) == 5

    def test_edge_weight_accumulates(self, small_directed):
        assert small_directed.edge_weight("a", "b") == 5.0

    def test_edge_weight_directional(self, small_directed):
        assert small_directed.edge_weight("b", "a") == 0.0

    def test_unknown_edge_is_zero(self, small_directed):
        assert small_directed.edge_weight("z", "q") == 0.0

    def test_out_flow(self, small_directed):
        assert small_directed.out_flow("a") == 10.0

    def test_in_flow(self, small_directed):
        assert small_directed.in_flow("c") == 6.0

    def test_flow_raises_for_directed(self, small_directed):
        with pytest.raises(ValueError):
            small_directed.flow("a")

    def test_nodes(self, small_directed):
        assert small_directed.nodes == {"a", "b", "c"}

    def test_distinct_edges(self, small_directed):
        assert small_directed.distinct_edges == {
            ("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")}

    def test_successors(self, small_directed):
        assert small_directed.successors("a") == {"b", "c"}

    def test_predecessors(self, small_directed):
        assert small_directed.predecessors("c") == {"b", "a"}

    def test_total_weight(self, small_directed):
        assert small_directed.total_weight() == 15.0

    def test_getitem(self, small_directed):
        assert small_directed[0].source == "a"

    def test_iteration_preserves_order(self, small_directed):
        stamps = [e.timestamp for e in small_directed]
        assert stamps == sorted(stamps)


class TestUndirectedAggregation:
    def test_edge_weight_symmetric(self, small_undirected):
        assert small_undirected.edge_weight("x", "y") == 3.0
        assert small_undirected.edge_weight("y", "x") == 3.0

    def test_flow_counts_each_incidence_once(self, small_undirected):
        assert small_undirected.flow("y") == 6.0
        assert small_undirected.flow("x") == 3.0

    def test_successors_symmetric(self, small_undirected):
        assert "x" in small_undirected.successors("y")
        assert "y" in small_undirected.successors("x")

    def test_out_in_flow_symmetric(self, small_undirected):
        assert small_undirected.out_flow("y") == small_undirected.in_flow("y")


class TestReachability:
    def test_self_reachable(self, paper_stream):
        assert paper_stream.reachable("a", "a")

    def test_paper_path_a_to_g(self, paper_stream):
        # a -> b -> d -> g exists in Fig. 1.
        assert paper_stream.reachable("a", "g")

    def test_paper_unreachable(self, paper_stream):
        # g only reaches b and onward; nothing reaches back to g except d.
        assert paper_stream.reachable("g", "a")
        assert not paper_stream.reachable("a", "zzz")

    def test_unknown_source(self, paper_stream):
        assert not paper_stream.reachable("nope", "a")

    def test_direct_edge(self, small_directed):
        assert small_directed.reachable("a", "b")

    def test_two_hops(self, small_directed):
        assert small_directed.reachable("a", "c")
        assert small_directed.reachable("b", "a")


class TestSubgraphWeight:
    def test_existing_subgraph(self, paper_stream):
        # Q3 from the paper: {(a,b), (a,c)} has weight 2.
        assert paper_stream.subgraph_weight([("a", "b"), ("a", "c")]) == 2.0

    def test_missing_edge_zeroes_whole_query(self, paper_stream):
        assert paper_stream.subgraph_weight([("a", "b"), ("a", "zzz")]) == 0.0

    def test_empty_query(self, paper_stream):
        assert paper_stream.subgraph_weight([]) == 0.0


class TestTopK:
    def test_top_edges(self, small_directed):
        top = small_directed.top_edges(2)
        assert top[0] == (("a", "b"), 5.0)
        assert top[1] == (("a", "c"), 5.0)

    def test_top_edges_larger_k_than_edges(self, small_directed):
        assert len(small_directed.top_edges(100)) == 4

    def test_top_nodes_in(self, small_directed):
        top = small_directed.top_nodes(1, direction="in")
        assert top[0][0] == "c"

    def test_top_nodes_out(self, small_directed):
        top = small_directed.top_nodes(1, direction="out")
        assert top[0] == ("a", 10.0)

    def test_top_nodes_bad_direction(self, small_directed):
        with pytest.raises(ValueError):
            small_directed.top_nodes(1, direction="sideways")

    def test_top_nodes_both_requires_undirected(self, small_directed,
                                                 small_undirected):
        with pytest.raises(ValueError, match="undirected"):
            small_directed.top_nodes(1, direction="both")
        assert small_undirected.top_nodes(1, direction="both")[0][0] == "y"


class TestConstruction:
    def test_init_with_edges(self):
        edges = [StreamEdge("a", "b"), StreamEdge("b", "c")]
        stream = GraphStream(directed=True, edges=edges)
        assert len(stream) == 2

    def test_extend(self):
        stream = GraphStream()
        stream.extend([StreamEdge("a", "b"), StreamEdge("a", "b")])
        assert stream.edge_weight("a", "b") == 2.0

    def test_multiplicity_flag_default(self):
        assert GraphStream().multiplicity_weights is False

    def test_int_labels(self):
        stream = GraphStream()
        stream.add(1, 2, 3.0)
        assert stream.edge_weight(1, 2) == 3.0
        assert stream.nodes == {1, 2}
