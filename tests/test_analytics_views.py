"""Tests for the GraphView adapters."""

import pytest

from repro.analytics.views import SketchView, StreamView
from repro.core.graph_sketch import GraphSketch
from repro.core.tcm import TCM
from repro.hashing.family import HashFamily


class TestStreamView:
    def test_nodes(self, small_directed):
        view = StreamView(small_directed)
        assert set(view.nodes()) == {"a", "b", "c"}
        assert view.node_count() == 3

    def test_successors(self, small_directed):
        view = StreamView(small_directed)
        assert set(view.successors("a")) == {"b", "c"}

    def test_edge_weight(self, small_directed):
        view = StreamView(small_directed)
        assert view.edge_weight("a", "b") == 5.0
        assert view.edge_weight("b", "a") == 0.0

    def test_has_edge(self, small_directed):
        view = StreamView(small_directed)
        assert view.has_edge("a", "b")
        assert not view.has_edge("c", "b")


class TestSketchView:
    def test_requires_graphical(self):
        family = HashFamily([8, 4], seed=0)
        sketch = GraphSketch(family[0], family[1])
        with pytest.raises(ValueError):
            SketchView(sketch)

    def test_nodes_are_buckets(self, small_directed):
        tcm = TCM.from_stream(small_directed, d=1, width=16, seed=0)
        view = SketchView(tcm.sketches[0])
        assert list(view.nodes()) == list(range(16))
        assert view.node_count() == 16

    def test_node_of_maps_labels(self, small_directed):
        tcm = TCM.from_stream(small_directed, d=1, width=16, seed=0)
        view = SketchView(tcm.sketches[0])
        bucket = view.node_of("a")
        assert 0 <= bucket < 16

    def test_edge_weight_through_buckets(self, small_directed):
        tcm = TCM.from_stream(small_directed, d=1, width=64, seed=0)
        view = SketchView(tcm.sketches[0])
        a, b = view.node_of("a"), view.node_of("b")
        assert view.edge_weight(a, b) == 5.0

    def test_successors_reflect_matrix(self, small_directed):
        tcm = TCM.from_stream(small_directed, d=1, width=64, seed=0)
        view = SketchView(tcm.sketches[0])
        a = view.node_of("a")
        succs = set(view.successors(a))
        assert view.node_of("b") in succs
        assert view.node_of("c") in succs

    def test_sketch_accessor(self, small_directed):
        tcm = TCM.from_stream(small_directed, d=1, width=8, seed=0)
        view = SketchView(tcm.sketches[0])
        assert view.sketch is tcm.sketches[0]
