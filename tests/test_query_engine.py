"""The epoch-cached query engine: invalidation, batch=scalar identity.

Covers the contract of :mod:`repro.core.query_engine`:

- sketch epochs move on every mutation path and the engine discards
  cached indexes accordingly (dense & sparse, directed & undirected);
- batch kernels are element-wise identical to the scalar APIs across
  aggregations and backends;
- the packed-bitset closure and the BFS fallback agree;
- cache statistics are observable both locally and through repro.obs.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analytics.reachability import reach, reach_many
from repro.analytics.views import SketchView
from repro.core.aggregation import Aggregation
from repro.core.query_engine import (
    QueryEngine,
    bucket_weight_matrix,
    relax_distances,
)
from repro.core.tcm import TCM
from repro.streams.generators import rmat_edges
from repro.streams.model import GraphStream


def make_tcm(directed=True, sparse=False, aggregation=Aggregation.SUM,
             d=3, width=32, seed=11):
    return TCM(d=d, width=width, seed=seed, directed=directed,
               sparse=sparse, aggregation=aggregation)


BACKENDS = [
    pytest.param(dict(directed=True, sparse=False), id="dense-directed"),
    pytest.param(dict(directed=False, sparse=False), id="dense-undirected"),
    pytest.param(dict(directed=True, sparse=True), id="sparse-directed"),
    pytest.param(dict(directed=False, sparse=True), id="sparse-undirected"),
]


class TestEpochs:
    @pytest.mark.parametrize("kwargs", BACKENDS)
    def test_every_mutation_bumps_the_epoch(self, kwargs):
        tcm = make_tcm(**kwargs)
        sketch = tcm.sketches[0]
        seen = [sketch.epoch]

        def bumped():
            seen.append(sketch.epoch)
            assert seen[-1] > seen[-2]

        tcm.update("a", "b", 2.0)
        bumped()
        tcm.ingest_columns(["c", "d"], ["d", "e"])  # sketch update_many
        bumped()
        other = make_tcm(**kwargs)
        other.update("x", "y")
        tcm.merge_from(other)
        bumped()
        tcm.remove("a", "b", 1.0)
        bumped()
        tcm.clear()
        bumped()

    def test_save_load_round_trip_moves_the_epoch(self, tmp_path):
        from repro.core.serialization import load_tcm, save_tcm

        tcm = make_tcm()
        tcm.update("a", "b")
        path = tmp_path / "sketch.npz"
        save_tcm(tcm, path)
        loaded = load_tcm(path)
        assert all(s.epoch > 0 for s in loaded.sketches)
        assert loaded.reachable("a", "b")


class TestInvalidation:
    """Query -> warm cache -> mutate -> the answer must move."""

    @pytest.mark.parametrize("kwargs", BACKENDS)
    def test_update_invalidates_reachability(self, kwargs):
        tcm = make_tcm(**kwargs)
        tcm.update("a", "b")
        assert tcm.reachable("a", "b")
        assert not tcm.reachable("a", "zzz")  # cache is now warm
        tcm.update("b", "zzz")
        assert tcm.reachable("a", "zzz")
        assert tcm.query_engine.cache_stats()["invalidations"] > 0

    @pytest.mark.parametrize("kwargs", BACKENDS)
    def test_update_many_invalidates_reachability(self, kwargs):
        tcm = make_tcm(**kwargs)
        tcm.ingest_columns(["a"], ["b"])
        assert not tcm.reachable("a", "qq")
        tcm.ingest_columns(["b", "c"], ["c", "qq"])
        assert tcm.reachable("a", "qq")

    @pytest.mark.parametrize("kwargs", BACKENDS)
    def test_merge_invalidates_reachability(self, kwargs):
        tcm = make_tcm(**kwargs)
        tcm.update("a", "b")
        assert not tcm.reachable("a", "ww")
        other = make_tcm(**kwargs)
        other.update("b", "ww")
        tcm.merge_from(other)
        assert tcm.reachable("a", "ww")

    @pytest.mark.parametrize("kwargs", BACKENDS)
    def test_update_invalidates_flows(self, kwargs):
        tcm = make_tcm(**kwargs)
        tcm.update("a", "b", 3.0)
        flow = tcm.out_flow("a") if kwargs["directed"] else tcm.flow("a")
        assert flow == 3.0
        tcm.update("a", "c", 2.0)
        flow = tcm.out_flow("a") if kwargs["directed"] else tcm.flow("a")
        assert flow == 5.0

    def test_update_invalidates_shortest_paths(self):
        tcm = make_tcm()
        tcm.update("a", "b", 5.0)
        assert math.isinf(tcm.shortest_path_weight("a", "z"))
        tcm.update("b", "z", 7.0)
        assert tcm.shortest_path_weight("a", "z") == 12.0


def paths_tcm():
    tcm = make_tcm(d=3, width=64, seed=5)
    tcm.ingest_columns(["a", "b", "a", "c", "x"], ["b", "c", "c", "d", "y"],
                       np.array([2.0, 3.0, 9.0, 1.0, 4.0]))
    return tcm


class TestBatchScalarIdentity:
    AGG_BACKENDS = [
        pytest.param(dict(sparse=False, aggregation=Aggregation.SUM),
                     id="dense-sum"),
        pytest.param(dict(sparse=False, aggregation=Aggregation.MIN),
                     id="dense-min"),
        pytest.param(dict(sparse=True, aggregation=Aggregation.SUM),
                     id="sparse-sum"),
    ]

    @pytest.mark.parametrize("directed", [True, False],
                             ids=["directed", "undirected"])
    @pytest.mark.parametrize("kwargs", AGG_BACKENDS)
    def test_flows_match_scalar(self, kwargs, directed):
        tcm = make_tcm(directed=directed, **kwargs)
        tcm.ingest_columns(["a", "b", "a", "a"], ["b", "c", "c", "a"],
                           np.array([2.0, 3.0, 9.0, 1.0]))
        nodes = ["a", "b", "c", "ghost"]
        if directed:
            assert tcm.out_flows(nodes).tolist() == \
                [tcm.out_flow(n) for n in nodes]
            assert tcm.in_flows(nodes).tolist() == \
                [tcm.in_flow(n) for n in nodes]
        else:
            assert tcm.flows(nodes).tolist() == [tcm.flow(n) for n in nodes]

    @pytest.mark.parametrize("directed", [True, False],
                             ids=["directed", "undirected"])
    @pytest.mark.parametrize("kwargs", AGG_BACKENDS)
    def test_reachable_many_matches_scalar(self, kwargs, directed):
        tcm = make_tcm(directed=directed, **kwargs)
        tcm.ingest_columns(["a", "b", "x"], ["b", "c", "y"])
        pairs = [("a", "c"), ("c", "a"), ("a", "x"), ("y", "x"),
                 ("a", "a"), ("nope", "a")]
        got = tcm.reachable_many(pairs)
        assert got.tolist() == [tcm.reachable(s, t) for s, t in pairs]

    def test_shortest_path_weights_match_scalar(self):
        tcm = paths_tcm()
        pairs = [("a", "d"), ("a", "c"), ("x", "y"), ("a", "x"), ("b", "b")]
        got = tcm.shortest_path_weights(pairs)
        for value, (s, t) in zip(got, pairs):
            assert float(value) == tcm.shortest_path_weight(s, t)

    def test_decomposed_many_matches_scalar(self):
        from repro.core.queries import WILDCARD

        tcm = paths_tcm()
        queries = [[("a", "b"), ("b", "c")],
                   [("a", WILDCARD)],
                   [(WILDCARD, "c"), ("c", "d")],
                   [(WILDCARD, WILDCARD)],
                   [("a", "ghost")]]
        got = tcm.subgraph_weight_decomposed_many(queries)
        assert got.tolist() == \
            [tcm.subgraph_weight_decomposed(q) for q in queries]

    def test_empty_batches(self):
        tcm = paths_tcm()
        assert tcm.reachable_many([]).shape == (0,)
        assert tcm.shortest_path_weights([]).shape == (0,)
        assert tcm.out_flows([]).shape == (0,)

    def test_flow_direction_errors_preserved(self):
        undirected = make_tcm(directed=False)
        with pytest.raises(ValueError):
            undirected.out_flows(["a"])
        directed = make_tcm(directed=True)
        with pytest.raises(ValueError):
            directed.flows(["a"])


class TestClosureVsBfsFallback:
    def test_forced_bfs_fallback_agrees_with_closure(self):
        tcm = make_tcm(d=2, width=64, seed=6)
        tcm.ingest_columns([f"n{i}" for i in range(40)],
                           [f"n{i + 1}" for i in range(40)])
        tcm.update("n40", "n0")  # close a big cycle -> one SCC
        tcm.update("m1", "m2")
        pairs = [("n0", "n39"), ("n39", "n0"), ("n0", "m2"), ("m2", "m1"),
                 ("m1", "m1")]
        closure_engine = QueryEngine(tcm)
        bfs_engine = QueryEngine(tcm, max_closure_nodes=1)
        assert closure_engine.reachable_many(pairs).tolist() == \
            bfs_engine.reachable_many(pairs).tolist()

    def test_reach_many_matches_scalar_reach(self):
        tcm = make_tcm(d=1, width=48, seed=9)
        tcm.ingest_columns(["a", "b", "p"], ["b", "c", "q"])
        view = SketchView(tcm.sketches[0])
        labels = ["a", "b", "c", "p", "q", "zz"]
        buckets = [view.node_of(x) for x in labels]
        pairs = [(s, t) for s in buckets for t in buckets]
        got = reach_many(view, pairs)
        assert got.tolist() == [reach(view, s, t) for s, t in pairs]


class TestDistanceKernel:
    def test_relaxation_equals_dijkstra_on_views(self):
        from repro.analytics.paths import shortest_path_weight as dijkstra

        tcm = paths_tcm()
        for sketch in tcm.sketches:
            view = SketchView(sketch)
            weights = bucket_weight_matrix(sketch)
            for source in {view.node_of(x) for x in "abcxy"}:
                distances = relax_distances(weights, source)
                for target in range(sketch.rows):
                    assert float(distances[target]) == \
                        dijkstra(view, source, target)

    def test_no_path_is_inf_not_zero(self):
        tcm = make_tcm(d=3, width=64, seed=3)
        tcm.update("a", "b", 1.0)
        tcm.update("c", "d", 1.0)
        assert math.isinf(tcm.shortest_path_weight("a", "d"))
        # ...whereas a genuine zero-weight path (same node) stays 0.
        assert tcm.shortest_path_weight("a", "a") == 0.0


class TestCacheAccounting:
    def test_local_counters(self):
        tcm = paths_tcm()
        engine = tcm.query_engine
        assert engine.cache_stats() == {"hits": 0, "misses": 0,
                                        "invalidations": 0}
        tcm.reachable("a", "b")
        stats = engine.cache_stats()
        assert stats["misses"] == tcm.d
        tcm.reachable("a", "c")
        assert engine.cache_stats()["hits"] == tcm.d
        tcm.update("q", "r")
        tcm.reachable("a", "b")
        assert engine.cache_stats()["invalidations"] == tcm.d

    def test_obs_counters_exported(self):
        from repro import obs
        from repro.obs.instruments import OBS

        tcm = paths_tcm()
        obs.enable()
        try:
            tcm.reachable("a", "b")
            tcm.reachable("a", "c")
            tcm.update("q", "r")
            tcm.reachable("a", "b")
        finally:
            obs.disable()
        assert OBS.query_cache_misses.labels("connectivity").value >= tcm.d
        assert OBS.query_cache_hits.labels("connectivity").value >= tcm.d
        assert OBS.query_cache_invalidations.value >= tcm.d

    def test_engine_survives_load(self, tmp_path):
        """load_tcm bypasses __init__; the lazy property must still work."""
        from repro.core.serialization import load_tcm, save_tcm

        tcm = paths_tcm()
        path = tmp_path / "s.npz"
        save_tcm(tcm, path)
        loaded = load_tcm(path)
        assert loaded.query_engine.cache_stats()["misses"] == 0
        assert loaded.reachable("a", "c")


class TestHeaviestNeighboursBoth:
    def test_both_counts_incoming_direction(self):
        """Regression: direction='both' used to drop incoming weight."""
        tcm = TCM(d=3, width=64, seed=2, directed=True, keep_labels=True)
        tcm.update("hub", "out1", 1.0)
        tcm.update("in1", "hub", 10.0)
        top = tcm.heaviest_neighbours("hub", k=2, direction="both")
        assert dict(top)["in1"] == 10.0
        assert dict(top)["out1"] == 1.0

    def test_both_sums_two_directions(self):
        tcm = TCM(d=3, width=64, seed=2, directed=True, keep_labels=True)
        tcm.update("a", "b", 4.0)
        tcm.update("b", "a", 5.0)
        assert tcm.heaviest_neighbours("a", k=1, direction="both") == \
            [("b", 9.0)]


# -- property test: batched reachability == scalar, no false negatives -----

seeds = st.integers(min_value=0, max_value=2 ** 16)


class TestReachableManyProperty:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=seeds,
           n_edges=st.integers(min_value=1, max_value=120),
           width=st.integers(min_value=4, max_value=48),
           directed=st.booleans())
    def test_matches_scalar_and_never_false_for_reachable(
            self, seed, n_edges, width, directed):
        stream = GraphStream(directed=directed)
        for edge in rmat_edges(64, n_edges, seed=seed):
            stream.add(edge.source, edge.target, 1.0, edge.timestamp)
        tcm = TCM.from_stream(stream, d=2, width=width, seed=seed,
                              directed=directed)
        rng = np.random.default_rng(seed)
        nodes = sorted(stream.nodes)
        pairs = [(nodes[rng.integers(len(nodes))],
                  nodes[rng.integers(len(nodes))]) for _ in range(25)]
        got = tcm.reachable_many(pairs)
        for answer, (s, t) in zip(got.tolist(), pairs):
            assert answer == tcm.reachable(s, t)
            if stream.reachable(s, t):
                assert answer  # one-sided error: never a false negative
