"""Boundary and edge-case tests across modules."""

import numpy as np
import pytest

from repro.core.aggregation import Aggregation
from repro.core.graph_sketch import GraphSketch
from repro.core.tcm import TCM
from repro.hashing.family import HashFamily
from repro.streams.io import read_stream
from repro.streams.model import GraphStream, StreamEdge


class TestDegenerateWidths:
    def test_width_one_tcm_still_correct_totals(self):
        tcm = TCM(d=2, width=1, seed=1)
        tcm.update("a", "b", 2.0)
        tcm.update("c", "d", 3.0)
        # Everything collides into the single cell.
        assert tcm.edge_weight("a", "b") == 5.0
        assert tcm.total_weight_estimate() == 5.0

    def test_width_one_reachability_saturates(self):
        tcm = TCM(d=2, width=1, seed=1)
        tcm.update("a", "b", 1.0)
        assert tcm.reachable("anything", "else")

    def test_width_one_never_underestimates(self):
        tcm = TCM(d=1, width=1, seed=1)
        tcm.update("a", "b", 2.0)
        assert tcm.edge_weight("a", "b") >= 2.0

    def test_two_by_two_undirected(self):
        tcm = TCM(d=1, width=2, seed=1, directed=False)
        tcm.update("a", "b", 1.0)
        tcm.update("b", "a", 1.0)
        assert tcm.edge_weight("a", "b") == 2.0
        assert tcm.sketches[0].matrix.sum() == 2.0


class TestDtype:
    def test_float32_matrix(self):
        sketch = GraphSketch(HashFamily.uniform(1, 8, seed=1)[0],
                             dtype=np.float32)
        sketch.update("a", "b", 1.5)
        assert sketch.matrix.dtype == np.float32
        assert sketch.edge_estimate("a", "b") == 1.5

    def test_int64_count_matrix(self):
        sketch = GraphSketch(HashFamily.uniform(1, 8, seed=1)[0],
                             aggregation=Aggregation.COUNT, dtype=np.int64)
        sketch.update("a", "b", 99.0)
        assert sketch.edge_estimate("a", "b") == 1


class TestUnusualLabels:
    def test_unicode_labels(self):
        tcm = TCM(d=2, width=32, seed=1)
        tcm.update("nöde-α", "ノード", 2.0)
        assert tcm.edge_weight("nöde-α", "ノード") == 2.0

    def test_empty_string_label(self):
        tcm = TCM(d=2, width=32, seed=1)
        tcm.update("", "b", 1.0)
        assert tcm.edge_weight("", "b") == 1.0

    def test_huge_int_labels(self):
        tcm = TCM(d=2, width=32, seed=1)
        tcm.update(2 ** 63, 2 ** 64 - 1, 1.0)
        assert tcm.edge_weight(2 ** 63, 2 ** 64 - 1) == 1.0

    def test_bytes_labels(self):
        tcm = TCM(d=2, width=32, seed=1)
        tcm.update(b"\x00\x01", b"\xff", 3.0)
        assert tcm.edge_weight(b"\x00\x01", b"\xff") == 3.0

    def test_mixed_types_do_not_alias(self):
        """The int 97 and the string '97' are different labels (unless
        FNV happens to collide, which it does not for these)."""
        tcm = TCM(d=3, width=512, seed=1)
        tcm.update(97, "target", 1.0)
        assert tcm.edge_weight("97", "target") == 0.0


class TestEmptySummaries:
    def test_queries_on_empty_tcm(self):
        tcm = TCM(d=2, width=16, seed=1)
        assert tcm.edge_weight("a", "b") == 0.0
        assert tcm.out_flow("a") == 0.0
        assert tcm.total_weight_estimate() == 0.0
        assert not tcm.reachable("a", "b")
        assert tcm.reachable("a", "a")  # self-reachability is free

    def test_subgraph_on_empty_tcm(self):
        tcm = TCM(d=2, width=16, seed=1)
        assert tcm.subgraph_weight([("a", "b")]) == 0.0

    def test_serialize_empty(self, tmp_path):
        from repro.core.serialization import load_tcm, save_tcm
        tcm = TCM(d=2, width=16, seed=1)
        save_tcm(tcm, tmp_path / "empty.npz")
        loaded = load_tcm(tmp_path / "empty.npz")
        assert loaded.total_weight_estimate() == 0.0

    def test_monitor_on_empty_stream(self):
        from repro.core.heavy_hitters import HeavyEdgeMonitor
        monitor = HeavyEdgeMonitor(TCM(d=1, width=8, seed=1), k=3)
        monitor.consume([])
        assert monitor.top() == []


class TestStreamEdgeCases:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_stream(tmp_path / "ghost.txt")

    def test_stream_of_self_loops(self):
        stream = GraphStream(directed=True)
        stream.add("a", "a", 2.0)
        tcm = TCM.from_stream(stream, d=2, width=16, seed=1)
        assert tcm.edge_weight("a", "a") == 2.0
        assert tcm.reachable("a", "a")

    def test_single_element_stream(self):
        stream = GraphStream(edges=[StreamEdge("x", "y", 7.0)])
        assert stream.top_edges(5) == [(("x", "y"), 7.0)]
        assert stream.top_nodes(5, "in") == [("y", 7.0)]

    def test_all_equal_weights_topk_deterministic(self):
        stream = GraphStream(directed=True)
        for i in range(5):
            stream.add(f"s{i}", f"t{i}", 1.0)
        first = stream.top_edges(3)
        second = stream.top_edges(3)
        assert first == second  # repr tie-break is stable


class TestReprFormats:
    def test_tcm_repr(self):
        text = repr(TCM(d=2, width=8, seed=1, directed=False))
        assert "d=2" in text and "8x8" in text and "undirected" in text

    def test_sketch_repr(self):
        sketch = GraphSketch(HashFamily.uniform(1, 8, seed=1)[0])
        assert "graphical" in repr(sketch)

    def test_stream_edge_is_hashable(self):
        assert len({StreamEdge("a", "b"), StreamEdge("a", "b")}) == 1


class TestFromStreamKwargs:
    def test_explicit_directed_override(self):
        edges = [StreamEdge("a", "b", 1.0)]
        tcm = TCM.from_stream(edges, d=1, width=8, directed=False)
        assert not tcm.directed

    def test_aggregation_passthrough(self, small_directed):
        tcm = TCM.from_stream(small_directed, d=1, width=64,
                              aggregation=Aggregation.MAX)
        assert tcm.edge_weight("a", "b") == 3.0  # max element weight


class TestDriverParameterVariants:
    def test_fig7_custom_ratios(self):
        from repro.experiments.exp1_edge import fig7_edge_vs_ratio
        rows = fig7_edge_vs_ratio("gtgraph", "tiny", ratios=(1 / 30,), d=2)
        assert len(rows) == 1
        assert rows[0][0] == "1/30"

    def test_fig8_single_bucket(self):
        from repro.experiments.exp1_edge import fig8_weight_distribution
        rows = fig8_weight_distribution("dblp", "tiny", buckets=1)
        assert len(rows) == 1

    def test_gsketch_custom_partitions(self):
        from repro.experiments.exp1_edge import gsketch_comparison
        rows = gsketch_comparison("gtgraph", "tiny", d_values=(2,),
                                  partitions=4)
        assert len(rows) == 4

    def test_fig15_rejects_empty_query_pool(self, monkeypatch):
        from repro.experiments import datasets
        from repro.experiments.exp4_graph import fig15_subgraph_vs_d

        # A stream with no adjacency yields no sampled query graphs.
        monkeypatch.setattr(datasets, "by_name",
                            lambda name, scale="small": GraphStream())
        with pytest.raises(ValueError, match="query graphs"):
            fig15_subgraph_vs_d("gtgraph", "tiny")
