"""Tests for sketch-health introspection (repro.obs.health) and the
memory_bytes accessors it relies on."""

import pytest

from repro import obs
from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()


class TestSketchHealthHandBuilt:
    """A d=1, 2x2 sketch whose numbers can be checked by hand."""

    def make(self, **kwargs):
        return TCM(d=1, width=2, seed=0, **kwargs)

    def test_empty_sketch(self):
        health = obs.sketch_health(self.make().sketches[0])
        assert health.rows == health.cols == 2
        assert health.cells == 4
        assert health.occupied_cells == 0
        assert health.load_factor == 0.0
        assert health.total_mass == 0.0
        assert health.nbytes == 4 * 8  # four float64 cells
        assert health.row_occupancy == [0.0, 0.0, 0.0, 0.0, 0.0]
        assert health.collision_rate is None

    def test_one_edge(self):
        tcm = self.make()
        tcm.update("a", "b", 3.0)
        health = obs.sketch_health(tcm.sketches[0])
        assert health.occupied_cells == 1
        assert health.load_factor == 0.25
        assert health.total_mass == 3.0
        assert health.top_cell_mass_share == 1.0
        assert health.row_occupancy[-1] == 1.0  # max row occupancy

    def test_full_sketch(self):
        tcm = self.make()
        # The 4x4 label cross product hits all four cells at this seed.
        for i in range(4):
            for j in range(4):
                tcm.update(f"s{i}", f"t{j}", 1.0)
        health = obs.sketch_health(tcm.sketches[0])
        assert health.occupied_cells == 4
        assert health.load_factor == 1.0
        assert health.total_mass == 16.0

    def test_extended_sketch_exact_collisions(self):
        tcm = TCM(d=1, width=1, seed=0, keep_labels=True)
        tcm.update("a", "b", 1.0)
        tcm.update("c", "b", 1.0)
        health = obs.sketch_health(tcm.sketches[0])
        assert health.extended
        # width 1: all three labels share the single bucket
        assert health.labels_tracked == 3
        assert health.colliding_buckets == 1
        assert health.collision_rate == 1.0

    def test_plain_sketch_estimates_collisions(self):
        tcm = self.make()
        for i in range(8):
            tcm.update(f"s{i}", f"t{i}", 1.0)
        health = obs.sketch_health(tcm.sketches[0])
        assert 0.0 < health.collision_rate <= 1.0


class TestTCMHealth:
    def test_ensemble_totals(self, small_directed):
        tcm = TCM(d=3, width=8, seed=2)
        tcm.ingest(small_directed)
        health = obs.tcm_health(tcm)
        assert health.d == 3
        assert health.cells == 3 * 64
        assert health.occupied_cells == sum(
            s.occupied_cells for s in health.sketches)
        assert health.nbytes == tcm.memory_bytes()
        assert 0 < health.load_factor < 1
        assert health.aggregation == "sum"

    def test_sparse_backend(self, small_directed):
        tcm = TCM(d=2, width=64, seed=2, sparse=True)
        tcm.ingest(small_directed)
        health = obs.tcm_health(tcm)
        occupied = sum(s.occupied_cells for s in tcm.sketches)
        assert health.occupied_cells == occupied
        assert health.nbytes == tcm.memory_bytes()
        assert health.nbytes < 2 * 64 * 64 * 8  # occupancy-priced, not w^2

    def test_to_dict_is_jsonable(self, small_directed):
        import json
        tcm = TCM(d=2, width=8, seed=2)
        tcm.ingest(small_directed)
        json.dumps(obs.tcm_health(tcm).to_dict())

    def test_distributed_health(self, small_directed):
        from repro.distributed.cluster import DistributedTCM
        with DistributedTCM(2, d=2, width=8, parallel=False) as cluster:
            cluster.ingest(small_directed)
            report = obs.distributed_health(cluster)
        assert len(report["workers"]) == 2
        assert report["nbytes"] == sum(w["nbytes"]
                                       for w in report["workers"])


class TestMemoryBytes:
    def test_dense_exact(self):
        tcm = TCM(d=4, width=16, seed=0)
        assert tcm.memory_bytes() == 4 * 16 * 16 * 8
        assert tcm.nbytes == tcm.memory_bytes()

    def test_minmax_counts_touched_mask(self):
        plain = TCM(d=1, width=16, seed=0)
        minagg = TCM(d=1, width=16, seed=0, aggregation=Aggregation.MIN)
        assert minagg.memory_bytes() == plain.memory_bytes() + 16 * 16

    def test_extended_costs_more(self, small_directed):
        plain = TCM(d=2, width=16, seed=0)
        extended = TCM(d=2, width=16, seed=0, keep_labels=True)
        plain.ingest(small_directed)
        for e in small_directed:
            extended.update(e.source, e.target, e.weight)
        assert extended.memory_bytes() > plain.memory_bytes()

    def test_sparse_grows_with_occupancy(self):
        tcm = TCM(d=1, width=64, seed=0, sparse=True)
        empty = tcm.memory_bytes()
        tcm.update("a", "b", 1.0)
        assert tcm.memory_bytes() > empty


class TestPublishAndWarnings:
    def test_publish_health_sets_gauges(self, small_directed):
        tcm = TCM(d=2, width=8, seed=2)
        tcm.ingest(small_directed)
        health = obs.publish_health(tcm, name="t")
        gauge = obs.REGISTRY.get("tcm_sketch_load_factor")
        assert gauge.labels("t", "0").value == \
            health.sketches[0].load_factor
        assert obs.REGISTRY.get("tcm_memory_bytes").labels("t").value == \
            health.nbytes

    def test_saturation_warnings(self):
        tcm = TCM(d=1, width=2, seed=0)
        for i in range(16):
            tcm.update(f"s{i}", f"t{i}", 1.0)
        warnings = obs.saturation_warnings(obs.tcm_health(tcm))
        assert warnings  # load factor 1.0 must trip the threshold
        assert any("load factor" in w for w in warnings)

    def test_healthy_sketch_no_warnings(self):
        tcm = TCM(d=2, width=64, seed=0)
        tcm.update("a", "b", 1.0)
        assert obs.saturation_warnings(obs.tcm_health(tcm)) == []
