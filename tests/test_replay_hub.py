"""Tests for the MonitoringHub replay layer."""

import pytest

from repro.core.decay import TimeDecayedTCM
from repro.core.heavy_hitters import HeavyEdgeMonitor
from repro.core.snapshots import SnapshotRing
from repro.core.tcm import TCM
from repro.streams.model import StreamEdge
from repro.streams.replay import MonitoringHub
from repro.streams.window import SlidingWindow


@pytest.fixture
def edges():
    return [StreamEdge(f"s{i % 4}", f"t{i % 3}", float(i % 5 + 1), float(i))
            for i in range(60)]


class TestAttach:
    def test_duplicate_name_rejected(self):
        hub = MonitoringHub()
        hub.attach("a", TCM(d=1, width=8, seed=1))
        with pytest.raises(ValueError):
            hub.attach("a", TCM(d=1, width=8, seed=1))

    def test_unsupported_consumer_rejected(self):
        hub = MonitoringHub()
        with pytest.raises(TypeError):
            hub.attach("bad", object())

    def test_lookup(self):
        hub = MonitoringHub()
        tcm = hub.attach("summary", TCM(d=1, width=8, seed=1))
        assert hub["summary"] is tcm
        with pytest.raises(KeyError):
            hub["missing"]

    def test_names_and_len(self):
        hub = MonitoringHub()
        hub.attach("a", TCM(d=1, width=8, seed=1))
        hub.attach("b", TCM(d=1, width=8, seed=2))
        assert hub.names == ["a", "b"]
        assert len(hub) == 2


class TestReplay:
    def test_all_consumer_kinds_fed(self, edges):
        hub = MonitoringHub()
        summary = hub.attach("summary", TCM(d=2, width=32, seed=1))
        window = hub.attach("window",
                            SlidingWindow(TCM(d=2, width=32, seed=2), 10.0))
        ring = hub.attach("ring", SnapshotRing(20.0, 8, d=2, width=32, seed=3))
        decayed = hub.attach("decayed",
                             TimeDecayedTCM(0.9, d=2, width=32, seed=4))
        monitor = hub.attach("monitor",
                             HeavyEdgeMonitor(TCM(d=2, width=32, seed=5), 3))
        assert hub.replay(edges) == 60

        total = sum(e.weight for e in edges)
        assert summary.total_weight_estimate() == pytest.approx(total)
        # Horizon 10 at watermark 59: timestamps [49, 59] are live.
        assert len(window) == 11
        assert len(ring) == 3     # 60 time units / 20 per bucket
        assert decayed.now == 59.0
        assert len(monitor.top()) == 3

    def test_replay_matches_direct_ingest(self, edges):
        hub = MonitoringHub()
        via_hub = hub.attach("summary", TCM(d=2, width=32, seed=7))
        hub.replay(edges)
        direct = TCM(d=2, width=32, seed=7)
        for edge in edges:
            direct.update(edge.source, edge.target, edge.weight)
        for s1, s2 in zip(via_hub.sketches, direct.sketches):
            assert (s1.matrix == s2.matrix).all()

    def test_delivery_order_is_attach_order(self, edges):
        order = []

        class Probe:
            def __init__(self, tag):
                self.tag = tag

            def observe(self, edge):
                order.append(self.tag)

        hub = MonitoringHub()
        hub.attach("first", Probe("first"))
        hub.attach("second", Probe("second"))
        hub.observe(edges[0])
        assert order == ["first", "second"]
