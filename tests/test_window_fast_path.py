"""Tests for the windowed-stream fast path.

Covers the batch-deletion kernels (``remove_many``), the columnar
ring-buffer :class:`SlidingWindow` (equivalence against the per-element
reference loop), the rotating sub-sketch window's accuracy bounds, the
window observability gauges, and the ``tcm window`` CLI subcommand.
"""

import json
from collections import deque

import numpy as np
import pytest

from repro import obs
from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.hashing.labels import label_keys
from repro.streams.generators import rmat_edges_timestamped
from repro.streams.model import StreamEdge
from repro.streams.rotating import RotatingWindowTCM
from repro.streams.window import SlidingWindow


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()


def timestamped_edges(n=1500, seed=7, rate=20.0, labels="int"):
    edges = list(rmat_edges_timestamped(64, n, seed=seed, rate=rate,
                                        jitter=0.6))
    if labels == "str":
        edges = [StreamEdge(f"n{e.source}", f"n{e.target}", e.weight,
                            e.timestamp) for e in edges]
    return edges


def reference_window(config, edges, horizon):
    """The pre-vectorization baseline: per-element insert + deque expiry."""
    tcm = TCM(**config)
    buffer = deque()
    for e in edges:
        tcm.update(e.source, e.target, e.weight)
        buffer.append(e)
        cutoff = e.timestamp - horizon
        while buffer and buffer[0].timestamp < cutoff:
            old = buffer.popleft()
            tcm.remove(old.source, old.target, old.weight)
    return tcm, buffer


def assert_same_summary(fast: TCM, slow: TCM, edges):
    for mine, theirs in zip(fast.sketches, slow.sketches):
        if hasattr(mine, "_matrix"):
            assert np.array_equal(mine._matrix, theirs._matrix)
    pairs = sorted({(e.source, e.target) for e in edges}, key=repr)
    assert np.array_equal(fast.edge_weights(pairs), slow.edge_weights(pairs))
    assert fast.total_weight_estimate() == \
        pytest.approx(slow.total_weight_estimate())


class TestBatchDeletionKernels:
    @pytest.mark.parametrize("sparse", [False, True])
    @pytest.mark.parametrize("directed", [True, False])
    def test_remove_many_matches_scalar_removes(self, sparse, directed):
        config = dict(d=3, width=32, seed=4, directed=directed,
                      sparse=sparse)
        edges = timestamped_edges(400, labels="str")
        batched, scalar = TCM(**config), TCM(**config)
        for tcm in (batched, scalar):
            tcm.ingest_columns([e.source for e in edges],
                               [e.target for e in edges],
                               np.array([e.weight for e in edges]))
        victims = edges[:150]
        assert batched.remove_many([e.source for e in victims],
                                   [e.target for e in victims],
                                   np.array([e.weight for e in victims])) \
            == len(victims)
        for e in victims:
            scalar.remove(e.source, e.target, e.weight)
        assert_same_summary(batched, scalar, edges)

    def test_remove_many_accepts_prehashed_keys(self):
        tcm = TCM(d=2, width=32, seed=9)
        labels = ["a", "b", "c", "a"]
        targets = ["b", "c", "a", "b"]
        tcm.ingest_columns(labels, targets, None)
        tcm.remove_many(label_keys(labels), label_keys(targets))
        assert tcm.total_weight_estimate() == 0.0

    @pytest.mark.parametrize("aggregation",
                             [Aggregation.MIN, Aggregation.MAX])
    def test_non_invertible_aggregations_refuse_deletion(self, aggregation):
        tcm = TCM(d=2, width=16, seed=1, aggregation=aggregation)
        tcm.update("a", "b", 5.0)
        before = tcm.edge_weight("a", "b")
        with pytest.raises(ValueError, match="does not support deletion"):
            tcm.remove("a", "b", 5.0)
        with pytest.raises(ValueError, match="does not support deletion"):
            tcm.remove_many(["a"], ["b"], np.array([5.0]))
        # The failed calls must not leave the ensemble half-mutated.
        assert tcm.edge_weight("a", "b") == before

    def test_negative_removal_weight_rejected(self):
        tcm = TCM(d=2, width=16, seed=1)
        tcm.update("a", "b", 5.0)
        with pytest.raises(ValueError, match="non-negative"):
            tcm.sketches[0].remove_many(
                label_keys(["a"]), label_keys(["b"]), np.array([-1.0]))

    def test_remove_many_bumps_epochs_and_invalidates_caches(self):
        tcm = TCM(d=2, width=32, seed=3)
        tcm.ingest_columns(["a", "b"], ["b", "c"], None)
        assert tcm.out_flow("a") == 1.0
        engine = tcm.query_engine
        assert engine.cache_stats()["misses"] > 0
        tcm.remove_many(["a"], ["b"])
        assert tcm.out_flow("a") == 0.0  # stale cache would still say 1


class TestSlidingWindowEquivalence:
    @pytest.mark.parametrize("sparse", [False, True])
    @pytest.mark.parametrize("directed", [True, False])
    def test_batched_window_matches_per_element_baseline(self, sparse,
                                                         directed):
        config = dict(d=3, width=32, seed=11, directed=directed,
                      sparse=sparse)
        edges = timestamped_edges(1500)
        horizon = 20.0
        window = SlidingWindow(TCM(**config), horizon)
        assert window.is_batched
        assert window.consume(iter(edges), chunk_size=237) == len(edges)
        baseline, live = reference_window(config, edges, horizon)
        assert len(window) == len(live)
        assert_same_summary(window.summary, baseline, edges)

    def test_count_aggregation_equivalence(self):
        config = dict(d=2, width=32, seed=5,
                      aggregation=Aggregation.COUNT)
        edges = timestamped_edges(800)
        window = SlidingWindow(TCM(**config), 15.0)
        window.observe_many(edges)
        baseline, live = reference_window(config, edges, 15.0)
        assert len(window) == len(live)
        assert_same_summary(window.summary, baseline, edges)

    def test_chunk_size_does_not_change_results(self):
        edges = timestamped_edges(900, seed=2)
        results = []
        for chunk_size in (1, 7, 128, 10_000):
            window = SlidingWindow(TCM(d=2, width=32, seed=8), 10.0)
            window.consume(iter(edges), chunk_size=chunk_size)
            results.append((len(window),
                            window.summary.sketches[0]._matrix.copy()))
        for count, matrix in results[1:]:
            assert count == results[0][0]
            assert np.array_equal(matrix, results[0][1])

    def test_expiry_chunk_bounds_each_scatter(self):
        edges = timestamped_edges(600, seed=3)
        small = SlidingWindow(TCM(d=2, width=32, seed=8), 10.0,
                              expiry_chunk=13)
        big = SlidingWindow(TCM(d=2, width=32, seed=8), 10.0)
        for window in (small, big):
            window.observe_many(edges)
            window.advance_to(edges[-1].timestamp + 100.0)
            assert len(window) == 0
        assert np.array_equal(small.summary.sketches[0]._matrix,
                              big.summary.sketches[0]._matrix)

    def test_buffer_survives_heavy_churn(self):
        """Growth, compaction and pop interleave correctly over many
        advances (the live region slides through the arrays)."""
        window = SlidingWindow(TCM(d=1, width=16, seed=1), 5.0)
        t = 0.0
        rng = np.random.default_rng(0)
        for _ in range(40):
            burst = [StreamEdge(int(rng.integers(8)), int(rng.integers(8)),
                                1.0, t + i * 0.01)
                     for i in range(int(rng.integers(1, 120)))]
            t = burst[-1].timestamp + float(rng.uniform(0, 4.0))
            window.observe_many(burst)
        live = len(window)
        assert window.summary.total_weight_estimate() == live
        assert window.oldest_timestamp >= window.watermark - 5.0

    def test_out_of_order_within_batch_rejected(self):
        window = SlidingWindow(TCM(d=1, width=16, seed=1), 5.0)
        with pytest.raises(ValueError, match="out-of-order"):
            window.observe_many([StreamEdge("a", "b", 1.0, 2.0),
                                 StreamEdge("a", "b", 1.0, 1.0)])

    def test_scalar_fallback_observe_many(self):
        """Summaries without the batched protocol still get batch calls."""

        class Plain:
            def __init__(self):
                self.weights = {}

            def update(self, s, t, w=1.0):
                self.weights[(s, t)] = self.weights.get((s, t), 0.0) + w

            def remove(self, s, t, w=1.0):
                self.weights[(s, t)] -= w

        window = SlidingWindow(Plain(), 5.0)
        assert not window.is_batched
        window.observe_many([StreamEdge("a", "b", 2.0, 0.0),
                             StreamEdge("c", "d", 1.0, 10.0)])
        assert window.summary.weights[("a", "b")] == 0.0
        assert window.summary.weights[("c", "d")] == 1.0
        assert len(window) == 1


class TestRotatingWindow:
    def test_validation(self):
        with pytest.raises(ValueError, match="horizon"):
            RotatingWindowTCM(0.0)
        with pytest.raises(ValueError, match="buckets"):
            RotatingWindowTCM(10.0, buckets=0)
        with pytest.raises(ValueError, match="seed"):
            RotatingWindowTCM(10.0, seed=None)

    def test_never_under_estimates_exact_window(self):
        edges = timestamped_edges(2000, seed=13, rate=25.0)
        horizon = 20.0
        rotating = RotatingWindowTCM(horizon, buckets=6, d=2, width=32,
                                     seed=5)
        rotating.consume(iter(edges), chunk_size=333)
        exact = SlidingWindow(TCM(d=2, width=32, seed=5), horizon)
        exact.observe_many(edges)
        pairs = sorted({(e.source, e.target) for e in edges})
        surplus = rotating.edge_weights(pairs) - \
            exact.summary.edge_weights(pairs)
        assert (surplus >= -1e-9).all()

    def test_view_equals_tcm_of_covered_buckets_exactly(self):
        """For sum the merged view is *bit-identical* to a fresh TCM over
        the elements of the live buckets -- the over-estimate is exactly
        the boundary elements, nothing else (merge linearity)."""
        edges = timestamped_edges(1200, seed=17, rate=30.0)
        horizon = 15.0
        buckets = 5
        rotating = RotatingWindowTCM(horizon, buckets=buckets, d=2,
                                     width=32, seed=5)
        rotating.observe_many(edges)
        span = horizon / buckets
        current = int(np.floor(edges[-1].timestamp / span))
        covered = [e for e in edges
                   if np.floor(e.timestamp / span) >= current - buckets]
        fresh = TCM(d=2, width=32, seed=5)
        fresh.ingest_columns([e.source for e in covered],
                             [e.target for e in covered],
                             np.array([e.weight for e in covered]))
        for mine, theirs in zip(rotating.merged.sketches, fresh.sketches):
            assert np.array_equal(mine._matrix, theirs._matrix)
        assert rotating.max_staleness == pytest.approx(span)

    def test_long_gap_clears_entire_ring(self):
        rotating = RotatingWindowTCM(10.0, buckets=4, d=1, width=16, seed=1)
        rotating.observe("a", "b", 3.0, timestamp=0.0)
        assert rotating.total_weight_estimate() == 3.0
        rotating.advance_to(1000.0)
        assert rotating.total_weight_estimate() == 0.0

    def test_supports_min_aggregation(self):
        """Rotation is the only windowing for non-invertible aggregations
        (exact windows need deletion); min merges across buckets."""
        rotating = RotatingWindowTCM(10.0, buckets=2, d=2, width=32,
                                     seed=3, aggregation=Aggregation.MIN)
        rotating.observe("a", "b", 5.0, timestamp=0.0)
        rotating.observe("a", "b", 9.0, timestamp=6.0)
        assert rotating.edge_weight("a", "b") == 5.0
        rotating.advance_to(100.0)
        assert rotating.edge_weight("a", "b") == 0.0

    def test_merged_view_cached_between_mutations(self):
        rotating = RotatingWindowTCM(10.0, buckets=2, d=1, width=16, seed=1)
        rotating.observe("a", "b", 1.0, timestamp=0.0)
        view = rotating.merged
        epoch = view.sketches[0].epoch
        assert rotating.merged.sketches[0].epoch == epoch  # cached: no rebuild
        rotating.observe("a", "b", 1.0, timestamp=1.0)
        assert rotating.merged.sketches[0].epoch > epoch  # rebuilt
        assert rotating.edge_weight("a", "b") == 2.0

    def test_watermark_and_order_validation(self):
        rotating = RotatingWindowTCM(10.0, buckets=2, d=1, width=16, seed=1)
        rotating.advance_to(5.0)
        with pytest.raises(ValueError, match="backwards"):
            rotating.advance_to(4.0)
        with pytest.raises(ValueError, match="out-of-order"):
            rotating.observe_many([StreamEdge("a", "b", 1.0, 9.0),
                                   StreamEdge("a", "b", 1.0, 8.0)])


class TestWindowObservability:
    def test_gauges_appear_in_prometheus_scrape(self):
        obs.enable()
        window = SlidingWindow(TCM(d=1, width=16, seed=1), 5.0)
        window.observe_many([StreamEdge("a", "b", 1.0, 0.0),
                             StreamEdge("b", "c", 1.0, 1.0),
                             StreamEdge("c", "d", 1.0, 10.0)])
        text = obs.render_prometheus()
        assert "window_observed_total 3" in text
        assert "window_expired_total 2" in text
        assert "window_live_elements 1" in text
        assert "window_watermark_lag 0" in text
        assert "# TYPE window_expired_per_advance histogram" in text
        assert "window_expired_per_advance_count 1" in text

    def test_rotation_counter_and_json_snapshot(self):
        obs.enable()
        rotating = RotatingWindowTCM(10.0, buckets=2, d=1, width=16, seed=1)
        rotating.observe("a", "b", 1.0, timestamp=0.0)
        rotating.observe("a", "b", 1.0, timestamp=12.0)
        doc = json.loads(obs.json_snapshot())
        metrics = doc["metrics"]
        assert metrics["window_rotations_total"]["samples"][0]["value"] == 2
        assert metrics["window_observed_total"]["samples"][0]["value"] == 2


class TestWindowCli:
    def test_window_subcommand_both_modes(self, tmp_path, capsys):
        from repro.cli import main
        from repro.streams.io import write_stream
        from repro.streams.model import GraphStream

        stream = GraphStream(directed=True)
        for e in timestamped_edges(400, seed=1, rate=10.0):
            stream.add(e.source, e.target, e.weight, e.timestamp)
        trace = tmp_path / "trace.txt"
        write_stream(stream, str(trace))

        sketch = tmp_path / "window.npz"
        assert main(["window", str(trace), str(sketch),
                     "--horizon", "10", "--width", "32"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out and "live elements" in out
        assert sketch.exists()

        assert main(["window", str(trace), "--horizon", "10",
                     "--mode", "rotating", "--buckets", "4",
                     "--width", "32"]) == 0
        out = capsys.readouterr().out
        assert "rotating" in out and "staleness" in out
