"""Tests for gSketch and the partitioned TCM."""

import pytest

from repro.baselines.gsketch import (
    GSketch,
    PartitionedTCM,
    partition_edges_by_sample,
    partition_space_allocation,
)
from repro.streams.generators import ipflow_like
from repro.streams.model import GraphStream


@pytest.fixture
def sample_stream():
    stream = GraphStream(directed=True)
    weights = {"light1": 1, "light2": 1, "mid1": 5, "mid2": 6,
               "heavy1": 50, "heavy2": 60}
    for name, weight in weights.items():
        stream.add(name, name + "_dst", float(weight))
    return stream


class TestPartitioning:
    def test_heavy_and_light_separated(self, sample_stream):
        table, default = partition_edges_by_sample(sample_stream, 3)
        assert default == 0
        assert table[("light1", "light1_dst")] == 0
        assert table[("heavy2", "heavy2_dst")] == 2

    def test_all_edges_routed(self, sample_stream):
        table, _ = partition_edges_by_sample(sample_stream, 3)
        assert len(table) == 6
        assert set(table.values()) <= {0, 1, 2}

    def test_single_partition(self, sample_stream):
        table, _ = partition_edges_by_sample(sample_stream, 1)
        assert set(table.values()) == {0}

    def test_empty_sample(self):
        table, default = partition_edges_by_sample(GraphStream(), 4)
        assert table == {}
        assert default == 0

    def test_invalid_partition_count(self, sample_stream):
        with pytest.raises(ValueError):
            partition_edges_by_sample(sample_stream, 0)


class TestSpaceAllocation:
    def test_total_close_to_budget(self, sample_stream):
        widths = partition_space_allocation(sample_stream, 4, 1000, 0.1)
        assert sum(widths) <= 1000 + 4
        assert all(w >= 1 for w in widths)

    def test_default_partition_gets_most_space(self, sample_stream):
        widths = partition_space_allocation(sample_stream, 4, 1000, 0.1)
        assert widths[0] == max(widths)
        assert widths[0] > sum(widths[1:])

    def test_full_sample_even_allocation(self, sample_stream):
        """With sample_fraction=1 nothing is unseen: near-even split."""
        widths = partition_space_allocation(sample_stream, 3, 900, 1.0)
        assert max(widths) - min(widths) <= 1

    def test_invalid_fraction(self, sample_stream):
        with pytest.raises(ValueError):
            partition_space_allocation(sample_stream, 2, 100, 0.0)


class TestGSketch:
    def make(self, stream, partitions=4, d=3, cells=2000, fraction=0.2):
        cutoff = max(1, int(len(stream) * fraction))
        sample = GraphStream(directed=stream.directed,
                             edges=[stream[i] for i in range(cutoff)])
        sketch = GSketch(sample, partitions, d, cells, seed=1,
                         directed=stream.directed, sample_fraction=fraction)
        sketch.ingest(stream)
        return sketch

    def test_edge_estimates_never_underestimate(self):
        stream = ipflow_like(n_hosts=60, n_packets=1200, seed=3)
        sketch = self.make(stream)
        for edge in list(stream.distinct_edges)[:200]:
            assert sketch.edge_weight(*edge) >= stream.edge_weight(*edge) - 1e-9

    def test_exact_when_spacious(self, sample_stream):
        sketch = self.make(sample_stream, cells=5000, fraction=1.0)
        assert sketch.edge_weight("heavy2", "heavy2_dst") == 60.0

    def test_remove(self, sample_stream):
        sketch = self.make(sample_stream, cells=5000, fraction=1.0)
        sketch.remove("heavy2", "heavy2_dst", 60.0)
        assert sketch.edge_weight("heavy2", "heavy2_dst") == 0.0

    def test_subgraph_weight(self, sample_stream):
        sketch = self.make(sample_stream, cells=5000, fraction=1.0)
        total = sketch.subgraph_weight(
            [("heavy1", "heavy1_dst"), ("mid1", "mid1_dst")])
        assert total == 55.0

    def test_space_budget_respected(self, sample_stream):
        sketch = self.make(sample_stream, partitions=4, d=3, cells=2000)
        assert sketch.size_in_cells <= (2000 + 4) * 3

    def test_too_small_budget_rejected(self, sample_stream):
        with pytest.raises(ValueError):
            GSketch(sample_stream, partitions=10, d=1, total_cells=5)

    def test_partitioning_reduces_light_edge_error(self):
        """The point of gSketch: light edges stop colliding with heavy
        ones, cutting their ARE versus a monolithic CountMin at d=1."""
        from repro.baselines.countmin import EdgeCountMin

        stream = ipflow_like(n_hosts=120, n_packets=6000, seed=9)
        cells = 600
        plain = EdgeCountMin(1, cells, seed=2)
        plain.ingest(stream)
        partitioned = self.make(stream, partitions=8, d=1, cells=cells,
                                fraction=0.2)
        edges = sorted(stream.distinct_edges, key=repr)

        def are(estimator):
            errors = [estimator(*e) / stream.edge_weight(*e) - 1
                      for e in edges]
            return sum(errors) / len(errors)

        assert are(partitioned.edge_weight) < are(plain.edge_weight)


class TestPartitionedTCM:
    def make(self, stream, partitions=4, d=2, cells=4000, fraction=1.0):
        sketch = PartitionedTCM(stream, partitions, d, cells, seed=1,
                                directed=stream.directed,
                                sample_fraction=fraction)
        sketch.ingest(stream)
        return sketch

    def test_estimates(self, sample_stream):
        sketch = self.make(sample_stream)
        assert sketch.edge_weight("heavy1", "heavy1_dst") == 50.0

    def test_never_underestimates(self):
        stream = ipflow_like(n_hosts=60, n_packets=1200, seed=4)
        sketch = self.make(stream, cells=1000, fraction=0.2)
        for edge in list(stream.distinct_edges)[:200]:
            assert sketch.edge_weight(*edge) >= stream.edge_weight(*edge) - 1e-9

    def test_remove(self, sample_stream):
        sketch = self.make(sample_stream)
        sketch.remove("mid1", "mid1_dst", 5.0)
        assert sketch.edge_weight("mid1", "mid1_dst") == 0.0

    def test_partitions_exposed(self, sample_stream):
        sketch = self.make(sample_stream, partitions=3)
        assert len(sketch.partitions) == 3

    def test_budget_validation(self, sample_stream):
        with pytest.raises(ValueError):
            PartitionedTCM(sample_stream, partitions=10, d=1, total_cells=5)
