"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.streams.generators import (
    clique_stream,
    dblp_like,
    erdos_renyi,
    ipflow_like,
    path_stream,
    query_graphs_from_stream,
    rmat,
    star_stream,
    twitter_like,
    zipf_weights,
)


class TestZipfWeights:
    def test_length_and_bounds(self):
        weights = zipf_weights(1000, seed=1)
        assert len(weights) == 1000
        assert weights.min() >= 1
        assert weights.max() <= 200

    def test_reproducible(self):
        np.testing.assert_array_equal(zipf_weights(100, seed=3),
                                      zipf_weights(100, seed=3))

    def test_skew(self):
        weights = zipf_weights(5000, seed=2)
        # Zipf(1.5): weight-1 edges carry 1/zeta(1.5) ~ 38% of the mass.
        assert (weights == 1).mean() > 0.3
        assert weights.mean() > 2.0  # but the tail is heavy

    def test_zero_count(self):
        assert len(zipf_weights(0, seed=1)) == 0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            zipf_weights(10, alpha=1.0)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            zipf_weights(-1)


class TestRmat:
    def test_sizes(self):
        stream = rmat(64, 500, seed=1)
        assert len(stream) == 500
        assert all(0 <= e.source < 64 and 0 <= e.target < 64 for e in stream)

    def test_reproducible(self):
        s1 = rmat(32, 100, seed=7)
        s2 = rmat(32, 100, seed=7)
        assert [(e.source, e.target) for e in s1] == \
            [(e.source, e.target) for e in s2]

    def test_weights_applied(self):
        weights = [2.0] * 50
        stream = rmat(16, 50, weights=weights, seed=1)
        assert all(e.weight == 2.0 for e in stream)

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            rmat(16, 50, weights=[1.0] * 49, seed=1)

    def test_skewed_degrees(self):
        """R-MAT with the default partition produces skewed out-degrees."""
        stream = rmat(256, 5000, seed=3)
        flows = sorted((stream.out_flow(n) for n in stream.nodes),
                       reverse=True)
        top_share = sum(flows[:len(flows) // 10]) / sum(flows)
        assert top_share > 0.2  # top 10% of nodes carry >2x their share

    def test_invalid_partition(self):
        with pytest.raises(ValueError):
            rmat(16, 10, partition=(0.5, 0.5, 0.5, 0.5))

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            rmat(1, 10)

    def test_undirected_mode(self):
        stream = rmat(16, 50, seed=1, directed=False)
        assert not stream.directed

    def test_zero_edges(self):
        assert len(rmat(16, 0, seed=1)) == 0


class TestDblpLike:
    def test_undirected(self, dblp_stream):
        assert not dblp_stream.directed

    def test_all_weights_one(self, dblp_stream):
        assert all(e.weight == 1.0 for e in dblp_stream)

    def test_string_labels(self, dblp_stream):
        assert all(isinstance(e.source, str) for e in dblp_stream)

    def test_no_self_collaboration(self, dblp_stream):
        assert all(e.source != e.target for e in dblp_stream)

    def test_repeat_collaborations_accumulate(self):
        stream = dblp_like(n_authors=20, n_papers=400, seed=1)
        assert max(stream.edge_weight(*e) for e in stream.distinct_edges) > 1

    def test_moderate_head_share(self):
        """The most productive author holds a few percent of slots, not half."""
        stream = dblp_like(n_authors=1000, n_papers=3000, seed=2)
        total = stream.total_weight() * 2  # each element has 2 endpoints
        top = max(stream.flow(n) for n in stream.nodes)
        assert 0.005 < top / total < 0.15

    def test_too_few_authors(self):
        with pytest.raises(ValueError):
            dblp_like(n_authors=2)


class TestIpflowLike:
    def test_directed(self, ipflow_stream):
        assert ipflow_stream.directed

    def test_packet_size_bounds(self, ipflow_stream):
        assert all(40 <= e.weight <= 1500 for e in ipflow_stream)

    def test_no_self_loops(self, ipflow_stream):
        assert all(e.source != e.target for e in ipflow_stream)

    def test_dotted_quad_labels(self, ipflow_stream):
        assert all(e.source.startswith("10.") for e in ipflow_stream)

    def test_heavy_tail_edge_weights(self):
        """Flow aggregation spans orders of magnitude (paper Fig. 8(b))."""
        stream = ipflow_like(n_hosts=300, n_packets=8000, seed=4)
        weights = [stream.edge_weight(*e) for e in stream.distinct_edges]
        assert max(weights) / min(weights) > 100

    def test_background_fraction_zero(self):
        stream = ipflow_like(n_hosts=50, n_packets=500,
                             background_fraction=0.0, seed=1)
        # Without background, distinct edges are bounded by flow count.
        assert len(stream.distinct_edges) <= max(8, int(500 / 25)) + 1

    def test_invalid_background(self):
        with pytest.raises(ValueError):
            ipflow_like(background_fraction=1.0)

    def test_too_few_hosts(self):
        with pytest.raises(ValueError):
            ipflow_like(n_hosts=1)


class TestShapeStreams:
    def test_path(self):
        stream = path_stream(["a", "b", "c", "d"])
        assert len(stream) == 3
        assert stream.reachable("a", "d")
        assert not stream.reachable("d", "a")

    def test_star(self):
        stream = star_stream("hub", ["l1", "l2", "l3"])
        assert stream.out_flow("hub") == 3.0
        assert stream.in_flow("l2") == 1.0

    def test_clique_undirected(self):
        stream = clique_stream(["a", "b", "c"])
        assert len(stream) == 3
        assert stream.edge_weight("a", "c") == 1.0

    def test_clique_directed_both_orientations(self):
        stream = clique_stream(["a", "b", "c"], directed=True)
        assert len(stream) == 6
        assert stream.edge_weight("b", "a") == 1.0

    def test_erdos_renyi(self):
        stream = erdos_renyi(20, 100, seed=1)
        assert len(stream) == 100

    def test_twitter_like(self):
        stream = twitter_like(n_users=64, n_links=200, seed=1)
        assert not stream.directed
        assert len(stream) == 200


class TestQueryGraphSampling:
    def test_counts_and_sizes(self, rmat_stream):
        queries = query_graphs_from_stream(rmat_stream, count=10, seed=1)
        assert 1 <= len(queries) <= 10
        for query in queries:
            assert 2 <= len(query) <= 8

    def test_edges_exist_in_stream(self, rmat_stream):
        queries = query_graphs_from_stream(rmat_stream, count=5, seed=2)
        for query in queries:
            for x, y in query:
                assert rmat_stream.edge_weight(x, y) > 0

    def test_queries_connected(self, rmat_stream):
        """Each query graph is weakly connected by construction."""
        queries = query_graphs_from_stream(rmat_stream, count=5, seed=3)
        for query in queries:
            nodes = {n for e in query for n in e}
            adjacency = {n: set() for n in nodes}
            for x, y in query:
                adjacency[x].add(y)
                adjacency[y].add(x)
            seen = set()
            frontier = [next(iter(nodes))]
            while frontier:
                node = frontier.pop()
                if node in seen:
                    continue
                seen.add(node)
                frontier.extend(adjacency[node])
            assert seen == nodes

    def test_empty_stream(self):
        from repro.streams.model import GraphStream
        assert query_graphs_from_stream(GraphStream(), count=5) == []


class TestRmatEdgesTimestamped:
    def test_same_topology_as_rmat_edges(self):
        from repro.streams.generators import rmat_edges, \
            rmat_edges_timestamped
        plain = list(rmat_edges(64, 700, seed=3, block=256))
        stamped = list(rmat_edges_timestamped(64, 700, seed=3, block=256,
                                              rate=4.0))
        assert [(e.source, e.target) for e in plain] == \
            [(e.source, e.target) for e in stamped]

    def test_timestamps_monotone_with_mean_rate(self):
        from repro.streams.generators import rmat_edges_timestamped
        edges = list(rmat_edges_timestamped(64, 2000, seed=5, block=512,
                                            rate=8.0, jitter=0.5))
        timestamps = np.array([e.timestamp for e in edges])
        gaps = np.diff(timestamps)
        assert (gaps > 0).all()
        # Gaps are Uniform(1/rate * [0.5, 1.5]): mean 1/rate, bounded.
        assert gaps.mean() == pytest.approx(1 / 8.0, rel=0.05)
        assert gaps.min() >= 0.5 / 8.0
        assert gaps.max() <= 1.5 / 8.0

    def test_zero_jitter_is_regular(self):
        from repro.streams.generators import rmat_edges_timestamped
        edges = list(rmat_edges_timestamped(16, 50, seed=1, rate=2.0,
                                            jitter=0.0))
        gaps = np.diff([e.timestamp for e in edges])
        np.testing.assert_allclose(gaps, 0.5)

    def test_reproducible(self):
        from repro.streams.generators import rmat_edges_timestamped
        a = list(rmat_edges_timestamped(64, 300, seed=9, rate=3.0))
        b = list(rmat_edges_timestamped(64, 300, seed=9, rate=3.0))
        assert a == b

    def test_validation(self):
        from repro.streams.generators import rmat_edges_timestamped
        with pytest.raises(ValueError, match="rate"):
            list(rmat_edges_timestamped(16, 10, rate=0.0))
        with pytest.raises(ValueError, match="jitter"):
            list(rmat_edges_timestamped(16, 10, jitter=1.0))
