"""Tests for temporal sketch snapshots (SnapshotRing)."""

import pytest

from repro.core.snapshots import SnapshotRing
from repro.streams.model import StreamEdge


def make_ring(bucket_length=10.0, capacity=4, **kwargs):
    defaults = dict(d=2, width=64, seed=1)
    defaults.update(kwargs)
    return SnapshotRing(bucket_length, capacity, **defaults)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            SnapshotRing(0.0, 4)
        with pytest.raises(ValueError):
            SnapshotRing(10.0, 0)

    def test_bucket_of(self):
        ring = make_ring(bucket_length=10.0)
        assert ring.bucket_of(0.0) == 0
        assert ring.bucket_of(9.99) == 0
        assert ring.bucket_of(10.0) == 1
        assert ring.bucket_of(25.0) == 2

    def test_empty_span(self):
        assert make_ring().span is None


class TestIngest:
    def test_routes_to_buckets(self):
        ring = make_ring()
        ring.observe(StreamEdge("a", "b", 1.0, 5.0))
        ring.observe(StreamEdge("a", "b", 2.0, 15.0))
        series = ring.edge_weight_series("a", "b")
        assert series == [(0, 1.0), (1, 2.0)]

    def test_out_of_order_rejected(self):
        ring = make_ring()
        ring.observe(StreamEdge("a", "b", 1.0, 20.0))
        with pytest.raises(ValueError, match="out-of-order"):
            ring.observe(StreamEdge("a", "b", 1.0, 19.0))

    def test_eviction_keeps_most_recent(self):
        ring = make_ring(capacity=2)
        for t in (5.0, 15.0, 25.0, 35.0):
            ring.observe(StreamEdge("a", "b", 1.0, t))
        assert len(ring) == 2
        assert [b for b, _ in ring.buckets()] == [2, 3]

    def test_span(self):
        ring = make_ring()
        ring.observe(StreamEdge("a", "b", 1.0, 5.0))
        ring.observe(StreamEdge("a", "b", 1.0, 25.0))
        assert ring.span == (0.0, 30.0)

    def test_consume(self):
        ring = make_ring()
        edges = [StreamEdge("x", "y", 1.0, float(t)) for t in range(30)]
        assert ring.consume(edges) == 30
        assert len(ring) == 3


class TestRangeQueries:
    def test_range_merges_buckets(self):
        ring = make_ring()
        ring.observe(StreamEdge("a", "b", 1.0, 5.0))
        ring.observe(StreamEdge("a", "b", 2.0, 15.0))
        ring.observe(StreamEdge("a", "b", 4.0, 25.0))
        merged = ring.range_summary(0.0, 20.0)
        assert merged.edge_weight("a", "b") == 3.0
        full = ring.range_summary(0.0, 30.0)
        assert full.edge_weight("a", "b") == 7.0

    def test_range_does_not_mutate_buckets(self):
        ring = make_ring()
        ring.observe(StreamEdge("a", "b", 1.0, 5.0))
        ring.observe(StreamEdge("a", "b", 2.0, 15.0))
        ring.range_summary(0.0, 20.0)
        assert ring.edge_weight_series("a", "b") == [(0, 1.0), (1, 2.0)]

    def test_range_validation(self):
        ring = make_ring()
        ring.observe(StreamEdge("a", "b", 1.0, 5.0))
        with pytest.raises(ValueError):
            ring.range_summary(10.0, 10.0)

    def test_untouched_range_raises(self):
        ring = make_ring()
        ring.observe(StreamEdge("a", "b", 1.0, 5.0))
        with pytest.raises(KeyError):
            ring.range_summary(100.0, 200.0)

    def test_evicted_range_raises(self):
        ring = make_ring(capacity=1)
        ring.observe(StreamEdge("a", "b", 1.0, 5.0))
        ring.observe(StreamEdge("a", "b", 1.0, 15.0))
        with pytest.raises(KeyError):
            ring.range_summary(0.0, 10.0)

    def test_range_supports_full_query_surface(self):
        """The merged range is an ordinary TCM: all queries work."""
        ring = make_ring(width=128)
        ring.observe(StreamEdge("a", "b", 1.0, 1.0))
        ring.observe(StreamEdge("b", "c", 1.0, 11.0))
        merged = ring.range_summary(0.0, 20.0)
        assert merged.reachable("a", "c")
        assert merged.out_flow("b") == 1.0

    def test_burst_localized_in_time(self):
        """The motivating monitoring query: when did the burst happen?"""
        ring = make_ring(capacity=10)
        for t in range(100):
            weight = 100.0 if 30 <= t < 40 else 1.0
            ring.observe(StreamEdge("atk", "victim", weight, float(t)))
        series = ring.edge_weight_series("atk", "victim")
        heaviest_bucket = max(series, key=lambda kv: kv[1])[0]
        assert heaviest_bucket == 3
