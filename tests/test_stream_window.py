"""Tests for sliding time-windows with deletions."""

import pytest

from repro.core.tcm import TCM
from repro.baselines.countmin import CountMinSketch
from repro.streams.model import StreamEdge
from repro.streams.window import SlidingWindow


def make_window(horizon=10.0, width=64):
    return SlidingWindow(TCM(d=2, width=width, seed=1), horizon)


class TestWindowBasics:
    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            make_window(horizon=0)

    def test_observe_inserts(self):
        window = make_window()
        window.observe(StreamEdge("a", "b", 2.0, 1.0))
        assert window.summary.edge_weight("a", "b") == 2.0
        assert len(window) == 1

    def test_watermark_advances(self):
        window = make_window()
        window.observe(StreamEdge("a", "b", 1.0, 3.0))
        assert window.watermark == 3.0

    def test_out_of_order_rejected(self):
        window = make_window()
        window.observe(StreamEdge("a", "b", 1.0, 5.0))
        with pytest.raises(ValueError, match="out-of-order"):
            window.observe(StreamEdge("a", "b", 1.0, 4.0))

    def test_watermark_cannot_regress(self):
        window = make_window()
        window.advance_to(10.0)
        with pytest.raises(ValueError):
            window.advance_to(5.0)


class TestExpiry:
    def test_expiry_removes_from_summary(self):
        window = make_window(horizon=5.0)
        window.observe(StreamEdge("a", "b", 2.0, 0.0))
        window.observe(StreamEdge("c", "d", 1.0, 10.0))
        # t=0 is out of [5, 10]: expired.
        assert window.summary.edge_weight("a", "b") == 0.0
        assert window.summary.edge_weight("c", "d") == 1.0
        assert len(window) == 1

    def test_boundary_is_inclusive(self):
        window = make_window(horizon=5.0)
        window.observe(StreamEdge("a", "b", 1.0, 5.0))
        window.observe(StreamEdge("c", "d", 1.0, 10.0))
        # timestamp 5.0 == cutoff 10-5: still live (strict <).
        assert window.summary.edge_weight("a", "b") == 1.0

    def test_advance_returns_expired_count(self):
        window = make_window(horizon=2.0)
        for t in range(5):
            window.observe(StreamEdge("n", "m", 1.0, float(t)))
        # Observing t=4 already expired t=0 and t=1 (cutoff 2.0); the
        # final advance flushes the remaining three live elements.
        assert len(window) == 3
        expired = window.advance_to(100.0)
        assert expired == 3
        assert len(window) == 0

    def test_summary_matches_window_contents_exactly(self):
        """After arbitrary expiry, the summary equals a fresh summary of
        the live elements (deletion is the exact inverse of insertion)."""
        window = SlidingWindow(TCM(d=3, width=32, seed=9), horizon=4.0)
        edges = [StreamEdge(f"s{i % 5}", f"t{i % 3}", float(i % 7 + 1), float(i))
                 for i in range(30)]
        for edge in edges:
            window.observe(edge)
        live = [e for e in edges if e.timestamp >= window.watermark - 4.0]
        fresh = TCM(d=3, width=32, seed=9)
        for e in live:
            fresh.update(e.source, e.target, e.weight)
        for e in live:
            assert window.summary.edge_weight(e.source, e.target) == \
                pytest.approx(fresh.edge_weight(e.source, e.target))

    def test_works_with_countmin_summary(self):
        """The window is summary-agnostic (any update/remove structure)."""

        class EdgeCM:
            def __init__(self):
                self.cm = CountMinSketch(2, 64, seed=3)

            def update(self, s, t, w=1.0):
                self.cm.update(f"{s}->{t}", w)

            def remove(self, s, t, w=1.0):
                self.cm.remove(f"{s}->{t}", w)

        window = SlidingWindow(EdgeCM(), horizon=1.0)
        window.observe(StreamEdge("a", "b", 5.0, 0.0))
        window.observe(StreamEdge("c", "d", 1.0, 10.0))
        assert window.summary.cm.estimate("a->b") == 0.0
