"""Tests for shard-and-merge distribution."""

import numpy as np
import pytest

from repro.core.tcm import TCM
from repro.distributed.sharded import ShardedTCM
from repro.streams.transforms import shard


class TestShardedTCM:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedTCM(0, 2, 16)

    def test_matches_single_machine_build(self, ipflow_stream):
        elements = list(ipflow_stream)
        shards = shard(elements, 4)
        cluster = ShardedTCM(4, d=3, width=32, seed=9)
        merged = cluster.summarize(shards)
        single = TCM(d=3, width=32, seed=9)
        single.ingest(elements)
        for s1, s2 in zip(merged.sketches, single.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix)

    def test_sharding_strategy_irrelevant_to_result(self, ipflow_stream):
        elements = list(ipflow_stream)
        cluster = ShardedTCM(3, d=2, width=32, seed=9)
        by_rr = cluster.summarize(shard(elements, 3, by="round_robin"))
        by_src = cluster.summarize(shard(elements, 3, by="source"))
        by_time = cluster.summarize(shard(elements, 3, by="time"))
        for a, b, c in zip(by_rr.sketches, by_src.sketches, by_time.sketches):
            np.testing.assert_allclose(a.matrix, b.matrix)
            np.testing.assert_allclose(a.matrix, c.matrix)

    def test_parallel_and_serial_agree(self, ipflow_stream):
        elements = list(ipflow_stream)
        shards = shard(elements, 3)
        parallel = ShardedTCM(3, d=2, width=32, seed=9, parallel=True)
        serial = ShardedTCM(3, d=2, width=32, seed=9, parallel=False)
        p = parallel.summarize(shards)
        s = serial.summarize(shards)
        for s1, s2 in zip(p.sketches, s.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix)

    def test_too_many_shards_rejected(self, ipflow_stream):
        cluster = ShardedTCM(2, d=1, width=16, seed=1)
        with pytest.raises(ValueError, match="exceed"):
            cluster.summarize(shard(list(ipflow_stream), 3))

    def test_empty_shards(self):
        cluster = ShardedTCM(2, d=1, width=16, seed=1)
        merged = cluster.summarize([])
        assert merged.total_weight_estimate() == 0.0

    def test_queries_after_merge(self, ipflow_stream):
        elements = list(ipflow_stream)
        cluster = ShardedTCM(4, d=3, width=64, seed=2)
        merged = cluster.summarize(shard(elements, 4))
        for x, y in list(ipflow_stream.distinct_edges)[:50]:
            # Tolerance: shard-wise summation reorders float additions.
            assert merged.edge_weight(x, y) >= \
                ipflow_stream.edge_weight(x, y) * (1 - 1e-12)
