"""Smoke-run every example script (keeps docs and code in sync)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(SCRIPTS) >= 5


@pytest.mark.slow
@pytest.mark.parametrize("script", SCRIPTS, ids=[s.stem for s in SCRIPTS])
def test_example_runs_clean(script):
    result = subprocess.run([sys.executable, str(script)],
                            capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
    assert "Traceback" not in result.stderr
