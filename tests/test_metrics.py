"""Tests for the effectiveness metrics."""

import math

import pytest

from repro.metrics.error import (
    average_relative_error,
    errors_by_segment,
    relative_error,
)
from repro.metrics.topk import dcg, intersection_accuracy, ndcg, topk_items


class TestRelativeError:
    def test_exact_estimate(self):
        assert relative_error(10.0, 10.0) == 0.0

    def test_overcount(self):
        assert relative_error(15.0, 10.0) == pytest.approx(0.5)

    def test_undercount(self):
        assert relative_error(5.0, 10.0) == pytest.approx(-0.5)

    def test_zero_exact_raises(self):
        with pytest.raises(ZeroDivisionError):
            relative_error(1.0, 0.0)


class TestAverageRelativeError:
    def test_mean(self):
        exact = {"a": 10.0, "b": 20.0}
        est = {"a": 20.0, "b": 20.0}
        are = average_relative_error(["a", "b"], exact.get, est.get)
        assert are == pytest.approx(0.5)

    def test_zero_truth_skipped(self):
        exact = {"a": 10.0, "b": 0.0}
        est = {"a": 10.0, "b": 5.0}
        are = average_relative_error(["a", "b"], exact.get, est.get)
        assert are == 0.0

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            average_relative_error(["a"], lambda q: 0.0, lambda q: 1.0)


class TestErrorsBySegment:
    def test_segments(self):
        queries = list(range(1, 11))  # exact value == query id
        estimates = {q: q * (2.0 if q <= 5 else 1.0) for q in queries}
        errors = errors_by_segment(queries, 2, float, estimates.get)
        assert errors[0] == pytest.approx(1.0)
        assert errors[1] == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            errors_by_segment([1], 0, float, float)
        with pytest.raises(ValueError):
            errors_by_segment([], 2, float, float)


class TestIntersectionAccuracy:
    def test_perfect(self):
        assert intersection_accuracy(["a", "b"], ["b", "a"], 2) == 1.0

    def test_half(self):
        assert intersection_accuracy(["a", "x"], ["a", "b"], 2) == 0.5

    def test_truncates_to_k(self):
        assert intersection_accuracy(["a", "b", "c"], ["a", "z"], 1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            intersection_accuracy([], [], 0)


class TestNdcg:
    def test_perfect_ranking(self):
        scores = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg(["a", "b", "c"], scores, 3) == pytest.approx(1.0)

    def test_reversed_ranking_below_one(self):
        scores = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg(["c", "b", "a"], scores, 3) < 1.0

    def test_irrelevant_items_zero(self):
        assert ndcg(["x", "y"], {"a": 1.0}, 2) == 0.0

    def test_no_relevant_universe(self):
        assert ndcg(["x"], {}, 1) == 0.0

    def test_dcg_discounting(self):
        assert dcg([1.0, 1.0]) == pytest.approx(1.0 + 1.0 / math.log2(3))

    def test_validation(self):
        with pytest.raises(ValueError):
            ndcg(["a"], {"a": 1.0}, 0)


class TestTopkItems:
    def test_projection(self):
        ranking = [("a", 5.0), ("b", 3.0), ("c", 1.0)]
        assert topk_items(ranking, 2) == ["a", "b"]
