"""Tests for the high-dimensional TensorSketch (paper Section 5.1.3)."""

import pytest

from repro.core.queries import WILDCARD
from repro.core.tensor import TensorSketch


@pytest.fixture
def flow_sketch():
    """(src, dst, protocol): two hashed dims + one predefined dim."""
    return TensorSketch([64, 64, {"tcp": 0, "udp": 1}], d=3, seed=1)


class TestConstruction:
    def test_dimensions(self, flow_sketch):
        assert flow_sketch.ndim == 3
        assert flow_sketch.d == 3
        assert flow_sketch.size_in_cells == 3 * 64 * 64 * 2

    def test_no_dimensions_rejected(self):
        with pytest.raises(ValueError):
            TensorSketch([])

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            TensorSketch([8], d=0)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            TensorSketch([0])

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError):
            TensorSketch([{}])

    def test_gapped_mapping_rejected(self):
        with pytest.raises(ValueError, match="gaps"):
            TensorSketch([{"a": 0, "b": 2}])

    def test_repr(self, flow_sketch):
        assert "64x64x2" in repr(flow_sketch)


class TestEstimates:
    def test_point_estimate(self, flow_sketch):
        flow_sketch.update(("a", "b", "tcp"), 120.0)
        assert flow_sketch.estimate(("a", "b", "tcp")) == 120.0

    def test_accumulation(self, flow_sketch):
        flow_sketch.update(("a", "b", "tcp"), 100.0)
        flow_sketch.update(("a", "b", "tcp"), 50.0)
        assert flow_sketch.estimate(("a", "b", "tcp")) == 150.0

    def test_protocol_dimension_separates(self, flow_sketch):
        flow_sketch.update(("a", "b", "tcp"), 100.0)
        flow_sketch.update(("a", "b", "udp"), 7.0)
        assert flow_sketch.estimate(("a", "b", "tcp")) == 100.0
        assert flow_sketch.estimate(("a", "b", "udp")) == 7.0

    def test_unknown_category_rejected(self, flow_sketch):
        with pytest.raises(KeyError, match="icmp"):
            flow_sketch.estimate(("a", "b", "icmp"))

    def test_wrong_arity(self, flow_sketch):
        with pytest.raises(ValueError, match="coordinates"):
            flow_sketch.update(("a", "b"), 1.0)

    def test_negative_weight_rejected(self, flow_sketch):
        with pytest.raises(ValueError):
            flow_sketch.update(("a", "b", "tcp"), -1.0)

    def test_never_underestimates(self):
        sketch = TensorSketch([4, 4, 2], d=2, seed=3)
        truth = {}
        for i in range(200):
            coords = (f"s{i % 9}", f"t{i % 7}", i % 2)
            sketch.update(coords, 1.0)
            truth[coords] = truth.get(coords, 0) + 1
        for coords, exact in truth.items():
            assert sketch.estimate(coords) >= exact


class TestMarginals:
    def test_single_wildcard(self, flow_sketch):
        flow_sketch.update(("a", "b", "tcp"), 10.0)
        flow_sketch.update(("a", "c", "tcp"), 5.0)
        assert flow_sketch.estimate(("a", WILDCARD, "tcp")) == 15.0

    def test_protocol_marginal(self, flow_sketch):
        flow_sketch.update(("a", "b", "tcp"), 10.0)
        flow_sketch.update(("a", "b", "udp"), 4.0)
        assert flow_sketch.estimate(("a", "b", WILDCARD)) == 14.0

    def test_total_weight(self, flow_sketch):
        flow_sketch.update(("a", "b", "tcp"), 10.0)
        flow_sketch.update(("x", "y", "udp"), 4.0)
        assert flow_sketch.total_weight_estimate() == 14.0

    def test_marginal_never_underestimates(self):
        sketch = TensorSketch([4, 4], d=2, seed=5)
        out_flow = {}
        for i in range(100):
            src = f"s{i % 6}"
            sketch.update((src, f"t{i % 11}"), 2.0)
            out_flow[src] = out_flow.get(src, 0.0) + 2.0
        for src, exact in out_flow.items():
            assert sketch.estimate((src, WILDCARD)) >= exact


class TestDeletion:
    def test_remove_inverts(self, flow_sketch):
        flow_sketch.update(("a", "b", "tcp"), 9.0)
        flow_sketch.remove(("a", "b", "tcp"), 9.0)
        assert flow_sketch.estimate(("a", "b", "tcp")) == 0.0


class TestMerge:
    def test_merge_equals_concatenation(self):
        a = TensorSketch([8, 8, 2], d=2, seed=3)
        b = TensorSketch([8, 8, 2], d=2, seed=3)
        whole = TensorSketch([8, 8, 2], d=2, seed=3)
        left = [(("s1", "t1", 0), 2.0), (("s2", "t2", 1), 3.0)]
        right = [(("s1", "t1", 0), 4.0), (("s3", "t3", 0), 1.0)]
        for coords, w in left:
            a.update(coords, w)
            whole.update(coords, w)
        for coords, w in right:
            b.update(coords, w)
            whole.update(coords, w)
        a.merge_from(b)
        for coords, _ in left + right:
            assert a.estimate(coords) == whole.estimate(coords)

    def test_merge_different_seed_rejected(self):
        a = TensorSketch([8, 8], d=1, seed=1)
        b = TensorSketch([8, 8], d=1, seed=2)
        with pytest.raises(ValueError):
            a.merge_from(b)

    def test_merge_different_shape_rejected(self):
        a = TensorSketch([8, 8], d=1, seed=1)
        b = TensorSketch([8, 4], d=1, seed=1)
        with pytest.raises(ValueError):
            a.merge_from(b)

    def test_merge_predefined_mapping_mismatch_rejected(self):
        a = TensorSketch([8, {"tcp": 0, "udp": 1}], d=1, seed=1)
        b = TensorSketch([8, {"tcp": 1, "udp": 0}], d=1, seed=1)
        with pytest.raises(ValueError):
            a.merge_from(b)


class TestDegeneracies:
    def test_one_dimension_is_countmin_like(self):
        """x=1 behaves as a CountMin: point estimates over keys."""
        sketch = TensorSketch([128], d=3, seed=7)
        for i in range(50):
            sketch.update((f"k{i % 5}",), 1.0)
        assert sketch.estimate(("k0",)) >= 10.0

    def test_two_dimensions_matches_tcm_semantics(self):
        """x=2 point/marginal estimates behave like a directed TCM."""
        from repro.core.tcm import TCM
        sketch = TensorSketch([32, 32], d=2, seed=9)
        tcm = TCM(d=2, width=32, seed=9)
        elements = [(f"s{i % 7}", f"t{i % 5}") for i in range(120)]
        for s, t in elements:
            sketch.update((s, t), 1.0)
            tcm.update(s, t, 1.0)
        # Same hash seeds are drawn differently, so only the semantics
        # (not the exact collisions) must agree: both over-approximate
        # the same truths.
        truth = {}
        for s, t in elements:
            truth[(s, t)] = truth.get((s, t), 0) + 1
        for (s, t), exact in truth.items():
            assert sketch.estimate((s, t)) >= exact
            assert tcm.edge_weight(s, t) >= exact

    def test_more_replicas_never_increase_estimates(self):
        elements = [(f"s{i % 5}", f"t{i % 3}", i % 2) for i in range(150)]
        small = TensorSketch([4, 4, 2], d=1, seed=11)
        big = TensorSketch([4, 4, 2], d=4, seed=11)
        for coords in elements:
            small.update(coords, 1.0)
            big.update(coords, 1.0)
        for coords in set(elements):
            assert big.estimate(coords) <= small.estimate(coords)
