"""End-to-end integration tests across subsystems."""

import pytest

from repro import (
    TCM,
    ConditionalHeavyHitterMonitor,
    GraphStream,
    HeavyEdgeMonitor,
    SlidingWindow,
    StreamEdge,
    heavy_triangle_connections,
)
from repro.baselines.countmin import EdgeCountMin
from repro.experiments.common import edge_query_are
from repro.streams.generators import dblp_like, ipflow_like
from repro.streams.io import read_stream, write_stream


class TestPaperRunningExample:
    """Walk the paper's Fig. 1 / Fig. 3 narrative end to end."""

    def test_example_2_and_3_queries(self, paper_stream):
        tcm = TCM.from_stream(paper_stream, d=4, width=128, seed=1)
        # Node query: in-flow of a (from f and b) is 2.
        assert tcm.in_flow("a") == 2.0
        # Edge query: weight of (a, b) is 1.
        assert tcm.edge_weight("a", "b") == 1.0
        # Conditional node query: heaviest sender into a.
        senders = {n: tcm.edge_weight(n, "a") for n in ("b", "f", "c")}
        assert max(senders, key=senders.get) in ("b", "f")
        # Node connectivity: a path from a to g exists.
        assert tcm.reachable("a", "g")

    def test_example_4_small_sketch(self, paper_stream):
        """With w=4 (Fig. 3's compression) estimates are over-counts."""
        tcm = TCM.from_stream(paper_stream, d=1, width=4, seed=0)
        assert tcm.edge_weight("g", "b") >= 1.0
        assert tcm.in_flow("a") >= 2.0

    def test_example_5_multiple_sketches_help(self, paper_stream):
        one = TCM.from_stream(paper_stream, d=1, width=4, seed=0)
        many = TCM.from_stream(paper_stream, d=6, width=4, seed=0)
        assert many.edge_weight("g", "b") <= one.edge_weight("g", "b")


class TestCyberSecurityScenario:
    """The paper's motivating application: DoS monitoring on IP flows."""

    def test_detect_heavy_talkers_online(self):
        trace = ipflow_like(n_hosts=100, n_packets=3000, seed=21)
        tcm = TCM(d=4, width=96, seed=2)
        monitor = ConditionalHeavyHitterMonitor(tcm, k=5, l=3, direction="in")
        monitor.consume(trace)
        top = monitor.top()
        assert top
        truth = {n for n, _ in trace.top_nodes(5, "in")}
        assert {n for n, _, _ in top} & truth

    def test_sliding_window_forgets_old_attack(self):
        tcm = TCM(d=3, width=64, seed=3)
        window = SlidingWindow(tcm, horizon=100.0)
        # An early burst from an attacker, then quiet normal traffic.
        for t in range(50):
            window.observe(StreamEdge("attacker", "victim", 1000.0, float(t)))
        for t in range(50, 400):
            window.observe(StreamEdge(f"u{t % 7}", f"v{t % 5}", 10.0, float(t)))
        assert tcm.edge_weight("attacker", "victim") == 0.0
        assert tcm.edge_weight("u0", "v0") > 0.0


class TestSocialNetworkScenario:
    def test_collaboration_analytics(self):
        stream = dblp_like(n_authors=120, n_papers=300, seed=31)
        tcm = TCM.from_stream(stream, d=3, width=96, seed=4, keep_labels=True)

        # Heaviest collaboration via a monitor over the same stream.
        monitor = HeavyEdgeMonitor(
            TCM(d=3, width=96, seed=4, directed=False), k=5)
        monitor.consume(stream)
        heavy = [edge for edge, _ in monitor.top()]
        results = heavy_triangle_connections(tcm, heavy[:2], l=3)
        assert len(results) == 2
        for (x, y), connections in results:
            for z, score in connections:
                assert score > 0
                assert tcm.edge_weight(z, x) > 0
                assert tcm.edge_weight(z, y) > 0

    def test_reachability_between_communities(self):
        stream = dblp_like(n_authors=120, n_papers=300, seed=31)
        tcm = TCM.from_stream(stream, d=3, width=96, seed=5)
        authors = sorted(stream.nodes)[:10]
        for a in authors:
            for b in authors:
                if stream.reachable(a, b):
                    assert tcm.reachable(a, b)


class TestPersistenceRoundTrip:
    def test_stream_file_to_sketch(self, tmp_path, ipflow_stream):
        path = tmp_path / "trace.txt"
        write_stream(ipflow_stream, path)
        loaded = read_stream(path, directed=True)
        tcm_orig = TCM.from_stream(ipflow_stream, d=2, width=64, seed=6)
        tcm_load = TCM.from_stream(loaded, d=2, width=64, seed=6)
        for s1, s2 in zip(tcm_orig.sketches, tcm_load.sketches):
            assert (abs(s1.matrix - s2.matrix) < 1e-6).all()


class TestAccuracyRegression:
    """Coarse accuracy bars that should never regress."""

    def test_edge_are_reasonable(self):
        stream = ipflow_like(n_hosts=150, n_packets=4000, seed=41)
        tcm = TCM.from_stream(stream, d=5, width=64, seed=7)
        cm = EdgeCountMin(5, 64 * 64, seed=7)
        cm.ingest(stream)
        are_tcm = edge_query_are(stream, tcm.edge_weight)
        are_cm = edge_query_are(stream, cm.edge_weight)
        assert are_tcm < 5.0
        # Same space, comparable error (paper's headline comparison):
        assert are_tcm < 3 * are_cm + 0.5

    def test_wide_sketch_is_exact(self):
        stream = dblp_like(n_authors=60, n_papers=120, seed=42)
        tcm = TCM.from_stream(stream, d=4, width=512, seed=8)
        assert edge_query_are(stream, tcm.edge_weight) == pytest.approx(0.0)
