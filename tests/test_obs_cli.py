"""Smoke tests for the ``tcm obs`` subcommand."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.streams.io import write_stream


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.TRACER.clear()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.TRACER.clear()
    obs.REGISTRY.reset()


@pytest.fixture
def trace_file(tmp_path, ipflow_stream):
    path = tmp_path / "trace.txt"
    write_stream(ipflow_stream, path)
    return path


class TestObsCommand:
    def test_demo_on_synthetic_dataset(self, capsys):
        assert main(["obs", "--dataset", "gtgraph", "--scale", "tiny",
                     "--every", "500"]) == 0
        out = capsys.readouterr().out
        # periodic reporter progress + final line
        assert "[obs] done:" in out
        assert "edges/s" in out
        # Prometheus exposition covers ingest, queries and health
        assert "# TYPE tcm_updates_total counter" in out
        assert "# TYPE tcm_query_seconds histogram" in out
        assert 'tcm_query_seconds_bucket{kind="edge_weight"' in out
        assert 'tcm_sketch_load_factor{tcm="demo"' in out
        # JSON snapshot rides along in `both` mode
        assert '"tcm_ingest_elements_total"' in out

    def test_stream_file_json_only(self, trace_file, capsys):
        assert main(["obs", str(trace_file), "--format", "json",
                     "--queries", "10"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" not in out
        doc = json.loads(out[out.index("{"):])
        assert doc["enabled"] is True
        assert doc["health"]["demo"]["d"] == 4
        samples = doc["metrics"]["stream_replay_edges_total"]["samples"]
        assert samples[0]["value"] == 1500  # ipflow_stream has 1500 packets
        assert any(s["name"] == "obs.demo.ingest" for s in doc["spans"])

    def test_out_file(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "snapshot.json"
        assert main(["obs", str(trace_file), "--format", "prom",
                     "--out", str(out_path)]) == 0
        assert "wrote JSON snapshot" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert "tcm_updates_total" in doc["metrics"]

    def test_obs_disabled_after_run(self, trace_file, capsys):
        main(["obs", str(trace_file), "--format", "prom"])
        capsys.readouterr()
        assert not obs.is_enabled()

    def test_python_m_repro_obs(self):
        import subprocess
        import sys
        result = subprocess.run(
            [sys.executable, "-m", "repro", "obs", "--dataset", "gtgraph",
             "--scale", "tiny", "--format", "prom"],
            capture_output=True, text=True)
        assert result.returncode == 0
        assert "tcm_updates_total" in result.stdout
