"""Tests for the AMS and bottom-k data-stream sketches."""

import pytest

from repro.baselines.ams import AmsSketch, EdgeF2Sketch
from repro.baselines.bottomk import BottomKSketch, DistinctEdgeCounter
from repro.streams.generators import ipflow_like


class TestAmsSketch:
    def test_validation(self):
        with pytest.raises(ValueError):
            AmsSketch(0, 4)
        with pytest.raises(ValueError):
            AmsSketch(4, 0)

    def test_shape(self):
        assert AmsSketch(3, 8).shape == (3, 8)

    def test_single_item_f2(self):
        sketch = AmsSketch(5, 16, seed=1)
        for _ in range(10):
            sketch.update("x")
        # Only one item: F2 = 100 exactly (signs cancel nothing).
        assert sketch.second_moment() == pytest.approx(100.0)

    def test_f2_estimate_close(self):
        """F2 of a known frequency vector within ~35%."""
        frequencies = {f"item{i}": (i + 1) for i in range(20)}
        exact = sum(f * f for f in frequencies.values())
        estimates = []
        for seed in range(8):
            sketch = AmsSketch(7, 32, seed=seed)
            for item, freq in frequencies.items():
                for _ in range(freq):
                    sketch.update(item)
            estimates.append(sketch.second_moment())
        mean = sum(estimates) / len(estimates)
        assert abs(mean - exact) / exact < 0.35

    def test_weighted_updates(self):
        sketch = AmsSketch(5, 16, seed=2)
        sketch.update("x", 10.0)
        assert sketch.second_moment() == pytest.approx(100.0)

    def test_linear_deletion(self):
        sketch = AmsSketch(5, 16, seed=3)
        sketch.update("x", 5.0)
        sketch.update("y", 3.0)
        sketch.remove("y", 3.0)
        assert sketch.second_moment() == pytest.approx(25.0)


class TestEdgeF2:
    def test_self_join_size(self):
        sketch = EdgeF2Sketch(7, 32, seed=1)
        for _ in range(10):
            sketch.update("a", "b")
        for _ in range(2):
            sketch.update("c", "d")
        estimate = sketch.self_join_size()
        exact = 100 + 4
        assert abs(estimate - exact) / exact < 0.5

    def test_undirected_folds(self):
        sketch = EdgeF2Sketch(5, 16, seed=2, directed=False)
        sketch.update("a", "b")
        sketch.update("b", "a")
        assert sketch.self_join_size() == pytest.approx(4.0)

    def test_ingest(self, ipflow_stream):
        sketch = EdgeF2Sketch(3, 8, seed=1)
        assert sketch.ingest(ipflow_stream) == len(ipflow_stream)


class TestBottomK:
    def test_validation(self):
        with pytest.raises(ValueError):
            BottomKSketch(0)

    def test_exact_below_k(self):
        sketch = BottomKSketch(k=100, seed=1)
        for i in range(40):
            sketch.update(f"item{i}")
        assert sketch.distinct_count() == 40.0

    def test_duplicates_ignored(self):
        sketch = BottomKSketch(k=100, seed=1)
        for _ in range(500):
            sketch.update("same")
        assert sketch.distinct_count() == 1.0
        assert len(sketch) == 1

    def test_estimate_above_k(self):
        exact = 5000
        estimates = []
        for seed in range(5):
            sketch = BottomKSketch(k=256, seed=seed)
            for i in range(exact):
                sketch.update(f"item{i}")
            estimates.append(sketch.distinct_count())
        mean = sum(estimates) / len(estimates)
        assert abs(mean - exact) / exact < 0.15

    def test_bounded_memory(self):
        sketch = BottomKSketch(k=32, seed=1)
        for i in range(10000):
            sketch.update(f"item{i}")
        assert len(sketch) == 32

    def test_merge_equals_union(self):
        a = BottomKSketch(k=64, seed=7)
        b = BottomKSketch(k=64, seed=7)
        union = BottomKSketch(k=64, seed=7)
        for i in range(300):
            a.update(f"left{i}")
            union.update(f"left{i}")
        for i in range(300):
            b.update(f"right{i}")
            union.update(f"right{i}")
        a.merge_from(b)
        assert a.distinct_count() == union.distinct_count()

    def test_merge_mismatch_rejected(self):
        a = BottomKSketch(k=64, seed=1)
        b = BottomKSketch(k=64, seed=2)
        with pytest.raises(ValueError):
            a.merge_from(b)


class TestDistinctEdgeCounter:
    def test_exact_small(self):
        counter = DistinctEdgeCounter(k=128, seed=1)
        counter.update("a", "b")
        counter.update("a", "b")
        counter.update("b", "c")
        assert counter.distinct_edges() == 2.0

    def test_undirected(self):
        counter = DistinctEdgeCounter(k=128, seed=1, directed=False)
        counter.update("a", "b")
        counter.update("b", "a")
        assert counter.distinct_edges() == 1.0

    def test_against_stream_truth(self):
        stream = ipflow_like(n_hosts=100, n_packets=3000, seed=8)
        counter = DistinctEdgeCounter(k=256, seed=3)
        counter.ingest(stream)
        exact = len(stream.distinct_edges)
        assert abs(counter.distinct_edges() - exact) / exact < 0.2
