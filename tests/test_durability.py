"""Tests for the durability layer (repro.server.durability).

Four layers: the WAL frame format round-trips exactly (including
torn-tail truncation at *every* byte offset of the final frame --
recovery never raises, and always yields exactly the pre-tail prefix);
snapshots restore dense, sparse and window tenants bit-identically;
the DurabilityManager rebuilds a registry from snapshot + WAL tail
in process; and a real server subprocess killed with SIGKILL after
acked ingest comes back answering queries identically to an uncrashed
reference (``--fsync always`` is the contract being tested).
"""

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.tcm import TCM
from repro.server.durability import (
    SEGMENT_MAGIC,
    DurabilityManager,
    SnapshotMismatch,
    WalWriter,
    list_segments,
    list_snapshots,
    restore_tenant_snapshot,
    scan_segment,
    segment_path,
    write_tenant_snapshot,
)
from repro.server.faults import append_garbage
from repro.server.registry import SketchRegistry, TenantSketch

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def keys(values):
    return np.asarray(values, dtype=np.uint64)


def weights(values):
    return np.asarray(values, dtype=np.float64)


def matrices(sketch_owner):
    """Every underlying matrix of a TCM or RotatingWindowTCM, stacked."""
    tcm = sketch_owner
    if hasattr(tcm, "_ring"):  # rotating window: compare every sub-sketch
        return [np.asarray(s.matrix)
                for sub in tcm._ring for s in sub.sketches]
    return [np.asarray(s.matrix) for s in tcm.sketches]


def assert_same_state(a, b):
    for left, right in zip(matrices(a), matrices(b)):
        np.testing.assert_array_equal(left, right)


class TestWalRoundTrip:
    def test_records_round_trip_exactly(self, tmp_path):
        wal = WalWriter(str(tmp_path), fsync="off")
        wal.append_ingest(keys([1, 2, 3]), keys([4, 5, 6]),
                          weights([1.0, 2.5, 3.0]))
        wal.append_ingest(keys([7]), keys([8]), weights([0.5]),
                          weights([10.0]), scalar=True)
        wal.append_remove(keys([1]), keys([4]), weights([1.0]))
        wal.append_advance(99.5)
        wal.close()

        records, torn = scan_segment(wal.path)
        assert torn == 0
        assert [r.op for r in records] == ["ingest", "ingest", "remove",
                                           "advance"]
        np.testing.assert_array_equal(records[0].sources, keys([1, 2, 3]))
        np.testing.assert_array_equal(records[0].weights,
                                      weights([1.0, 2.5, 3.0]))
        assert records[0].timestamps is None
        assert records[1].flags & 0x02  # FLAG_SCALAR
        np.testing.assert_array_equal(records[1].timestamps,
                                      weights([10.0]))
        assert records[2].op == "remove"
        assert records[3].timestamp == 99.5
        assert records[3].elements == 0

    def test_rotation_splits_segments(self, tmp_path):
        wal = WalWriter(str(tmp_path), fsync="off", rotate_bytes=4096)
        for i in range(40):
            wal.append_ingest(keys(range(50)), keys(range(50)),
                              weights([float(i)] * 50))
        wal.close()
        segments = list_segments(str(tmp_path))
        assert len(segments) > 1
        total = 0
        for _, path in segments:
            records, torn = scan_segment(path)
            assert torn == 0
            total += len(records)
        assert total == 40

    def test_fsync_policies_accept_and_reject(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WalWriter(str(tmp_path), fsync="sometimes")
        for policy in ("always", "interval", "off"):
            wal = WalWriter(str(tmp_path / policy), fsync=policy)
            wal.append_advance(1.0)
            wal.close()
            records, torn = scan_segment(wal.path)
            assert torn == 0 and len(records) == 1

    def test_empty_and_garbage_segments(self, tmp_path):
        empty = tmp_path / "wal-00000001.log"
        empty.write_bytes(b"")
        assert scan_segment(str(empty)) == ([], 0)
        bad_magic = tmp_path / "wal-00000002.log"
        bad_magic.write_bytes(b"NOTAWAL!\x00\x00")
        assert scan_segment(str(bad_magic)) == ([], 1)


class TestTornTail:
    """Truncation at every byte offset of the last frame is survivable."""

    def _build(self, tmp_path, n_records=4):
        wal = WalWriter(str(tmp_path), fsync="off")
        boundaries = [len(SEGMENT_MAGIC)]
        for i in range(n_records):
            wal.append_ingest(keys([i, i + 1]), keys([i + 2, i + 3]),
                              weights([1.0, float(i)]))
            boundaries.append(wal.bytes_written + len(SEGMENT_MAGIC))
        wal.close()
        return wal.path, boundaries

    def test_every_truncation_offset_of_last_frame(self, tmp_path):
        path, boundaries = self._build(tmp_path)
        blob = open(path, "rb").read()
        assert len(blob) == boundaries[-1]
        last_start = boundaries[-2]
        full, torn = scan_segment(path)
        assert torn == 0 and len(full) == 4
        for offset in range(last_start, len(blob)):
            torn_file = tmp_path / "torn.log"
            torn_file.write_bytes(blob[:offset])
            records, torn = scan_segment(str(torn_file))
            # Never raises; always exactly the pre-tail prefix.
            assert len(records) == 3
            assert torn == (0 if offset == last_start else 1)
            for got, want in zip(records, full[:3]):
                np.testing.assert_array_equal(got.sources, want.sources)
                np.testing.assert_array_equal(got.weights, want.weights)

    def test_garbage_tail_is_discarded(self, tmp_path):
        path, _ = self._build(tmp_path)
        append_garbage(path, nbytes=48, seed=3)
        records, torn = scan_segment(path)
        assert torn == 1 and len(records) == 4

    def test_corrupted_payload_byte_fails_crc(self, tmp_path):
        path, boundaries = self._build(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[boundaries[-2] + 20] ^= 0xFF  # flip a byte inside the frame
        open(path, "wb").write(bytes(blob))
        records, torn = scan_segment(path)
        assert torn == 1 and len(records) == 3


def make_tenant(kind="tcm", **overrides):
    config = {"d": 3, "width": 32, "seed": 11}
    if kind == "window":
        config.update(horizon=100.0, buckets=4)
    config.update(overrides)
    return TenantSketch("t", kind, config)


class TestSnapshots:
    def test_dense_round_trip_bit_identical(self, tmp_path):
        tenant = make_tenant()
        tenant._apply_tcm_batch(keys([1, 2, 9]), keys([3, 4, 9]),
                                weights([2.0, 3.5, 1.0]), None)
        write_tenant_snapshot(tenant, str(tmp_path), 1)
        fresh = make_tenant()
        restore_tenant_snapshot(fresh, str(tmp_path / "snapshot-00000001.npz"))
        assert_same_state(tenant.sketch, fresh.sketch)
        assert (fresh.sketch.edge_weights([(1, 3), (2, 4)]).tolist()
                == tenant.sketch.edge_weights([(1, 3), (2, 4)]).tolist())

    def test_sparse_round_trip(self, tmp_path):
        tenant = make_tenant(sparse=True)
        tenant._apply_tcm_batch(keys([5, 6]), keys([7, 8]),
                                weights([4.0, 1.0]), None)
        write_tenant_snapshot(tenant, str(tmp_path), 1)
        fresh = make_tenant(sparse=True)
        restore_tenant_snapshot(fresh, str(tmp_path / "snapshot-00000001.npz"))
        assert_same_state(tenant.sketch, fresh.sketch)

    def test_window_round_trip_with_watermark_and_ring(self, tmp_path):
        tenant = make_tenant("window")
        tenant._apply_window_batch(keys([1, 2]), keys([3, 4]),
                                   weights([1.0, 2.0]),
                                   weights([10.0, 20.0]))
        tenant.sketch.advance_to(60.0)
        tenant._apply_window_batch(keys([5]), keys([6]), weights([7.0]),
                                   weights([61.0]))
        write_tenant_snapshot(tenant, str(tmp_path), 2)
        fresh = make_tenant("window")
        restore_tenant_snapshot(fresh, str(tmp_path / "snapshot-00000002.npz"))
        assert fresh.sketch.watermark == tenant.sketch.watermark
        assert_same_state(tenant.sketch, fresh.sketch)
        probe = [(1, 3), (5, 6)]
        assert (fresh.sketch.merged.edge_weights(probe).tolist()
                == tenant.sketch.merged.edge_weights(probe).tolist())

    def test_mismatched_config_is_rejected(self, tmp_path):
        tenant = make_tenant()
        write_tenant_snapshot(tenant, str(tmp_path), 1)
        other = make_tenant(seed=99)
        with pytest.raises(SnapshotMismatch):
            restore_tenant_snapshot(
                other, str(tmp_path / "snapshot-00000001.npz"))
        wrong_kind = make_tenant("window")
        with pytest.raises(SnapshotMismatch):
            restore_tenant_snapshot(
                wrong_kind, str(tmp_path / "snapshot-00000001.npz"))


def apply_workload(tenant, rng, batches=6, elements=40):
    for _ in range(batches):
        src = keys(rng.integers(0, 500, elements))
        dst = keys(rng.integers(0, 500, elements))
        wts = weights(rng.integers(1, 5, elements))
        tenant._apply_tcm_batch(src, dst, wts, None)


class TestManagerRecovery:
    def test_in_process_crash_recover_bit_identity(self, tmp_path):
        registry = SketchRegistry()
        manager = DurabilityManager(str(tmp_path), fsync="off")
        registry.durability = manager
        tenant = registry.create("alpha", "tcm", d=3, width=32, seed=7)
        rng = np.random.default_rng(3)
        apply_workload(tenant, rng, batches=4)
        manager.snapshot_tenant(tenant)
        apply_workload(tenant, rng, batches=3)  # WAL tail past the snapshot
        tenant.remove(keys([1]), keys([2]), weights([0.0]))
        reference_matrices = [m.copy() for m in matrices(tenant.sketch)]
        # "Crash": drop the registry without closing anything gracefully
        # beyond what the OS would keep (fsync=off still has the bytes in
        # the file because WalWriter flushes the user-space buffer).
        del registry, tenant

        recovered_registry = SketchRegistry()
        recovery_manager = DurabilityManager(str(tmp_path), fsync="off")
        report = recovery_manager.recover(recovered_registry)
        assert list(report["tenants"]) == ["alpha"]
        assert report["replay_errors"] == 0
        recovered = recovered_registry.get("alpha")
        for got, want in zip(matrices(recovered.sketch),
                             reference_matrices):
            np.testing.assert_array_equal(got, want)
        recovery_manager.close_all(recovered_registry)

    def test_window_tenant_recovers_through_advances(self, tmp_path):
        registry = SketchRegistry()
        manager = DurabilityManager(str(tmp_path), fsync="off")
        registry.durability = manager
        tenant = registry.create("ring", "window", horizon=100.0,
                                 buckets=4, d=2, width=32, seed=5)
        tenant._apply_window_batch(keys([1, 2]), keys([3, 4]),
                                   weights([1.0, 2.0]),
                                   weights([10.0, 12.0]))
        tenant.advance(55.0)
        tenant._apply_window_batch(keys([8]), keys([9]), weights([3.0]),
                                   weights([56.0]))
        reference = [m.copy() for m in matrices(tenant.sketch)]
        watermark = tenant.sketch.watermark
        del registry, tenant

        recovered_registry = SketchRegistry()
        DurabilityManager(str(tmp_path), fsync="off").recover(
            recovered_registry)
        recovered = recovered_registry.get("ring")
        assert recovered.sketch.watermark == watermark
        for got, want in zip(matrices(recovered.sketch), reference):
            np.testing.assert_array_equal(got, want)

    def test_torn_tail_recovers_pre_tail_state(self, tmp_path):
        registry = SketchRegistry()
        manager = DurabilityManager(str(tmp_path), fsync="off")
        registry.durability = manager
        tenant = registry.create("alpha", "tcm", d=2, width=32, seed=2)
        rng = np.random.default_rng(9)
        apply_workload(tenant, rng, batches=3, elements=10)
        pre_tail = [m.copy() for m in matrices(tenant.sketch)]
        tenant._apply_tcm_batch(keys([1]), keys([2]), weights([9.0]), None)
        tenant.wal.close()
        # Tear the final record's frame in half.
        directory = manager.tenant_dir("alpha")
        seq, path = list_segments(directory)[-1]
        from repro.server.faults import tear_tail
        tear_tail(path, drop_bytes=10)
        del registry, tenant

        recovered_registry = SketchRegistry()
        report = DurabilityManager(str(tmp_path), fsync="off").recover(
            recovered_registry)
        assert report["torn_frames"] == 1
        assert report["replay_errors"] == 0
        recovered = recovered_registry.get("alpha")
        for got, want in zip(matrices(recovered.sketch), pre_tail):
            np.testing.assert_array_equal(got, want)

    def test_snapshot_truncation_bounds_data_dir(self, tmp_path):
        registry = SketchRegistry()
        manager = DurabilityManager(str(tmp_path), fsync="off",
                                    rotate_bytes=4096)
        registry.durability = manager
        tenant = registry.create("alpha", "tcm", d=2, width=32, seed=1)
        rng = np.random.default_rng(5)
        for round_number in range(5):
            apply_workload(tenant, rng, batches=8, elements=64)
            report = manager.snapshot_tenant(tenant)
            assert report is not None
            directory = manager.tenant_dir("alpha")
            segments = list_segments(directory)
            snapshots = list_snapshots(directory)
            # Everything the snapshot covers is pruned: one live WAL
            # segment, one snapshot, regardless of how much was written.
            assert len(segments) == 1
            assert len(snapshots) == 1
            assert segments[0][0] > snapshots[0][0]
        # A snapshot with no new records is skipped entirely.
        assert manager.snapshot_tenant(tenant) is None

    def test_recovered_tenant_keeps_logging(self, tmp_path):
        registry = SketchRegistry()
        manager = DurabilityManager(str(tmp_path), fsync="off")
        registry.durability = manager
        tenant = registry.create("alpha", "tcm", d=2, width=32, seed=4)
        tenant._apply_tcm_batch(keys([1]), keys([2]), weights([1.0]), None)
        del registry, tenant

        second_registry = SketchRegistry()
        second_manager = DurabilityManager(str(tmp_path), fsync="off")
        second_manager.recover(second_registry)
        survivor = second_registry.get("alpha")
        assert survivor.wal is not None
        survivor._apply_tcm_batch(keys([3]), keys([4]), weights([2.0]),
                                  None)
        reference = [m.copy() for m in matrices(survivor.sketch)]
        del second_registry, survivor

        third_registry = SketchRegistry()
        DurabilityManager(str(tmp_path), fsync="off").recover(
            third_registry)
        final = third_registry.get("alpha")
        for got, want in zip(matrices(final.sketch), reference):
            np.testing.assert_array_equal(got, want)


# -- the subprocess crash/recovery contract ---------------------------------

def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_server(data_dir, port, *extra, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", str(port), "--no-obs", "--data-dir", str(data_dir),
         *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited early ({proc.returncode}): "
                f"{proc.stdout.read()}")
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=2)
            conn.request("GET", "/healthz")
            if conn.getresponse().status == 200:
                conn.close()
                return proc
        except OSError:
            time.sleep(0.05)
    proc.kill()
    raise RuntimeError("server did not come up in 30s")


def _call(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    payload = None if body is None else json.dumps(body)
    conn.request(method, path, body=payload,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, (json.loads(data) if data else None)


@pytest.mark.slow
class TestCrashRecoverySubprocess:
    def test_sigkill_after_acked_ingest_recovers_identically(self, tmp_path):
        port = _free_port()
        config = {"kind": "tcm", "d": 3, "width": 64, "seed": 17}
        rng = np.random.default_rng(23)
        batches = [(rng.integers(0, 300, 50).tolist(),
                    rng.integers(0, 300, 50).tolist(),
                    rng.integers(1, 6, 50).astype(float).tolist())
                   for _ in range(8)]
        probes = [[int(a), int(b)] for a, b in
                  zip(rng.integers(0, 300, 64), rng.integers(0, 300, 64))]

        proc = _start_server(tmp_path, port, "--fsync", "always")
        try:
            status, _ = _call(port, "PUT", "/sketches/crashy", config)
            assert status == 201
            for sources, targets, wts in batches:
                status, body = _call(port, "POST",
                                     "/sketches/crashy/ingest",
                                     {"sources": sources,
                                      "targets": targets,
                                      "weights": wts})
                assert status == 200 and body["ingested"] == 50
        finally:
            # Every batch above was ACKED; --fsync always promises all
            # of them survive an abrupt kill.
            proc.kill()
            proc.wait(timeout=10)

        port = _free_port()
        proc = _start_server(tmp_path, port, "--fsync", "always")
        try:
            status, body = _call(port, "POST", "/sketches/crashy/query",
                                 {"kind": "edge", "pairs": probes})
            assert status == 200
            reference = TCM(d=3, width=64, seed=17)
            for sources, targets, wts in batches:
                reference.ingest_columns(sources, targets, wts)
            expected = reference.edge_weights(
                [(a, b) for a, b in probes])
            assert body["values"] == expected.tolist()
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0

    def test_sigint_drains_and_exits_zero(self, tmp_path):
        port = _free_port()
        proc = _start_server(tmp_path, port)
        try:
            status, _ = _call(port, "PUT", "/sketches/a",
                              {"kind": "tcm", "d": 2, "width": 32,
                               "seed": 1})
            assert status == 201
            status, _ = _call(port, "POST", "/sketches/a/ingest",
                              {"sources": [1], "targets": [2]})
            assert status == 200
        finally:
            proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=15) == 0
        output = proc.stdout.read()
        assert "shut down cleanly" in output
