"""Tests for the tracing module (repro.obs.tracing)."""

import json

import pytest

from repro import obs
from repro.obs.tracing import Tracer, _NULL_SPAN


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.TRACER.clear()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.TRACER.clear()
    obs.REGISTRY.reset()


class TestSpanRecording:
    def test_disabled_yields_null_span(self):
        tracer = Tracer()
        with tracer.span("op") as s:
            assert s is _NULL_SPAN
            s.set(anything="fine")  # no-op, chainable
        assert len(tracer) == 0

    def test_enabled_records_span(self):
        obs.enable()
        tracer = Tracer()
        with tracer.span("op", dataset="dblp") as s:
            pass
        spans = tracer.spans()
        assert len(spans) == 1
        assert spans[0].name == "op"
        assert spans[0].attributes == {"dataset": "dblp"}
        assert spans[0].duration >= 0
        assert spans[0].parent_id is None
        assert spans[0].depth == 0

    def test_nesting(self):
        obs.enable()
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, recorded_outer = tracer.spans()
        # inner closes first, so it is recorded first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert recorded_outer.name == "outer"
        assert recorded_outer.duration >= inner.duration

    def test_span_recorded_even_on_exception(self):
        obs.enable()
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("fails"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans()] == ["fails"]

    def test_set_attributes_mid_span(self):
        obs.enable()
        tracer = Tracer()
        with tracer.span("op") as s:
            s.set(count=3).set(extra=True)
        assert tracer.spans()[0].attributes == {"count": 3, "extra": True}


class TestRingBuffer:
    def test_capacity_evicts_oldest(self):
        obs.enable()
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"op{i}"):
                pass
        assert [s.name for s in tracer.spans()] == ["op2", "op3", "op4"]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear(self):
        obs.enable()
        tracer = Tracer()
        with tracer.span("op"):
            pass
        tracer.clear()
        assert len(tracer) == 0


class TestExport:
    def test_json_export(self):
        obs.enable()
        tracer = Tracer()
        with tracer.span("a", k=1):
            with tracer.span("b"):
                pass
        doc = json.loads(tracer.export_json())
        assert [s["name"] for s in doc] == ["b", "a"]
        assert doc[1]["attributes"] == {"k": 1}
        assert all("duration" in s and "span_id" in s for s in doc)

    def test_name_filter(self):
        obs.enable()
        tracer = Tracer()
        for name in ("x", "y", "x"):
            with tracer.span(name):
                pass
        assert len(tracer.spans("x")) == 2


class TestDefaultTracerIntegration:
    def test_module_level_span_uses_default_tracer(self):
        obs.enable()
        with obs.span("top"):
            pass
        assert any(s.name == "top" for s in obs.TRACER.spans())

    def test_sharded_summarize_traced(self, small_directed):
        from repro.distributed.sharded import ShardedTCM
        from repro.streams.transforms import shard

        obs.enable()
        shards = shard(list(small_directed), 2)
        ShardedTCM(2, d=2, width=16, seed=1).summarize(shards)
        names = [s.name for s in obs.TRACER.spans()]
        assert "tcm.sharded.summarize" in names
        assert obs.OBS.shard_count.value == 2
        assert obs.OBS.shard_elements.value == len(small_directed)
        assert obs.OBS.shard_merge_seconds.count == 1
