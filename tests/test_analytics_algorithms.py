"""Tests for the black-box graph algorithms on views."""

import math

import pytest

from repro.analytics.pagerank import pagerank
from repro.analytics.paths import shortest_path, shortest_path_weight
from repro.analytics.reachability import reach
from repro.analytics.triangles import count_triangles
from repro.analytics.views import StreamView
from repro.streams.generators import clique_stream, path_stream, star_stream
from repro.streams.model import GraphStream


class TestReach:
    def test_path(self):
        view = StreamView(path_stream(["a", "b", "c", "d"]))
        assert reach(view, "a", "d")
        assert not reach(view, "d", "a")

    def test_self(self):
        view = StreamView(path_stream(["a", "b"]))
        assert reach(view, "a", "a")

    def test_max_hops(self):
        view = StreamView(path_stream(["a", "b", "c", "d"]))
        assert not reach(view, "a", "d", max_hops=2)
        assert reach(view, "a", "d", max_hops=3)

    def test_disconnected(self):
        stream = GraphStream()
        stream.add("a", "b", 1.0)
        stream.add("c", "d", 1.0)
        assert not reach(StreamView(stream), "a", "d")

    def test_cycle(self, paper_stream):
        view = StreamView(paper_stream)
        assert reach(view, "b", "a")
        assert reach(view, "a", "g")


class TestShortestPath:
    def test_weight_simple_path(self):
        view = StreamView(path_stream(["a", "b", "c"], weight=2.0))
        assert shortest_path_weight(view, "a", "c") == 4.0

    def test_prefers_lighter_route(self):
        stream = GraphStream()
        stream.add("a", "b", 10.0)
        stream.add("a", "m", 1.0)
        stream.add("m", "b", 2.0)
        assert shortest_path_weight(StreamView(stream), "a", "b") == 3.0

    def test_unreachable_inf(self):
        view = StreamView(path_stream(["a", "b"]))
        assert math.isinf(shortest_path_weight(view, "b", "a"))

    def test_same_node(self):
        view = StreamView(path_stream(["a", "b"]))
        assert shortest_path_weight(view, "a", "a") == 0.0

    def test_path_nodes(self):
        stream = GraphStream()
        stream.add("a", "b", 10.0)
        stream.add("a", "m", 1.0)
        stream.add("m", "b", 2.0)
        assert shortest_path(StreamView(stream), "a", "b") == ["a", "m", "b"]

    def test_path_none_when_unreachable(self):
        view = StreamView(path_stream(["a", "b"]))
        assert shortest_path(view, "b", "a") is None

    def test_path_same_node(self):
        view = StreamView(path_stream(["a", "b"]))
        assert shortest_path(view, "a", "a") == ["a"]


class TestPagerank:
    def test_sums_to_one(self, paper_stream):
        ranks = pagerank(StreamView(paper_stream))
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_empty_graph(self):
        assert pagerank(StreamView(GraphStream())) == {}

    def test_sink_heavy_node_ranks_high(self):
        view = StreamView(star_stream("hub", [f"l{i}" for i in range(5)]))
        ranks = pagerank(view)
        # All leaves tie; each leaf outranks the hub (pure source).
        assert all(ranks[f"l{i}"] > ranks["hub"] for i in range(5))

    def test_damping_validation(self, paper_stream):
        with pytest.raises(ValueError):
            pagerank(StreamView(paper_stream), damping=1.0)

    def test_weighted_transitions(self):
        stream = GraphStream()
        stream.add("src", "heavy", 9.0)
        stream.add("src", "light", 1.0)
        ranks = pagerank(StreamView(stream))
        assert ranks["heavy"] > ranks["light"]


class TestCountTriangles:
    def test_undirected_triangle(self):
        view = StreamView(clique_stream(["a", "b", "c"]))
        assert count_triangles(view, directed=False) == 1

    def test_undirected_k4_has_four(self):
        view = StreamView(clique_stream(["a", "b", "c", "d"]))
        assert count_triangles(view, directed=False) == 4

    def test_directed_cycle_counts_once(self):
        stream = GraphStream()
        stream.add("a", "b", 1.0)
        stream.add("b", "c", 1.0)
        stream.add("c", "a", 1.0)
        assert count_triangles(StreamView(stream), directed=True) == 1

    def test_directed_non_cycle_not_counted(self):
        stream = GraphStream()
        stream.add("a", "b", 1.0)
        stream.add("b", "c", 1.0)
        stream.add("a", "c", 1.0)  # feed-forward, not a cycle
        assert count_triangles(StreamView(stream), directed=True) == 0

    def test_no_triangles_in_path(self):
        view = StreamView(path_stream(["a", "b", "c", "d"]))
        assert count_triangles(view, directed=True) == 0

    def test_self_loops_ignored(self):
        stream = GraphStream()
        stream.add("a", "a", 1.0)
        stream.add("a", "b", 1.0)
        stream.add("b", "a", 1.0)
        assert count_triangles(StreamView(stream), directed=True) == 0
