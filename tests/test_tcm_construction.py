"""Tests for TCM construction and structural properties."""

import math

import pytest

from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.streams.generators import path_stream


class TestBasicConstruction:
    def test_d_and_shapes(self):
        tcm = TCM(d=3, width=16, seed=0)
        assert tcm.d == 3
        assert all(s.shape == (16, 16) for s in tcm.sketches)

    def test_size_in_cells(self):
        tcm = TCM(d=3, width=16, seed=0)
        assert tcm.size_in_cells == 3 * 256

    def test_graphical_by_default(self):
        assert TCM(d=2, width=8, seed=0).is_graphical

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            TCM(d=0, width=8)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            TCM(d=1, width=0)

    def test_explicit_shapes(self):
        tcm = TCM(shapes=[(8, 8), (16, 4)], seed=0)
        assert tcm.d == 2
        assert tcm.sketches[0].is_graphical
        assert not tcm.sketches[1].is_graphical
        assert not tcm.is_graphical

    def test_empty_shapes_rejected(self):
        with pytest.raises(ValueError):
            TCM(shapes=[])

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            TCM(shapes=[(0, 4)])

    def test_nonsquare_undirected_rejected(self):
        with pytest.raises(ValueError):
            TCM(shapes=[(8, 4)], directed=False)

    def test_seed_reproducibility(self):
        t1 = TCM(d=2, width=32, seed=5)
        t2 = TCM(d=2, width=32, seed=5)
        t1.update("a", "b", 1.0)
        t2.update("a", "b", 1.0)
        for s1, s2 in zip(t1.sketches, t2.sketches):
            assert (s1.matrix == s2.matrix).all()

    def test_repr(self):
        assert "d=2" in repr(TCM(d=2, width=8, seed=0))


class TestFromSpace:
    def test_width_is_isqrt(self):
        tcm = TCM.from_space(1000, 2, seed=0)
        assert all(s.rows == int(math.isqrt(1000)) for s in tcm.sketches)

    def test_tiny_space(self):
        tcm = TCM.from_space(1, 1, seed=0)
        assert tcm.sketches[0].shape == (1, 1)


class TestVariedShapes:
    def test_first_is_square(self):
        tcm = TCM.with_varied_shapes(1024, 5, seed=0)
        assert tcm.sketches[0].rows == tcm.sketches[0].cols

    def test_aspect_ratios_vary(self):
        tcm = TCM.with_varied_shapes(4096, 5, seed=0)
        shapes = {s.shape for s in tcm.sketches}
        assert len(shapes) >= 3

    def test_cell_budget_preserved(self):
        tcm = TCM.with_varied_shapes(4096, 5, seed=0)
        for sketch in tcm.sketches:
            assert sketch.size_in_cells == pytest.approx(4096, rel=0.1)

    def test_no_degenerate_dimensions(self):
        """The aspect cap keeps every dimension at least n/8."""
        tcm = TCM.with_varied_shapes(4096, 9, seed=0)
        n = 64
        for sketch in tcm.sketches:
            assert min(sketch.shape) >= n // 8

    def test_small_space_falls_back_to_square(self):
        tcm = TCM.with_varied_shapes(16, 3, seed=0)
        for sketch in tcm.sketches:
            assert min(sketch.shape) >= 1


class TestFromStream:
    def test_ingests_everything(self):
        stream = path_stream(list(range(10)))
        tcm = TCM.from_stream(stream, d=2, width=64, seed=1)
        assert tcm.edge_weight(0, 1) == 1.0
        assert tcm.total_weight_estimate() == 9.0

    def test_inherits_directedness(self):
        stream = path_stream(["a", "b"], directed=False)
        tcm = TCM.from_stream(stream, d=2, width=16, seed=1)
        assert not tcm.directed

    def test_keep_labels_passthrough(self):
        stream = path_stream(["a", "b", "c"])
        tcm = TCM.from_stream(stream, d=1, width=16, seed=1, keep_labels=True)
        sketch = tcm.sketches[0]
        assert "a" in sketch.ext(sketch.node_of("a"))


class TestIngest:
    def test_empty_stream(self):
        from repro.streams.model import GraphStream
        assert TCM(d=1, width=8, seed=0).ingest(GraphStream()) == 0

    def test_vectorized_equals_scalar(self):
        stream = path_stream([f"n{i}" for i in range(50)])
        fast = TCM(d=3, width=16, seed=2)
        fast.ingest(stream)
        slow = TCM(d=3, width=16, seed=2)
        for edge in stream:
            slow.update(edge.source, edge.target, edge.weight)
        for s1, s2 in zip(fast.sketches, slow.sketches):
            assert (s1.matrix == s2.matrix).all()

    def test_ingest_with_labels_falls_back(self):
        stream = path_stream(["a", "b", "c"])
        tcm = TCM(d=1, width=16, seed=0, keep_labels=True)
        assert tcm.ingest(stream) == 2
        assert tcm.edge_weight("a", "b") == 1.0

    def test_ingest_min_aggregation_falls_back(self):
        stream = path_stream(["a", "b", "c"], weight=5.0)
        tcm = TCM(d=1, width=16, seed=0, aggregation=Aggregation.MIN)
        tcm.ingest(stream)
        assert tcm.edge_weight("a", "b") == 5.0

    def test_clear(self):
        tcm = TCM(d=2, width=8, seed=0)
        tcm.update("a", "b", 2.0)
        tcm.clear()
        assert tcm.edge_weight("a", "b") == 0.0


class TestGuards:
    def test_views_require_graphical(self):
        tcm = TCM(shapes=[(8, 4)], seed=0)
        with pytest.raises(ValueError, match="non-square"):
            tcm.views()

    def test_reachable_requires_graphical(self):
        tcm = TCM(shapes=[(8, 4)], seed=0)
        with pytest.raises(ValueError):
            tcm.reachable("a", "b")

    def test_subgraph_requires_graphical(self):
        tcm = TCM(shapes=[(8, 4)], seed=0)
        with pytest.raises(ValueError):
            tcm.subgraph_weight([("a", "b")])

    def test_edge_queries_fine_on_nonsquare(self):
        tcm = TCM(shapes=[(8, 4), (4, 8)], seed=0)
        tcm.update("a", "b", 2.0)
        assert tcm.edge_weight("a", "b") >= 2.0
