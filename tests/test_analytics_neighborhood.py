"""Tests for neighbourhood analytics."""

import pytest

from repro.analytics.neighborhood import (
    common_neighbours,
    jaccard_similarity,
    k_hop_neighbourhood,
    neighbourhood_sizes,
)
from repro.analytics.views import StreamView
from repro.streams.generators import path_stream, star_stream
from repro.streams.model import GraphStream


@pytest.fixture
def diamond_view():
    stream = GraphStream(directed=True)
    stream.add("a", "b", 1.0)
    stream.add("a", "c", 1.0)
    stream.add("b", "d", 1.0)
    stream.add("c", "d", 1.0)
    return StreamView(stream)


class TestKHop:
    def test_one_hop(self, diamond_view):
        assert k_hop_neighbourhood(diamond_view, "a", 1) == {"b", "c"}

    def test_two_hops(self, diamond_view):
        assert k_hop_neighbourhood(diamond_view, "a", 2) == {"b", "c", "d"}

    def test_zero_hops(self, diamond_view):
        assert k_hop_neighbourhood(diamond_view, "a", 0) == set()

    def test_negative_k_rejected(self, diamond_view):
        with pytest.raises(ValueError):
            k_hop_neighbourhood(diamond_view, "a", -1)

    def test_excludes_start(self, diamond_view):
        assert "a" not in k_hop_neighbourhood(diamond_view, "a", 5)

    def test_undirected_traversal(self):
        view = StreamView(path_stream(["a", "b", "c"]))
        assert k_hop_neighbourhood(view, "c", 2, directed=True) == set()
        assert k_hop_neighbourhood(view, "c", 2, directed=False) == {"a", "b"}

    def test_sizes_monotone(self, diamond_view):
        sizes = neighbourhood_sizes(diamond_view, "a", 3)
        assert sizes == sorted(sizes)
        assert sizes == [2, 3, 3]


class TestCommonNeighbours:
    def test_out_common(self, diamond_view):
        assert common_neighbours(diamond_view, "b", "c") == {"d"}

    def test_in_common(self, diamond_view):
        assert common_neighbours(diamond_view, "b", "c",
                                 direction="in") == {"a"}

    def test_any_direction(self, diamond_view):
        assert common_neighbours(diamond_view, "b", "c",
                                 direction="any") == {"a", "d"}

    def test_endpoints_excluded(self):
        stream = GraphStream(directed=True)
        stream.add("a", "b", 1.0)
        stream.add("b", "a", 1.0)
        stream.add("a", "z", 1.0)
        stream.add("b", "z", 1.0)
        view = StreamView(stream)
        assert common_neighbours(view, "a", "b", direction="any") == {"z"}

    def test_validation(self, diamond_view):
        with pytest.raises(ValueError):
            common_neighbours(diamond_view, "a", "b", direction="sideways")


class TestJaccard:
    def test_identical_neighbourhoods(self, diamond_view):
        # b and c both point only at d.
        assert jaccard_similarity(diamond_view, "b", "c") == 1.0

    def test_disjoint(self):
        view = StreamView(star_stream("hub", ["x", "y"]))
        assert jaccard_similarity(view, "x", "y") == 0.0

    def test_partial_overlap(self):
        stream = GraphStream(directed=True)
        stream.add("a", "x", 1.0)
        stream.add("a", "y", 1.0)
        stream.add("b", "y", 1.0)
        stream.add("b", "z", 1.0)
        assert jaccard_similarity(StreamView(stream), "a", "b") == \
            pytest.approx(1 / 3)


class TestOnSketch:
    def test_khop_on_sketch_over_approximates(self):
        from repro.core.tcm import TCM
        stream = path_stream([f"n{i}" for i in range(12)])
        tcm = TCM.from_stream(stream, d=1, width=6, seed=3)
        view = tcm.views()[0]
        exact_view = StreamView(stream)
        # Bucket-space neighbourhood of n0's bucket is at least as large
        # (in reachable-node terms) as the exact 1-hop image.
        sketch_hop = k_hop_neighbourhood(view, view.node_of("n0"), 1)
        exact_hop = k_hop_neighbourhood(exact_view, "n0", 1)
        assert {view.node_of(n) for n in exact_hop} <= sketch_hop | \
            {view.node_of("n0")}
