"""Error-path tests for the CLI tools."""

import pytest

from repro.cli import main


class TestCliErrorPaths:
    def test_missing_stream_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["stats", str(tmp_path / "ghost.txt")])

    def test_missing_sketch_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["info", str(tmp_path / "ghost.npz")])

    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_query_flow_on_directed_sketch_raises(self, tmp_path, capsys):
        from repro.streams.io import write_stream
        from repro.streams.model import GraphStream

        stream = GraphStream(directed=True)
        stream.add("a", "b", 1.0)
        trace = tmp_path / "t.txt"
        write_stream(stream, trace)
        sketch = tmp_path / "s.npz"
        main(["summarize", str(trace), str(sketch), "--width", "16"])
        with pytest.raises(ValueError, match="directed"):
            main(["query", str(sketch), "flow", "a"])

    def test_reach_missing_second_node(self, tmp_path):
        from repro.streams.io import write_stream
        from repro.streams.model import GraphStream

        stream = GraphStream(directed=True)
        stream.add("a", "b", 1.0)
        trace = tmp_path / "t.txt"
        write_stream(stream, trace)
        sketch = tmp_path / "s.npz"
        main(["summarize", str(trace), str(sketch), "--width", "16"])
        with pytest.raises(SystemExit, match="two node labels"):
            main(["query", str(sketch), "reach", "a"])

    def test_subgraph_bad_syntax(self, tmp_path):
        from repro.core.query_parser import QuerySyntaxError
        from repro.streams.io import write_stream
        from repro.streams.model import GraphStream

        stream = GraphStream(directed=True)
        stream.add("a", "b", 1.0)
        trace = tmp_path / "t.txt"
        write_stream(stream, trace)
        sketch = tmp_path / "s.npz"
        main(["summarize", str(trace), str(sketch), "--width", "16"])
        with pytest.raises(QuerySyntaxError):
            main(["query", str(sketch), "subgraph", "a b c"])

    def test_diff_incompatible_sketches(self, tmp_path):
        from repro.streams.io import write_stream
        from repro.streams.model import GraphStream

        stream = GraphStream(directed=True)
        stream.add("a", "b", 1.0)
        trace = tmp_path / "t.txt"
        write_stream(stream, trace)
        main(["summarize", str(trace), str(tmp_path / "s1.npz"),
              "--width", "16", "--seed", "1"])
        main(["summarize", str(trace), str(tmp_path / "s2.npz"),
              "--width", "16", "--seed", "2"])
        with pytest.raises(ValueError, match="hashes"):
            main(["diff", str(tmp_path / "s1.npz"),
                  str(tmp_path / "s2.npz")])

    def test_experiments_cli_requires_experiment(self):
        from repro.experiments.__main__ import main as experiments_main
        with pytest.raises(SystemExit):
            experiments_main([])
