"""Tests for the sparse backend and conservative updates."""

import numpy as np
import pytest

from repro.core.aggregation import Aggregation
from repro.core.sparse import SparseGraphSketch
from repro.core.tcm import TCM
from repro.hashing.family import HashFamily
from repro.streams.generators import dblp_like, ipflow_like


class TestSparseEquivalence:
    """Sparse and dense backends are estimate-for-estimate identical."""

    def build_pair(self, stream, d=3, width=32, seed=5, **kwargs):
        dense = TCM(d=d, width=width, seed=seed,
                    directed=stream.directed, **kwargs)
        sparse = TCM(d=d, width=width, seed=seed,
                     directed=stream.directed, sparse=True, **kwargs)
        dense.ingest(stream)
        sparse.ingest(stream)
        return dense, sparse

    def test_edge_estimates_match(self, ipflow_stream):
        dense, sparse = self.build_pair(ipflow_stream)
        for x, y in list(ipflow_stream.distinct_edges)[:150]:
            assert sparse.edge_weight(x, y) == \
                pytest.approx(dense.edge_weight(x, y))

    def test_flows_match(self, ipflow_stream):
        dense, sparse = self.build_pair(ipflow_stream)
        for node in sorted(ipflow_stream.nodes)[:40]:
            assert sparse.out_flow(node) == pytest.approx(dense.out_flow(node))
            assert sparse.in_flow(node) == pytest.approx(dense.in_flow(node))

    def test_undirected_match(self, dblp_stream):
        dense, sparse = self.build_pair(dblp_stream)
        for x, y in list(dblp_stream.distinct_edges)[:100]:
            assert sparse.edge_weight(x, y) == \
                pytest.approx(dense.edge_weight(x, y))
        for node in sorted(dblp_stream.nodes)[:30]:
            assert sparse.flow(node) == pytest.approx(dense.flow(node))

    def test_reachability_matches(self, paper_stream):
        dense, sparse = self.build_pair(paper_stream, width=64)
        nodes = sorted(paper_stream.nodes)
        for a in nodes:
            for b in nodes:
                assert sparse.reachable(a, b) == dense.reachable(a, b)

    def test_batch_queries_match(self, ipflow_stream):
        dense, sparse = self.build_pair(ipflow_stream)
        pairs = sorted(ipflow_stream.distinct_edges, key=repr)[:100]
        np.testing.assert_allclose(sparse.edge_weights(pairs),
                                   dense.edge_weights(pairs))

    def test_total_weight_matches(self, ipflow_stream):
        dense, sparse = self.build_pair(ipflow_stream)
        assert sparse.total_weight_estimate() == \
            pytest.approx(dense.total_weight_estimate())

    def test_matrix_materialization_matches(self, paper_stream):
        dense, sparse = self.build_pair(paper_stream, d=1, width=16)
        np.testing.assert_allclose(sparse.sketches[0].matrix,
                                   dense.sketches[0].matrix)


class TestSparseSpecifics:
    def make(self, width=64, seed=1, **kwargs):
        return SparseGraphSketch(HashFamily.uniform(1, width, seed=seed)[0],
                                 **kwargs)

    def test_occupancy_bounded_by_distinct_edges(self, ipflow_stream):
        tcm = TCM(d=2, width=512, seed=3, sparse=True)
        tcm.ingest(ipflow_stream)
        for sketch in tcm.sketches:
            assert sketch.occupied_cells <= len(ipflow_stream.distinct_edges)
            assert sketch.occupied_cells < sketch.size_in_cells

    def test_min_max_rejected(self):
        with pytest.raises(ValueError, match="sparse"):
            self.make(aggregation=Aggregation.MIN)

    def test_remove(self):
        sketch = self.make()
        sketch.update("a", "b", 3.0)
        sketch.remove("a", "b", 3.0)
        assert sketch.edge_estimate("a", "b") == 0.0
        # Fully cancelled cells disappear from topology.
        assert len(sketch.successors(sketch.node_of("a"))) == 0

    def test_merge(self):
        h = HashFamily.uniform(1, 32, seed=2)[0]
        a = SparseGraphSketch(h)
        b = SparseGraphSketch(h)
        a.update("x", "y", 1.0)
        b.update("x", "y", 2.0)
        a.merge_from(b)
        assert a.edge_estimate("x", "y") == 3.0

    def test_merge_incompatible(self):
        a = self.make(seed=1)
        b = self.make(seed=2)
        with pytest.raises(ValueError):
            a.merge_from(b)

    def test_extended_labels(self):
        sketch = self.make(keep_labels=True)
        sketch.update("alice", "bob", 1.0)
        assert "alice" in sketch.ext(sketch.node_of("alice"))

    def test_clear(self):
        sketch = self.make()
        sketch.update("a", "b", 2.0)
        sketch.clear()
        assert sketch.occupied_cells == 0
        assert sketch.total_mass() == 0.0

    def test_repr_shows_occupancy(self):
        sketch = self.make()
        sketch.update("a", "b", 1.0)
        assert "occupied=1" in repr(sketch)

    def test_algorithms_run_on_sparse_views(self, paper_stream):
        tcm = TCM.from_stream(paper_stream, d=2, width=64, seed=4,
                              sparse=True)
        assert tcm.reachable("a", "g")
        assert tcm.subgraph_weight([("a", "b"), ("a", "c")]) == 2.0
        assert tcm.triangle_count() >= 0


class TestConservativeUpdate:
    def test_requires_sum(self):
        tcm = TCM(d=2, width=16, seed=1, aggregation=Aggregation.COUNT)
        with pytest.raises(ValueError, match="conservative"):
            tcm.update_conservative("a", "b", 1.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            TCM(d=2, width=16, seed=1).update_conservative("a", "b", -1.0)

    def test_exact_without_collisions(self):
        tcm = TCM(d=3, width=128, seed=2)
        tcm.update_conservative("a", "b", 2.0)
        tcm.update_conservative("a", "b", 3.0)
        assert tcm.edge_weight("a", "b") == 5.0

    def test_never_undercounts(self):
        stream = ipflow_like(n_hosts=60, n_packets=1500, seed=9)
        tcm = TCM(d=3, width=16, seed=3)
        tcm.ingest_conservative(stream)
        for x, y in stream.distinct_edges:
            assert tcm.edge_weight(x, y) >= stream.edge_weight(x, y) - 1e-9

    def test_never_exceeds_standard_update(self):
        stream = ipflow_like(n_hosts=60, n_packets=1500, seed=9)
        standard = TCM(d=3, width=16, seed=3)
        standard.ingest(stream)
        conservative = TCM(d=3, width=16, seed=3)
        conservative.ingest_conservative(stream)
        for x, y in stream.distinct_edges:
            assert conservative.edge_weight(x, y) <= \
                standard.edge_weight(x, y) + 1e-9

    def test_strictly_better_under_collisions(self):
        """On a congested sketch, CU cuts the ARE materially."""
        from repro.experiments.common import edge_query_are
        stream = dblp_like(n_authors=300, n_papers=800, seed=10)
        standard = TCM(d=3, width=24, seed=4, directed=False)
        standard.ingest(stream)
        conservative = TCM(d=3, width=24, seed=4, directed=False)
        conservative.ingest_conservative(stream)
        are_standard = edge_query_are(stream, standard.edge_weight)
        are_conservative = edge_query_are(stream, conservative.edge_weight)
        assert are_conservative < 0.8 * are_standard

    def test_works_on_sparse_backend(self):
        tcm = TCM(d=2, width=64, seed=5, sparse=True)
        tcm.update_conservative("a", "b", 2.0)
        tcm.update_conservative("a", "b", 1.0)
        assert tcm.edge_weight("a", "b") == 3.0
