"""Tests for the profile driver and adversarial (worst-case) inputs."""

import pytest

from repro.core.tcm import TCM
from repro.experiments.profiles import PROFILE_HEADERS, dataset_profile
from repro.hashing.family import HashFamily
from repro.streams.model import GraphStream


class TestProfiles:
    def test_row_shape(self):
        row = dataset_profile("ipflow", "tiny")
        assert len(row) == len(PROFILE_HEADERS)
        assert row[0] == "ipflow"

    def test_counts_exact(self):
        from repro.experiments import datasets
        stream = datasets.by_name("dblp", "tiny")
        row = dataset_profile("dblp", "tiny")
        assert row[1] == len(stream)
        assert row[2] == len(stream.nodes)
        assert row[3] == len(stream.distinct_edges)

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            dataset_profile("nonsense", "tiny")


class TestAdversarialCollisions:
    """Invariants must survive deliberately colliding inputs."""

    def find_colliding_labels(self, width=8, seed=1, count=20):
        """Labels that all hash to one bucket under sketch 0's hash."""
        h = HashFamily.uniform(1, width, seed=seed)[0]
        bucket = h("victim")
        colliding = []
        i = 0
        while len(colliding) < count:
            label = f"probe{i}"
            if h(label) == bucket:
                colliding.append(label)
            i += 1
        return colliding

    def test_overapproximation_under_forced_collisions(self):
        labels = self.find_colliding_labels()
        tcm = TCM(d=1, width=8, seed=1)
        stream = GraphStream(directed=True)
        for i, label in enumerate(labels):
            stream.add(label, "victim", float(i + 1))
        tcm.ingest(stream)
        for label in labels:
            assert tcm.edge_weight(label, "victim") >= \
                stream.edge_weight(label, "victim")
        # All collide: every estimate equals the total.
        total = stream.total_weight()
        assert tcm.edge_weight(labels[0], "victim") == total

    def test_second_hash_rescues_collisions(self):
        """Labels colliding under hash 0 rarely collide under hash 1."""
        labels = self.find_colliding_labels(width=8, seed=1, count=20)
        tcm = TCM(d=4, width=8, seed=1)
        for i, label in enumerate(labels):
            tcm.update(label, "victim", 1.0)
        # With 4 independent hashes the merged estimates are far below
        # the single-sketch worst case of 20.
        estimates = [tcm.edge_weight(label, "victim") for label in labels]
        assert sum(estimates) / len(estimates) < 15.0

    def test_all_elements_identical(self):
        tcm = TCM(d=3, width=16, seed=2)
        for _ in range(1000):
            tcm.update("same", "pair", 1.0)
        assert tcm.edge_weight("same", "pair") == 1000.0
        assert tcm.out_flow("same") == 1000.0

    def test_pathological_star(self):
        """A node with more distinct neighbours than buckets."""
        tcm = TCM(d=2, width=4, seed=3)
        stream = GraphStream(directed=True)
        for i in range(100):
            stream.add("hub", f"leaf{i}", 1.0)
        tcm.ingest(stream)
        assert tcm.out_flow("hub") >= 100.0
        for i in range(100):
            assert tcm.edge_weight("hub", f"leaf{i}") >= 1.0

    def test_conservative_update_under_collisions(self):
        labels = self.find_colliding_labels(width=8, seed=1, count=10)
        standard = TCM(d=1, width=8, seed=1)
        conservative = TCM(d=1, width=8, seed=1)
        stream = GraphStream(directed=True)
        for label in labels:
            stream.add(label, "victim", 1.0)
        standard.ingest(stream)
        conservative.ingest_conservative(stream)
        for label in labels:
            exact = stream.edge_weight(label, "victim")
            assert conservative.edge_weight(label, "victim") >= exact
            assert conservative.edge_weight(label, "victim") <= \
                standard.edge_weight(label, "victim")
