"""Tests for the subgraph matcher on exact stream views."""

import pytest

from repro.analytics.subgraph import match_subgraph, subgraph_weight
from repro.analytics.views import StreamView
from repro.core.queries import WILDCARD, BoundWildcard, SubgraphQuery
from repro.streams.model import GraphStream


@pytest.fixture
def diamond():
    """a->b, a->c, b->d, c->d (two length-2 paths from a to d)."""
    stream = GraphStream(directed=True)
    stream.add("a", "b", 1.0)
    stream.add("a", "c", 2.0)
    stream.add("b", "d", 3.0)
    stream.add("c", "d", 4.0)
    return StreamView(stream)


class TestExplicitMatching:
    def test_present_query_matches_once(self, diamond):
        q = SubgraphQuery([("a", "b"), ("b", "d")])
        assert len(list(match_subgraph(diamond, q))) == 1

    def test_absent_query_no_match(self, diamond):
        q = SubgraphQuery([("a", "d")])
        assert list(match_subgraph(diamond, q)) == []

    def test_weight_sums_edges(self, diamond):
        q = SubgraphQuery([("a", "b"), ("b", "d")])
        assert subgraph_weight(diamond, q) == 4.0

    def test_weight_zero_when_absent(self, diamond):
        q = SubgraphQuery([("a", "b"), ("b", "c")])
        assert subgraph_weight(diamond, q) == 0.0


class TestWildcardMatching:
    def test_free_wildcard_enumerates(self, diamond):
        q = SubgraphQuery([("a", WILDCARD)])
        assert len(list(match_subgraph(diamond, q))) == 2

    def test_two_path_pattern(self, diamond):
        q = SubgraphQuery([("a", WILDCARD), (WILDCARD, "d")])
        # Free wildcards are independent: 2 choices x 2 choices = 4 matches.
        assert len(list(match_subgraph(diamond, q))) == 4

    def test_bound_wildcard_constrains(self, diamond):
        mid = BoundWildcard("m")
        q = SubgraphQuery([("a", mid), (mid, "d")])
        matches = list(match_subgraph(diamond, q))
        assert len(matches) == 2  # m = b or m = c

    def test_bound_wildcard_weight(self, diamond):
        mid = BoundWildcard("m")
        q = SubgraphQuery([("a", mid), (mid, "d")])
        # (1+3) via b, (2+4) via c.
        assert subgraph_weight(diamond, q) == 10.0

    def test_wildcard_assignments_are_nodes(self, diamond):
        mid = BoundWildcard("m")
        q = SubgraphQuery([("a", mid), (mid, "d")])
        assigned = {tuple(m.values()) for m in match_subgraph(diamond, q)}
        assert assigned == {("b",), ("c",)}

    def test_triangle_with_bound_wildcards(self):
        stream = GraphStream(directed=True)
        stream.add("a", "b", 1.0)
        stream.add("b", "c", 1.0)
        stream.add("c", "a", 1.0)
        stream.add("c", "x", 1.0)
        view = StreamView(stream)
        u, v, w = BoundWildcard("u"), BoundWildcard("v"), BoundWildcard("w")
        q = SubgraphQuery([(u, v), (v, w), (w, u)])
        matches = list(match_subgraph(view, q))
        # The cycle a->b->c->a found from each of its 3 rotations.
        assert len(matches) == 3

    def test_max_matches(self, diamond):
        q = SubgraphQuery([(WILDCARD, WILDCARD)])
        assert len(list(match_subgraph(diamond, q, max_matches=2))) == 2

    def test_node_of_translation(self, diamond):
        """Constants can be mapped through a custom node_of."""
        q = SubgraphQuery([("A", "B")])
        weight = subgraph_weight(diamond, q, node_of=lambda s: s.lower())
        assert weight == 1.0
