"""Tests for the CountMin baseline and its graph specializations."""

import numpy as np
import pytest

from repro.baselines.countmin import (
    CountMinSketch,
    EdgeCountMin,
    NodeCountMin,
    concat_edge_key,
)
from repro.hashing.labels import label_to_int


class TestCountMinSketch:
    def test_basic_estimate(self):
        cm = CountMinSketch(3, 64, seed=1)
        cm.update("k", 5.0)
        assert cm.estimate("k") == 5.0

    def test_accumulation(self):
        cm = CountMinSketch(3, 64, seed=1)
        cm.update("k", 2.0)
        cm.update("k", 3.0)
        assert cm.estimate("k") == 5.0

    def test_unseen_key_zero_when_wide(self):
        cm = CountMinSketch(3, 1024, seed=1)
        cm.update("k", 5.0)
        assert cm.estimate("other") == 0.0

    def test_never_underestimates(self):
        cm = CountMinSketch(2, 8, seed=1)
        truth = {}
        for i in range(300):
            key = f"k{i % 40}"
            cm.update(key, 1.0)
            truth[key] = truth.get(key, 0.0) + 1.0
        for key, exact in truth.items():
            assert cm.estimate(key) >= exact

    def test_estimate_is_min_over_rows(self):
        cm = CountMinSketch(4, 8, seed=2)
        for i in range(100):
            cm.update(f"k{i}", 1.0)
        key = "k0"
        intkey = label_to_int(key)
        rows = [cm._table[r, h.hash_int(intkey)]
                for r, h in enumerate(cm._family)]
        assert cm.estimate(key) == min(rows)

    def test_remove(self):
        cm = CountMinSketch(3, 64, seed=1)
        cm.update("k", 5.0)
        cm.remove("k", 5.0)
        assert cm.estimate("k") == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(1, 8).update("k", -1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(0, 8)
        with pytest.raises(ValueError):
            CountMinSketch(1, 0)

    def test_size_in_cells(self):
        assert CountMinSketch(3, 100).size_in_cells == 300

    def test_update_many_matches_scalar(self):
        cm1 = CountMinSketch(3, 32, seed=5)
        cm2 = CountMinSketch(3, 32, seed=5)
        keys = [f"key{i % 11}" for i in range(100)]
        weights = np.array([float(i % 3 + 1) for i in range(100)])
        for k, w in zip(keys, weights):
            cm1.update(k, w)
        cm2.update_many(
            np.array([label_to_int(k) for k in keys], dtype=np.uint64),
            weights)
        np.testing.assert_allclose(cm1._table, cm2._table)

    def test_clear(self):
        cm = CountMinSketch(2, 16, seed=1)
        cm.update("k", 1.0)
        cm.clear()
        assert cm.estimate("k") == 0.0

    def test_more_rows_tighter_estimates(self):
        """d=5 estimates are never worse than d=1 (min over superset)."""
        keys = [f"k{i % 50}" for i in range(500)]
        small = CountMinSketch(1, 32, seed=7)
        big = CountMinSketch(5, 32, seed=7)
        for k in keys:
            small.update(k, 1.0)
            big.update(k, 1.0)
        # Same seed: the first row of `big` equals `small`'s only row.
        for key in set(keys):
            assert big.estimate(key) <= small.estimate(key)


class TestConcatKey:
    def test_distinct_pairs_distinct_keys(self):
        assert concat_edge_key("a", "bc") != concat_edge_key("ab", "c")

    def test_order_matters(self):
        assert concat_edge_key("a", "b") != concat_edge_key("b", "a")


class TestEdgeCountMin:
    def test_edge_weight(self):
        cm = EdgeCountMin(3, 128, seed=1)
        cm.update("a", "b", 4.0)
        assert cm.edge_weight("a", "b") == 4.0

    def test_directional(self):
        cm = EdgeCountMin(3, 512, seed=1)
        cm.update("a", "b", 4.0)
        assert cm.edge_weight("b", "a") == 0.0

    def test_undirected_folds_orientations(self):
        cm = EdgeCountMin(3, 128, seed=1, directed=False)
        cm.update("a", "b", 1.0)
        cm.update("b", "a", 2.0)
        assert cm.edge_weight("a", "b") == 3.0
        assert cm.edge_weight("b", "a") == 3.0

    def test_remove(self):
        cm = EdgeCountMin(2, 64, seed=1)
        cm.update("a", "b", 2.0)
        cm.remove("a", "b", 2.0)
        assert cm.edge_weight("a", "b") == 0.0

    def test_subgraph_weight(self, small_directed):
        cm = EdgeCountMin(3, 512, seed=1)
        cm.ingest(small_directed)
        assert cm.subgraph_weight([("a", "b"), ("b", "c")]) == 6.0

    def test_subgraph_zero_on_missing(self, small_directed):
        cm = EdgeCountMin(3, 512, seed=1)
        cm.ingest(small_directed)
        assert cm.subgraph_weight([("a", "b"), ("zz", "qq")]) == 0.0

    def test_ingest_count(self, small_directed):
        cm = EdgeCountMin(2, 64, seed=1)
        assert cm.ingest(small_directed) == 5


class TestNodeCountMin:
    def test_in_flow(self, small_directed):
        cm = NodeCountMin(3, 512, seed=1, direction="in")
        cm.ingest(small_directed)
        assert cm.flow("c") == small_directed.in_flow("c")

    def test_out_flow(self, small_directed):
        cm = NodeCountMin(3, 512, seed=1, direction="out")
        cm.ingest(small_directed)
        assert cm.flow("a") == small_directed.out_flow("a")

    def test_both_direction(self, small_undirected):
        cm = NodeCountMin(3, 512, seed=1, direction="both")
        cm.ingest(small_undirected)
        assert cm.flow("y") == small_undirected.flow("y")

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            NodeCountMin(1, 8, direction="diagonal")

    def test_remove(self):
        cm = NodeCountMin(2, 64, seed=1, direction="in")
        cm.update("a", "b", 2.0)
        cm.remove("a", "b", 2.0)
        assert cm.flow("b") == 0.0
