"""Tests for the stable label-to-integer mapping."""

import numpy as np
import pytest

from repro.hashing.labels import (
    LABEL_CACHE_LIMIT, clear_label_cache, fnv1a_64, label_cache_info,
    label_cache_limit, label_key, label_keys, label_to_int,
    set_label_cache_limit)


class TestFnv1a:
    def test_empty_input_matches_offset_basis(self):
        assert fnv1a_64(b"") == 14695981039346656037

    def test_known_vector(self):
        # FNV-1a 64-bit of "a" is a published test vector.
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C

    def test_deterministic(self):
        assert fnv1a_64(b"payload") == fnv1a_64(b"payload")

    def test_different_inputs_differ(self):
        assert fnv1a_64(b"abc") != fnv1a_64(b"abd")

    def test_result_fits_64_bits(self):
        for data in (b"", b"x", b"long input " * 100):
            assert 0 <= fnv1a_64(data) < 2 ** 64

    def test_order_sensitive(self):
        assert fnv1a_64(b"ab") != fnv1a_64(b"ba")


class TestLabelToInt:
    def test_int_passthrough(self):
        assert label_to_int(12345) == 12345

    def test_zero(self):
        assert label_to_int(0) == 0

    def test_negative_int_wraps_to_unsigned(self):
        assert label_to_int(-1) == 2 ** 64 - 1

    def test_large_int_masked(self):
        assert label_to_int(2 ** 64 + 7) == 7

    def test_string_stable(self):
        assert label_to_int("192.168.0.1") == label_to_int("192.168.0.1")

    def test_string_uses_fnv(self):
        assert label_to_int("abc") == fnv1a_64(b"abc")

    def test_bytes_supported(self):
        assert label_to_int(b"abc") == fnv1a_64(b"abc")

    def test_str_and_bytes_agree_on_utf8(self):
        assert label_to_int("nöde") == label_to_int("nöde".encode("utf-8"))

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="bool"):
            label_to_int(True)

    def test_float_rejected(self):
        with pytest.raises(TypeError, match="float"):
            label_to_int(1.5)

    def test_none_rejected(self):
        with pytest.raises(TypeError):
            label_to_int(None)

    def test_distinct_strings_rarely_collide(self):
        keys = {label_to_int(f"node_{i}") for i in range(10000)}
        assert len(keys) == 10000


class TestLabelKeyCache:
    """The interning cache: same keys as label_to_int, bounded, observable."""

    def setup_method(self):
        clear_label_cache()

    def test_matches_label_to_int(self):
        for label in ("host-7", b"raw", "192.168.0.1", 42, -1, 2 ** 64 + 7):
            assert label_key(label) == label_to_int(label)

    def test_cache_hit_counted(self):
        label_key("repeat-me")
        before = label_cache_info()
        label_key("repeat-me")
        after = label_cache_info()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_int_labels_bypass_cache(self):
        before = label_cache_info()["size"]
        label_key(123456)
        assert label_cache_info()["size"] == before

    def test_clear_resets_size(self):
        label_key("x")
        label_key("y")
        assert label_cache_info()["size"] >= 2
        clear_label_cache()
        assert label_cache_info()["size"] == 0

    def test_limit_bounds_cache(self):
        assert label_cache_info()["limit"] == LABEL_CACHE_LIMIT
        assert LABEL_CACHE_LIMIT >= 1024

    def test_bulk_matches_scalar(self):
        labels = ["a", b"b", 3, "a", 2 ** 65, "dup", "dup"]
        keys = label_keys(labels)
        assert keys.dtype == np.uint64
        assert [int(k) for k in keys] == [label_key(x) for x in labels]

    def test_bulk_counts_hits(self):
        clear_label_cache()
        label_keys(["alpha", "alpha", "beta"])
        info = label_cache_info()
        assert info["misses"] >= 2
        assert info["hits"] >= 1

    def test_bulk_rejects_bad_types(self):
        with pytest.raises(TypeError):
            label_keys(["fine", None])

    def test_bulk_empty(self):
        assert len(label_keys([])) == 0


class TestBoundedCache:
    """The LRU-style cap: a long-running server cannot leak label memory."""

    def setup_method(self):
        clear_label_cache()
        self._default = label_cache_limit()

    def teardown_method(self):
        set_label_cache_limit(self._default)
        clear_label_cache()

    def test_size_never_exceeds_limit(self):
        set_label_cache_limit(64)
        for i in range(1000):
            label_key(f"one-shot-{i}")
            assert label_cache_info()["size"] <= 64

    def test_evictions_counted(self):
        set_label_cache_limit(32)
        for i in range(100):
            label_key(f"n{i}")
        info = label_cache_info()
        assert info["evictions"] > 0
        assert info["size"] + info["evictions"] == info["misses"]

    def test_oldest_evicted_first(self):
        set_label_cache_limit(8)
        for i in range(8):
            label_key(f"old-{i}")
        label_key("fresh")  # triggers one eviction sweep of the oldest
        hits_before = label_cache_info()["hits"]
        label_key("fresh")
        assert label_cache_info()["hits"] == hits_before + 1

    def test_evicted_label_rehashes_to_same_key(self):
        set_label_cache_limit(4)
        expected = label_key("victim")
        for i in range(16):
            label_key(f"filler-{i}")
        assert label_key("victim") == expected
        assert label_key("victim") == label_to_int("victim")

    def test_bulk_path_respects_limit(self):
        set_label_cache_limit(16)
        keys = label_keys([f"bulk-{i}" for i in range(500)])
        assert len(keys) == 500
        info = label_cache_info()
        assert info["size"] <= 16
        assert info["evictions"] > 0

    def test_shrinking_limit_evicts_immediately(self):
        set_label_cache_limit(128)
        for i in range(100):
            label_key(f"s{i}")
        assert label_cache_info()["size"] == 100
        set_label_cache_limit(10)
        info = label_cache_info()
        assert info["size"] <= 10
        assert info["limit"] == 10
        assert info["evictions"] >= 90

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            set_label_cache_limit(0)

    def test_clear_resets_evictions(self):
        set_label_cache_limit(4)
        for i in range(20):
            label_key(f"c{i}")
        assert label_cache_info()["evictions"] > 0
        clear_label_cache()
        assert label_cache_info()["evictions"] == 0
