"""Tests for Algorithm 2: heavy triangle connections."""

import pytest

from repro.core.tcm import TCM
from repro.core.triangles import (
    connection_candidates,
    heavy_triangle_connections,
    triangle_score,
)
from repro.streams.model import GraphStream


@pytest.fixture
def collaboration_stream():
    """Undirected: (p, q) is the heavy edge; z1/z2 collaborate with both,
    z1 more strongly; lone only touches p."""
    stream = GraphStream(directed=False)
    t = 0
    for _ in range(10):
        stream.add("p", "q", 1.0, float(t)); t += 1
    for _ in range(6):
        stream.add("z1", "p", 1.0, float(t)); t += 1
        stream.add("z1", "q", 1.0, float(t)); t += 1
    for _ in range(2):
        stream.add("z2", "p", 1.0, float(t)); t += 1
        stream.add("z2", "q", 1.0, float(t)); t += 1
    stream.add("lone", "p", 1.0, float(t))
    return stream


def extended_tcm(stream, directed=False, d=2, width=64, seed=3):
    return TCM.from_stream(stream, d=d, width=width, seed=seed,
                           keep_labels=True)


class TestTriangleScore:
    def test_formula(self):
        assert triangle_score(6.0, 3.0) == pytest.approx(2.0)

    def test_zero_when_either_absent(self):
        assert triangle_score(0.0, 5.0) == 0.0
        assert triangle_score(5.0, 0.0) == 0.0

    def test_symmetry(self):
        assert triangle_score(4.0, 2.0) == triangle_score(2.0, 4.0)

    def test_monotone_in_both(self):
        assert triangle_score(5.0, 5.0) > triangle_score(4.0, 5.0)


class TestCandidates:
    def test_requires_extended_sketch(self, collaboration_stream):
        tcm = TCM.from_stream(collaboration_stream, d=1, width=64, seed=1)
        with pytest.raises(ValueError, match="keep_labels"):
            connection_candidates(tcm, "p", "q")

    def test_finds_common_neighbours(self, collaboration_stream):
        tcm = extended_tcm(collaboration_stream)
        candidates = connection_candidates(tcm, "p", "q")
        assert {"z1", "z2"} <= candidates

    def test_excludes_endpoints(self, collaboration_stream):
        tcm = extended_tcm(collaboration_stream)
        candidates = connection_candidates(tcm, "p", "q")
        assert "p" not in candidates and "q" not in candidates

    def test_intersecting_sketches_prunes(self, collaboration_stream):
        """More sketches can only shrink the candidate set."""
        one = extended_tcm(collaboration_stream, d=1)
        many = extended_tcm(collaboration_stream, d=4)
        assert connection_candidates(many, "p", "q") <= \
            connection_candidates(one, "p", "q")


class TestAlgorithm2:
    def test_ranks_strong_collaborator_first(self, collaboration_stream):
        tcm = extended_tcm(collaboration_stream)
        results = heavy_triangle_connections(tcm, [("p", "q")], l=2)
        (edge, connections), = results
        assert edge == ("p", "q")
        assert connections[0][0] == "z1"
        assert connections[1][0] == "z2"

    def test_scores_match_formula_on_wide_sketch(self, collaboration_stream):
        tcm = extended_tcm(collaboration_stream, width=256)
        results = heavy_triangle_connections(tcm, [("p", "q")], l=1)
        _, connections = results[0]
        assert connections[0][1] == pytest.approx(triangle_score(6.0, 6.0))

    def test_l_validation(self, collaboration_stream):
        tcm = extended_tcm(collaboration_stream)
        with pytest.raises(ValueError):
            heavy_triangle_connections(tcm, [("p", "q")], l=0)

    def test_l_bounds_output(self, collaboration_stream):
        tcm = extended_tcm(collaboration_stream)
        results = heavy_triangle_connections(tcm, [("p", "q")], l=1)
        assert len(results[0][1]) == 1

    def test_multiple_heavy_edges_in_order(self, collaboration_stream):
        tcm = extended_tcm(collaboration_stream)
        results = heavy_triangle_connections(
            tcm, [("p", "q"), ("z1", "p")], l=2)
        assert [edge for edge, _ in results] == [("p", "q"), ("z1", "p")]

    def test_no_common_neighbours(self):
        stream = GraphStream(directed=False)
        stream.add("a", "b", 1.0)
        tcm = extended_tcm(stream, width=128)
        results = heavy_triangle_connections(tcm, [("a", "b")], l=3)
        assert results[0][1] == []

    def test_directed_counts_both_directions(self):
        """Directed communication weight is the sum of both orientations."""
        stream = GraphStream(directed=True)
        for _ in range(3):
            stream.add("x", "y", 1.0)
        stream.add("z", "x", 2.0)
        stream.add("x", "z", 1.0)
        stream.add("z", "y", 3.0)
        tcm = TCM.from_stream(stream, d=2, width=128, seed=5,
                              keep_labels=True)
        results = heavy_triangle_connections(tcm, [("x", "y")], l=1)
        _, connections = results[0]
        assert connections[0][0] == "z"
        assert connections[0][1] == pytest.approx(triangle_score(3.0, 3.0))
