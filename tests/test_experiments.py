"""Tests for the experiment harness: datasets, helpers and driver shapes.

Drivers run at ``tiny`` scale here; the assertions check the *shape*
properties the paper reports (monotone trends, orderings), not absolute
numbers.
"""

import pytest

from repro.experiments import datasets
from repro.experiments.capability import QUERY_CLASSES, table3_capabilities
from repro.experiments.common import (
    cells_for_ratio,
    edge_query_are,
    edge_workload,
    random_node_pairs,
    stream_prefix,
    width_for_ratio,
)
from repro.experiments.report import format_table, print_table


class TestDatasets:
    def test_registry_names(self):
        assert set(datasets.DATASET_NAMES) == {"dblp", "ipflow", "gtgraph",
                                               "twitter"}

    def test_by_name(self):
        stream = datasets.by_name("dblp", "tiny")
        assert not stream.directed
        assert len(stream) > 100

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            datasets.by_name("imaginary")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            datasets.dblp("galactic")

    def test_caching(self):
        assert datasets.ipflow("tiny") is datasets.ipflow("tiny")

    def test_gtgraph_multiplicity_flag(self):
        assert datasets.gtgraph("tiny").multiplicity_weights

    def test_scales_ordered(self):
        assert len(datasets.dblp("tiny")) < len(datasets.dblp("small"))

    def test_ratios_defined_for_all(self):
        for name in datasets.DATASET_NAMES:
            assert name in datasets.DEFAULT_RATIOS
            assert name in datasets.FIXED_RATIO


class TestCommonHelpers:
    def test_cells_for_ratio(self):
        stream = datasets.dblp("tiny")
        assert cells_for_ratio(stream, 0.5) == len(stream) // 2

    def test_cells_uses_total_weight_for_multiplicities(self):
        stream = datasets.gtgraph("tiny")
        assert cells_for_ratio(stream, 0.1) == int(stream.total_weight() * 0.1)

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            cells_for_ratio(datasets.dblp("tiny"), 0.0)

    def test_width_for_ratio(self):
        stream = datasets.dblp("tiny")
        width = width_for_ratio(stream, 0.5)
        assert width * width <= cells_for_ratio(stream, 0.5)

    def test_edge_workload_complete(self):
        stream = datasets.dblp("tiny")
        assert len(edge_workload(stream)) == len(stream.distinct_edges)

    def test_edge_workload_limit(self):
        stream = datasets.dblp("tiny")
        assert len(edge_workload(stream, limit=10)) == 10

    def test_stream_prefix(self):
        stream = datasets.dblp("tiny")
        prefix = stream_prefix(stream, 0.25)
        assert len(prefix) == max(1, int(len(stream) * 0.25))
        assert prefix[0].source == stream[0].source

    def test_random_node_pairs(self):
        pairs = random_node_pairs(datasets.dblp("tiny"), 20, seed=1)
        assert len(pairs) == 20
        assert all(a != b for a, b in pairs)

    def test_edge_query_are_zero_for_exact(self):
        stream = datasets.dblp("tiny")
        assert edge_query_are(stream, stream.edge_weight) == 0.0


class TestDriverShapes:
    def test_fig7_error_monotone_in_compression(self):
        from repro.experiments.exp1_edge import fig7_edge_vs_ratio
        rows = fig7_edge_vs_ratio("gtgraph", "tiny",
                                  ratios=(1 / 10, 1 / 40), d=4)
        assert rows[0][1] <= rows[1][1]  # looser ratio, lower TCM error
        assert rows[0][2] <= rows[1][2]

    def test_fig8_distribution_ascending(self):
        from repro.experiments.exp1_edge import fig8_weight_distribution
        rows = fig8_weight_distribution("dblp", "tiny", buckets=5)
        minima = [row[1] for row in rows]
        assert minima == sorted(minima)

    def test_fig9_error_monotone_in_d(self):
        from repro.experiments.exp1_edge import fig9_edge_vs_d
        rows = fig9_edge_vs_d("gtgraph", "tiny", d_values=(1, 5))
        assert rows[1][1] <= rows[0][1]
        assert rows[1][2] <= rows[0][2]

    def test_fig10_light_edges_dominate_error(self):
        from repro.experiments.exp1_edge import fig10_weight_segments
        rows = fig10_weight_segments("ipflow", "tiny", d=4, segments=5)
        assert rows[0][1] > rows[-1][1]  # lightest segment worst for TCM
        assert rows[0][2] > rows[-1][2]

    def test_fig12_tcm_beats_half_space_cm(self):
        from repro.experiments.exp1_edge import fig12_same_space_set
        rows = fig12_same_space_set("ipflow", "tiny", d_values=(5,))
        _, are_tcm, are_cm_half = rows[0]
        assert are_tcm < are_cm_half

    def test_gsketch_comparison_rows(self):
        from repro.experiments.exp1_edge import gsketch_comparison
        rows = gsketch_comparison("ipflow", "tiny", d_values=(1, 3))
        methods = [row[0] for row in rows]
        assert methods == ["CountMin", "TCM", "gSketch", "TCM (edge sample)"]
        by_method = {row[0]: row[1:] for row in rows}
        # Partitioning helps at d=1 (the light/heavy separation regime).
        assert by_method["gSketch"][0] < by_method["CountMin"][0]

    def test_fig11_rows(self):
        from repro.experiments.exp2_heavy import fig11_heavy_hitters
        rows = fig11_heavy_hitters(names=("ipflow",), scale="tiny", d=4,
                                   edge_k=20, node_k=10)
        assert len(rows) == 2
        for row in rows:
            for accuracy in row[2:]:
                assert 0.0 <= accuracy <= 1.0
        # Heavy edges: sketches beat the same-space reservoir.
        edges_row = rows[0]
        assert edges_row[2] >= edges_row[4]

    def test_fig13_structure(self):
        from repro.experiments.exp2_heavy import fig13_conditional_heavy_hitters
        rows = fig13_conditional_heavy_hitters("tiny", d=4, k=3, l=3)
        assert 1 <= len(rows) <= 3
        for author, flow, is_true_top, hits, collaborators in rows:
            assert flow > 0
            assert isinstance(is_true_top, bool)
            assert "/" in hits

    def test_ndcg_high(self):
        from repro.experiments.exp2_heavy import ndcg_table
        rows = ndcg_table("ipflow", "tiny", d=4, ratio=1 / 3,
                          k_values=(5, 10))
        for _, ndcg_edges, ndcg_nodes in rows:
            assert ndcg_edges > 0.9
            assert ndcg_nodes > 0.7

    def test_fig14a_accuracy_range(self):
        from repro.experiments.exp3_path import fig14a_reachability_vs_d
        rows = fig14a_reachability_vs_d(names=("gtgraph",), scale="tiny",
                                        d_values=(1, 5), pairs_count=30)
        for row in rows:
            assert 0.0 <= row[1] <= 1.0
        assert rows[1][1] >= rows[0][1] - 0.15  # accuracy not collapsing in d

    def test_fig14b_improves_with_d(self):
        from repro.experiments.exp3_path import fig14b_true_negatives
        rows = fig14b_true_negatives(density_values=(1,), n_nodes=256,
                                     d_values=(1, 9), pairs_count=40)
        assert rows[1][1] >= rows[0][1]

    def test_fig15_shape(self):
        from repro.experiments.exp4_graph import fig15_subgraph_vs_d
        rows = fig15_subgraph_vs_d("ipflow", "tiny", d_values=(1, 5),
                                   query_count=10)
        assert rows[1][1] <= rows[0][1]

    def test_fig16_structure(self):
        from repro.experiments.exp4_graph import fig16_heavy_triangles
        rows = fig16_heavy_triangles("tiny", d=4, k=3, l=3)
        assert 1 <= len(rows) <= 3
        for edge, hits, connections in rows:
            assert " -- " in edge

    def test_fig17_breakdown(self):
        from repro.experiments.exp5_efficiency import build_time_breakdown
        # Wall-clock comparisons on a tiny dataset are vulnerable to
        # scheduler noise, so allow a couple of re-measurements before
        # declaring the d-monotonicity broken.
        for attempt in range(3):
            rows = build_time_breakdown("dblp", "tiny", d_values=(1, 3))
            for d, cm_string, cm_hash, tcm_string, tcm_hash in rows:
                assert cm_string > 0.0
                assert tcm_string == 0.0
                assert cm_hash > 0 and tcm_hash > 0
            # Hash cost grows with d for both.
            if rows[1][2] > rows[0][2] and rows[1][4] > rows[0][4]:
                break
        else:
            assert rows[1][2] > rows[0][2]
            assert rows[1][4] > rows[0][4]

    def test_query_time_ordering(self):
        from repro.experiments.exp5_efficiency import query_time_table
        # The list scan is O(|V|) per query, so the ordering needs a graph
        # with a non-trivial node count (small scale) and enough queries
        # for the timing to dominate scheduler noise.
        rows = query_time_table("gtgraph", "small", d=2,
                                query_counts=(1000,))
        for count, t_tcm, t_scan, t_hashed in rows:
            assert t_tcm < t_scan / 2  # sketch beats the list scan clearly


class TestCapabilityTable:
    def test_matches_paper_table3(self):
        rows = {row[0]: dict(zip(QUERY_CLASSES, row[1:]))
                for row in table3_capabilities()}
        tcm = rows["TCM"]
        assert all(tcm.values())
        edge_cm = rows["CountMin (edge) / gSketch"]
        assert edge_cm["edge"] and edge_cm["subgraph (explicit)"]
        assert not edge_cm["node"] and not edge_cm["reachability"]
        assert not edge_cm["conditional heavy hitters"]
        assert not edge_cm["heavy triangle connections"]
        node_cm = rows["CountMin (node)"]
        assert node_cm["node"] and not node_cm["edge"]
        assert rows["sample (edge)"]["edge"]
        assert not rows["sample (edge)"]["node"]
        assert rows["sample (node)"]["node"]
        assert not rows["sample (node)"]["edge"]


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["col", "value"], [("a", 1.0), ("bb", 2.5)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["one"], [("a", "b")])

    def test_render_bool_and_float(self):
        text = format_table(["x"], [(True,), (0.000123,), (float("nan"),)])
        assert "yes" in text
        assert "nan" in text

    def test_print_table(self, capsys):
        print_table("Title", ["a"], [(1,)])
        out = capsys.readouterr().out
        assert "Title" in out and "1" in out


class TestCli:
    def test_cli_runs_one_experiment(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["fig8", "--dataset", "dblp", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out

    def test_cli_table3(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["table3", "--scale", "tiny"]) == 0
        assert "TCM" in capsys.readouterr().out

    def test_cli_rejects_unknown(self):
        from repro.experiments.__main__ import main
        with pytest.raises(SystemExit):
            main(["fig99"])
