"""Tests for non-square sketches (paper Section 5.1.2) and the CountMin
degeneracy (Section 5.1.3)."""

import numpy as np
import pytest

from repro.core.graph_sketch import GraphSketch, label_keys
from repro.hashing.family import HashFamily


def make_nonsquare(rows=8, cols=4, seed=0, **kwargs):
    family = HashFamily([rows, cols], seed=seed)
    return GraphSketch(family[0], family[1], **kwargs)


class TestNonSquare:
    def test_not_graphical(self):
        assert not make_nonsquare().is_graphical

    def test_shape(self):
        sketch = make_nonsquare(rows=7, cols=2)
        assert sketch.shape == (7, 2)

    def test_edge_estimate_works(self):
        sketch = make_nonsquare()
        sketch.update("a", "b", 4.0)
        assert sketch.edge_estimate("a", "b") == 4.0

    def test_flows_work(self):
        sketch = make_nonsquare(rows=32, cols=32)
        sketch.update("a", "b", 2.0)
        assert sketch.out_flow("a") >= 2.0
        assert sketch.in_flow("b") >= 2.0

    def test_overestimation_invariant_holds(self):
        sketch = make_nonsquare(rows=5, cols=3)
        truth = {}
        for i in range(100):
            x, y = f"s{i % 11}", f"t{i % 9}"
            sketch.update(x, y, 1.0)
            truth[(x, y)] = truth.get((x, y), 0.0) + 1.0
        for (x, y), exact in truth.items():
            assert sketch.edge_estimate(x, y) >= exact

    def test_topology_operations_rejected(self):
        sketch = make_nonsquare()
        with pytest.raises(ValueError, match="non-square"):
            sketch.successors(0)
        with pytest.raises(ValueError, match="non-square"):
            sketch.predecessors(0)
        with pytest.raises(ValueError, match="non-square"):
            sketch.node_of("a")

    def test_undirected_nonsquare_rejected(self):
        family = HashFamily([8, 4], seed=1)
        with pytest.raises(ValueError, match="undirected"):
            GraphSketch(family[0], family[1], directed=False)

    def test_deletion(self):
        sketch = make_nonsquare()
        sketch.update("a", "b", 3.0)
        sketch.remove("a", "b", 3.0)
        assert sketch.edge_estimate("a", "b") == 0.0

    def test_update_many(self):
        family = HashFamily([8, 4], seed=2)
        scalar = GraphSketch(family[0], family[1])
        bulk = GraphSketch(family[0], family[1])
        src = [f"s{i}" for i in range(50)]
        dst = [f"t{i % 3}" for i in range(50)]
        for s, t in zip(src, dst):
            scalar.update(s, t, 2.0)
        bulk.update_many(label_keys(src), label_keys(dst), np.full(50, 2.0))
        np.testing.assert_allclose(bulk.matrix, scalar.matrix)


class TestCountMinDegeneracy:
    """Section 5.1.3: a p x 1 TCM matrix IS a CountMin row on sources."""

    def test_single_column_equals_source_countmin(self):
        family = HashFamily([64, 1], seed=3)
        sketch = GraphSketch(family[0], family[1])
        elements = [(f"s{i % 10}", f"t{i}", float(i % 4 + 1))
                    for i in range(200)]
        source_totals = {}
        for s, t, w in elements:
            sketch.update(s, t, w)
            source_totals[s] = source_totals.get(s, 0.0) + w
        # out_flow of a source == CountMin point estimate of the source key
        # under the same hash: all targets collapse into the single column.
        for s, exact in source_totals.items():
            assert sketch.edge_estimate(s, "anything") == sketch.out_flow(s)
            assert sketch.out_flow(s) >= exact

    def test_single_row_equals_target_countmin(self):
        family = HashFamily([1, 64], seed=4)
        sketch = GraphSketch(family[0], family[1])
        target_totals = {}
        for i in range(200):
            t, w = f"t{i % 10}", float(i % 4 + 1)
            sketch.update(f"s{i}", t, w)
            target_totals[t] = target_totals.get(t, 0.0) + w
        for t, exact in target_totals.items():
            assert sketch.in_flow(t) >= exact

    def test_exact_match_with_standalone_countmin(self):
        """A 1-column sketch equals CountMinSketch with the same hash."""
        from repro.baselines.countmin import CountMinSketch

        family = HashFamily([64, 1], seed=5)
        sketch = GraphSketch(family[0], family[1])
        cm = CountMinSketch(1, 64, seed=None)
        cm._family = HashFamily([64], seed=99)
        cm._family._functions = (family[0],)  # share the exact hash

        for i in range(300):
            source, weight = f"key{i % 17}", float(i % 5 + 1)
            sketch.update(source, f"t{i}", weight)
            cm.update(source, weight)
        for i in range(17):
            key = f"key{i}"
            assert sketch.out_flow(key) == cm.estimate(key)
