"""Tests for the sketch-filtered exact store (paper Section 7)."""

import pytest

from repro.core.filter import SketchFilteredStore
from repro.streams.generators import ipflow_like


class TestCorrectness:
    def test_answers_are_exact(self, ipflow_stream):
        store = SketchFilteredStore(d=3, width=64, seed=1)
        store.ingest(ipflow_stream)
        for x, y in list(ipflow_stream.distinct_edges)[:100]:
            assert store.edge_weight(x, y) == ipflow_stream.edge_weight(x, y)

    def test_misses_are_zero(self, ipflow_stream):
        store = SketchFilteredStore(d=3, width=64, seed=1)
        store.ingest(ipflow_stream)
        assert store.edge_weight("10.9.9.9", "10.8.8.8") == 0.0

    def test_threshold_queries_exact(self, ipflow_stream):
        store = SketchFilteredStore(d=3, width=64, seed=1)
        store.ingest(ipflow_stream)
        for x, y in list(ipflow_stream.distinct_edges)[:50]:
            exact = ipflow_stream.edge_weight(x, y)
            assert store.edge_heavier_than(x, y, exact) is True
            assert store.edge_heavier_than(x, y, exact + 1.0) is False


class TestFiltering:
    def test_misses_never_touch_exact_store(self):
        store = SketchFilteredStore(d=3, width=256, seed=2)
        store.update("a", "b", 1.0)
        for i in range(50):
            store.edge_weight(f"ghost{i}", f"phantom{i}")
        assert store.exact_lookups == 0
        assert store.filtered_misses == 50

    def test_hits_recorded(self):
        store = SketchFilteredStore(d=3, width=256, seed=2)
        store.update("a", "b", 1.0)
        store.edge_weight("a", "b")
        assert store.exact_lookups == 1

    def test_threshold_short_circuits(self):
        store = SketchFilteredStore(d=3, width=256, seed=2)
        store.update("a", "b", 5.0)
        assert store.edge_heavier_than("a", "b", 100.0) is False
        assert store.filtered_threshold == 1
        assert store.exact_lookups == 0

    def test_filter_rate(self):
        store = SketchFilteredStore(d=3, width=256, seed=2)
        store.update("a", "b", 1.0)
        store.edge_weight("a", "b")          # exact lookup
        store.edge_weight("x", "y")          # filtered miss
        assert store.filter_rate == pytest.approx(0.5)

    def test_filter_rate_no_queries(self):
        assert SketchFilteredStore().filter_rate == 0.0

    def test_high_miss_workload_mostly_filtered(self):
        trace = ipflow_like(n_hosts=60, n_packets=800, seed=5)
        store = SketchFilteredStore(d=4, width=128, seed=3)
        store.ingest(trace)
        for i in range(500):
            store.edge_weight(f"10.250.0.{i % 200}", f"10.251.0.{i % 180}")
        assert store.filter_rate > 0.9

    def test_sketch_exposed(self):
        store = SketchFilteredStore(d=2, width=32, seed=1)
        store.update("a", "b", 2.0)
        assert store.sketch.edge_weight("a", "b") >= 2.0
