"""Cross-feature workflow tests: compositions a real deployment uses."""

import numpy as np
import pytest

from repro.core.serialization import load_tcm, save_tcm
from repro.core.snapshots import SnapshotRing
from repro.core.tcm import TCM
from repro.distributed.sharded import ShardedTCM
from repro.streams.generators import ipflow_like
from repro.streams.model import StreamEdge
from repro.streams.transforms import shard, time_slice
from repro.streams.window import SlidingWindow


class TestWindowRingAgreement:
    def test_window_equals_ring_range_at_boundaries(self):
        """When the watermark sits on a bucket boundary and the horizon is
        a whole number of buckets, the sliding window's summary equals the
        ring's merged range over the same interval."""
        bucket = 10.0
        horizon = 30.0
        edges = [StreamEdge(f"s{i % 7}", f"t{i % 5}", float(i % 4 + 1),
                            float(i)) for i in range(100)]

        window = SlidingWindow(TCM(d=2, width=32, seed=3), horizon)
        ring = SnapshotRing(bucket, 32, d=2, width=32, seed=3)
        for edge in edges:
            window.observe(edge)
            ring.observe(edge)
        # Move the watermark to the boundary t=100: window covers [70, 100).
        window.advance_to(100.0)
        merged = ring.range_summary(70.0, 100.0)
        for s1, s2 in zip(window.summary.sketches, merged.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix)


class TestShardSerializeMergeQuery:
    def test_distributed_build_round_trip(self, tmp_path):
        """Shard on 'ingest nodes', persist each shard summary, load and
        merge on a 'query node', and answer queries exactly as a
        single-machine build would."""
        stream = ipflow_like(n_hosts=60, n_packets=1500, seed=12)
        shards = shard(list(stream), 3, by="source")

        # Ingest nodes: summarize a shard each and write it out.
        paths = []
        for i, piece in enumerate(shards):
            tcm = TCM(d=2, width=32, seed=77)
            tcm.ingest(piece)
            path = tmp_path / f"shard{i}.npz"
            save_tcm(tcm, path)
            paths.append(path)

        # Query node: load, merge, query.
        merged = load_tcm(paths[0])
        for path in paths[1:]:
            merged.merge_from(load_tcm(path))

        reference = TCM(d=2, width=32, seed=77)
        reference.ingest(stream)
        for x, y in list(stream.distinct_edges)[:60]:
            assert merged.edge_weight(x, y) == \
                pytest.approx(reference.edge_weight(x, y))

    def test_sharded_helper_equivalent(self, tmp_path):
        stream = ipflow_like(n_hosts=60, n_packets=1500, seed=12)
        helper = ShardedTCM(3, d=2, width=32, seed=77)
        merged = helper.summarize(shard(list(stream), 3, by="source"))
        reference = TCM(d=2, width=32, seed=77)
        reference.ingest(stream)
        for s1, s2 in zip(merged.sketches, reference.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix)


class TestSliceThenSummarize:
    def test_time_slice_matches_ring_bucket(self):
        """Summarizing a time_slice equals the ring's bucket for it."""
        edges = [StreamEdge(f"s{i % 4}", f"t{i % 3}", 1.0, float(i))
                 for i in range(60)]
        ring = SnapshotRing(20.0, 8, d=2, width=32, seed=5)
        for edge in edges:
            ring.observe(edge)

        sliced = TCM(d=2, width=32, seed=5)
        for edge in time_slice(edges, 20.0, 40.0):
            sliced.update(edge.source, edge.target, edge.weight)

        bucket = dict(ring.buckets())[1]
        for s1, s2 in zip(sliced.sketches, bucket.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix)


class TestMonitorsSurviveSerialization:
    def test_monitoring_resumes_on_loaded_sketch(self, tmp_path):
        """A persisted summary can keep absorbing stream and serving the
        same monitors -- checkpoint/restore for long-running collectors."""
        from repro.core.heavy_hitters import HeavyEdgeMonitor

        stream = ipflow_like(n_hosts=50, n_packets=1000, seed=13)
        first_half = [stream[i] for i in range(500)]
        second_half = [stream[i] for i in range(500, 1000)]

        tcm = TCM(d=2, width=48, seed=9)
        monitor = HeavyEdgeMonitor(tcm, k=10)
        monitor.consume(first_half)
        save_tcm(tcm, tmp_path / "checkpoint.npz")

        restored = load_tcm(tmp_path / "checkpoint.npz")
        resumed = HeavyEdgeMonitor(restored, k=10)
        resumed.consume(second_half)

        continuous = HeavyEdgeMonitor(TCM(d=2, width=48, seed=9), k=10)
        continuous.consume(stream)
        # Same sketch state at the end.
        for s1, s2 in zip(restored.sketches, continuous.tcm.sketches):
            np.testing.assert_allclose(s1.matrix, s2.matrix)
        # The resumed monitor's top estimates agree for shared edges.
        resumed_top = dict(resumed.top())
        continuous_top = dict(continuous.top())
        for edge in set(resumed_top) & set(continuous_top):
            assert resumed_top[edge] == pytest.approx(continuous_top[edge])
