"""Tests for motif censuses and sketch comparison (graph evolution)."""

import pytest

from repro.analytics.motifs import (
    TriadCensus,
    count_reciprocated_pairs,
    count_wedges,
    triad_census,
)
from repro.analytics.views import StreamView
from repro.core.compare import (
    sketch_distance,
    top_changed_cells,
    top_changed_edges,
)
from repro.core.tcm import TCM
from repro.streams.generators import path_stream, star_stream
from repro.streams.model import GraphStream


class TestWedges:
    def test_out_star(self):
        view = StreamView(star_stream("hub", ["a", "b", "c"]))
        assert count_wedges(view, "out") == 3  # C(3,2)
        assert count_wedges(view, "in") == 0

    def test_in_star(self):
        stream = GraphStream(directed=True)
        for leaf in ("a", "b", "c"):
            stream.add(leaf, "sink", 1.0)
        view = StreamView(stream)
        assert count_wedges(view, "in") == 3
        assert count_wedges(view, "out") == 0

    def test_kind_validation(self):
        view = StreamView(path_stream(["a", "b"]))
        with pytest.raises(ValueError):
            count_wedges(view, "diagonal")

    def test_self_loops_ignored(self):
        stream = GraphStream(directed=True)
        stream.add("a", "a", 1.0)
        stream.add("a", "b", 1.0)
        assert count_wedges(StreamView(stream), "out") == 0


class TestReciprocated:
    def test_counts_pairs_once(self):
        stream = GraphStream(directed=True)
        stream.add("a", "b", 1.0)
        stream.add("b", "a", 1.0)
        stream.add("a", "c", 1.0)
        assert count_reciprocated_pairs(StreamView(stream)) == 1


class TestTriadCensus:
    def test_pure_path(self):
        census = triad_census(StreamView(path_stream(["a", "b", "c"])))
        assert census.paths == 1
        assert census.feed_forward == 0
        assert census.cycles == 0
        assert census.closure_ratio == 0.0

    def test_feed_forward(self):
        stream = GraphStream(directed=True)
        stream.add("a", "b", 1.0)
        stream.add("b", "c", 1.0)
        stream.add("a", "c", 1.0)
        census = triad_census(StreamView(stream))
        assert census.feed_forward == 1
        assert census.cycles == 0

    def test_cycle_counted_once(self):
        stream = GraphStream(directed=True)
        stream.add("a", "b", 1.0)
        stream.add("b", "c", 1.0)
        stream.add("c", "a", 1.0)
        census = triad_census(StreamView(stream))
        assert census.cycles == 1
        assert census.paths == 0

    def test_closure_ratio(self):
        census = TriadCensus(wedges_out=0, wedges_in=0, paths=2,
                             feed_forward=1, cycles=1)
        assert census.closure_ratio == pytest.approx(0.5)

    def test_runs_on_sketch_views(self, paper_stream):
        tcm = TCM.from_stream(paper_stream, d=1, width=32, seed=1)
        census = triad_census(tcm.views()[0])
        assert census.cycles >= 0
        assert census.wedges_out > 0


def build_pair(edits, d=2, width=32, seed=3, keep_labels=False):
    """Two same-seed TCMs: before, and after applying `edits` on top."""
    before = TCM(d=d, width=width, seed=seed, keep_labels=keep_labels)
    after = TCM(d=d, width=width, seed=seed, keep_labels=keep_labels)
    base = [("a", "b", 5.0), ("b", "c", 2.0), ("c", "d", 1.0)]
    for x, y, w in base:
        before.update(x, y, w)
        after.update(x, y, w)
    for x, y, w in edits:
        after.update(x, y, w)
    return before, after


class TestSketchDistance:
    def test_identical_is_zero(self):
        before, after = build_pair([])
        assert sketch_distance(before, after) == 0.0

    def test_l1_equals_total_change(self):
        before, after = build_pair([("a", "b", 3.0), ("x", "y", 2.0)])
        assert sketch_distance(before, after, "l1") == pytest.approx(5.0)

    def test_linf_is_largest_single_change(self):
        before, after = build_pair([("a", "b", 3.0), ("x", "y", 2.0)])
        assert sketch_distance(before, after, "linf") == pytest.approx(3.0)

    def test_order_validation(self):
        before, after = build_pair([])
        with pytest.raises(ValueError):
            sketch_distance(before, after, "l7")

    def test_incompatible_rejected(self):
        a = TCM(d=2, width=16, seed=1)
        b = TCM(d=2, width=16, seed=2)
        with pytest.raises(ValueError):
            sketch_distance(a, b)

    def test_d_mismatch_rejected(self):
        a = TCM(d=1, width=16, seed=1)
        b = TCM(d=2, width=16, seed=1)
        with pytest.raises(ValueError):
            sketch_distance(a, b)


class TestTopChangedCells:
    def test_finds_the_change(self):
        before, after = build_pair([("a", "b", 7.0)])
        cells = top_changed_cells(before, after, k=3)
        assert len(cells) == 1
        (cell, delta), = cells
        assert delta == pytest.approx(7.0)

    def test_signed_deltas(self):
        before, after = build_pair([])
        after.remove("a", "b", 4.0)
        cells = top_changed_cells(before, after, k=1)
        assert cells[0][1] == pytest.approx(-4.0)

    def test_no_change_empty(self):
        before, after = build_pair([])
        assert top_changed_cells(before, after) == []

    def test_k_validation(self):
        before, after = build_pair([])
        with pytest.raises(ValueError):
            top_changed_cells(before, after, k=0)


class TestTopChangedEdges:
    def test_requires_extended(self):
        before, after = build_pair([("a", "b", 1.0)])
        with pytest.raises(ValueError, match="extended"):
            top_changed_edges(before, after)

    def test_decodes_the_changed_edge(self):
        before, after = build_pair([("a", "b", 7.0)], keep_labels=True,
                                   width=64)
        edges = top_changed_edges(before, after, k=5)
        assert edges[0][0] == ("a", "b")
        assert edges[0][1] == pytest.approx(7.0)

    def test_ranks_by_magnitude(self):
        before, after = build_pair([("a", "b", 7.0), ("c", "d", 2.0)],
                                   keep_labels=True, width=64)
        edges = top_changed_edges(before, after, k=5)
        assert [pair for pair, _ in edges[:2]] == [("a", "b"), ("c", "d")]

    def test_evolution_between_ring_snapshots(self):
        """The §7 use-case: diff two temporal snapshots."""
        from repro.core.snapshots import SnapshotRing
        from repro.streams.model import StreamEdge

        ring = SnapshotRing(10.0, 8, d=2, width=64, seed=5)
        for t in range(10):
            ring.observe(StreamEdge("steady", "flow", 1.0, float(t)))
        for t in range(10, 20):
            ring.observe(StreamEdge("steady", "flow", 1.0, float(t)))
            ring.observe(StreamEdge("burst", "victim", 50.0, float(t)))
        buckets = dict(ring.buckets())
        delta = sketch_distance(buckets[0], buckets[1], "l1")
        assert delta == pytest.approx(500.0)
