"""Tests for the exact adjacency-list stores (Appendix C.4 substrate)."""

import pytest

from repro.baselines.adjacency import AdjacencyListGraph, HashedAdjacencyGraph


@pytest.mark.parametrize("cls", [AdjacencyListGraph, HashedAdjacencyGraph])
class TestAdjacencyStores:
    def test_single_edge(self, cls):
        graph = cls()
        graph.update("a", "b", 2.0)
        assert graph.edge_weight("a", "b") == 2.0

    def test_accumulation(self, cls):
        graph = cls()
        graph.update("a", "b", 2.0)
        graph.update("a", "b", 3.0)
        assert graph.edge_weight("a", "b") == 5.0

    def test_missing_edge(self, cls):
        graph = cls()
        graph.update("a", "b", 1.0)
        assert graph.edge_weight("a", "z") == 0.0
        assert graph.edge_weight("z", "a") == 0.0

    def test_directional(self, cls):
        graph = cls(directed=True)
        graph.update("a", "b", 1.0)
        assert graph.edge_weight("b", "a") == 0.0

    def test_undirected(self, cls):
        graph = cls(directed=False)
        graph.update("a", "b", 2.0)
        assert graph.edge_weight("b", "a") == 2.0

    def test_ingest_matches_stream(self, cls, small_directed):
        graph = cls()
        assert graph.ingest(small_directed) == 5
        for x, y in small_directed.distinct_edges:
            assert graph.edge_weight(x, y) == small_directed.edge_weight(x, y)

    def test_len_counts_nodes(self, cls, small_directed):
        graph = cls()
        graph.ingest(small_directed)
        assert len(graph) == 3  # a, b, c have outgoing edges


class TestEquivalence:
    def test_both_stores_agree(self, ipflow_stream):
        scan = AdjacencyListGraph()
        hashed = HashedAdjacencyGraph()
        scan.ingest(ipflow_stream)
        hashed.ingest(ipflow_stream)
        for edge in list(ipflow_stream.distinct_edges)[:100]:
            assert scan.edge_weight(*edge) == hashed.edge_weight(*edge)
