"""Tests for the bound calculators and stream statistics."""

import math

import pytest

from repro.metrics.bounds import (
    expected_edge_error,
    expected_flow_error,
    guarantee_for_parameters,
    parameters_for_guarantee,
    space_in_cells,
)
from repro.streams.generators import ipflow_like
from repro.streams.model import GraphStream
from repro.streams.stats import (
    degree_distribution,
    gini,
    summarize,
    weight_histogram,
)


class TestBoundCalculators:
    def test_round_trip(self):
        d, w = parameters_for_guarantee(0.01, 0.05)
        epsilon, delta = guarantee_for_parameters(d, w)
        assert epsilon <= 0.01 + 1e-9
        assert delta <= 0.05 + 1e-9

    def test_known_values(self):
        assert parameters_for_guarantee(0.01, 0.05) == (3, 272)
        d, w = parameters_for_guarantee(0.5, 0.5)
        assert d == 1
        assert w == math.ceil(math.e / 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            parameters_for_guarantee(0.0, 0.5)
        with pytest.raises(ValueError):
            parameters_for_guarantee(0.5, 1.0)
        with pytest.raises(ValueError):
            guarantee_for_parameters(0, 1)

    def test_expected_errors(self):
        assert expected_edge_error(10000, 100) == pytest.approx(1.0)
        assert expected_flow_error(10000, 100) == pytest.approx(100.0)
        assert expected_flow_error(10000, 100) == \
            100 * expected_edge_error(10000, 100)

    def test_expected_error_validation(self):
        with pytest.raises(ValueError):
            expected_edge_error(100, 0)
        with pytest.raises(ValueError):
            expected_flow_error(-1, 10)

    def test_space(self):
        d, w = parameters_for_guarantee(0.1, 0.1)
        assert space_in_cells(0.1, 0.1) == d * w * w

    def test_empirical_expected_error_matches(self):
        """The n/w^2 prediction matches measured mean over-count."""
        from repro.core.tcm import TCM

        stream = ipflow_like(n_hosts=100, n_packets=4000, seed=4)
        width = 40
        tcm = TCM(d=1, width=width, seed=11)
        tcm.ingest(stream)
        edges = sorted(stream.distinct_edges, key=repr)
        mean_overcount = sum(
            tcm.edge_weight(x, y) - stream.edge_weight(x, y)
            for x, y in edges) / len(edges)
        predicted = expected_edge_error(stream.total_weight(), width)
        assert 0.3 * predicted < mean_overcount < 3.0 * predicted


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([5.0] * 10) == pytest.approx(0.0)

    def test_concentrated_near_one(self):
        assert gini([0.0] * 99 + [100.0]) > 0.9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([1.0, -1.0])

    def test_all_zero(self):
        assert gini([0.0, 0.0]) == 0.0


class TestSummarize:
    def test_fields(self, ipflow_stream):
        report = summarize(ipflow_stream)
        assert report.elements == len(ipflow_stream)
        assert report.distinct_edges == len(ipflow_stream.distinct_edges)
        assert report.nodes == len(ipflow_stream.nodes)
        assert report.min_edge_weight <= report.mean_edge_weight
        assert report.mean_edge_weight <= report.max_edge_weight
        assert 0 <= report.weight_gini < 1
        assert 0 <= report.degree_gini < 1

    def test_weight_range_orders(self, ipflow_stream):
        report = summarize(ipflow_stream)
        assert report.weight_range_orders > 1.0  # heavy-tailed by design

    def test_undirected(self, dblp_stream):
        report = summarize(dblp_stream)
        assert report.nodes == len(dblp_stream.nodes)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(GraphStream())


class TestHistogramsAndDegrees:
    def test_weight_histogram(self, ipflow_stream):
        histogram = weight_histogram(ipflow_stream, buckets=5)
        assert len(histogram) == 5
        minima = [low for low, _, _ in histogram]
        assert minima == sorted(minima)
        assert sum(count for _, _, count in histogram) == \
            len(ipflow_stream.distinct_edges)

    def test_histogram_validation(self, ipflow_stream):
        with pytest.raises(ValueError):
            weight_histogram(ipflow_stream, buckets=0)

    def test_histogram_empty_stream(self):
        assert weight_histogram(GraphStream()) == []

    def test_degree_distribution(self):
        stream = GraphStream(directed=True)
        stream.add("hub", "a", 1.0)
        stream.add("hub", "b", 1.0)
        stream.add("hub", "c", 1.0)
        distribution = degree_distribution(stream)
        assert distribution[3] == 1  # the hub
        assert distribution[1] == 3  # the leaves
