"""Legacy setup shim so `pip install -e . --no-use-pep517` works offline
(the sandbox has setuptools but no `wheel`, which PEP 660 editables need).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
