"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (see the
per-experiment index in DESIGN.md) and measures the dominant operation
with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the reproduced tables.  Scale defaults to ``tiny`` so the
whole suite finishes in minutes; set ``REPRO_BENCH_SCALE=small`` for the
higher-fidelity numbers recorded in EXPERIMENTS.md.
"""

import os

import pytest

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture(scope="session")
def scale() -> str:
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Benchmark a whole experiment driver with a single measured round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
