"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (see the
per-experiment index in DESIGN.md) and measures the dominant operation
with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the reproduced tables.  Scale defaults to ``tiny`` so the
whole suite finishes in minutes; set ``REPRO_BENCH_SCALE=small`` for the
higher-fidelity numbers recorded in EXPERIMENTS.md.

Set ``REPRO_BENCH_OBS=1`` (or a path) to run the whole session with the
observability layer enabled and write a JSON metrics snapshot alongside
the benchmark results when the session ends (default path
``bench_obs_snapshot.json``; see docs/OBSERVABILITY.md).
"""

import os

import pytest

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")
BENCH_OBS = os.environ.get("REPRO_BENCH_OBS", "")


@pytest.fixture(scope="session")
def scale() -> str:
    return BENCH_SCALE


@pytest.fixture(scope="session", autouse=True)
def obs_session_snapshot():
    """Optionally instrument the whole bench session (REPRO_BENCH_OBS)."""
    if not BENCH_OBS:
        yield
        return
    from repro import obs

    obs.enable()
    try:
        yield
        path = (BENCH_OBS if BENCH_OBS not in ("1", "true", "yes")
                else "bench_obs_snapshot.json")
        with open(path, "w") as fh:
            fh.write(obs.json_snapshot(indent=2))
        print(f"\n[obs] wrote benchmark metrics snapshot to {path}")
    finally:
        obs.disable()


def run_once(benchmark, fn):
    """Benchmark a whole experiment driver with a single measured round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
