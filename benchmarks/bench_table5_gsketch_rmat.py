"""Table 5 (Appendix C.2): the gSketch comparison on GTGraph (R-MAT).

Expected shape (paper Table 5): same ordering as Table 2; the benefit of
partitioning is significant because the Zipfian multiplicities give a
wide weight range.
"""

from benchmarks.conftest import run_once
from repro.experiments.exp1_edge import gsketch_comparison
from repro.experiments.report import print_table

D_VALUES = (1, 3, 5, 7, 9)


def test_table5(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: gsketch_comparison("gtgraph", scale,
                                               d_values=D_VALUES))
    print_table(f"Table 5 -- edge-query ARE, GTGraph ({scale})",
                ["method"] + [f"d={d}" for d in D_VALUES], rows)
    by_method = {row[0]: row[1:] for row in rows}
    assert by_method["gSketch"][0] < by_method["CountMin"][0]
    for tcm, cm in zip(by_method["TCM"], by_method["CountMin"]):
        assert tcm <= 2.5 * cm + 0.5
