"""Ablation: community detection on the sketch vs on the exact graph.

Appendix B.2 frames TCM as a substrate for community detection.  This
bench runs label propagation on a block-structured co-authorship stream
and on its sketch: the sketch partition, pulled back to labels through
bucket membership, must land most author pairs on the same side as the
exact partition.
"""

from benchmarks.conftest import run_once
from repro.analytics.communities import label_propagation, modularity
from repro.analytics.views import StreamView
from repro.core.tcm import TCM
from repro.experiments.report import print_table
from repro.streams.generators import dblp_like


def _pair_agreement(exact_of, sketch_of, nodes, pairs=2000, seed=3):
    import random
    rng = random.Random(seed)
    agree = 0
    for _ in range(pairs):
        a, b = rng.sample(nodes, 2)
        same_exact = exact_of[a] == exact_of[b]
        same_sketch = sketch_of[a] == sketch_of[b]
        agree += same_exact == same_sketch
    return agree / pairs


def test_sketch_community_agreement(benchmark):
    def run():
        stream = dblp_like(400, 1500, communities=4, crossover=0.05,
                           seed=11)
        view = StreamView(stream)
        exact = label_propagation(view, seed=1)
        exact_of = {node: i for i, community in enumerate(exact)
                    for node in community}

        # Community structure survives only mild node compression: below
        # ~2 authors per bucket the blocks blur into one giant community
        # (probed empirically; at width 96 for these 400 authors the
        # agreement collapses to chance).  Width 192 = 2 authors/bucket.
        tcm = TCM.from_stream(stream, d=1, width=192, seed=5)
        sketch_view = tcm.views()[0]
        sketch_partition = label_propagation(sketch_view, seed=1)
        bucket_of = {bucket: i
                     for i, community in enumerate(sketch_partition)
                     for bucket in community}
        sketch_of = {node: bucket_of[sketch_view.node_of(node)]
                     for node in stream.nodes}

        nodes = sorted(stream.nodes)
        sketch_blocks = len([c for c in sketch_partition if len(c) > 3])
        return (len([c for c in exact if len(c) > 5]), sketch_blocks,
                modularity(view, exact),
                _pair_agreement(exact_of, sketch_of, nodes))

    n_communities, sketch_blocks, score, agreement = run_once(benchmark, run)
    print_table("Ablation -- community detection, exact vs sketch (w=192)",
                ["exact communities", "sketch communities",
                 "exact modularity", "same-side pair agreement"],
                [(n_communities, sketch_blocks, score, agreement)])
    assert n_communities == 4
    assert sketch_blocks == 4
    assert score > 0.5
    assert agreement > 0.65
