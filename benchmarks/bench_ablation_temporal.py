"""Ablation: temporal summaries (paper Section 7 roadmap).

Compares the three ways this library scopes a summary in time on a
burst-detection task: hard sliding window, snapshot ring range queries,
and exponential decay.  All three must localize/forget the burst; their
costs differ (the window buffers live elements, the ring duplicates
sketches, decay keeps exactly one sketch).
"""

from benchmarks.conftest import run_once
from repro.core.decay import TimeDecayedTCM
from repro.core.snapshots import SnapshotRing
from repro.core.tcm import TCM
from repro.experiments.report import print_table
from repro.streams.model import StreamEdge
from repro.streams.window import SlidingWindow


def _trace(n: int = 4000, burst_at: int = 1000, burst_len: int = 200):
    edges = [StreamEdge(f"u{i % 37}", f"v{i % 29}", 10.0, float(i))
             for i in range(n)]
    for t in range(burst_at, burst_at + burst_len):
        edges[t] = StreamEdge("attacker", "victim", 1000.0, float(t))
    return edges


def test_temporal_summaries_forget_the_burst(benchmark):
    def run():
        trace = _trace()
        window = SlidingWindow(TCM(d=3, width=48, seed=1), horizon=500.0)
        ring = SnapshotRing(500.0, 16, d=3, width=48, seed=1)
        decayed = TimeDecayedTCM(0.99, d=3, width=48, seed=1)
        for edge in trace:
            window.observe(edge)
            ring.observe(edge)
            decayed.observe(edge.source, edge.target, edge.weight,
                            edge.timestamp)
        return {
            "sliding window": window.summary.edge_weight("attacker", "victim"),
            "snapshot ring (last bucket)": dict(
                ring.edge_weight_series("attacker", "victim"))[7],
            "snapshot ring (burst bucket)": dict(
                ring.edge_weight_series("attacker", "victim"))[2],
            "decayed": decayed.edge_weight("attacker", "victim"),
        }

    estimates = run_once(benchmark, run)
    print_table("Ablation -- temporal summaries vs an old burst",
                ["mechanism", "attacker->victim estimate"],
                list(estimates.items()))
    # The burst (t in [1000,1200)) is ancient by t=4000:
    assert estimates["sliding window"] == 0.0
    assert estimates["snapshot ring (last bucket)"] == 0.0
    assert estimates["decayed"] < 1.0
    # ...but the ring still holds it where it happened:
    assert estimates["snapshot ring (burst bucket)"] >= 200 * 1000.0
