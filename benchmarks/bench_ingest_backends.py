"""Throughput: ingest paths across backends.

Measures elements/second for (a) dense scalar updates, (b) dense
vectorized ingest, (c) sparse scalar updates, (d) sparse bulk ingest,
(e) conservative updates, (f) min-aggregation scalar vs chunked, (g) the
batched conservative path and (h) the two-worker parallel build -- the
cost spectrum a deployment picks from.  The vectorized dense path must
dominate by a wide margin (it is what makes a Python TCM viable at the
paper's stream sizes).
"""

import time

from benchmarks.conftest import run_once
from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.distributed.parallel import parallel_ingest
from repro.experiments import datasets
from repro.experiments.report import print_table


def test_ingest_backends(benchmark, scale):
    def run():
        stream = datasets.ipflow(scale)
        elements = [(e.source, e.target, e.weight) for e in stream]
        rates = {}

        def timed(name, build):
            start = time.perf_counter()
            build()
            rates[name] = len(elements) / (time.perf_counter() - start)

        def scalar_dense():
            tcm = TCM(d=3, width=64, seed=1)
            for s, t, w in elements:
                tcm.update(s, t, w)

        def vectorized_dense():
            TCM(d=3, width=64, seed=1).ingest(stream)

        def scalar_sparse():
            tcm = TCM(d=3, width=64, seed=1, sparse=True)
            for s, t, w in elements:
                tcm.update(s, t, w)

        def bulk_sparse():
            TCM(d=3, width=64, seed=1, sparse=True).ingest(stream)

        def conservative():
            tcm = TCM(d=3, width=64, seed=1)
            for s, t, w in elements:
                tcm.update_conservative(s, t, w)

        def scalar_min():
            tcm = TCM(d=3, width=64, seed=1, aggregation=Aggregation.MIN)
            for s, t, w in elements:
                tcm.update(s, t, w)

        def chunked_min():
            TCM(d=3, width=64, seed=1,
                aggregation=Aggregation.MIN).ingest(stream, chunk_size=4096)

        def batched_conservative():
            TCM(d=3, width=64, seed=1).ingest_conservative(stream,
                                                           chunk_size=4096)

        def parallel_dense():
            parallel_ingest(stream, workers=2, chunk_size=4096,
                            d=3, width=64, seed=1)

        timed("dense scalar", scalar_dense)
        timed("dense vectorized", vectorized_dense)
        timed("sparse scalar", scalar_sparse)
        timed("sparse bulk", bulk_sparse)
        timed("conservative", conservative)
        timed("min scalar", scalar_min)
        timed("min chunked", chunked_min)
        timed("conservative batched", batched_conservative)
        timed("dense parallel x2", parallel_dense)
        return rates

    rates = run_once(benchmark, run)
    print_table("Throughput -- ingest paths (elements/second)",
                ["path", "rate"],
                sorted(rates.items(), key=lambda kv: -kv[1]))
    # The margin widens with stream length (fixed numpy overheads
    # amortize); 2x is already decisive at the tiny CI scale and it is
    # >5x at 'small'.
    assert rates["dense vectorized"] > 2 * rates["dense scalar"]
    assert rates["conservative"] < rates["dense scalar"] * 1.5
    # The previously loop-bound paths now have batch kernels too.
    assert rates["min chunked"] > rates["min scalar"]
    assert rates["conservative batched"] > rates["conservative"]
