"""Ablation: conservative update vs standard update.

An extension beyond the paper: Estan & Varghese's conservative update
applied to TCM.  On congested sketches it should cut the edge-query ARE
substantially while preserving the no-undercount guarantee (at the cost
of losing linearity: no deletions, no merging).
"""

from benchmarks.conftest import run_once
from repro.core.tcm import TCM
from repro.experiments import datasets
from repro.experiments.common import (
    cells_for_ratio,
    edge_query_are,
    edge_workload,
)
from repro.experiments.report import print_table


def test_conservative_update_accuracy(benchmark, scale):
    def run():
        stream = datasets.ipflow(scale)
        cells = cells_for_ratio(stream, datasets.FIXED_RATIO["ipflow"])
        workload = edge_workload(stream, limit=2000)
        rows = []
        for d in (2, 4):
            standard = TCM.from_space(cells, d, seed=7,
                                      directed=stream.directed)
            standard.ingest(stream)
            conservative = TCM.from_space(cells, d, seed=7,
                                          directed=stream.directed)
            conservative.ingest_conservative(stream)
            rows.append((d,
                         edge_query_are(stream, standard.edge_weight,
                                        workload),
                         edge_query_are(stream, conservative.edge_weight,
                                        workload)))
        return rows

    rows = run_once(benchmark, run)
    print_table(f"Ablation -- standard vs conservative update (ipflow, {scale})",
                ["d", "standard ARE", "conservative ARE"], rows)
    for d, standard, conservative in rows:
        assert conservative <= standard + 1e-9


def test_sparse_backend_cost(benchmark, scale):
    """Sparse vs dense backend: same estimates, occupancy-scaled memory."""
    def run():
        stream = datasets.ipflow(scale)
        dense = TCM(d=3, width=256, seed=7, directed=True)
        dense.ingest(stream)
        sparse = TCM(d=3, width=256, seed=7, directed=True, sparse=True)
        sparse.ingest(stream)
        workload = edge_workload(stream, limit=1000)
        return (sparse.memory_bytes(), dense.memory_bytes(),
                edge_query_are(stream, dense.edge_weight, workload),
                edge_query_are(stream, sparse.edge_weight, workload))

    sparse_bytes, dense_bytes, are_dense, are_sparse = run_once(benchmark, run)
    print_table("Ablation -- sparse backend at a loose ratio (ipflow)",
                ["sparse bytes", "dense bytes", "dense ARE", "sparse ARE"],
                [(sparse_bytes, dense_bytes, are_dense, are_sparse)])
    assert are_sparse == are_dense
    assert sparse_bytes < dense_bytes / 2  # the memory win that motivates it
