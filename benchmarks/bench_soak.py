"""Soak regression gate: sustained mixed workload with full telemetry on.

The other benchmarks measure one path at a time; this one is the
standing answer to "does the whole system stay healthy while a stream
actually runs?" (ROADMAP item 5).  It drives a minutes-long mixed
workload -- chunked TCM ingest, a rotating window, a time-decayed
summary, batched queries -- over a timestamped R-MAT stream whose
quadrant parameters *shift mid-run* (the gSketch/SBG-Sketch degradation
scenario), with the full observability stack attached: shadow-truth
accuracy tracking, Page-Hinkley drift detection, RSS/GC sampling and the
flight recorder.

The committed ``BENCH_soak.json`` record asserts, as hard gate flags:

- ``throughput_ok``     -- sustained arrivals/sec above a floor,
- ``p99_ok``            -- query p99 (from the obs histograms) below a
  ceiling,
- ``rss_ok``            -- post-warm-up RSS slope below a leak ceiling,
- ``accuracy_ok``       -- observed mean ARE on the sampled keys bounded
  through both phases,
- ``drift_fired``       -- the detector raised at least one event after
  the parameter shift,
- ``drift_silent_before`` -- and none during the stationary phase,
- ``overhead_ok``       -- the telemetry stack costs <= the documented
  5% budget on this very loop (measured disabled-vs-enabled on a
  calibration slice).

Regenerate with ``make bench-soak`` (full scale) or run the pytest smoke
(tiny scale) via ``make bench``.  CI validates the committed record's
schema and gate flags on every push (``benchmarks/validate_bench_records.py``).
"""

from __future__ import annotations

import argparse
import itertools
import json
import platform
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.decay import TimeDecayedTCM
from repro.core.tcm import TCM
from repro.hashing.labels import label_keys
from repro.streams.generators import rmat_edges_drifting
from repro.streams.rotating import RotatingWindowTCM

#: Schema of the emitted record: key -> type.  CI validates against this.
RECORD_SCHEMA = {
    "benchmark": str,
    "config": dict,
    "throughput": dict,
    "latency": dict,
    "memory": dict,
    "accuracy": dict,
    "drift": dict,
    "overhead": dict,
    "gates": dict,
}

#: Gate flags that must all be true in a committed record.
GATE_FLAGS = ("throughput_ok", "p99_ok", "rss_ok", "accuracy_ok",
              "drift_fired", "drift_silent_before", "overhead_ok")

#: Default thresholds for the full-scale run.  Floors/ceilings are set
#: with ~3x headroom against the measured values on a dev laptop so the
#: gate catches step regressions, not machine-to-machine variance.
DEFAULT_THRESHOLDS = dict(
    throughput_floor=100_000.0,     # arrivals/sec, telemetry on
    p99_ceiling_seconds=0.05,       # batched query p99
    rss_slope_limit=2 ** 21,        # bytes/sec of run time (2 MiB/s)
    are_bound=1.0,                  # mean ARE over sampled keys
    overhead_budget_pct=5.0,        # telemetry on the soak hot loop
    overhead_headroom_pct=5.0,      # runner-noise allowance on top
)


def _chunks(stream, size: int):
    iterator = iter(stream)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


def _columns(chunk):
    sources = [e.source for e in chunk]
    targets = [e.target for e in chunk]
    # Pre-hashed key columns: every consumer (sketch ingest, shadow
    # truth) goes through label_keys, whose ndarray fast path makes the
    # conversion effectively free past this point.
    skeys = label_keys(sources)
    tkeys = label_keys(targets)
    weights = np.fromiter((e.weight for e in chunk), dtype=np.float64,
                          count=len(chunk))
    timestamps = np.fromiter((e.timestamp for e in chunk),
                             dtype=np.float64, count=len(chunk))
    return sources, targets, skeys, tkeys, weights, timestamps


def _materialize(config: Dict, n_edges: int) -> List:
    """Pre-generate a slice of the stream as (chunk, *columns) tuples.

    Used by the overhead calibration: generating the synthetic stream
    costs more than processing it, so timing generation would both
    dilute the overhead percentage and drown the delta in generator
    noise.  Materializing once and replaying the identical chunks for
    every mode/repeat isolates the processing loop.
    """
    stream = rmat_edges_drifting(
        config["n_nodes"], n_edges, seed=config["seed"],
        drift_start=config["drift_start"], drift_span=config["drift_span"],
        rate=config["rate"], jitter=config["jitter"],
        block=min(config["chunk_size"], 65536))
    return [(chunk, *_columns(chunk))
            for chunk in _chunks(stream, config["chunk_size"])]


def _run_workload(config: Dict, *, telemetry: bool,
                  prepared: Optional[List] = None) -> Dict:
    """One pass of the mixed soak loop; the timed core of the benchmark.

    With ``telemetry=False`` the identical workload runs with
    observability disabled and no accuracy/runtime instruments attached
    -- the baseline the overhead gate compares against.  With
    ``prepared`` (from :func:`_materialize`) the loop replays
    pre-generated chunks and the timer covers pure processing.
    """
    n_edges = config["n_edges"]
    chunk_size = config["chunk_size"]
    drift_start = config["drift_start"]
    horizon = config["horizon"]

    # The main TCM is sized for the gated accuracy bound; the window and
    # decayed summaries run narrower (their accuracy is reported, not
    # gated) so the rotating buckets don't dominate RSS.
    tcm = TCM(d=config["d"], width=config["width"], seed=config["seed"])
    window = RotatingWindowTCM(
        horizon, buckets=config["buckets"], d=config["d"],
        width=config.get("window_width", config["width"]),
        seed=config["seed"])
    decayed = TimeDecayedTCM(config["decay"], d=config["d"],
                             width=config.get("window_width",
                                              config["width"]),
                             seed=config["seed"])

    tracker = window_tracker = sampler = None
    if telemetry:
        obs.enable()
        obs.FLIGHT.clear()
        # error_delta absorbs the fill-phase ARE ramp (collisions accrue
        # as the sketch populates, ~0.03 ARE/tick at this scale) so the
        # stationary phase stays silent while the post-shift slope break
        # still accumulates an excursion past error_lambda.
        tracker = obs.AccuracyTracker(
            tcm, sample_size=config["sample_size"], seed=config["seed"],
            name="soak-tcm", flight=obs.FLIGHT,
            detector=obs.DriftDetector(error_delta=0.05, error_lambda=0.4))
        window_tracker = obs.AccuracyTracker(
            window, sample_size=config["sample_size"] // 2,
            seed=config["seed"], name="soak-window", flight=obs.FLIGHT)
        sampler = obs.RuntimeSampler()
        obs.FLIGHT.mark("soak start", edges=n_edges)
    else:
        obs.disable()

    if prepared is None:
        stream = rmat_edges_drifting(
            config["n_nodes"], n_edges, seed=config["seed"],
            drift_start=drift_start, drift_span=config["drift_span"],
            rate=config["rate"], jitter=config["jitter"],
            block=min(chunk_size, 65536))
        chunk_iter = ((chunk, *_columns(chunk))
                      for chunk in _chunks(stream, chunk_size))
    else:
        n_edges = sum(len(item[0]) for item in prepared)
        chunk_iter = iter(prepared)

    #: (tick index, elements seen) at each accuracy tick, to split drift
    #: events into stationary vs post-shift.
    are_series: List[float] = []
    window_are_series: List[float] = []
    stationary_events = 0
    drift_events = 0
    marked = False
    seen = 0
    chunk_index = 0
    # Telemetry cadences: a tick per ~130k elements and a full-sketch
    # health scan per ~500k still give dozens of accuracy points over a
    # soak while keeping the telemetry bill inside the 5% budget.
    tick_every = config.get("tick_every", 3)
    health_every = config.get("health_every", 8)
    start = time.perf_counter()
    for chunk, sources, targets, skeys, tkeys, weights, ts_col in chunk_iter:
        timestamps = ts_col
        tcm.ingest_columns(skeys, tkeys, weights)
        window.observe_many(chunk)
        # A light decayed-summary trickle (its ingest is per-element).
        for edge in chunk[::config["decay_stride"]]:
            decayed.observe(edge.source, edge.target, edge.weight,
                            timestamp=edge.timestamp)
        # The query side of the mix: batched edge probes over a rolling
        # slice of the chunk plus node flows on its hottest endpoints.
        probe = min(len(chunk), 256)
        pairs = list(zip(sources[:probe], targets[:probe]))
        tcm.edge_weights(pairs)
        window.edge_weights(pairs[: probe // 4])
        tcm.out_flows(sources[:64])

        seen += len(chunk)
        if telemetry:
            # Both trackers share a seed, so one hash pass feeds both.
            hashed = tracker.comparator.hash_columns(skeys, tkeys)
            tracker.observe_columns(sources, targets, weights,
                                    hashed=hashed)
            window_tracker.observe_columns(sources, targets, weights,
                                           timestamps=timestamps,
                                           hashed=hashed)
            in_drift = seen > n_edges * drift_start
            if not marked and in_drift:
                obs.FLIGHT.mark("drift phase reached", elements=seen)
                marked = True
            if chunk_index % tick_every == 0:
                report = tracker.tick(timestamp=float(timestamps[-1]))
                window_report = window_tracker.tick(
                    timestamp=float(timestamps[-1]))
                are_series.append(report.mean_are)
                window_are_series.append(window_report.mean_are)
                # The gate classifies events from the gated (main)
                # summary only: the deliberately narrow window sketch
                # saturates, and its error signal reflects saturation,
                # not stream drift.  Its events still reach the flight
                # recorder and are reported informationally.
                fired = len(report.drift_events)
                if in_drift:
                    drift_events += fired
                else:
                    stationary_events += fired
                sampler.sample()
            # The full-sketch health scan is O(cells); run it on a
            # cadence, like a production health tick would.
            if chunk_index % health_every == 0:
                obs.FLIGHT.check_saturation(tcm, summary="soak-tcm")
                obs.FLIGHT.capture_spans()
        chunk_index += 1
    elapsed = time.perf_counter() - start

    result = {
        "elapsed": elapsed,
        "elements": seen,
        "elements_per_second": seen / elapsed if elapsed > 0 else 0.0,
    }
    if telemetry:
        obs.FLIGHT.mark("soak end", elements=seen)
        result.update(
            tcm=tcm, window=window,
            are_series=are_series,
            window_are_series=window_are_series,
            stationary_events=stationary_events,
            drift_events=drift_events,
            sampler=sampler,
            tracker=tracker, window_tracker=window_tracker,
            flight_counts=obs.FLIGHT.counts(),
        )
        obs.disable()
    return result


def _measure_overhead(config: Dict, slice_edges: int,
                      repeats: int = 3) -> Dict:
    """Best-of-``repeats`` CPU time of the soak loop, telemetry on vs off.

    Runs a shortened calibration slice of the *same* mixed loop so the
    measured percentage is the telemetry cost on exactly the workload
    the gate protects, not a synthetic micro-loop.  The chunks are
    materialized once and replayed per mode (generation would otherwise
    drown the delta), modes interleave so machine drift hits both, and
    ``time.process_time`` + minimum-of-repeats keeps scheduler noise out
    of the estimate.  One untimed warm-up run per mode precedes the
    measurement.
    """
    calibration = {**config, "n_edges": slice_edges}
    prepared = _materialize(calibration, slice_edges)
    for mode in ("disabled", "enabled"):
        _run_workload(calibration, telemetry=(mode == "enabled"),
                      prepared=prepared)
    best = {"disabled": float("inf"), "enabled": float("inf")}
    for _ in range(repeats):
        for mode in ("disabled", "enabled"):
            started = time.process_time()
            _run_workload(calibration, telemetry=(mode == "enabled"),
                          prepared=prepared)
            best[mode] = min(best[mode], time.process_time() - started)
    overhead_pct = ((best["enabled"] - best["disabled"])
                    / best["disabled"] * 100.0)
    return {
        "calibration_edges": slice_edges,
        "repeats": repeats,
        "disabled_best_seconds": round(best["disabled"], 4),
        "enabled_best_seconds": round(best["enabled"], 4),
        "overhead_pct": round(overhead_pct, 2),
    }


def run(n_edges: int = 4_000_000, n_nodes: int = 1 << 11, d: int = 4,
        width: int = 1024, window_width: int = 256,
        seed: int = 7, rate: float = 1000.0,
        jitter: float = 0.5, chunk_size: int = 65536,
        drift_start: float = 0.5, drift_span: float = 0.1,
        buckets: int = 8, horizon: Optional[float] = None,
        decay: float = 0.01, decay_stride: int = 64,
        sample_size: int = 256, tick_every: int = 3,
        health_every: int = 8, warmup_skip: int = 4,
        overhead_slice: Optional[int] = None,
        thresholds: Optional[Dict] = None) -> Dict:
    """Run the soak and return the gate record.

    :param horizon: rotating-window length in stream time; defaults to a
        quarter of the stream's span (``n_edges / rate / 4``).
    :param warmup_skip: runtime samples ignored by the RSS slope fit
        (allocator warm-up is growth, not a leak).
    :param overhead_slice: elements for the overhead calibration runs;
        defaults to ``n_edges // 8`` (capped at 500k).
    """
    limits = {**DEFAULT_THRESHOLDS, **(thresholds or {})}
    if horizon is None:
        horizon = n_edges / rate / 4
    if overhead_slice is None:
        overhead_slice = min(max(n_edges // 8, 10_000), 500_000)
    config = dict(n_edges=n_edges, n_nodes=n_nodes, d=d, width=width,
                  window_width=window_width,
                  seed=seed, rate=rate, jitter=jitter,
                  chunk_size=chunk_size, drift_start=drift_start,
                  drift_span=drift_span, buckets=buckets, horizon=horizon,
                  decay=decay, decay_stride=decay_stride,
                  sample_size=sample_size, tick_every=tick_every,
                  health_every=health_every)

    # Calibrate overhead *before* the soak: the telemetry cost is a
    # property of the instrumentation, and measuring it on a fresh heap
    # keeps the multi-million-element soak's retained allocations (GC
    # scan cost scales with live objects) from inflating the delta.
    overhead = _measure_overhead(config, overhead_slice)
    obs.REGISTRY.reset()

    soak = _run_workload(config, telemetry=True)
    sampler: obs.RuntimeSampler = soak["sampler"]
    runtime = sampler.summary(warmup_skip=warmup_skip)
    quantiles = obs.latency_quantiles()
    query_q = quantiles.get("tcm_query_seconds{kind=edge_weight_batch}", {})
    p99 = query_q.get("p99", 0.0)
    are_series = soak["are_series"]
    window_are = soak["window_are_series"]
    peak_are = max(are_series) if are_series else 0.0
    final_are = are_series[-1] if are_series else 0.0

    gates = {
        "throughput_ok":
            soak["elements_per_second"] >= limits["throughput_floor"],
        "p99_ok": bool(query_q) and p99 <= limits["p99_ceiling_seconds"],
        "rss_ok": (runtime["rss_slope_bytes_per_sec"]
                   <= limits["rss_slope_limit"]),
        "accuracy_ok": peak_are <= limits["are_bound"],
        "drift_fired": soak["drift_events"] >= 1,
        "drift_silent_before": soak["stationary_events"] == 0,
        "overhead_ok": (overhead["overhead_pct"]
                        <= limits["overhead_budget_pct"]
                        + limits["overhead_headroom_pct"]),
    }

    return {
        "benchmark": "sustained mixed ingest/query/window/decay soak with "
                     "full telemetry (shadow truth, drift detection, "
                     "RSS sampling) over a parameter-drifting R-MAT "
                     "stream",
        "config": {**config, "warmup_skip": warmup_skip,
                   "python": platform.python_version(),
                   "machine": platform.machine()},
        "target": "all gate flags true; telemetry <= "
                  f"{limits['overhead_budget_pct']:g}% on this loop",
        "thresholds": limits,
        "throughput": {
            "elapsed_seconds": round(soak["elapsed"], 3),
            "elements": soak["elements"],
            "elements_per_second": round(soak["elements_per_second"]),
        },
        "latency": {
            "query_p50_seconds": query_q.get("p50", 0.0),
            "query_p99_seconds": p99,
            "histograms": {k: {q: v for q, v in row.items()}
                           for k, row in quantiles.items()},
        },
        "memory": runtime,
        "accuracy": {
            "ticks": len(are_series),
            "mean_are_final": round(final_are, 6),
            "mean_are_peak": round(peak_are, 6),
            "window_mean_are_final":
                round(window_are[-1], 6) if window_are else 0.0,
            "window_mean_are_peak":
                round(max(window_are), 6) if window_are else 0.0,
            "observed_epsilon_final": round(
                soak["tracker"].last_report.observed_epsilon, 8),
            "false_positive_rate_final":
                soak["tracker"].last_report.false_positive_rate,
        },
        "drift": {
            "stationary_events": soak["stationary_events"],
            "post_shift_events": soak["drift_events"],
            "window_tracker_events":
                len(soak["window_tracker"].detector.events),
            "flight_counts": soak["flight_counts"],
        },
        "overhead": overhead,
        "gates": gates,
    }


def validate_record(record: Dict) -> None:
    """Schema + gate check for the emitted JSON (used by CI)."""
    for key, expected in RECORD_SCHEMA.items():
        if key not in record:
            raise ValueError(f"BENCH_soak record misses {key!r}")
        if not isinstance(record[key], expected):
            raise ValueError(f"{key!r} should be {expected.__name__}, got "
                             f"{type(record[key]).__name__}")
    for flag in GATE_FLAGS:
        if record["gates"].get(flag) is not True:
            raise ValueError(
                f"gates[{flag!r}] must be true, got "
                f"{record['gates'].get(flag)!r}")
    throughput = record["throughput"]
    for key in ("elapsed_seconds", "elements", "elements_per_second"):
        value = throughput.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"throughput[{key!r}] should be a positive "
                             f"number, got {value!r}")
    overhead = record["overhead"].get("overhead_pct")
    if not isinstance(overhead, (int, float)):
        raise ValueError(f"overhead.overhead_pct should be a number, "
                         f"got {overhead!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="sustained mixed-workload soak with telemetry gates")
    parser.add_argument("--edges", type=int, default=4_000_000)
    parser.add_argument("--nodes", type=int, default=1 << 11)
    parser.add_argument("--d", type=int, default=4)
    parser.add_argument("--width", type=int, default=1024)
    parser.add_argument("--window-width", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rate", type=float, default=1000.0,
                        help="mean arrivals per stream-time unit")
    parser.add_argument("--chunk-size", type=int, default=65536)
    parser.add_argument("--drift-start", type=float, default=0.5,
                        help="fraction of the stream before the R-MAT "
                             "parameter shift begins")
    parser.add_argument("--sample-size", type=int, default=256,
                        help="shadow-truth sampled edge keys")
    parser.add_argument("--out", default=None,
                        help="write the JSON record here (default: stdout)")
    args = parser.parse_args(argv)

    record = run(n_edges=args.edges, n_nodes=args.nodes, d=args.d,
                 width=args.width, window_width=args.window_width,
                 seed=args.seed, rate=args.rate,
                 chunk_size=args.chunk_size, drift_start=args.drift_start,
                 sample_size=args.sample_size)
    validate_record(record)
    text = json.dumps(record, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        gates = record["gates"]
        print(f"wrote {args.out} "
              f"({record['throughput']['elements_per_second']:,} elem/s, "
              f"p99 {record['latency']['query_p99_seconds']:g}s, "
              f"ARE {record['accuracy']['mean_are_peak']:g}, "
              f"overhead {record['overhead']['overhead_pct']:+.2f}%, "
              f"gates: {'all ok' if all(gates.values()) else gates})")
    else:
        print(text)
    return 0


# -- pytest smoke (tiny scale; part of `make bench` / `make bench-soak`) ----


def test_soak_smoke(benchmark):
    from benchmarks.conftest import run_once

    record = run_once(
        benchmark,
        lambda: run(n_edges=60_000, n_nodes=1 << 10, width=128,
                    window_width=128,
                    rate=1000.0, chunk_size=8192, sample_size=64,
                    tick_every=1, health_every=4, overhead_slice=40_000,
                    thresholds=dict(throughput_floor=10_000.0,
                                    p99_ceiling_seconds=0.5,
                                    rss_slope_limit=2 ** 24,
                                    # a 128-wide sketch saturates at this
                                    # density, and per-tick fixed costs
                                    # barely amortize over a 5-chunk
                                    # calibration slice: the smoke checks
                                    # plumbing, the committed full-scale
                                    # record checks quality
                                    are_bound=8.0,
                                    overhead_headroom_pct=75.0)))
    validate_record(record)
    print(json.dumps({"throughput": record["throughput"],
                      "gates": record["gates"]}, indent=2))
    assert all(record["gates"].values())


if __name__ == "__main__":
    raise SystemExit(main())
