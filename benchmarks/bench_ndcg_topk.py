"""Appendix C.3: NDCG of top-k heavy edges and nodes.

Expected shape (paper's C.3 table): ~0.99 across k for both heavy edges
and heavy nodes on the IP-flow stream.
"""

from benchmarks.conftest import run_once
from repro.experiments.exp2_heavy import ndcg_table
from repro.experiments.report import print_table


def test_ndcg(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: ndcg_table("ipflow", scale, ratio=1 / 3, d=5,
                                       k_values=(10, 25, 50)))
    print_table(f"Appendix C.3 -- NDCG of top-k results (ipflow, {scale})",
                ["k", "heavy edges", "heavy nodes"], rows)
    for k, ndcg_edges, ndcg_nodes in rows:
        assert ndcg_edges >= 0.9
        assert ndcg_nodes >= 0.7
