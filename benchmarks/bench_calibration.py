"""Extension: empirical calibration of Theorem 1's guarantee.

The measured violation rate of ``estimate <= exact + eps*n`` must stay
below the promised delta at every (eps, delta) grid point.
"""

from benchmarks.conftest import run_once
from repro.experiments.calibration import calibration_table
from repro.experiments.report import print_table


def test_theorem1_calibration(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: calibration_table("gtgraph", scale, trials=3))
    print_table(f"Extension -- Theorem 1 calibration (gtgraph, {scale})",
                ["eps", "delta", "d", "w", "measured violation rate"],
                rows)
    for epsilon, delta, d, w, rate in rows:
        assert rate <= delta  # the guarantee itself (usually far below)
