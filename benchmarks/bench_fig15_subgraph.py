"""Fig. 15: aggregate subgraph query ARE vs d.

Expected shape (paper Figs. 15(a,b)): error falls with d and sits below
the corresponding edge-query ARE (heavy edges dominate each query total).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.exp1_edge import fig9_edge_vs_d
from repro.experiments.exp4_graph import fig15_subgraph_vs_d
from repro.experiments.report import print_table


@pytest.mark.parametrize("dataset", ["dblp", "ipflow"])
def test_fig15(benchmark, scale, dataset):
    rows = run_once(benchmark,
                    lambda: fig15_subgraph_vs_d(dataset, scale,
                                                d_values=(1, 3, 5, 7, 9)))
    print_table(f"Fig. 15 -- subgraph-query ARE vs d ({dataset}, {scale})",
                ["d", "TCM", "CountMin"], rows)
    assert rows[-1][1] <= rows[0][1]


def test_fig15_below_edge_queries(benchmark, scale):
    """The subgraph ARE at d=9 is below the edge-query ARE at d=9."""
    def both():
        subgraph = fig15_subgraph_vs_d("ipflow", scale, d_values=(9,))
        edge = fig9_edge_vs_d("ipflow", scale, d_values=(9,))
        return subgraph[0][1], edge[0][1]

    are_subgraph, are_edge = run_once(benchmark, both)
    assert are_subgraph <= are_edge
