"""Table 2: ARE on IP flow -- CountMin / TCM / gSketch / TCM(edge sample).

Expected shape (paper Table 2): plain CountMin ~ plain TCM; gSketch ~
TCM(edge sample); sample-partitioning helps most at low d where light
edges still collide with heavy ones.
"""

from benchmarks.conftest import run_once
from repro.experiments.exp1_edge import gsketch_comparison
from repro.experiments.report import print_table

D_VALUES = (1, 3, 5, 7, 9)


def test_table2(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: gsketch_comparison("ipflow", scale,
                                               d_values=D_VALUES))
    print_table(f"Table 2 -- edge-query ARE, IP flow ({scale})",
                ["method"] + [f"d={d}" for d in D_VALUES], rows)
    by_method = {row[0]: row[1:] for row in rows}
    # Plain TCM tracks plain CountMin at every d.
    for tcm, cm in zip(by_method["TCM"], by_method["CountMin"]):
        assert tcm <= 2.5 * cm + 0.5
    # Partitioning helps at d=1.
    assert by_method["gSketch"][0] < by_method["CountMin"][0]
    # TCM (edge sample) tracks gSketch.
    for pt, gs in zip(by_method["TCM (edge sample)"], by_method["gSketch"]):
        assert pt <= 2.5 * gs + 0.5
