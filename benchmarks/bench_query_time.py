"""Appendix C.4: edge-query time -- sketch vs adjacency-list stores.

Expected shape (paper's C.4 table): constant-time sketch probes beat the
hash-indexed adjacency list, which in turn beats the raw list scan by
orders of magnitude.
"""

from benchmarks.conftest import run_once
from repro.experiments.exp5_efficiency import query_time_table
from repro.experiments.report import print_table


def test_query_time(benchmark):
    # This experiment needs a non-trivial node count for the scan cost to
    # dominate, so it pins the 'small' dataset regardless of bench scale.
    rows = run_once(benchmark,
                    lambda: query_time_table("gtgraph", "small", d=4,
                                             query_counts=(100, 1000, 10000)))
    print_table("Appendix C.4 -- edge-query time in seconds (gtgraph, small)",
                ["#queries", "TCM", "adjacency list", "hashed list"], rows)
    for count, t_tcm, t_scan, t_hashed in rows:
        assert t_tcm < t_scan
        assert t_hashed < t_scan
