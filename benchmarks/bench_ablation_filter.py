"""Ablation: the sketch as a filter for exact stores (paper Section 7).

On a miss-dominated probe workload the TCM filter should answer nearly
every query without touching the exact store, and the end-to-end probe
loop should not be slower than the unfiltered store by more than the
filter's constant.
"""

import time

from benchmarks.conftest import run_once
from repro.core.filter import SketchFilteredStore
from repro.experiments import datasets
from repro.experiments.report import print_table


def test_filter_rate_and_cost(benchmark, scale):
    def run():
        stream = datasets.ipflow(scale)
        store = SketchFilteredStore(d=4, width=128, seed=1)
        store.ingest(stream)
        probes = [(f"10.111.0.{i % 251}", f"10.112.0.{i % 241}")
                  for i in range(3000)]
        start = time.perf_counter()
        for src, dst in probes:
            store.edge_weight(src, dst)
        elapsed = time.perf_counter() - start
        return store.filter_rate, store.exact_lookups, elapsed

    rate, exact_lookups, elapsed = run_once(benchmark, run)
    print_table("Ablation -- sketch-filtered store on a miss workload",
                ["filter rate", "exact lookups", "3000 probes (s)"],
                [(rate, exact_lookups, elapsed)])
    assert rate > 0.95
    assert exact_lookups < 150
