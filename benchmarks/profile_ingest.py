"""Profile the chunked ingest path: where does an element's time go?

Two views of the same R-MAT workload:

1. a stage breakdown that times the ingest pipeline's phases in
   isolation -- edge generation, column extraction, label->key
   conversion, hashing and the kernel scatter -- so a regression in any
   one layer is visible as a shifted percentage rather than a vague
   slowdown of the whole;
2. a cProfile of the real end-to-end ``TCM.ingest`` call (stdlib
   machinery included), top functions by cumulative time.

Run it directly or via ``make profile-ingest``::

    python benchmarks/profile_ingest.py --edges 200000
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
import time
from typing import Dict, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (REPO_ROOT, os.path.join(REPO_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

import numpy as np

from repro.core import kernels
from repro.core.tcm import TCM
from repro.hashing.labels import label_keys
from repro.streams.generators import rmat_edges
from repro.streams.model import StreamEdge


def stage_breakdown(n_edges: int, n_nodes: int, d: int, width: int,
                    seed: int, chunk_size: int) -> Dict[str, float]:
    """Seconds per pipeline stage, measured on the same edge set.

    The stages re-enact what ``ingest`` -> ``ingest_columns`` ->
    ``_apply_key_columns`` do per chunk, but timed separately: the sum
    of the stages approximates (does not exactly equal) the end-to-end
    time because isolating them removes chunking overhead.
    """
    timings: Dict[str, float] = {}

    start = time.perf_counter()
    edges: List[StreamEdge] = list(rmat_edges(n_nodes, n_edges, seed=seed))
    timings["generation"] = time.perf_counter() - start

    start = time.perf_counter()
    sources = [e.source for e in edges]
    targets = [e.target for e in edges]
    weights = np.array([e.weight for e in edges], dtype=np.float64)
    timings["column_extraction"] = time.perf_counter() - start

    start = time.perf_counter()
    source_keys = label_keys(sources)
    target_keys = label_keys(targets)
    timings["label_keys"] = time.perf_counter() - start

    tcm = TCM(d=d, width=width, seed=seed)
    backend = kernels.get_backend()

    start = time.perf_counter()
    unique_src, inv_src = kernels.dedup_keys(source_keys)
    unique_tgt, inv_tgt = kernels.dedup_keys(target_keys)
    hashed = []
    for sketch in tcm.sketches:
        rows = sketch._row_hash.hash_many(unique_src)
        cols = sketch._col_hash.hash_many(unique_tgt)
        if inv_src is not None:
            rows = rows[inv_src]
        if inv_tgt is not None:
            cols = cols[inv_tgt]
        hashed.append((sketch, rows, cols))
    timings["hashing"] = time.perf_counter() - start

    start = time.perf_counter()
    for sketch, rows, cols in hashed:
        backend.scatter_add(sketch._matrix, rows, cols, weights)
    timings["scatter"] = time.perf_counter() - start

    return timings


def print_breakdown(timings: Dict[str, float], n_edges: int) -> None:
    total = sum(timings.values())
    print(f"\nstage breakdown ({n_edges:,} edges, "
          f"kernel backend: {kernels.active_backend()})")
    print(f"{'stage':<20} {'seconds':>10} {'share':>8} {'elements/s':>14}")
    for stage, seconds in timings.items():
        rate = n_edges / seconds if seconds > 0 else float("inf")
        print(f"{stage:<20} {seconds:>10.4f} {seconds / total:>7.1%} "
              f"{rate:>14,.0f}")
    print(f"{'total':<20} {total:>10.4f} {'100.0%':>8} "
          f"{n_edges / total:>14,.0f}")


def profile_end_to_end(n_edges: int, n_nodes: int, d: int, width: int,
                       seed: int, chunk_size: int, top: int) -> None:
    tcm = TCM(d=d, width=width, seed=seed)
    stream = rmat_edges(n_nodes, n_edges, seed=seed)
    profiler = cProfile.Profile()
    profiler.enable()
    tcm.ingest(stream, chunk_size=chunk_size)
    profiler.disable()
    print(f"\ncProfile of TCM.ingest ({n_edges:,} edges, chunk size "
          f"{chunk_size:,}), top {top} by cumulative time:")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(top)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="profile the chunked ingest pipeline stage by stage")
    parser.add_argument("--edges", type=int, default=200_000)
    parser.add_argument("--nodes", type=int, default=16384)
    parser.add_argument("--d", type=int, default=4)
    parser.add_argument("--width", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--chunk-size", type=int, default=65536)
    parser.add_argument("--kernel", choices=("auto", "numpy", "numba"),
                        default=None,
                        help="scatter-kernel backend to profile")
    parser.add_argument("--top", type=int, default=15,
                        help="cProfile rows to print")
    parser.add_argument("--skip-cprofile", action="store_true",
                        help="only print the stage breakdown")
    args = parser.parse_args(argv)

    if args.kernel is not None:
        kernels.set_backend(args.kernel)

    timings = stage_breakdown(args.edges, args.nodes, args.d, args.width,
                              args.seed, args.chunk_size)
    print_breakdown(timings, args.edges)
    if not args.skip_cprofile:
        profile_end_to_end(args.edges, args.nodes, args.d, args.width,
                           args.seed, args.chunk_size, args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
