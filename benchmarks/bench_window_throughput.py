"""Window-maintenance throughput: batched and rotating vs per-element.

Measures sustained sliding-window maintenance -- insert every arriving
element, expire everything older than the horizon -- over a timestamped
R-MAT stream, for three implementations of the same window:

- ``per_element``: the pre-vectorization baseline (scalar ``update`` per
  arrival, deque front popped with scalar ``remove`` per expiry),
- ``batched_exact``: :class:`~repro.streams.window.SlidingWindow` -- the
  columnar ring buffer driving ``ingest_columns`` / ``remove_many``,
- ``rotating``: :class:`~repro.streams.rotating.RotatingWindowTCM` --
  bucketed sub-sketches, expiry by clearing the oldest bucket.

The exact modes are cross-checked cell-for-cell at full scale before
timings are reported.  Writes the committed
``BENCH_window_throughput.json`` record::

    python benchmarks/bench_window_throughput.py --out BENCH_window_throughput.json

Also runs (tiny scale) as part of ``make bench`` / ``make bench-window``
via the pytest smoke test at the bottom, which validates the JSON schema
and that the batched path actually wins.

Methodology: all modes consume the same lazy
:func:`~repro.streams.generators.rmat_edges_timestamped` stream (jittered
arrivals at ``rate`` elements per time unit), so a horizon of ``H`` time
units keeps ``~ rate * H`` elements live and -- past warm-up -- every
element is expired exactly once.  Element generation is inside the
timed region for every mode alike; throughput is end-to-end arrivals
per second.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from collections import deque
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.tcm import TCM
from repro.streams.generators import rmat_edges_timestamped
from repro.streams.rotating import RotatingWindowTCM
from repro.streams.window import SlidingWindow

#: Schema of the emitted record: key -> type of the value.  CI validates
#: against this.
RECORD_SCHEMA = {
    "benchmark": str,
    "config": dict,
    "seconds": dict,
    "elements_per_second": dict,
    "window": dict,
    "speedups": dict,
    "equivalence": dict,
}

#: Required entries of the ``speedups`` map.
SPEEDUP_KEYS = ("batched_vs_per_element", "rotating_vs_per_element")


def _stream(config: Dict):
    return rmat_edges_timestamped(
        config["n_nodes"], config["n_edges"], seed=config["seed"],
        rate=config["rate"], jitter=config["jitter"])


def _tcm(config: Dict) -> TCM:
    return TCM(d=config["d"], width=config["width"], seed=config["seed"],
               directed=True)


def run_per_element(config: Dict):
    """The baseline loop: scalar insert, deque expiry, scalar deletes."""
    tcm = _tcm(config)
    horizon = config["horizon"]
    buffer = deque()
    start = time.perf_counter()
    for edge in _stream(config):
        tcm.update(edge.source, edge.target, edge.weight)
        buffer.append(edge)
        cutoff = edge.timestamp - horizon
        while buffer and buffer[0].timestamp < cutoff:
            old = buffer.popleft()
            tcm.remove(old.source, old.target, old.weight)
    return time.perf_counter() - start, tcm, len(buffer)


def run_batched(config: Dict):
    window = SlidingWindow(_tcm(config), config["horizon"])
    start = time.perf_counter()
    window.consume(_stream(config), chunk_size=config["chunk_size"])
    return time.perf_counter() - start, window.summary, len(window)


def run_rotating(config: Dict):
    window = RotatingWindowTCM(
        config["horizon"], buckets=config["buckets"], d=config["d"],
        width=config["width"], seed=config["seed"], directed=True)
    start = time.perf_counter()
    window.consume(_stream(config), chunk_size=config["chunk_size"])
    # Include one merged-view build: that is the cost a query pays after
    # the stream ends.
    window.merged
    return time.perf_counter() - start, window


def run(n_edges: int = 1_000_000, n_nodes: int = 65536, d: int = 4,
        width: int = 256, seed: int = 7, horizon: float = 100_000.0,
        rate: float = 1.0, jitter: float = 0.5, buckets: int = 8,
        chunk_size: int = 65536) -> Dict:
    config = dict(n_edges=n_edges, n_nodes=n_nodes, d=d, width=width,
                  seed=seed, horizon=horizon, rate=rate, jitter=jitter,
                  buckets=buckets, chunk_size=chunk_size)

    batched_seconds, batched_tcm, batched_live = run_batched(config)
    baseline_seconds, baseline_tcm, baseline_live = run_per_element(config)
    rotating_seconds, rotating = run_rotating(config)

    # Full-scale equivalence: the batched window must be cell-for-cell
    # the per-element window, and the rotating view must dominate it
    # (it covers a superset of the live elements).
    bit_identical = all(
        np.array_equal(mine._matrix, theirs._matrix)
        for mine, theirs in zip(batched_tcm.sketches,
                                baseline_tcm.sketches))
    rotating_dominates = all(
        (mine._matrix >= theirs._matrix - 1e-9).all()
        for mine, theirs in zip(rotating.merged.sketches,
                                batched_tcm.sketches))

    def rate_of(seconds: float) -> float:
        return round(n_edges / seconds) if seconds > 0 else float("inf")

    return {
        "benchmark": "sliding-window maintenance throughput (columnar "
                     "ring buffer + batch deletions, rotating sub-"
                     "sketches) vs per-element baseline on a "
                     "timestamped R-MAT stream",
        "config": {**config, "python": platform.python_version(),
                   "machine": platform.machine()},
        "target": "batched exact window >= 3x the per-element loop; "
                  "rotating reported alongside; exact modes "
                  "cell-for-cell identical",
        "seconds": {
            "per_element": round(baseline_seconds, 3),
            "batched_exact": round(batched_seconds, 3),
            "rotating": round(rotating_seconds, 3),
        },
        "elements_per_second": {
            "per_element": rate_of(baseline_seconds),
            "batched_exact": rate_of(batched_seconds),
            "rotating": rate_of(rotating_seconds),
        },
        "window": {
            "live_elements": batched_live,
            "baseline_live_elements": baseline_live,
            "expired_elements": n_edges - batched_live,
            "rotating_max_staleness": rotating.max_staleness,
            "rotating_memory_bytes": rotating.memory_bytes(),
        },
        "speedups": {
            "batched_vs_per_element": round(
                baseline_seconds / batched_seconds, 2),
            "rotating_vs_per_element": round(
                baseline_seconds / rotating_seconds, 2),
            "rotating_vs_batched": round(
                batched_seconds / rotating_seconds, 2),
        },
        "equivalence": {
            "batched_bit_identical_to_per_element": bit_identical,
            "rotating_never_below_exact": rotating_dominates,
            "live_elements_match": batched_live == baseline_live,
        },
    }


def validate_record(record: Dict) -> None:
    """Schema check for the emitted JSON (used by the CI smoke step)."""
    for key, expected in RECORD_SCHEMA.items():
        if key not in record:
            raise ValueError(f"BENCH_window_throughput record misses "
                             f"{key!r}")
        if not isinstance(record[key], expected):
            raise ValueError(f"{key!r} should be {expected.__name__}, got "
                             f"{type(record[key]).__name__}")
    for key in SPEEDUP_KEYS:
        value = record["speedups"].get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"speedups[{key!r}] should be a positive "
                             f"number, got {value!r}")
    for section in ("seconds", "elements_per_second"):
        for name, value in record[section].items():
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"{section}[{name!r}] should be a "
                                 f"non-negative number, got {value!r}")
    for flag in ("batched_bit_identical_to_per_element",
                 "rotating_never_below_exact", "live_elements_match"):
        if record["equivalence"].get(flag) is not True:
            raise ValueError(f"equivalence[{flag!r}] must be true, got "
                             f"{record['equivalence'].get(flag)!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark sliding-window maintenance throughput")
    parser.add_argument("--edges", type=int, default=1_000_000)
    parser.add_argument("--nodes", type=int, default=65536)
    parser.add_argument("--d", type=int, default=4)
    parser.add_argument("--width", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--horizon", type=float, default=100_000.0,
                        help="window length in stream time units "
                             "(default 100000, ~100k live elements at "
                             "the default rate)")
    parser.add_argument("--rate", type=float, default=1.0,
                        help="mean arrivals per stream-time unit")
    parser.add_argument("--jitter", type=float, default=0.5)
    parser.add_argument("--buckets", type=int, default=8,
                        help="rotating-window sub-sketches per horizon")
    parser.add_argument("--chunk-size", type=int, default=65536)
    parser.add_argument("--out", default=None,
                        help="write the JSON record here (default: stdout)")
    args = parser.parse_args(argv)

    record = run(n_edges=args.edges, n_nodes=args.nodes, d=args.d,
                 width=args.width, seed=args.seed, horizon=args.horizon,
                 rate=args.rate, jitter=args.jitter, buckets=args.buckets,
                 chunk_size=args.chunk_size)
    validate_record(record)
    text = json.dumps(record, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        speedups = record["speedups"]
        print(f"wrote {args.out} (batched exact: "
              f"{speedups['batched_vs_per_element']}x baseline, rotating: "
              f"{speedups['rotating_vs_per_element']}x)")
    else:
        print(text)
    return 0


# -- pytest smoke (tiny scale; part of `make bench` / `make bench-window`) --


def test_window_throughput_smoke(benchmark):
    from benchmarks.conftest import run_once

    record = run_once(benchmark,
                      lambda: run(n_edges=20000, n_nodes=1024, width=64,
                                  horizon=2000.0, chunk_size=4096))
    validate_record(record)
    print(json.dumps(record["speedups"], indent=2))
    assert record["speedups"]["batched_vs_per_element"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main())
