"""Fig. 10: ARE per edge-weight segment (lightest decile first).

Expected shape (paper Figs. 10(a-c)): the lightest segment dominates the
error; error collapses toward the heavy segments, for both sketches.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.exp1_edge import fig10_weight_segments
from repro.experiments.report import print_table


@pytest.mark.parametrize("dataset", ["dblp", "ipflow", "gtgraph"])
def test_fig10(benchmark, scale, dataset):
    rows = run_once(benchmark,
                    lambda: fig10_weight_segments(dataset, scale, d=5,
                                                  segments=10))
    print_table(f"Fig. 10 -- ARE per weight segment ({dataset}, {scale})",
                ["segment", "TCM", "CountMin"], rows)
    assert rows[0][1] >= rows[-1][1]
    assert rows[0][2] >= rows[-1][2]
