"""Fig. 7: edge-query ARE vs compression ratio (TCM vs CountMin).

Expected shape (paper Figs. 7(a-c)): error falls as the ratio loosens and
the TCM and CountMin curves track each other at equal space.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.exp1_edge import fig7_edge_vs_ratio
from repro.experiments.report import print_table


@pytest.mark.parametrize("dataset", ["dblp", "ipflow", "gtgraph"])
def test_fig7(benchmark, scale, dataset):
    rows = run_once(benchmark,
                    lambda: fig7_edge_vs_ratio(dataset, scale, d=5))
    print_table(f"Fig. 7 -- edge-query ARE vs ratio ({dataset}, {scale})",
                ["ratio", "TCM", "CountMin"], rows)
    # Tighter compression (later rows) must not have lower error.
    assert rows[-1][1] >= rows[0][1]
    assert rows[-1][2] >= rows[0][2]
