"""Ablation: distributed d x m sketches (paper Section 5.3).

More workers = more independent sketches = estimates at least as tight,
because the merged minimum ranges over a superset of sketches.
"""

from benchmarks.conftest import run_once
from repro.distributed import DistributedTCM
from repro.experiments import datasets
from repro.experiments.common import edge_query_are, edge_workload
from repro.experiments.report import print_table


def test_more_workers_tighter_estimates(benchmark, scale):
    def run():
        stream = datasets.gtgraph(scale)
        workload = edge_workload(stream, limit=1000)
        rows = []
        for m in (1, 2, 4):
            with DistributedTCM(m=m, d=2, width=48, seed=50) as cluster:
                cluster.ingest(stream)
                rows.append((m, cluster.total_sketches,
                             edge_query_are(stream, cluster.edge_weight,
                                            workload)))
        return rows

    rows = run_once(benchmark, run)
    print_table(f"Ablation -- distributed d x m sketches (gtgraph, {scale})",
                ["workers m", "total sketches", "ARE"], rows)
    errors = [row[2] for row in rows]
    assert errors == sorted(errors, reverse=True)  # monotone improvement
