"""Ablation: the decomposed subgraph estimator f'_g vs full matching f_g.

Section 4.4 proposes evaluating an aggregate subgraph query either by
running the subgraph() black box per sketch and min-merging (f_g), or by
decomposing into per-edge ensemble estimates and summing (f'_g).  The
paper states f'_g <= f_g; this ablation verifies the ordering on real
query workloads and shows the decomposed path is also much cheaper.
"""

import time

from benchmarks.conftest import run_once
from repro.experiments import datasets
from repro.experiments.common import build_tcm
from repro.experiments.report import print_table
from repro.streams.generators import query_graphs_from_stream


def test_decomposed_vs_full(benchmark, scale):
    def run():
        stream = datasets.ipflow(scale)
        tcm = build_tcm(stream, datasets.FIXED_RATIO["ipflow"], 3)
        queries = query_graphs_from_stream(stream, count=12, seed=3)

        start = time.perf_counter()
        full = [tcm.subgraph_weight(q) for q in queries]
        t_full = time.perf_counter() - start
        start = time.perf_counter()
        decomposed = [tcm.subgraph_weight_decomposed(q) for q in queries]
        t_decomposed = time.perf_counter() - start
        exact = [stream.subgraph_weight(q) for q in queries]
        return full, decomposed, exact, t_full, t_decomposed

    full, decomposed, exact, t_full, t_decomposed = run_once(benchmark, run)
    rows = [(i + 1, exact[i], decomposed[i], full[i])
            for i in range(len(full))]
    print_table(f"Ablation -- f'_g (decomposed) vs f_g (full matching), "
                f"ipflow/{scale}",
                ["query", "exact", "f'_g", "f_g"], rows)
    print_table("timing", ["estimator", "seconds"],
                [("full matching", t_full), ("decomposed", t_decomposed)])
    for i in range(len(full)):
        # The paper's ordering: exact <= f'_g <= f_g.
        assert exact[i] <= decomposed[i] + 1e-9
        assert decomposed[i] <= full[i] + 1e-9
    assert t_decomposed < t_full  # and the optimization is cheaper
