"""Extension: workload fingerprints of the evaluation datasets.

Sanity constraints tying the generators to the paper's dataset
descriptions: IP-flow weights span orders of magnitude (Fig. 8(b)),
all weight distributions are skewed, the bottom-k distinct estimate
tracks the truth, and the co-authorship graph closes triads far more
than the traffic graph.
"""

from benchmarks.conftest import run_once
from repro.experiments.profiles import PROFILE_HEADERS, profile_table
from repro.experiments.report import print_table


def test_dataset_profiles(benchmark, scale):
    rows = run_once(benchmark, lambda: profile_table(scale=scale))
    print_table(f"Extension -- dataset fingerprints ({scale})",
                list(PROFILE_HEADERS), rows)
    by_name = {row[0]: row for row in rows}

    # IP-flow weights span orders of magnitude; dblp's stay narrow.
    assert by_name["ipflow"][5] > 2.0
    assert by_name["dblp"][5] < 2.5

    # bottom-k distinct-edge estimates within 25% of the truth.
    for row in rows:
        exact, estimate = row[3], row[4]
        assert abs(estimate - exact) / exact < 0.25

    # Co-authorship (papers = small cliques) closes triads far more than
    # the traffic graph.
    assert by_name["dblp"][9] > by_name["ipflow"][9]
