"""Schema-validate every committed ``BENCH_*.json`` regression record.

The repo commits one JSON record per standing benchmark gate
(ingest throughput, query latency, window throughput, instrumentation
overhead, the soak gate).  Each record is both documentation -- "this is
what the implementation achieved on the reference machine" -- and a CI
input: the overhead gate re-measures against the committed budget, and
the soak record's gate flags must all be true or the commit is claiming
a regression is fine.

A record that silently drifts out of shape (a renamed key, a gate flag
accidentally dropped, a truncated write) would disable those checks
without failing anything.  This script closes that hole: CI runs

    python benchmarks/validate_bench_records.py

which loads every ``BENCH_*.json`` in the repo root and applies the
strictest validator available for it -- the producing benchmark's own
``validate_record`` where one exists, a structural schema check
otherwise.  Unknown ``BENCH_*.json`` files fail loudly: a new record
must register a validator here before it can be committed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Allow "python benchmarks/validate_bench_records.py" from the repo root
# without PYTHONPATH gymnastics.
for path in (REPO_ROOT, os.path.join(REPO_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)


def _require(record: Dict, key: str, kind, filename: str) -> object:
    if key not in record:
        raise ValueError(f"{filename}: missing required key {key!r}")
    value = record[key]
    if not isinstance(value, kind):
        raise ValueError(
            f"{filename}: key {key!r} should be "
            f"{getattr(kind, '__name__', kind)}, got {type(value).__name__}")
    return value


def _check_common(record: Dict, filename: str) -> None:
    """Every record names its benchmark and captures its config."""
    _require(record, "benchmark", str, filename)
    _require(record, "config", dict, filename)


def _check_ingest(record: Dict, filename: str) -> None:
    rates = _require(record, "rates_elements_per_sec", dict, filename)
    for mode, rate in rates.items():
        if not isinstance(rate, (int, float)) or rate <= 0:
            raise ValueError(
                f"{filename}: rate for {mode!r} must be positive, got {rate!r}")
    _require(record, "speedup_vs_per_edge", dict, filename)
    memory = _require(record, "memory", dict, filename)
    _require(memory, "peak_rss_kib", dict, filename)
    # Kernel-layer provenance: the record must say which scatter backend
    # produced it and how many hardware cores the parallel numbers had,
    # or the throughput/domination figures are uninterpretable.
    config = record["config"]
    backend = _require(config, "kernel_backend", str, filename)
    if backend not in ("numpy", "numba"):
        raise ValueError(
            f"{filename}: kernel_backend must be 'numpy' or 'numba', "
            f"got {backend!r}")
    cpu_count = _require(config, "cpu_count", int, filename)
    if cpu_count < 1:
        raise ValueError(
            f"{filename}: cpu_count must be >= 1, got {cpu_count}")
    if config.get("workers", 1) > 1:
        comparison = _require(record, "parallel_vs_chunked", dict, filename)
        _require(comparison, "transport", dict, filename)
        for key in ("sum_ratio", "min_ratio"):
            ratio = _require(comparison, key, (int, float), filename)
            if ratio <= 0:
                raise ValueError(
                    f"{filename}: parallel_vs_chunked.{key} must be "
                    f"positive, got {ratio!r}")
        for key in ("sum_dominates", "min_dominates"):
            _require(comparison, key, bool, filename)


def _check_overhead(record: Dict, filename: str) -> None:
    modes = _require(record, "modes", dict, filename)
    for mode in ("disabled", "enabled"):
        row = _require(modes, mode, dict, filename)
        _require(row, "best_seconds", (int, float), filename)
        _require(row, "overhead_vs_disabled_pct", (int, float), filename)
    budget = _require(record, "budget_pct", (int, float), filename)
    measured = modes["enabled"]["overhead_vs_disabled_pct"]
    # The committed record is the budget CI gates against; committing one
    # that already busts its own budget would make the gate meaningless.
    if measured > budget:
        raise ValueError(
            f"{filename}: committed enabled overhead {measured:+.2f}% "
            f"exceeds its own budget_pct of {budget:.1f}%")


def _check_query(record: Dict, filename: str) -> None:
    from benchmarks.bench_query_latency import validate_record
    validate_record(record)


def _check_window(record: Dict, filename: str) -> None:
    from benchmarks.bench_window_throughput import validate_record
    validate_record(record)


def _check_soak(record: Dict, filename: str) -> None:
    from benchmarks.bench_soak import validate_record
    validate_record(record)


def _check_server(record: Dict, filename: str) -> None:
    from benchmarks.bench_server import validate_record
    validate_record(record, filename)


def _check_chaos(record: Dict, filename: str) -> None:
    from benchmarks.bench_chaos import validate_record
    validate_record(record, filename)


def _check_wire(record: Dict, filename: str) -> None:
    from benchmarks.bench_wire import validate_record
    validate_record(record, filename)


#: filename -> validator.  A BENCH_*.json with no entry here is an error:
#: new standing records must register their schema check to be committed.
VALIDATORS: Dict[str, Callable[[Dict, str], None]] = {
    "BENCH_ingest_throughput.json": _check_ingest,
    "BENCH_obs_overhead.json": _check_overhead,
    "BENCH_query_latency.json": _check_query,
    "BENCH_window_throughput.json": _check_window,
    "BENCH_soak.json": _check_soak,
    "BENCH_server.json": _check_server,
    "BENCH_chaos.json": _check_chaos,
    "BENCH_wire.json": _check_wire,
}


def validate_all(root: str = REPO_ROOT) -> List[str]:
    """Validate every BENCH_*.json under ``root``; return the filenames."""
    filenames = sorted(name for name in os.listdir(root)
                       if name.startswith("BENCH_") and name.endswith(".json"))
    if not filenames:
        raise ValueError(f"no BENCH_*.json records found in {root}")
    for filename in filenames:
        validator = VALIDATORS.get(filename)
        if validator is None:
            raise ValueError(
                f"{filename}: no registered validator -- add one to "
                f"benchmarks/validate_bench_records.py")
        with open(os.path.join(root, filename)) as fh:
            try:
                record = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{filename}: invalid JSON ({exc})") from exc
        if not isinstance(record, dict):
            raise ValueError(f"{filename}: top level must be a JSON object")
        _check_common(record, filename)
        validator(record, filename)
    return filenames


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="schema-validate all committed BENCH_*.json records")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="directory holding the records (default: repo root)")
    args = parser.parse_args(argv)
    try:
        filenames = validate_all(args.root)
    except ValueError as exc:
        print(f"FAIL: {exc}")
        return 1
    for filename in filenames:
        print(f"ok: {filename}")
    print(f"{len(filenames)} records valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
