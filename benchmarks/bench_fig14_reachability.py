"""Fig. 14: reachability queries on the sketch.

Expected shapes: (a) good inter-accuracy on all datasets (paper: 96%,
84.5%, 100% at d=9); (b) true-negative accuracy rises with d and falls
with graph density, with *no* false "unreachable" answers ever.
"""

from benchmarks.conftest import run_once
from repro.experiments.exp3_path import (
    fig14a_reachability_vs_d,
    fig14b_true_negatives,
)
from repro.experiments.report import print_table


def test_fig14a(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: fig14a_reachability_vs_d(scale=scale,
                                                     d_values=(1, 3, 5, 7, 9),
                                                     pairs_count=50))
    print_table(f"Fig. 14(a) -- reachability accuracy vs d ({scale})",
                ["d", "dblp", "ipflow", "gtgraph"], rows)
    final = rows[-1]
    assert all(acc >= 0.6 for acc in final[1:])


def test_fig14b(benchmark):
    rows = run_once(benchmark,
                    lambda: fig14b_true_negatives(n_nodes=512,
                                                  pairs_count=60))
    print_table("Fig. 14(b) -- true-negative accuracy vs d (R-MAT)",
                ["d", "|E|/|V|=1", "|E|/|V|=3", "|E|/|V|=5", "|E|/|V|=7"],
                rows)
    # Accuracy improves with d for the sparse graph...
    assert rows[-1][1] > rows[0][1]
    # ...and sparser graphs are never worse than denser ones at d=9.
    assert rows[-1][1] >= rows[-1][-1]
