"""Fig. 9: edge-query ARE vs number of hash functions (fixed width).

Expected shape (paper Figs. 9(a-c)): both TCM and CountMin errors fall
monotonically with d, with the two curves close at equal space.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.exp1_edge import fig9_edge_vs_d
from repro.experiments.report import print_table


@pytest.mark.parametrize("dataset", ["dblp", "ipflow", "gtgraph"])
def test_fig9(benchmark, scale, dataset):
    rows = run_once(benchmark,
                    lambda: fig9_edge_vs_d(dataset, scale,
                                           d_values=(1, 3, 5, 7, 9)))
    print_table(f"Fig. 9 -- edge-query ARE vs d ({dataset}, {scale})",
                ["d", "TCM", "CountMin"], rows)
    assert rows[-1][1] <= rows[0][1]
    assert rows[-1][2] <= rows[0][2]
