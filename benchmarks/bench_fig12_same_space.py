"""Fig. 12: one summary serving a *set* of problems at equal total space.

Expected shape (paper Figs. 12(a-c)): TCM (one structure for edge + node
queries) clearly beats CountMin, which must split the space into an edge
sketch and a node sketch.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.tcm import TCM
from repro.experiments import datasets
from repro.experiments.common import cells_for_ratio
from repro.experiments.exp1_edge import fig12_same_space_set
from repro.experiments.report import print_table


@pytest.mark.parametrize("dataset", ["dblp", "ipflow", "gtgraph"])
def test_fig12(benchmark, scale, dataset):
    rows = run_once(benchmark,
                    lambda: fig12_same_space_set(dataset, scale,
                                                 d_values=(1, 3, 5, 7, 9)))
    print_table(f"Fig. 12 -- same space, set of problems ({dataset}, {scale})",
                ["d", "TCM", "CountMin (half space)"], rows)
    wins = sum(1 for _, tcm, cm_half in rows if tcm <= cm_half)
    assert wins >= len(rows) - 1  # TCM wins (essentially) everywhere


def test_same_space_memory_parity(scale):
    """The "same space" protocol, audited in bytes via memory_bytes().

    Two TCMs built for the same cell budget must land within one width
    quantization step of each other in real memory, whatever d is --
    the comparison the figure relies on.
    """
    stream = datasets.ipflow(scale)
    cells = cells_for_ratio(stream, datasets.FIXED_RATIO["ipflow"])
    budgets = []
    for d in (1, 3, 5):
        tcm = TCM.from_space(cells, d, seed=7, directed=stream.directed)
        per_sketch = tcm.memory_bytes() / d
        budgets.append(per_sketch)
        assert tcm.memory_bytes() == tcm.size_in_cells * 8
    assert max(budgets) == min(budgets)  # equal per-sketch budget at any d
