"""Table 3 (Appendix C.1): the analytics-support matrix, probed live.

Expected shape: exactly the paper's matrix -- TCM supports everything;
one-dimensional sketches support only their own key type.
"""

from benchmarks.conftest import run_once
from repro.experiments.capability import QUERY_CLASSES, table3_capabilities
from repro.experiments.report import print_table


def test_table3(benchmark):
    rows = run_once(benchmark, table3_capabilities)
    print_table("Table 3 -- analytics supported by different sketches",
                ["summary", *QUERY_CLASSES], rows)
    matrix = {row[0]: dict(zip(QUERY_CLASSES, row[1:])) for row in rows}
    assert all(matrix["TCM"].values())
    assert matrix["CountMin (edge) / gSketch"]["edge"]
    assert not matrix["CountMin (edge) / gSketch"]["reachability"]
    assert matrix["CountMin (node)"]["node"]
    assert not matrix["sample (edge)"]["node"]
    assert not matrix["sample (node)"]["edge"]
