"""Fig. 17: construction-time breakdown, CountMin-edge vs TCM.

Expected shape (paper Figs. 17(a-d)): the edge CountMin pays a
per-element string-concatenation cost that TCM avoids entirely; both
hash/update costs grow linearly with d.  Plus per-element update
micro-benchmarks for the two summaries.
"""

import pytest

from benchmarks.conftest import run_once
from repro.baselines.countmin import EdgeCountMin
from repro.core.tcm import TCM
from repro.distributed.parallel import parallel_ingest
from repro.experiments import datasets
from repro.experiments.exp5_efficiency import build_time_breakdown
from repro.experiments.report import print_table


@pytest.mark.parametrize("dataset", ["dblp", "ipflow", "gtgraph", "twitter"])
def test_fig17_breakdown(benchmark, scale, dataset):
    rows = run_once(benchmark,
                    lambda: build_time_breakdown(dataset, scale,
                                                 d_values=(1, 3, 5, 7, 9)))
    print_table(f"Fig. 17 -- build time breakdown ({dataset}, {scale})",
                ["d", "CM-string", "CM-hash", "TCM-string", "TCM-hash"],
                rows)
    for d, cm_string, cm_hash, tcm_string, tcm_hash in rows:
        assert cm_string > 0.0
        assert tcm_string == 0.0
    assert rows[-1][2] > rows[0][2]  # hash cost grows with d
    assert rows[-1][4] > rows[0][4]


def test_tcm_update_throughput(benchmark, scale):
    """Per-element TCM update cost (the paper's constant-time claim)."""
    stream = datasets.ipflow(scale)
    tcm = TCM(d=5, width=64, seed=1)
    edges = [(e.source, e.target, e.weight) for e in stream][:2000]

    def ingest_batch():
        for s, t, w in edges:
            tcm.update(s, t, w)

    benchmark(ingest_batch)


def test_countmin_update_throughput(benchmark, scale):
    """Per-element edge-CountMin update cost, including concatenation."""
    stream = datasets.ipflow(scale)
    cm = EdgeCountMin(5, 4096, seed=1)
    edges = [(e.source, e.target, e.weight) for e in stream][:2000]

    def ingest_batch():
        for s, t, w in edges:
            cm.update(s, t, w)

    benchmark(ingest_batch)


def test_vectorized_ingest_throughput(benchmark, scale):
    """The numpy bulk path that makes Python viable at stream scale."""
    stream = datasets.ipflow(scale)

    def build():
        tcm = TCM(d=5, width=64, seed=1)
        tcm.ingest(stream)
        return tcm

    tcm = benchmark.pedantic(build, rounds=3, iterations=1)
    # Memory via the first-class accessor, not ad-hoc d*w*w*8 math.
    print(f"\nTCM footprint: {tcm.memory_bytes():,} bytes "
          f"({tcm.size_in_cells:,} cells)")
    assert tcm.memory_bytes() == tcm.size_in_cells * 8  # float64 cells


def test_chunked_ingest_throughput(benchmark, scale):
    """Constant-memory chunked build over a lazy stream (no list())."""
    stream = datasets.ipflow(scale)

    def build():
        tcm = TCM(d=5, width=64, seed=1)
        tcm.ingest(iter(stream), chunk_size=4096)
        return tcm

    tcm = benchmark.pedantic(build, rounds=3, iterations=1)
    assert tcm.total_weight_estimate() > 0


def test_parallel_build_throughput(benchmark, scale):
    """Two-worker sharded build; pays pickling + merge overheads, so it
    only wins on streams long enough to amortize them."""
    stream = datasets.ipflow(scale)

    def build():
        return parallel_ingest(stream, workers=2, chunk_size=4096,
                               d=5, width=64, seed=1)

    tcm = benchmark.pedantic(build, rounds=3, iterations=1)
    assert tcm.total_weight_estimate() > 0
