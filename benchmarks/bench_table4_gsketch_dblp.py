"""Table 4 (Appendix C.2): the gSketch comparison on DBLP.

Expected shape (paper Table 4): the same four-method ordering as Table 2,
with a *smaller* partitioning benefit -- DBLP's weight range is narrow, so
separating heavy from light buys less (the paper makes exactly this
point).
"""

from benchmarks.conftest import run_once
from repro.experiments.exp1_edge import gsketch_comparison
from repro.experiments.report import print_table

D_VALUES = (1, 3, 5, 7, 9)


def test_table4(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: gsketch_comparison("dblp", scale,
                                               d_values=D_VALUES))
    print_table(f"Table 4 -- edge-query ARE, DBLP ({scale})",
                ["method"] + [f"d={d}" for d in D_VALUES], rows)
    by_method = {row[0]: row[1:] for row in rows}
    assert by_method["gSketch"][0] <= by_method["CountMin"][0] * 1.2
    for pt, gs in zip(by_method["TCM (edge sample)"], by_method["gSketch"]):
        assert pt <= 3.0 * gs + 0.5
