"""Service fast path: binary wire, WAL group commit, sharded workers.

Three phases, each an end-to-end ``tcm serve`` subprocess driven by the
closed-loop :mod:`repro.server.loadgen` mix:

1. **wire** -- the identical workload (same rng seed, bit-identical
   columns) over JSON and over the binary columnar protocol
   (``application/x-tcm-columnar``) at equal request concurrency.  The
   committed claim: binary sustains >= 2x the JSON elements/s -- the
   protocol exists to delete the ``json.loads`` + list-of-numbers tax
   from the hot path.

2. **group_commit** -- durable (``--data-dir``, default fsync policy)
   vs plain in-memory serving, both over the binary wire.  The WAL
   group-commit pipeline (one crc + one fsync per *group*, write
   overlapped with the next group's staging) must hold durable
   throughput at >= 0.90x plain; the pre-pipeline chaos record measured
   0.767x with a per-record synchronous append.

3. **workers** -- ``--workers 2`` vs a single worker, same workload on
   two tenants.  On a multi-core runner two workers must sustain >=
   1.5x the single worker's req/s; on any runner the per-tenant sketch
   state must be bit-identical to a single-worker replay (sharding may
   change scheduling, never results), checked with edge probes.

Writes the committed ``BENCH_wire.json``::

    python benchmarks/bench_wire.py --out BENCH_wire.json

``--smoke`` is the CI mode: a small fixed load with conservative floors
that must pass on any runner (binary merely must not lose to JSON, no
worker speedup gate), while the committed record keeps the
reference-machine numbers.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import os
import platform
import re
import signal
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

_LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")

#: Smoke floors: catch "broken", never "slow runner".
SMOKE_MIN_ELEMENTS_PER_S = 5_000.0
SMOKE_MIN_WIRE_RATIO = 1.0
SMOKE_MIN_DURABLE_RATIO = 0.5


class _ServerProcess:
    """One ``tcm serve`` subprocess with readiness and clean-exit checks."""

    def __init__(self, *extra_args: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        argv = [sys.executable, "-m", "repro", "serve", "--port", "0",
                *extra_args]
        self.proc = subprocess.Popen(
            argv, env=env, cwd=REPO_ROOT, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    def wait_ready(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            match = _LISTEN_RE.search(line)
            if match:
                self.host = match.group(1)
                self.port = int(match.group(2))
                return
        raise RuntimeError(
            f"server never reported readiness "
            f"(exit code {self.proc.poll()})")

    def shutdown(self, timeout: float = 30.0) -> bool:
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=timeout)
            return False
        self.proc.stdout.read()
        return self.proc.returncode == 0


def _drive(server: _ServerProcess, *, wire_mode: str, sketch: str,
           connections: int, requests: int, elements: int, n_nodes: int,
           query_ratio: float, seed: int) -> Dict:
    from repro.server.loadgen import run_loadgen

    # encode="lazy": the client serializes each body inside the timed
    # loop, so both formats pay their real end-to-end cost (a prebuilt
    # JSON body would hide the json.dumps tax a production client pays).
    return asyncio.run(run_loadgen(
        server.host, server.port, sketch=sketch,
        connections=connections, requests=requests, elements=elements,
        n_nodes=n_nodes, query_ratio=query_ratio, seed=seed,
        wire_mode=wire_mode, encode="lazy"))


def _call(port: int, method: str, path: str, body=None,
          host: str = "127.0.0.1"):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    payload = None if body is None else json.dumps(body)
    conn.request(method, path, body=payload,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, (json.loads(data) if data else None)


# -- phase 1: binary wire vs JSON --------------------------------------------

def _best_of(trials: int, measure) -> Dict:
    """Best trial by elements/s: on a shared box interference only ever
    slows a run down, so the max is the least-noisy estimate."""
    best: Optional[Dict] = None
    for _ in range(max(trials, 1)):
        summary = measure()
        if (best is None
                or summary["elements_per_s"] > best["elements_per_s"]):
            best = summary
    return best


def _phase_wire(*, connections: int, requests: int, elements: int,
                n_nodes: int, query_ratio: float, seed: int,
                trials: int) -> Dict:
    def measure(mode):
        server = _ServerProcess()
        try:
            server.wait_ready()
            summary = _drive(server, wire_mode=mode, sketch="wirebench",
                             connections=connections, requests=requests,
                             elements=elements, n_nodes=n_nodes,
                             query_ratio=query_ratio, seed=seed)
        except BaseException:
            server.proc.kill()
            raise
        summary["shutdown_clean"] = server.shutdown()
        return summary

    modes = {mode: _best_of(trials, lambda m=mode: measure(m))
             for mode in ("json", "binary")}
    ratio = (modes["binary"]["elements_per_s"]
             / max(modes["json"]["elements_per_s"], 1e-9))
    return {"trials": trials, "json": modes["json"],
            "binary": modes["binary"],
            "elements_ratio": round(ratio, 2)}


# -- phase 2: group-commit durable vs plain ----------------------------------

def _phase_group_commit(*, connections: int, requests: int, elements: int,
                        n_nodes: int, seed: int, data_dir: str,
                        trials: int) -> Dict:
    import shutil

    def measure(label, extra):
        # A fresh WAL dir per durable trial: replaying a prior trial's
        # log on boot would tax later trials unfairly.
        if extra and os.path.exists(data_dir):
            shutil.rmtree(data_dir)
        server = _ServerProcess(*extra)
        try:
            server.wait_ready()
            summary = _drive(server, wire_mode="binary",
                             sketch="gcbench", connections=connections,
                             requests=requests, elements=elements,
                             n_nodes=n_nodes, query_ratio=0.0, seed=seed)
        except BaseException:
            server.proc.kill()
            raise
        summary["shutdown_clean"] = server.shutdown()
        return summary

    modes = {label: _best_of(trials,
                             lambda l=label, e=extra: measure(l, e))
             for label, extra in (("plain", ()),
                                  ("durable", ("--data-dir", data_dir)))}
    ratio = (modes["durable"]["elements_per_s"]
             / max(modes["plain"]["elements_per_s"], 1e-9))
    return {"trials": trials, "plain": modes["plain"],
            "durable": modes["durable"],
            "fsync": "interval", "ratio": round(ratio, 3)}


# -- phase 3: sharded workers ------------------------------------------------

def _probe_edges(seed: int, n_nodes: int, count: int = 64) -> List:
    import numpy as np

    rng = np.random.default_rng(seed + 9000)
    return [[int(a), int(b)] for a, b in
            zip(rng.integers(0, n_nodes, count),
                rng.integers(0, n_nodes, count))]


def _query_tenant(server: _ServerProcess, tenant: str,
                  probes: List) -> List[float]:
    """Edge probes against ``tenant``, following the cluster map."""
    from repro.server.sharding import shard_of

    port = server.port
    status, cluster = _call(server.port, "GET", "/cluster")
    if status == 200:
        port = cluster["ports"][shard_of(tenant, cluster["workers"])]
    status, body = _call(port, "POST", f"/sketches/{tenant}/query",
                         {"kind": "edge", "pairs": probes})
    if status != 200:
        raise RuntimeError(f"probe query on {tenant!r} answered {status}: "
                           f"{body}")
    return body["values"]


def _phase_workers(*, connections: int, requests: int, elements: int,
                   n_nodes: int, seed: int) -> Dict:
    tenants = ("shard-a", "shard-b")
    probes = _probe_edges(seed, n_nodes)
    rows: Dict[str, Dict] = {}
    states: Dict[str, Dict[str, List[float]]] = {}
    for label, extra in (("one_worker", ()),
                         ("two_workers", ("--workers", "2"))):
        server = _ServerProcess(*extra)
        try:
            server.wait_ready()
            summaries = []
            for index, tenant in enumerate(tenants):
                summaries.append(_drive(
                    server, wire_mode="binary", sketch=tenant,
                    connections=connections, requests=requests,
                    elements=elements, n_nodes=n_nodes,
                    query_ratio=0.0, seed=seed + index))
            states[label] = {tenant: _query_tenant(server, tenant, probes)
                             for tenant in tenants}
        except BaseException:
            server.proc.kill()
            raise
        clean = server.shutdown()
        elapsed = sum(s["seconds"] for s in summaries)
        total_requests = sum(s["requests"] for s in summaries)
        total_elements = sum(s["ingested_elements"] for s in summaries)
        rows[label] = {
            "req_per_s": round(total_requests / max(elapsed, 1e-9), 1),
            "elements_per_s": round(total_elements / max(elapsed, 1e-9),
                                    1),
            "errors": sum(s["errors"] for s in summaries),
            "shutdown_clean": clean,
        }
    identical = states["one_worker"] == states["two_workers"]
    speedup = (rows["two_workers"]["req_per_s"]
               / max(rows["one_worker"]["req_per_s"], 1e-9))
    return {"one_worker": rows["one_worker"],
            "two_workers": rows["two_workers"],
            "speedup": round(speedup, 2),
            "state_identical": identical,
            "multi_core": (os.cpu_count() or 1) > 1}


def run(connections: int = 16, requests: int = 768, elements: int = 2048,
        n_nodes: int = 65536, query_ratio: float = 0.05, seed: int = 7,
        data_dir: Optional[str] = None, trials: int = 3,
        full_scale: bool = True) -> Dict:
    import tempfile

    record: Dict = {
        "benchmark": "service fast path: binary columnar wire vs JSON, "
                     "WAL group-commit pipelining, 2-worker sharding",
        "config": {"connections": connections, "requests": requests,
                   "elements_per_request": elements, "n_nodes": n_nodes,
                   "query_ratio": query_ratio, "seed": seed,
                   "trials": trials,
                   "cpu_count": os.cpu_count() or 1,
                   "python": platform.python_version(),
                   "machine": platform.machine(),
                   "full_scale": full_scale},
        "target": "binary wire >= 2x JSON elements/s at equal "
                  "concurrency; group-commit durable >= 0.90x plain; "
                  "--workers 2 >= 1.5x req/s on a multi-core runner "
                  "with bit-identical per-tenant state on any runner",
    }
    record["wire"] = _phase_wire(
        connections=connections, requests=requests, elements=elements,
        n_nodes=n_nodes, query_ratio=query_ratio, seed=seed,
        trials=trials)
    with tempfile.TemporaryDirectory(dir=data_dir) as tmp:
        record["group_commit"] = _phase_group_commit(
            connections=connections, requests=requests,
            elements=elements, n_nodes=n_nodes, seed=seed,
            data_dir=os.path.join(tmp, "wal"), trials=trials)
    record["workers"] = _phase_workers(
        connections=connections, requests=max(requests // 2, 64),
        elements=elements, n_nodes=n_nodes, seed=seed)
    return record


def validate_record(record: Dict, filename: str = "BENCH_wire.json") -> None:
    """Schema + gate check (registered in validate_bench_records.py)."""
    def require(holder, key, kind):
        if key not in holder:
            raise ValueError(f"{filename}: missing key {key!r}")
        value = holder[key]
        if not isinstance(value, kind):
            raise ValueError(
                f"{filename}: {key!r} should be "
                f"{getattr(kind, '__name__', kind)}, "
                f"got {type(value).__name__}")
        return value

    config = require(record, "config", dict)
    for key in ("connections", "requests", "elements_per_request"):
        value = require(config, key, int)
        if value < 1:
            raise ValueError(f"{filename}: config.{key} must be >= 1")
    full_scale = require(config, "full_scale", bool)

    wire = require(record, "wire", dict)
    for mode in ("json", "binary"):
        row = require(wire, mode, dict)
        require(row, "wire", str)
        for key in ("req_per_s", "elements_per_s"):
            if require(row, key, (int, float)) <= 0:
                raise ValueError(
                    f"{filename}: wire.{mode}.{key} must be positive")
        if require(row, "errors", int) != 0:
            raise ValueError(
                f"{filename}: wire.{mode} run had request errors")
        if require(row, "shutdown_clean", bool) is not True:
            raise ValueError(
                f"{filename}: wire.{mode} server did not shut down "
                f"cleanly")
        require(row, "sheds", dict)
    wire_ratio = require(wire, "elements_ratio", (int, float))
    if full_scale and wire_ratio < 2.0:
        raise ValueError(
            f"{filename}: wire.elements_ratio {wire_ratio} is below the "
            f"2x gate (binary columnar must double JSON throughput)")

    group = require(record, "group_commit", dict)
    for mode in ("plain", "durable"):
        row = require(group, mode, dict)
        if require(row, "errors", int) != 0:
            raise ValueError(
                f"{filename}: group_commit.{mode} run had request errors")
        if require(row, "shutdown_clean", bool) is not True:
            raise ValueError(
                f"{filename}: group_commit.{mode} server did not shut "
                f"down cleanly")
    gc_ratio = require(group, "ratio", (int, float))
    if full_scale and gc_ratio < 0.90:
        raise ValueError(
            f"{filename}: group_commit.ratio {gc_ratio} is below the "
            f"0.90 gate (group commit must hold durable throughput at "
            f">= 0.90x plain)")

    workers = require(record, "workers", dict)
    for mode in ("one_worker", "two_workers"):
        row = require(workers, mode, dict)
        if require(row, "errors", int) != 0:
            raise ValueError(
                f"{filename}: workers.{mode} run had request errors")
        if require(row, "shutdown_clean", bool) is not True:
            raise ValueError(
                f"{filename}: workers.{mode} server did not shut down "
                f"cleanly")
    if require(workers, "state_identical", bool) is not True:
        raise ValueError(
            f"{filename}: sharded state diverged from single-worker "
            f"replay (sharding must never change results)")
    speedup = require(workers, "speedup", (int, float))
    if (full_scale and require(workers, "multi_core", bool)
            and speedup < 1.5):
        raise ValueError(
            f"{filename}: workers.speedup {speedup} is below the 1.5x "
            f"gate on a multi-core runner")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the binary wire protocol, WAL group "
                    "commit, and sharded workers")
    parser.add_argument("--connections", type=int, default=16)
    parser.add_argument("--requests", type=int, default=768)
    parser.add_argument("--elements", type=int, default=2048)
    parser.add_argument("--nodes", type=int, default=65536)
    parser.add_argument("--query-ratio", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--trials", type=int, default=3,
                        help="best-of trials per measured mode")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: small load, conservative floors, "
                             "no ratio gates (full_scale=false)")
    parser.add_argument("--out", default=None,
                        help="write the JSON record here (default: stdout)")
    args = parser.parse_args(argv)

    if args.smoke:
        record = run(connections=8, requests=192, elements=256,
                     n_nodes=4096, query_ratio=args.query_ratio,
                     seed=args.seed, trials=1, full_scale=False)
    else:
        record = run(connections=args.connections, requests=args.requests,
                     elements=args.elements, n_nodes=args.nodes,
                     query_ratio=args.query_ratio, seed=args.seed,
                     trials=args.trials)
    validate_record(record, "bench_wire run")

    wire = record["wire"]
    print(f"json wire:   {wire['json']['elements_per_s']:>12,.0f} "
          f"elements/s  {wire['json']['req_per_s']:>8,.0f} req/s")
    print(f"binary wire: {wire['binary']['elements_per_s']:>12,.0f} "
          f"elements/s  {wire['binary']['req_per_s']:>8,.0f} req/s")
    print(f"wire ratio:  {wire['elements_ratio']}x elements/s")
    group = record["group_commit"]
    print(f"plain:       {group['plain']['elements_per_s']:>12,.0f} "
          f"elements/s")
    print(f"durable:     {group['durable']['elements_per_s']:>12,.0f} "
          f"elements/s  (group commit, ratio {group['ratio']})")
    workers = record["workers"]
    print(f"1 worker:    {workers['one_worker']['req_per_s']:>8,.1f} "
          f"req/s")
    print(f"2 workers:   {workers['two_workers']['req_per_s']:>8,.1f} "
          f"req/s  (speedup {workers['speedup']}x, "
          f"state_identical={workers['state_identical']}, "
          f"multi_core={workers['multi_core']})")

    if args.smoke:
        problems = []
        binary = wire["binary"]
        if binary["elements_per_s"] < SMOKE_MIN_ELEMENTS_PER_S:
            problems.append(
                f"binary {binary['elements_per_s']:,.0f} elements/s "
                f"below the {SMOKE_MIN_ELEMENTS_PER_S:,.0f} smoke floor")
        if wire["elements_ratio"] < SMOKE_MIN_WIRE_RATIO:
            problems.append(
                f"binary/json ratio {wire['elements_ratio']} below the "
                f"{SMOKE_MIN_WIRE_RATIO}x smoke floor")
        if group["ratio"] < SMOKE_MIN_DURABLE_RATIO:
            problems.append(
                f"durable/plain ratio {group['ratio']} below the "
                f"{SMOKE_MIN_DURABLE_RATIO} smoke floor")
        if not workers["state_identical"]:
            problems.append("sharded state diverged from single-worker "
                            "replay")
        if problems:
            for problem in problems:
                print(f"SMOKE FAIL: {problem}")
            return 1
        print("smoke ok: binary wire, group commit, sharded workers, "
              "clean shutdowns")

    text = json.dumps(record, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
