"""Fig. 8: edge-weight distributions of the three datasets.

Expected shape (paper Figs. 8(a-c)): Zipfian -- the lightest buckets hold
orders of magnitude more edges than the heaviest.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.exp1_edge import fig8_weight_distribution
from repro.experiments.report import print_table


@pytest.mark.parametrize("dataset", ["dblp", "ipflow", "gtgraph"])
def test_fig8(benchmark, scale, dataset):
    rows = run_once(benchmark,
                    lambda: fig8_weight_distribution(dataset, scale,
                                                     buckets=10))
    print_table(f"Fig. 8 -- edge-weight distribution ({dataset}, {scale})",
                ["bucket", "min w", "max w", "edges"], rows)
    minima = [row[1] for row in rows]
    assert minima == sorted(minima)
    # Heavy tail: the top bucket's max dwarfs the bottom bucket's min.
    assert rows[-1][2] >= 10 * rows[0][1]
