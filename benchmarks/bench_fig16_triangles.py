"""Fig. 16: heavy triangle connections via the extended sketch.

Expected shape (paper Fig. 16): for each detected heavy collaboration,
most of the reported top-5 common collaborators are genuine (the paper's
manual check: 4 of 5 for Aggarwal-Yu).
"""

from benchmarks.conftest import run_once
from repro.experiments.exp4_graph import fig16_heavy_triangles
from repro.experiments.report import print_table


def test_fig16(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: fig16_heavy_triangles(scale, d=5, k=5, l=5))
    print_table(f"Fig. 16 -- heavy triangle connections (dblp, {scale})",
                ["heavy edge", "hits", "top-5 connections"], rows)
    assert len(rows) == 5
    fractions = []
    for _, hits, _ in rows:
        if hits == "n/a":
            continue
        num, den = hits.split("/")
        fractions.append(int(num) / max(int(den), 1))
    assert fractions, "no heavy edge had any true connections to score"
    assert sum(fractions) / len(fractions) >= 0.5
