"""Ablation: aggregation functions (paper Section 3.3).

The sketch supports sum/count/min/max cell aggregation; this bench
verifies their per-update costs are all O(1)-comparable and their
estimate semantics diverge the way the model predicts on one stream.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.experiments import datasets
from repro.experiments.report import print_table


@pytest.mark.parametrize("aggregation", list(Aggregation))
def test_update_cost_per_aggregation(benchmark, scale, aggregation):
    stream = datasets.ipflow(scale)
    edges = [(e.source, e.target, e.weight) for e in stream][:1500]
    tcm = TCM(d=3, width=64, seed=1, aggregation=aggregation)

    def ingest_batch():
        for s, t, w in edges:
            tcm.update(s, t, w)

    benchmark(ingest_batch)


def test_aggregation_semantics(benchmark, scale):
    def run():
        stream = datasets.ipflow(scale)
        edge = max(stream.distinct_edges,
                   key=lambda e: stream.edge_weight(*e))
        rows = []
        for aggregation in Aggregation:
            tcm = TCM(d=3, width=96, seed=2, aggregation=aggregation)
            for element in stream:
                tcm.update(element.source, element.target, element.weight)
            rows.append((aggregation.value, tcm.edge_weight(*edge)))
        return rows

    rows = run_once(benchmark, run)
    print_table(f"Ablation -- aggregation semantics on the heaviest edge "
                f"(ipflow, {scale})", ["aggregation", "estimate"], rows)
    by_name = dict(rows)
    assert by_name["min"] <= by_name["max"] <= by_name["sum"]
    assert by_name["count"] >= 1
