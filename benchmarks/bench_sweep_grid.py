"""Extension: the full (ratio x d) accuracy grid and sizing search.

Beyond the paper's one-axis figures -- the grid both axes sweep, plus the
deployment question it answers: the cheapest configuration meeting an
error budget.  Sanity: ARE must be monotone along both axes.
"""

from benchmarks.conftest import run_once
from repro.experiments.sweeps import accuracy_grid, cheapest_configuration
from repro.experiments.report import print_table

D_VALUES = (1, 3, 5)


def test_accuracy_grid(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: accuracy_grid("gtgraph", scale,
                                          d_values=D_VALUES))
    print_table(f"Extension -- edge-query ARE grid, TCM (gtgraph, {scale})",
                ["ratio"] + [f"d={d}" for d in D_VALUES], rows)
    # Monotone in d within every ratio row...
    for row in rows:
        errors = list(row[1:])
        assert errors == sorted(errors, reverse=True)
    # ...and monotone in compression within every d column.
    for column in range(1, len(D_VALUES) + 1):
        errors = [row[column] for row in rows]
        assert errors == sorted(errors)


def test_cheapest_configuration(benchmark, scale):
    result = run_once(benchmark,
                      lambda: cheapest_configuration("gtgraph", 1.0, scale,
                                                     d_values=D_VALUES))
    headers = ["ratio", "d", "achieved ARE", "total cells"]
    if result is None:
        print_table("Extension -- cheapest config for ARE <= 1.0",
                    headers, [("none", "-", "-", "-")])
    else:
        ratio, d, are, cells = result
        print_table("Extension -- cheapest config for ARE <= 1.0 (gtgraph)",
                    headers, [(f"1/{round(1 / ratio)}", d, are, cells)])
        assert are <= 1.0
