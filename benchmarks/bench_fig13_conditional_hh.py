"""Fig. 13: conditional heavy hitters on the DBLP-like stream.

Expected shape (paper Fig. 13): the detected top-k authors are largely
the true most-productive authors, and 3-5 of each author's reported top-5
collaborators are genuine (the paper manually verified 3/5 in top-5 plus
2 more in top-10 for H. Vincent Poor).
"""

from benchmarks.conftest import run_once
from repro.experiments.exp2_heavy import fig13_conditional_heavy_hitters
from repro.experiments.report import print_table


def test_fig13(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: fig13_conditional_heavy_hitters(scale, d=5,
                                                            k=5, l=5))
    print_table(f"Fig. 13 -- conditional heavy hitters (dblp, {scale})",
                ["author", "est. flow", "true top-k?", "collab hits",
                 "top-5 collaborators"], rows)
    assert len(rows) == 5
    true_topk = sum(1 for row in rows if row[2])
    assert true_topk >= 2
    hit_counts = [int(row[3].split("/")[0]) for row in rows]
    assert sum(hit_counts) >= 10  # on average >= 2 of 5 collaborators real
