"""Extension: heavy-hitter method shoot-out.

The paper compares TCM with CountMin and sampling (Fig. 11); this bench
adds the two dedicated top-k algorithms from the wider literature --
Space-Saving and the bounded reservoir -- on one workload, measuring
top-k intersection accuracy at matched space.
"""

from benchmarks.conftest import run_once
from repro.baselines.sampling import ReservoirEdgeSample
from repro.baselines.spacesaving import SpaceSavingEdges
from repro.core.heavy_hitters import HeavyEdgeMonitor
from repro.core.tcm import TCM
from repro.experiments import datasets
from repro.experiments.common import cells_for_ratio
from repro.experiments.report import print_table
from repro.metrics.topk import intersection_accuracy, topk_items

K = 50


def test_heavy_edge_method_comparison(benchmark, scale):
    def run():
        stream = datasets.ipflow(scale)
        cells = cells_for_ratio(stream, datasets.FIXED_RATIO["ipflow"])
        truth = topk_items(stream.top_edges(K), K)

        tcm = TCM.from_space(cells, 5, seed=7, directed=True)
        monitor = HeavyEdgeMonitor(tcm, K)
        monitor.consume(stream)

        space_saving = SpaceSavingEdges(k=cells)  # one counter per cell
        space_saving.ingest(stream)

        reservoir = ReservoirEdgeSample(cells, seed=7)
        reservoir.ingest(stream)

        return [
            ("TCM monitor", intersection_accuracy(
                topk_items(monitor.top(), K), truth, K)),
            ("Space-Saving", intersection_accuracy(
                topk_items(space_saving.top_edges(K), K), truth, K)),
            ("reservoir sample", intersection_accuracy(
                topk_items(reservoir.top_edges(K), K), truth, K)),
        ]

    rows = run_once(benchmark, run)
    print_table(f"Extension -- heavy-edge methods at matched space "
                f"(ipflow, {scale}, k={K})",
                ["method", "intersection accuracy"], rows)
    accuracies = dict(rows)
    # All methods resolve the bulk of the top-k at this space budget; the
    # general-purpose TCM holds its own against the dedicated structures.
    assert accuracies["Space-Saving"] >= 0.6
    assert accuracies["TCM monitor"] >= 0.6
