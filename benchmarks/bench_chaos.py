"""Chaos harness: the durable sketch service under crashes and overload.

Four phases, each against real ``tcm serve`` subprocesses:

1. **wal_overhead** -- identical closed-loop ingest against a plain
   server and a durable one (``--data-dir --fsync interval``).  The WAL
   costs one columnar write (+ group fsync) per coalesced batch, so the
   committed gate is durable >= 0.75x plain elements/s.
2. **crash_recovery** -- ``--fsync always``, a deterministic acked
   ingest sequence, then SIGKILL, a garbage tail appended to the live
   WAL segment (the torn frame a mid-append crash leaves), and a
   restart.  The recovered server must answer a probe workload
   **identically** to an uncrashed in-driver reference, having
   discarded the torn tail; recovery time is recorded.
3. **overload** -- open-loop arrivals at 5x the measured sustainable
   closed-loop rate.  The server must stay up, shed with 429s, and keep
   the p99 *service* latency of the requests it accepts within 3x the
   uncontended p99 (degradation means answering less, not answering
   everything slowly) -- then still shut down cleanly on SIGTERM.
4. **fault_soak** -- injected storage faults via ``REPRO_FAULT_PLAN``:
   a deterministic ``kill -9`` mid-flush (``crash_after_records``; the
   WAL prefix including the in-flight record must recover -- acked work
   exactly once, in-flight work at least once), and a dying disk
   (``fail_fsync_after``; ingest degrades to 503s, the process stays
   up and still exits 0 on SIGTERM).

Writes the committed ``BENCH_chaos.json``::

    python benchmarks/bench_chaos.py --out BENCH_chaos.json

``--smoke`` is the CI mode: tiny load, correctness gates only (recovery
bit-identity is scale-independent), no performance gates.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import os
import platform
import re
import signal
import socket
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

import numpy as np  # noqa: E402

_LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")
_RECOVERY_RE = re.compile(
    r"recovered (\d+) tenants, (\d+) WAL records \((\d+) elements, "
    r"(\d+) torn frames\) in ([\d.]+)s")

_EXIT_KILLED = 137

SKETCH_CONFIG = {"kind": "tcm", "d": 3, "width": 128, "seed": 17}


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ServerProc:
    """One ``tcm serve`` subprocess with readiness + recovery parsing."""

    def __init__(self, *extra: str, data_dir: Optional[str] = None,
                 fault_plan: Optional[Dict] = None):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        if fault_plan is not None:
            env["REPRO_FAULT_PLAN"] = json.dumps(fault_plan)
        else:
            env.pop("REPRO_FAULT_PLAN", None)
        self.port = _free_port()
        argv = [sys.executable, "-m", "repro", "serve", "--host",
                "127.0.0.1", "--port", str(self.port), "--no-obs"]
        if data_dir is not None:
            argv += ["--data-dir", str(data_dir)]
        argv += list(extra)
        self.proc = subprocess.Popen(
            argv, env=env, cwd=REPO_ROOT, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        self.recovery: Optional[Dict] = None
        self.boot_seconds: Optional[float] = None

    def wait_ready(self, timeout: float = 60.0) -> "ServerProc":
        started = time.monotonic()
        deadline = started + timeout
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"server exited during boot "
                    f"(exit code {self.proc.poll()})")
            if _LISTEN_RE.search(line):
                self.boot_seconds = time.monotonic() - started
                return self
            match = _RECOVERY_RE.search(line)
            if match:
                self.recovery = {
                    "tenants": int(match.group(1)),
                    "records": int(match.group(2)),
                    "elements": int(match.group(3)),
                    "torn_frames": int(match.group(4)),
                    "seconds": float(match.group(5)),
                }
        raise RuntimeError("server never reported readiness")

    def read_recovery_line(self, timeout: float = 30.0) -> Dict:
        """The durable boot prints recovery right after the listen line."""
        if self.recovery is not None:
            return self.recovery
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            match = _RECOVERY_RE.search(line)
            if match:
                self.recovery = {
                    "tenants": int(match.group(1)),
                    "records": int(match.group(2)),
                    "elements": int(match.group(3)),
                    "torn_frames": int(match.group(4)),
                    "seconds": float(match.group(5)),
                }
                return self.recovery
        raise RuntimeError("server never printed its recovery summary")

    def alive(self) -> bool:
        try:
            status, _ = self.call("GET", "/healthz")
            return status == 200
        except OSError:
            return False

    def call(self, method: str, path: str,
             body: Optional[Dict] = None,
             timeout: float = 30.0) -> Tuple[int, Optional[Dict]]:
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=timeout)
        try:
            conn.request(method, path,
                         body=None if body is None else json.dumps(body),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = response.read()
        finally:
            conn.close()
        return response.status, (json.loads(data) if data else None)

    def kill(self) -> int:
        self.proc.kill()
        return self.proc.wait(timeout=30)

    def shutdown(self, timeout: float = 60.0) -> bool:
        """SIGTERM; True when the process drained and exited 0."""
        if self.proc.poll() is not None:
            return self.proc.returncode == 0
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=timeout)
            return False
        self.proc.stdout.read()
        return self.proc.returncode == 0


def _deterministic_batches(n_batches: int, elements: int,
                           n_nodes: int, seed: int) \
        -> List[Tuple[List[int], List[int], List[float]]]:
    rng = np.random.default_rng(seed)
    return [(rng.integers(0, n_nodes, elements).tolist(),
             rng.integers(0, n_nodes, elements).tolist(),
             rng.integers(1, 6, elements).astype(float).tolist())
            for _ in range(n_batches)]


def _probes(n_nodes: int, count: int, seed: int) -> List[List[int]]:
    rng = np.random.default_rng(seed + 1)
    return [[int(a), int(b)] for a, b in
            zip(rng.integers(0, n_nodes, count),
                rng.integers(0, n_nodes, count))]


def _reference_answers(batches, probes) -> List[float]:
    from repro.core.tcm import TCM

    reference = TCM(d=SKETCH_CONFIG["d"], width=SKETCH_CONFIG["width"],
                    seed=SKETCH_CONFIG["seed"])
    for sources, targets, weights in batches:
        reference.ingest_columns(sources, targets, weights)
    return reference.edge_weights(
        [(a, b) for a, b in probes]).tolist()


def _loadgen(port: int, **kwargs) -> Dict:
    from repro.server.loadgen import run_loadgen

    return asyncio.run(run_loadgen("127.0.0.1", port, **kwargs))


# -- phase 1: WAL overhead --------------------------------------------------

def phase_wal_overhead(data_root: str, *, connections: int, requests: int,
                       elements: int, trials: int = 3) -> Dict:
    # Alternate plain/durable trials and keep each mode's best run so a
    # transient stall on the shared box does not land on one mode only.
    runs: Dict[str, List[Dict]] = {"plain": [], "durable": []}
    for trial in range(trials):
        for label, extra in (
                ("plain", ()),
                ("durable", ("--fsync", "interval"))):
            data_dir = (os.path.join(data_root, f"overhead-{trial}")
                        if label == "durable" else None)
            server = ServerProc(*extra, data_dir=data_dir).wait_ready()
            try:
                summary = _loadgen(
                    server.port, sketch="bench", connections=connections,
                    requests=requests, elements=elements, n_nodes=65536,
                    query_ratio=0.0, seed=7)
            except BaseException:
                server.kill()
                raise
            clean = server.shutdown()
            runs[label].append({
                "elements_per_s": summary["elements_per_s"],
                "req_per_s": summary["req_per_s"],
                "latency_ms": summary["latency_ms"],
                "errors": summary["errors"],
                "shutdown_clean": clean,
            })

    def best(label: str) -> Dict:
        clean_runs = [r for r in runs[label]
                      if not r["errors"] and r["shutdown_clean"]]
        pool = clean_runs or runs[label]
        return max(pool, key=lambda r: r["elements_per_s"])

    results = {"plain": best("plain"), "durable": best("durable")}
    ratio = (results["durable"]["elements_per_s"]
             / max(results["plain"]["elements_per_s"], 1e-9))
    return {"fsync": "interval", "trials": trials,
            "plain": results["plain"], "durable": results["durable"],
            "ratio": round(ratio, 3)}


# -- phase 2: SIGKILL + torn tail + recovery --------------------------------

def phase_crash_recovery(data_root: str, *, batches: int,
                         elements: int) -> Dict:
    data_dir = os.path.join(data_root, "crash")
    workload = _deterministic_batches(batches, elements, 4096, seed=23)
    probes = _probes(4096, 64, seed=23)

    server = ServerProc("--fsync", "always",
                        data_dir=data_dir).wait_ready()
    try:
        status, _ = server.call("PUT", "/sketches/crashy", SKETCH_CONFIG)
        assert status == 201, f"create failed: {status}"
        for sources, targets, weights in workload:
            status, body = server.call(
                "POST", "/sketches/crashy/ingest",
                {"sources": sources, "targets": targets,
                 "weights": weights})
            assert status == 200 and body["ingested"] == elements
    finally:
        # Everything above was ACKED under --fsync always: all of it
        # must survive this.
        server.kill()

    # A crash mid-append leaves a torn tail; recovery must discard it.
    from repro.server.durability import list_segments
    from repro.server.faults import append_garbage
    tenant_dir = os.path.join(data_dir, "tenants", "crashy")
    _, live_segment = list_segments(tenant_dir)[-1]
    append_garbage(live_segment, nbytes=57, seed=9)

    restarted = ServerProc("--fsync", "always",
                           data_dir=data_dir).wait_ready()
    try:
        recovery = restarted.read_recovery_line()
        status, body = restarted.call(
            "POST", "/sketches/crashy/query",
            {"kind": "edge", "pairs": probes})
        assert status == 200, f"post-recovery query failed: {status}"
        answers = body["values"]
        clean = True
    except BaseException:
        restarted.kill()
        raise
    else:
        clean = restarted.shutdown()
    expected = _reference_answers(workload, probes)
    return {
        "acked_batches": batches,
        "elements_per_batch": elements,
        "identical": answers == expected,
        "torn_frames_discarded": recovery["torn_frames"],
        "replayed_records": recovery["records"],
        "recovery_seconds": recovery["seconds"],
        "restart_boot_seconds": round(restarted.boot_seconds, 3),
        "shutdown_clean": clean,
    }


# -- phase 3: open-loop overload --------------------------------------------

def phase_overload(data_root: str, *, baseline_connections: int,
                   pool_connections: int, connection_cap: int,
                   baseline_requests: int, elements: int,
                   overload_seconds: float, smoke: bool) -> Dict:
    # The server is configured the way a production deployment facing
    # overload would be: a connection cap (excess connections get an
    # instant 503 + Retry-After instead of growing the event-loop sweep),
    # a loop-lag admission limit, and a bounded coalescer backlog so an
    # admitted ingest never queues behind more than ~one flush round.
    server = ServerProc(
        "--lag-limit-ms", "25", "--max-backlog", "16384",
        "--max-connections", str(connection_cap)).wait_ready()
    try:
        # Sustainable reference: closed loop, comfortably inside the
        # connection cap -- self-clocking, so it never overloads.
        baseline = _loadgen(
            server.port, sketch="bench", connections=baseline_connections,
            requests=baseline_requests, elements=elements,
            n_nodes=65536, query_ratio=0.0, seed=7, cleanup=True)
        sustainable = baseline["req_per_s"]
        rate = 5.0 * sustainable
        overload_requests = max(64, int(rate * overload_seconds))
        # An open-loop client still needs a free connection to fire each
        # arrival; with only the baseline pool the client itself caps the
        # offered rate at the sustainable one.  Offer from a pool twice
        # the server's cap so the 5x schedule actually reaches it.
        overloaded = _loadgen(
            server.port, sketch="bench", connections=pool_connections,
            requests=overload_requests, elements=elements,
            n_nodes=65536, query_ratio=0.0, seed=11, rate=rate,
            max_retries=0, request_timeout=30.0)
        alive = server.alive()
    except BaseException:
        server.kill()
        raise
    clean = server.shutdown()
    by_class = overloaded["errors_by_class"]
    rejected = by_class.get("http_429", 0)
    shed_503 = by_class.get("http_503", 0)
    hard_errors = sum(count for key, count in by_class.items()
                      if key not in ("http_429", "http_503"))
    baseline_p99 = max(baseline["accepted_latency_ms"]["p99"], 0.1)
    p99_ratio = overloaded["accepted_latency_ms"]["p99"] / baseline_p99
    return {
        "server": {"lag_limit_ms": 25, "max_backlog": 16384,
                   "max_connections": connection_cap},
        "baseline": {
            "connections": baseline_connections,
            "req_per_s": sustainable,
            "accepted_p99_ms": baseline["accepted_latency_ms"]["p99"],
            "errors": baseline["errors"],
            "retries": baseline["retries"],
        },
        "offered_rate": round(rate, 1),
        "offered_requests": overload_requests,
        "overload_connections": pool_connections,
        "accepted_requests": overloaded["accepted_requests"],
        "rejected_429": rejected,
        "rejected_503": shed_503,
        "hard_errors": hard_errors,
        "accepted_p99_ms": overloaded["accepted_latency_ms"]["p99"],
        "accepted_p99_ratio": round(p99_ratio, 2),
        "alive_after_overload": alive,
        "shutdown_clean": clean,
        "smoke": smoke,
    }


# -- phase 4: injected storage faults ---------------------------------------

def phase_fault_soak(data_root: str, *, elements: int) -> Dict:
    # (a) deterministic kill -9 mid-flush: the crash fires right after
    # the WAL record of batch ACKED+1 is durable, before its batch is
    # applied or acked.  Recovery must yield batches 1..ACKED+1 -- the
    # acked prefix exactly once, the in-flight record at least once.
    acked = 5
    data_dir = os.path.join(data_root, "soak-crash")
    workload = _deterministic_batches(acked + 2, elements, 2048, seed=31)
    probes = _probes(2048, 48, seed=31)
    server = ServerProc(
        "--fsync", "always", data_dir=data_dir,
        fault_plan={"crash_after_records": acked + 1}).wait_ready()
    acked_ok = 0
    crash_seen = False
    try:
        status, _ = server.call("PUT", "/sketches/soak", SKETCH_CONFIG)
        assert status == 201
        for sources, targets, weights in workload:
            try:
                status, _ = server.call(
                    "POST", "/sketches/soak/ingest",
                    {"sources": sources, "targets": targets,
                     "weights": weights}, timeout=10.0)
            except OSError:
                crash_seen = True
                break
            if status == 200:
                acked_ok += 1
    finally:
        exit_code = server.proc.wait(timeout=30)
    restarted = ServerProc("--fsync", "always",
                           data_dir=data_dir).wait_ready()
    try:
        status, body = restarted.call(
            "POST", "/sketches/soak/query",
            {"kind": "edge", "pairs": probes})
        assert status == 200
        recovered = body["values"]
    finally:
        restarted.shutdown()
    expected = _reference_answers(workload[:acked + 1], probes)
    crash_report = {
        "crash_after_records": acked + 1,
        "acked_before_crash": acked_ok,
        "in_flight_crash_observed": crash_seen,
        "exit_code": exit_code,
        "state_matches_wal_prefix": recovered == expected,
    }

    # (b) dying disk: fsyncs start failing mid-run.  Ingest degrades to
    # 503 (never acked), the process stays up, SIGTERM still exits 0.
    survive = 3
    data_dir = os.path.join(data_root, "soak-fsync")
    server = ServerProc(
        "--fsync", "always", data_dir=data_dir,
        fault_plan={"fail_fsync_after": survive}).wait_ready()
    acked_ok = storage_errors = 0
    try:
        status, _ = server.call("PUT", "/sketches/soak", SKETCH_CONFIG)
        assert status == 201
        for sources, targets, weights in workload:
            status, _ = server.call(
                "POST", "/sketches/soak/ingest",
                {"sources": sources, "targets": targets,
                 "weights": weights})
            if status == 200:
                acked_ok += 1
            elif status == 503:
                storage_errors += 1
        alive = server.alive()
    except BaseException:
        server.kill()
        raise
    clean = server.shutdown()
    fsync_report = {
        "fail_fsync_after": survive,
        "acked_before_failure": acked_ok,
        "storage_errors_503": storage_errors,
        "alive_after_failures": alive,
        "shutdown_clean": clean,
    }
    return {"crash_mid_flush": crash_report, "dying_fsync": fsync_report}


# -- record assembly --------------------------------------------------------

def run(data_root: str, *, connections: int = 16, requests: int = 1024,
        elements: int = 1024, crash_batches: int = 12,
        overload_seconds: float = 4.0, full_scale: bool = True) -> Dict:
    record: Dict = {
        "benchmark": "durable sketch service under chaos: WAL overhead, "
                     "SIGKILL recovery, 5x overload shedding, injected "
                     "storage faults",
        "config": {"connections": connections, "requests": requests,
                   "elements_per_request": elements,
                   "crash_batches": crash_batches,
                   "overload_seconds": overload_seconds,
                   "cpu_count": os.cpu_count() or 1,
                   "python": platform.python_version(),
                   "machine": platform.machine(),
                   "full_scale": full_scale},
        "target": "durable ingest >= 0.75x plain; SIGKILL + torn tail "
                  "recovers bit-identically; 5x open-loop overload is "
                  "shed with 429s while accepted p99 stays <= 3x "
                  "uncontended; injected crash/fsync faults never "
                  "corrupt state or wedge the process",
    }
    record["wal_overhead"] = phase_wal_overhead(
        data_root, connections=connections, requests=requests,
        elements=elements)
    record["crash_recovery"] = phase_crash_recovery(
        data_root, batches=crash_batches, elements=256)
    if full_scale:
        record["overload"] = phase_overload(
            data_root, baseline_connections=32, pool_connections=96,
            connection_cap=48, baseline_requests=2048, elements=512,
            overload_seconds=overload_seconds, smoke=False)
    else:
        record["overload"] = phase_overload(
            data_root, baseline_connections=8, pool_connections=24,
            connection_cap=12, baseline_requests=128, elements=256,
            overload_seconds=overload_seconds, smoke=True)
    record["fault_soak"] = phase_fault_soak(data_root, elements=128)
    return record


def validate_record(record: Dict, filename: str = "BENCH_chaos.json") -> None:
    """Schema + gate check (registered in validate_bench_records.py)."""
    def require(holder, key, kind):
        if key not in holder:
            raise ValueError(f"{filename}: missing key {key!r}")
        value = holder[key]
        if not isinstance(value, kind):
            raise ValueError(
                f"{filename}: {key!r} should be "
                f"{getattr(kind, '__name__', kind)}, "
                f"got {type(value).__name__}")
        return value

    config = require(record, "config", dict)
    full_scale = require(config, "full_scale", bool)

    overhead = require(record, "wal_overhead", dict)
    ratio = require(overhead, "ratio", (int, float))
    for mode in ("plain", "durable"):
        row = require(overhead, mode, dict)
        if require(row, "errors", int) != 0:
            raise ValueError(
                f"{filename}: wal_overhead.{mode} had request errors")
        if require(row, "shutdown_clean", bool) is not True:
            raise ValueError(
                f"{filename}: wal_overhead.{mode} unclean shutdown")
    if full_scale and ratio < 0.75:
        raise ValueError(
            f"{filename}: WAL overhead ratio {ratio} below the 0.75 gate "
            f"(durable ingest must stay within 25% of plain)")

    crash = require(record, "crash_recovery", dict)
    if require(crash, "identical", bool) is not True:
        raise ValueError(
            f"{filename}: crash_recovery.identical is false -- recovery "
            f"did not reproduce the acked pre-crash answers")
    if require(crash, "torn_frames_discarded", int) < 1:
        raise ValueError(
            f"{filename}: the torn-tail injection was not observed")
    if require(crash, "shutdown_clean", bool) is not True:
        raise ValueError(
            f"{filename}: recovered server did not shut down cleanly")
    seconds = require(crash, "recovery_seconds", (int, float))
    if not 0 <= seconds < 60:
        raise ValueError(
            f"{filename}: recovery took {seconds}s (>= 60s bound)")

    overload = require(record, "overload", dict)
    if require(overload, "alive_after_overload", bool) is not True:
        raise ValueError(
            f"{filename}: server died under 5x overload")
    if require(overload, "shutdown_clean", bool) is not True:
        raise ValueError(
            f"{filename}: overloaded server did not shut down cleanly")
    if require(overload, "hard_errors", int) != 0:
        raise ValueError(
            f"{filename}: overload produced non-shed errors "
            f"(connection drops / 5xx)")
    if full_scale:
        if require(overload, "rejected_429", int) < 1:
            raise ValueError(
                f"{filename}: 5x overload shed no 429s -- either the "
                f"rate was not an overload or admission control is off")
        p99_ratio = require(overload, "accepted_p99_ratio", (int, float))
        if p99_ratio > 3.0:
            raise ValueError(
                f"{filename}: accepted p99 under overload is "
                f"{p99_ratio}x uncontended (gate: <= 3x)")

    soak = require(record, "fault_soak", dict)
    crash_soak = require(soak, "crash_mid_flush", dict)
    if require(crash_soak, "exit_code", int) != _EXIT_KILLED:
        raise ValueError(
            f"{filename}: crash injection exited "
            f"{crash_soak['exit_code']}, expected {_EXIT_KILLED}")
    if require(crash_soak, "state_matches_wal_prefix", bool) is not True:
        raise ValueError(
            f"{filename}: recovery after kill-mid-flush does not match "
            f"the durable WAL prefix (acked + in-flight record)")
    fsync_soak = require(soak, "dying_fsync", dict)
    if require(fsync_soak, "alive_after_failures", bool) is not True:
        raise ValueError(
            f"{filename}: server died when fsync started failing")
    if require(fsync_soak, "storage_errors_503", int) < 1:
        raise ValueError(
            f"{filename}: dying-fsync injection produced no 503s")
    if require(fsync_soak, "shutdown_clean", bool) is not True:
        raise ValueError(
            f"{filename}: server with a dying disk did not exit 0 on "
            f"SIGTERM")


def main(argv: Optional[Sequence[str]] = None) -> int:
    import tempfile

    parser = argparse.ArgumentParser(
        description="chaos-test the durable sketch service")
    parser.add_argument("--connections", type=int, default=16)
    parser.add_argument("--requests", type=int, default=1024)
    parser.add_argument("--elements", type=int, default=1024)
    parser.add_argument("--crash-batches", type=int, default=12)
    parser.add_argument("--overload-seconds", type=float, default=4.0)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: tiny load, correctness gates only "
                             "(full_scale=false)")
    parser.add_argument("--out", default=None,
                        help="write the JSON record here (default: stdout)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-chaos-") as data_root:
        if args.smoke:
            record = run(data_root, connections=8, requests=128,
                         elements=256, crash_batches=6,
                         overload_seconds=1.5, full_scale=False)
        else:
            record = run(data_root, connections=args.connections,
                         requests=args.requests, elements=args.elements,
                         crash_batches=args.crash_batches,
                         overload_seconds=args.overload_seconds)
    validate_record(record, "bench_chaos run")

    overhead = record["wal_overhead"]
    print(f"wal overhead: durable {overhead['durable']['elements_per_s']:,.0f}"
          f" vs plain {overhead['plain']['elements_per_s']:,.0f} elements/s"
          f" (ratio {overhead['ratio']})")
    crash = record["crash_recovery"]
    print(f"crash recovery: identical={crash['identical']} "
          f"({crash['replayed_records']} records, "
          f"{crash['torn_frames_discarded']} torn frames discarded, "
          f"{crash['recovery_seconds']:.3f}s)")
    overload = record["overload"]
    print(f"overload: {overload['offered_rate']:,.0f} req/s offered, "
          f"{overload['accepted_requests']} accepted, "
          f"{overload['rejected_429']} shed 429, accepted p99 "
          f"{overload['accepted_p99_ratio']}x baseline, "
          f"alive={overload['alive_after_overload']}")
    soak = record["fault_soak"]
    print(f"fault soak: kill-mid-flush recovered="
          f"{soak['crash_mid_flush']['state_matches_wal_prefix']}, "
          f"dying fsync 503s={soak['dying_fsync']['storage_errors_503']} "
          f"clean-exit={soak['dying_fsync']['shutdown_clean']}")

    text = json.dumps(record, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
