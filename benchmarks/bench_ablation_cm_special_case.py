"""Ablation: CountMin is a degenerate TCM (paper Section 5.1.3).

A TCM whose sketches are ``w x 1`` matrices answers source-flow queries
exactly like a CountMin over source labels -- same estimates, same cost
class.  This bench verifies the equivalence and compares their update
costs.
"""

from benchmarks.conftest import run_once
from repro.core.graph_sketch import GraphSketch
from repro.experiments import datasets
from repro.experiments.report import print_table
from repro.hashing.family import HashFamily


def test_degenerate_tcm_equals_countmin(benchmark, scale):
    def run():
        stream = datasets.ipflow(scale)
        mismatches = 0
        family = HashFamily([512, 1, 512], seed=13)
        degenerate = GraphSketch(family[0], family[1])  # 512 x 1 matrix

        from repro.baselines.countmin import CountMinSketch
        cm = CountMinSketch(1, 512, seed=None)
        cm._family._functions = (family[0],)  # identical hash

        for edge in stream:
            degenerate.update(edge.source, edge.target, edge.weight)
            cm.update(edge.source, edge.weight)
        for node in stream.nodes:
            if degenerate.out_flow(node) != cm.estimate(node):
                mismatches += 1
        return mismatches, len(stream.nodes)

    mismatches, nodes = run_once(benchmark, run)
    print_table("Ablation -- w x 1 TCM vs CountMin (source flows)",
                ["nodes compared", "mismatches"], [(nodes, mismatches)])
    assert mismatches == 0
