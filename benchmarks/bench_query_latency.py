"""Query-engine latency benchmark: cold/warm cache vs the scalar baseline.

Measures per-query latency of the epoch-cached query engine on an R-MAT
stream for the three serving-path families -- reachability, node flows
and shortest paths -- against the pre-engine scalar implementations
(fresh per-call BFS / per-sketch Python loops).  Cold numbers include
the index build; warm numbers are steady state.  Writes the committed
``BENCH_query_latency.json`` record::

    python benchmarks/bench_query_latency.py --out BENCH_query_latency.json

Also runs (tiny scale) as part of ``make bench`` / ``make bench-query``
via the pytest smoke test at the bottom, which validates the JSON schema
and that the engine actually wins.

Methodology: one TCM is built per run; every mode answers the *same*
query workload.  Scalar baselines re-create the pre-engine code paths
inline (the TCM scalar APIs now delegate to the engine, so they cannot
serve as their own baseline).  Cold timings use a fresh
:class:`QueryEngine` so the first batched call pays the full index
build; warm timings repeat the call against the now-populated cache.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analytics.paths import shortest_path_weight as _dijkstra
from repro.analytics.reachability import reach as _reach
from repro.analytics.views import SketchView
from repro.core.query_engine import QueryEngine
from repro.core.tcm import TCM
from repro.streams.generators import rmat_edges

#: Schema of the emitted record: key -> type of the value (dict values
#: are themselves flat {str: number} maps).  CI validates against this.
RECORD_SCHEMA = {
    "benchmark": str,
    "config": dict,
    "n_queries": dict,
    "cold_seconds": dict,
    "warm_seconds": dict,
    "baseline_seconds": dict,
    "warm_per_query_us": dict,
    "speedups": dict,
    "cache_stats": dict,
}

#: Required entries of the ``speedups`` map (warm engine vs scalar).
SPEEDUP_KEYS = ("reachable_warm", "reachable_scalar_warm", "flow_batch",
                "shortest_path_batch")


def build_tcm(n_edges: int, n_nodes: int, d: int, width: int,
              seed: int) -> TCM:
    tcm = TCM(d=d, width=width, seed=seed, directed=True)
    tcm.ingest(rmat_edges(n_nodes, n_edges, seed=seed))
    return tcm


def sample_queries(n_nodes: int, n_pairs: int, n_flow: int, n_shortest: int,
                   seed: int) -> Tuple[List[Tuple[int, int]], List[int],
                                       List[Tuple[int, int]]]:
    """Uniform node-id workloads (R-MAT labels are integers)."""
    rng = np.random.default_rng(seed + 1)
    pairs = list(zip(rng.integers(0, n_nodes, n_pairs).tolist(),
                     rng.integers(0, n_nodes, n_pairs).tolist()))
    flow_nodes = rng.integers(0, n_nodes, n_flow).tolist()
    # Few distinct sources: shortest-path queries share relaxations.
    sources = rng.integers(0, n_nodes, max(1, n_shortest // 8)).tolist()
    shortest = [(sources[i % len(sources)], t) for i, t in
                enumerate(rng.integers(0, n_nodes, n_shortest).tolist())]
    return pairs, flow_nodes, shortest


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# -- the pre-engine scalar baselines (inlined old implementations) ----------


def scalar_reachable(tcm: TCM, source, target) -> bool:
    for sketch in tcm.sketches:
        view = SketchView(sketch)
        if not _reach(view, view.node_of(source), view.node_of(target)):
            return False
    return True


def scalar_out_flow(tcm: TCM, node) -> float:
    return min(sketch.out_flow(node) for sketch in tcm.sketches)


def scalar_shortest(tcm: TCM, source, target) -> float:
    best = 0.0
    for sketch in tcm.sketches:
        view = SketchView(sketch)
        best = max(best, _dijkstra(view, view.node_of(source),
                                   view.node_of(target)))
    return best


def measure(tcm: TCM, pairs, flow_nodes, shortest) -> Dict:
    cold: Dict[str, float] = {}
    warm: Dict[str, float] = {}
    baseline: Dict[str, float] = {}

    # Reachability: fresh engine pays the connectivity-index build (cold),
    # the repeats are pure probes (warm).
    engine = QueryEngine(tcm)
    cold["reachable_batch"] = _timed(lambda: engine.reachable_many(pairs))
    warm["reachable_batch"] = _timed(lambda: engine.reachable_many(pairs))
    tcm._query_engine = engine  # scalar delegation hits the warm cache
    warm["reachable_scalar"] = _timed(
        lambda: [tcm.reachable(a, b) for a, b in pairs])
    baseline["reachable_scalar_bfs"] = _timed(
        lambda: [scalar_reachable(tcm, a, b) for a, b in pairs])

    engine = QueryEngine(tcm)
    cold["flow_batch"] = _timed(lambda: engine.out_flow_many(flow_nodes))
    warm["flow_batch"] = _timed(lambda: engine.out_flow_many(flow_nodes))
    baseline["flow_scalar"] = _timed(
        lambda: [scalar_out_flow(tcm, n) for n in flow_nodes])

    engine = QueryEngine(tcm)
    cold["shortest_path_batch"] = _timed(
        lambda: engine.shortest_path_weight_many(shortest))
    warm["shortest_path_batch"] = _timed(
        lambda: engine.shortest_path_weight_many(shortest))
    baseline["shortest_scalar_dijkstra"] = _timed(
        lambda: [scalar_shortest(tcm, a, b) for a, b in shortest])

    def per_query(seconds: float, n: int) -> float:
        return round(1e6 * seconds / n, 3) if n else 0.0

    return {
        "n_queries": {"reachable": len(pairs), "flow": len(flow_nodes),
                      "shortest_path": len(shortest)},
        "cold_seconds": {k: round(v, 6) for k, v in cold.items()},
        "warm_seconds": {k: round(v, 6) for k, v in warm.items()},
        "baseline_seconds": {k: round(v, 6) for k, v in baseline.items()},
        "warm_per_query_us": {
            "reachable_batch": per_query(warm["reachable_batch"], len(pairs)),
            "reachable_scalar": per_query(warm["reachable_scalar"],
                                          len(pairs)),
            "flow_batch": per_query(warm["flow_batch"], len(flow_nodes)),
            "shortest_path_batch": per_query(warm["shortest_path_batch"],
                                             len(shortest)),
        },
        "speedups": {
            # Warm batched engine vs the per-call scalar BFS baseline.
            "reachable_warm": round(baseline["reachable_scalar_bfs"]
                                    / warm["reachable_batch"], 2),
            # Same workload through the delegating scalar API (per-call
            # Python overhead included), still against the BFS baseline.
            "reachable_scalar_warm": round(baseline["reachable_scalar_bfs"]
                                           / warm["reachable_scalar"], 2),
            "flow_batch": round(baseline["flow_scalar"]
                                / warm["flow_batch"], 2),
            "shortest_path_batch": round(
                baseline["shortest_scalar_dijkstra"]
                / warm["shortest_path_batch"], 2),
            # Cold-cache penalty of the first batched reachability call.
            "reachable_cold_vs_warm": round(cold["reachable_batch"]
                                            / warm["reachable_batch"], 2),
        },
        "cache_stats": dict(engine.cache_stats()),
    }


def run(n_edges: int = 1_000_000, n_nodes: int = 65536, d: int = 4,
        width: int = 256, seed: int = 7, n_pairs: int = 2000,
        n_flow: int = 2000, n_shortest: int = 64) -> Dict:
    tcm = build_tcm(n_edges, n_nodes, d, width, seed)
    pairs, flow_nodes, shortest = sample_queries(
        n_nodes, n_pairs, n_flow, n_shortest, seed)
    record: Dict = {
        "benchmark": "query-engine latency (epoch-cached indexes + batch "
                     "kernels) vs scalar baseline on an R-MAT stream",
        "config": {"n_edges": n_edges, "n_nodes": n_nodes, "d": d,
                   "width": width, "seed": seed,
                   "python": platform.python_version(),
                   "machine": platform.machine()},
        "target": "warm reachable >= 5x scalar BFS; batched flows >= 3x "
                  "scalar; cold numbers reported alongside",
    }
    record.update(measure(tcm, pairs, flow_nodes, shortest))
    return record


def validate_record(record: Dict) -> None:
    """Schema check for the emitted JSON (used by the CI smoke step)."""
    for key, expected in RECORD_SCHEMA.items():
        if key not in record:
            raise ValueError(f"BENCH_query_latency record misses {key!r}")
        if not isinstance(record[key], expected):
            raise ValueError(f"{key!r} should be {expected.__name__}, got "
                             f"{type(record[key]).__name__}")
    for key in SPEEDUP_KEYS:
        value = record["speedups"].get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"speedups[{key!r}] should be a positive "
                             f"number, got {value!r}")
    for section in ("cold_seconds", "warm_seconds", "baseline_seconds",
                    "warm_per_query_us"):
        for name, value in record[section].items():
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"{section}[{name!r}] should be a "
                                 f"non-negative number, got {value!r}")
    for counter in ("hits", "misses", "invalidations"):
        if not isinstance(record["cache_stats"].get(counter), int):
            raise ValueError(f"cache_stats misses integer {counter!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the cached/batched query engine")
    parser.add_argument("--edges", type=int, default=1_000_000)
    parser.add_argument("--nodes", type=int, default=65536)
    parser.add_argument("--d", type=int, default=4)
    parser.add_argument("--width", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--pairs", type=int, default=2000,
                        help="reachability query pairs (default 2000)")
    parser.add_argument("--flow-nodes", type=int, default=2000,
                        help="flow query nodes (default 2000)")
    parser.add_argument("--shortest", type=int, default=64,
                        help="shortest-path query pairs (default 64)")
    parser.add_argument("--out", default=None,
                        help="write the JSON record here (default: stdout)")
    args = parser.parse_args(argv)

    record = run(n_edges=args.edges, n_nodes=args.nodes, d=args.d,
                 width=args.width, seed=args.seed, n_pairs=args.pairs,
                 n_flow=args.flow_nodes, n_shortest=args.shortest)
    validate_record(record)
    text = json.dumps(record, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        speedups = record["speedups"]
        print(f"wrote {args.out} (warm reachable speedup: "
              f"{speedups['reachable_warm']}x, batched flows: "
              f"{speedups['flow_batch']}x)")
    else:
        print(text)
    return 0


# -- pytest smoke (tiny scale; part of `make bench` / `make bench-query`) ---


def test_query_latency_smoke(benchmark):
    from benchmarks.conftest import run_once

    record = run_once(benchmark,
                      lambda: run(n_edges=20000, n_nodes=1024, n_pairs=200,
                                  n_flow=200, n_shortest=16))
    validate_record(record)
    speedups = record["speedups"]
    print(json.dumps(speedups, indent=2))
    assert speedups["reachable_warm"] > 1.0
    assert speedups["flow_batch"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main())
