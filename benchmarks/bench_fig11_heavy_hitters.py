"""Fig. 11: heavy-edge and heavy-node top-k intersection accuracy.

Expected shape (paper Figs. 11(a,b)): TCM ~ CountMin, both at or above
the same-space reservoir sample; near-perfect on the wide-range IP-flow
weights.
"""

from benchmarks.conftest import run_once
from repro.experiments.exp2_heavy import fig11_heavy_hitters
from repro.experiments.report import print_table


def test_fig11(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: fig11_heavy_hitters(scale=scale, d=5,
                                                edge_k=50, node_k=25))
    print_table(f"Fig. 11 -- heavy hitters ({scale})",
                ["dataset", "kind", "TCM", "CountMin", "sample"], rows)
    for dataset, kind, acc_tcm, acc_cm, acc_sample in rows:
        assert 0.0 <= acc_tcm <= 1.0
        if kind == "heavy edges":
            assert acc_tcm >= acc_sample - 0.1
    ip_edges = [r for r in rows if r[0] == "ipflow" and r[1] == "heavy edges"]
    # Near-perfect for big-range weights; ~1.0 at the 'small' scale used
    # for EXPERIMENTS.md, a little lower on the tiny CI workload.
    threshold = 0.85 if scale != "tiny" else 0.7
    assert ip_edges[0][2] >= threshold
