"""Ablation: square vs non-square matrices (paper Section 5.1.2).

The paper reports non-square ensembles are slightly better for
heavy-edge detection under skewed degrees (Exp-1(d)); at minimum the
varied-shape ensemble must remain competitive with the square one at
equal space, while never violating the over-approximation invariant.
"""

from benchmarks.conftest import run_once
from repro.core.tcm import TCM
from repro.experiments import datasets
from repro.experiments.common import cells_for_ratio, edge_query_are, edge_workload
from repro.experiments.report import print_table


def test_square_vs_nonsquare(benchmark, scale):
    def run():
        stream = datasets.ipflow(scale)
        cells = cells_for_ratio(stream, datasets.FIXED_RATIO["ipflow"])
        workload = edge_workload(stream, limit=2000)
        rows = []
        for d in (3, 5, 7):
            square = TCM.from_space(cells, d, seed=7)
            square.ingest(stream)
            varied = TCM.with_varied_shapes(cells, d, seed=7)
            varied.ingest(stream)
            rows.append((d,
                         edge_query_are(stream, square.edge_weight, workload),
                         edge_query_are(stream, varied.edge_weight, workload)))
        return rows

    rows = run_once(benchmark, run)
    print_table(f"Ablation -- square vs varied-shape matrices (ipflow, {scale})",
                ["d", "square ARE", "varied ARE"], rows)
    for d, square, varied in rows:
        assert varied <= 2.0 * square + 0.5  # stays competitive
