"""Sketch-service throughput: micro-batched vs scalar per-request ingest.

Boots ``tcm serve`` twice in fresh subprocesses -- once with the
coalescers on (the shipping configuration) and once with
``--no-batching`` (every request applied immediately through the scalar
``update``/``observe`` paths) -- and drives both with the identical
closed-loop :mod:`repro.server.loadgen` mix at equal request
concurrency.  The ratio of sustained elements/second is the committed
claim: micro-batching is what lets a request-per-element-ish HTTP
workload ride the kernel-layer columnar fast paths, and the record gates
it at >= 5x.

Both runs also check the operational contract: zero request errors and a
clean SIGTERM shutdown (drained coalescers, exit code 0).

Writes the committed ``BENCH_server.json``::

    python benchmarks/bench_server.py --out BENCH_server.json

``--smoke`` is the CI mode: a small fixed load with conservative floors
(server boots, sustains a minimum throughput, shuts down cleanly) that
must pass on any runner, while the committed record keeps the
reference-machine numbers.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import re
import signal
import subprocess
import sys
import time
from typing import Dict, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

_LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")

#: Smoke-mode floors: intentionally far below the reference numbers so
#: they only catch "the service is broken", never "the runner is slow".
SMOKE_MIN_ELEMENTS_PER_S = 5_000.0
SMOKE_MIN_REQ_PER_S = 25.0


class _ServerProcess:
    """One ``tcm serve`` subprocess with readiness and clean-exit checks."""

    def __init__(self, *, batching: bool, max_batch: int,
                 max_delay_ms: float):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        argv = [sys.executable, "-m", "repro", "serve", "--port", "0",
                "--max-batch", str(max_batch),
                "--max-delay-ms", str(max_delay_ms)]
        if not batching:
            argv.append("--no-batching")
        self.proc = subprocess.Popen(
            argv, env=env, cwd=REPO_ROOT, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    def wait_ready(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            match = _LISTEN_RE.search(line)
            if match:
                self.host = match.group(1)
                self.port = int(match.group(2))
                return
        raise RuntimeError(
            f"server never reported readiness "
            f"(exit code {self.proc.poll()})")

    def shutdown(self, timeout: float = 30.0) -> bool:
        """SIGTERM; True when the process drained and exited 0."""
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=timeout)
            return False
        # Drain the pipe so the shutdown report is not left in a buffer.
        self.proc.stdout.read()
        return self.proc.returncode == 0


def _measure_mode(*, batching: bool, connections: int, requests: int,
                  elements: int, n_nodes: int, query_ratio: float,
                  max_batch: int, max_delay_ms: float, seed: int) -> Dict:
    from repro.server.loadgen import run_loadgen

    server = _ServerProcess(batching=batching, max_batch=max_batch,
                            max_delay_ms=max_delay_ms)
    try:
        server.wait_ready()
        summary = asyncio.run(run_loadgen(
            server.host, server.port, sketch="bench",
            connections=connections, requests=requests,
            elements=elements, n_nodes=n_nodes,
            query_ratio=query_ratio, seed=seed))
    except BaseException:
        server.proc.kill()
        raise
    clean = server.shutdown()
    summary["shutdown_clean"] = clean
    summary["batching"] = batching
    return summary


def run(connections: int = 16, requests: int = 2048, elements: int = 1024,
        n_nodes: int = 65536, query_ratio: float = 0.05,
        max_batch: int = 4096, max_delay_ms: float = 2.0,
        seed: int = 7, full_scale: bool = True) -> Dict:
    record: Dict = {
        "benchmark": "multi-tenant sketch service: micro-batched vs "
                     "scalar per-request ingest at equal concurrency",
        "config": {"connections": connections, "requests": requests,
                   "elements_per_request": elements, "n_nodes": n_nodes,
                   "query_ratio": query_ratio, "max_batch": max_batch,
                   "max_delay_ms": max_delay_ms, "seed": seed,
                   "cpu_count": os.cpu_count() or 1,
                   "python": platform.python_version(),
                   "machine": platform.machine(),
                   "full_scale": full_scale},
        "target": "micro-batched ingest >= 5x elements/s vs the "
                  "batching-disabled (scalar per-request) server at "
                  "equal request concurrency, both shutting down "
                  "cleanly with zero errors",
    }
    modes = {}
    for label, batching in (("batched", True), ("unbatched", False)):
        modes[label] = _measure_mode(
            batching=batching, connections=connections, requests=requests,
            elements=elements, n_nodes=n_nodes, query_ratio=query_ratio,
            max_batch=max_batch, max_delay_ms=max_delay_ms, seed=seed)
    record.update(modes)
    batched = modes["batched"]["elements_per_s"]
    unbatched = modes["unbatched"]["elements_per_s"]
    record["batched_vs_unbatched"] = {
        "elements_ratio": round(batched / max(unbatched, 1e-9), 2),
        "req_ratio": round(modes["batched"]["req_per_s"]
                           / max(modes["unbatched"]["req_per_s"], 1e-9), 2),
        "dominates": batched >= unbatched,
    }
    return record


def validate_record(record: Dict, filename: str = "BENCH_server.json") -> None:
    """Schema + gate check (registered in validate_bench_records.py)."""
    def require(holder, key, kind):
        if key not in holder:
            raise ValueError(f"{filename}: missing key {key!r}")
        value = holder[key]
        if not isinstance(value, kind):
            raise ValueError(
                f"{filename}: {key!r} should be "
                f"{getattr(kind, '__name__', kind)}, "
                f"got {type(value).__name__}")
        return value

    config = require(record, "config", dict)
    for key in ("connections", "requests", "elements_per_request",
                "max_batch"):
        value = require(config, key, int)
        if value < 1:
            raise ValueError(f"{filename}: config.{key} must be >= 1")
    require(config, "full_scale", bool)
    for mode in ("batched", "unbatched"):
        row = require(record, mode, dict)
        for key in ("req_per_s", "elements_per_s"):
            value = require(row, key, (int, float))
            if value <= 0:
                raise ValueError(
                    f"{filename}: {mode}.{key} must be positive, "
                    f"got {value!r}")
        latency = require(row, "latency_ms", dict)
        p50 = require(latency, "p50", (int, float))
        p99 = require(latency, "p99", (int, float))
        if not 0 < p50 <= p99:
            raise ValueError(
                f"{filename}: {mode} latency needs 0 < p50 <= p99, "
                f"got p50={p50!r} p99={p99!r}")
        errors = require(row, "errors", int)
        if errors != 0:
            raise ValueError(
                f"{filename}: {mode} run had {errors} request errors")
        if require(row, "shutdown_clean", bool) is not True:
            raise ValueError(
                f"{filename}: {mode} server did not shut down cleanly")
    comparison = require(record, "batched_vs_unbatched", dict)
    ratio = require(comparison, "elements_ratio", (int, float))
    if ratio <= 0:
        raise ValueError(
            f"{filename}: batched_vs_unbatched.elements_ratio must be "
            f"positive, got {ratio!r}")
    if config["full_scale"] and ratio < 5.0:
        # The committed claim: coalescing earns its complexity.
        raise ValueError(
            f"{filename}: full-scale elements_ratio {ratio} is below the "
            f"5x gate (batched micro-batching must beat scalar "
            f"per-request ingest by >= 5x)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the sketch service's request micro-batching")
    parser.add_argument("--connections", type=int, default=16)
    parser.add_argument("--requests", type=int, default=2048)
    parser.add_argument("--elements", type=int, default=1024)
    parser.add_argument("--nodes", type=int, default=65536)
    parser.add_argument("--query-ratio", type=float, default=0.05)
    parser.add_argument("--max-batch", type=int, default=4096)
    parser.add_argument("--max-delay-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: small load, conservative floors, "
                             "no 5x gate (full_scale=false)")
    parser.add_argument("--out", default=None,
                        help="write the JSON record here (default: stdout)")
    args = parser.parse_args(argv)

    if args.smoke:
        record = run(connections=8, requests=256, elements=256,
                     n_nodes=4096, query_ratio=args.query_ratio,
                     max_batch=args.max_batch,
                     max_delay_ms=args.max_delay_ms, seed=args.seed,
                     full_scale=False)
    else:
        record = run(connections=args.connections, requests=args.requests,
                     elements=args.elements, n_nodes=args.nodes,
                     query_ratio=args.query_ratio,
                     max_batch=args.max_batch,
                     max_delay_ms=args.max_delay_ms, seed=args.seed)
    validate_record(record, "bench_server run")

    comparison = record["batched_vs_unbatched"]
    batched = record["batched"]
    print(f"batched:   {batched['elements_per_s']:>12,.0f} elements/s  "
          f"{batched['req_per_s']:>8,.0f} req/s  "
          f"p99 {batched['latency_ms']['p99']:.2f}ms")
    unbatched = record["unbatched"]
    print(f"unbatched: {unbatched['elements_per_s']:>12,.0f} elements/s  "
          f"{unbatched['req_per_s']:>8,.0f} req/s  "
          f"p99 {unbatched['latency_ms']['p99']:.2f}ms")
    print(f"ratio:     {comparison['elements_ratio']}x elements/s")

    if args.smoke:
        problems = []
        if batched["elements_per_s"] < SMOKE_MIN_ELEMENTS_PER_S:
            problems.append(
                f"batched {batched['elements_per_s']:,.0f} elements/s "
                f"below the {SMOKE_MIN_ELEMENTS_PER_S:,.0f} smoke floor")
        if batched["req_per_s"] < SMOKE_MIN_REQ_PER_S:
            problems.append(
                f"batched {batched['req_per_s']:,.0f} req/s below the "
                f"{SMOKE_MIN_REQ_PER_S:,.0f} smoke floor")
        if comparison["elements_ratio"] < 1.5:
            problems.append(
                f"batched/unbatched ratio {comparison['elements_ratio']} "
                f"below the 1.5x smoke floor")
        if problems:
            for problem in problems:
                print(f"SMOKE FAIL: {problem}")
            return 1
        print("smoke ok: boot, throughput floors, coalescing win, "
              "clean shutdowns")

    text = json.dumps(record, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
