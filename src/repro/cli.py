"""The ``tcm`` command-line tool.

An operator-facing front end over the library::

    tcm generate ipflow trace.txt --scale small     # synthetic workload
    tcm stats trace.txt                             # stream shape report
    tcm summarize trace.txt sketch.npz --d 5 --width 96
    tcm ingest trace.txt sketch.npz --parallel 4 --chunk-size 65536
    tcm window trace.txt window.npz --horizon 1000 --mode rotating
    tcm info sketch.npz
    tcm query sketch.npz edge 10.0.0.1 10.0.0.9
    tcm query sketch.npz reach 10.0.0.1 10.0.0.9
    tcm query sketch.npz inflow 10.0.0.9
    tcm obs --dataset gtgraph --scale tiny     # metrics/health demo
    tcm serve --data-dir /var/lib/tcm          # durable sketch service
    tcm recover /var/lib/tcm                   # offline recovery audit

Also available as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.serialization import load_tcm, save_tcm
from repro.core.tcm import TCM
from repro.streams.io import read_stream, write_stream
from repro.streams.stats import summarize, weight_histogram


def _cmd_generate(args) -> int:
    from repro.experiments import datasets

    stream = datasets.by_name(args.dataset, args.scale)
    count = write_stream(stream, args.output)
    print(f"wrote {count} elements "
          f"({'directed' if stream.directed else 'undirected'}) "
          f"to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    stream = read_stream(args.stream, directed=not args.undirected)
    report = summarize(stream)
    print(f"elements        {report.elements}")
    print(f"distinct edges  {report.distinct_edges}")
    print(f"nodes           {report.nodes}")
    print(f"total weight    {report.total_weight:g}")
    print(f"edge weights    [{report.min_edge_weight:g}, "
          f"{report.max_edge_weight:g}] "
          f"(mean {report.mean_edge_weight:g}, "
          f"gini {report.weight_gini:.3f})")
    print(f"degree gini     {report.degree_gini:.3f}")
    print("\nweight histogram (equal-count buckets):")
    for low, high, count in weight_histogram(stream, buckets=10):
        print(f"  [{low:g}, {high:g}]: {count}")
    return 0


def _cmd_summarize(args) -> int:
    stream = read_stream(args.stream, directed=not args.undirected)
    tcm = TCM(d=args.d, width=args.width, seed=args.seed,
              directed=stream.directed, keep_labels=args.keep_labels)
    count = tcm.ingest(stream)
    save_tcm(tcm, args.sketch)
    ratio = tcm.size_in_cells / max(1, count)
    print(f"summarized {count} elements into {args.sketch} "
          f"({tcm.d} x {args.width}x{args.width} cells, "
          f"{ratio:.2f} cells/element)")
    return 0


def _cmd_ingest(args) -> int:
    """High-throughput chunked (optionally parallel) stream-file ingest.

    Unlike ``summarize`` this never materializes the stream: elements are
    read lazily from the file and absorbed in ``--chunk-size`` batches,
    so memory stays constant however long the file is.  ``--parallel N``
    deals chunks to N worker processes building same-seed TCMs that are
    merged into one summary (docs/PERFORMANCE.md).
    """
    import time as _time

    from repro.streams.io import iter_stream_file

    if args.parallel < 1:
        raise SystemExit(f"--parallel must be >= 1, got {args.parallel}")
    if args.conservative and args.parallel > 1:
        raise SystemExit("conservative summaries are not mergeable; "
                         "use --parallel 1 with --conservative")
    if args.kernel is not None:
        from repro.core import kernels
        try:
            kernels.set_backend(args.kernel)
        except ValueError as exc:
            raise SystemExit(str(exc))
    config = dict(d=args.d, width=args.width, seed=args.seed,
                  directed=not args.undirected,
                  keep_labels=args.keep_labels, sparse=args.sparse)
    edges = iter_stream_file(args.stream)
    start = _time.perf_counter()
    if args.parallel > 1:
        from repro.distributed.parallel import ParallelTCMBuilder
        builder = ParallelTCMBuilder(workers=args.parallel,
                                     chunk_size=args.chunk_size, **config)
        tcm = builder.build(edges)
        count = None
    else:
        tcm = TCM(**config)
        if args.conservative:
            count = tcm.ingest_conservative(edges,
                                            chunk_size=args.chunk_size)
        else:
            count = tcm.ingest(edges, chunk_size=args.chunk_size)
    elapsed = _time.perf_counter() - start
    save_tcm(tcm, args.sketch)
    from repro.core import kernels as _kernels
    backend = _kernels.active_backend()
    if count is None:
        # The parallel path streams the file straight into worker
        # processes without counting elements in the parent.
        print(f"ingested {args.stream} into {args.sketch} "
              f"in {elapsed:.2f}s "
              f"({args.parallel} workers, chunk size {args.chunk_size}, "
              f"kernel {backend})")
    else:
        rate = count / elapsed if elapsed > 0 else float("inf")
        mode = "conservative" if args.conservative else "chunked"
        print(f"ingested {count} elements into {args.sketch} "
              f"in {elapsed:.2f}s ({mode}, chunk size {args.chunk_size}, "
              f"kernel {backend}, {rate:,.0f} elements/s)")
    return 0


def _cmd_window(args) -> int:
    """Maintain a sliding window over a timestamped stream file.

    Streams the file lazily through either the exact batch-deletion
    window (``--mode exact``, the default) or the approximate rotating
    sub-sketch window (``--mode rotating``), reports maintenance
    statistics, and optionally saves the final windowed summary -- the
    exact window's TCM, or the rotating window's merged view -- to a
    sketch file for ``tcm query``.
    """
    import time as _time

    from repro.streams.io import iter_stream_file
    from repro.streams.rotating import RotatingWindowTCM
    from repro.streams.window import SlidingWindow

    if args.horizon <= 0:
        raise SystemExit(f"--horizon must be positive, got {args.horizon}")
    config = dict(d=args.d, width=args.width, seed=args.seed,
                  directed=not args.undirected, sparse=args.sparse)
    edges = iter_stream_file(args.stream)
    start = _time.perf_counter()
    if args.mode == "rotating":
        window = RotatingWindowTCM(args.horizon, buckets=args.buckets,
                                   **config)
        count = window.consume(edges, chunk_size=args.chunk_size)
        summary = window.merged
        detail = (f"{args.buckets} buckets, "
                  f"staleness < {window.max_staleness:g}")
    else:
        window = SlidingWindow(TCM(**config), args.horizon)
        count = window.consume(edges, chunk_size=args.chunk_size)
        summary = window.summary
        detail = f"{len(window)} live elements"
    elapsed = _time.perf_counter() - start
    rate = count / elapsed if elapsed > 0 else float("inf")
    print(f"windowed {count} elements ({args.mode}, "
          f"horizon {args.horizon:g}, {detail}) "
          f"in {elapsed:.2f}s ({rate:,.0f} elements/s)")
    print(f"watermark    {window.watermark:g}")
    print(f"total weight {summary.total_weight_estimate():g}")
    if args.sketch is not None:
        save_tcm(summary, args.sketch)
        print(f"wrote windowed summary to {args.sketch}")
    return 0


def _cmd_info(args) -> int:
    tcm = load_tcm(args.sketch)
    print(f"sketches     {tcm.d}")
    for i, sketch in enumerate(tcm.sketches):
        extended = " extended" if sketch.keeps_labels else ""
        print(f"  [{i}] {sketch.rows}x{sketch.cols}"
              f"{' graphical' if sketch.is_graphical else ' non-square'}"
              f"{extended}")
    print(f"directed     {tcm.directed}")
    print(f"aggregation  {tcm.aggregation.value}")
    print(f"total cells  {tcm.size_in_cells}")
    print(f"total weight {tcm.total_weight_estimate():g}")
    return 0


def _run_query_batch(tcm, path: str) -> int:
    """Answer a query file through the batched kernels, in input order.

    Lines are ``<kind> <node> [<node>]`` with kinds ``edge``, ``reach``,
    ``shortest``, ``outflow``, ``inflow`` and ``flow``; blank lines and
    ``#`` comments are skipped.  Queries are grouped by kind so each
    group costs one engine kernel call, then printed in input order.
    """
    pair_kinds = ("edge", "reach", "shortest")
    node_kinds = ("outflow", "inflow", "flow")
    parsed = []  # (kind, index-within-kind-group)
    groups = {kind: [] for kind in pair_kinds + node_kinds}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            kind = parts[0]
            if kind in pair_kinds:
                if len(parts) != 3:
                    raise SystemExit(f"{path}:{lineno}: {kind} needs two "
                                     f"node labels, got {line!r}")
                payload = (parts[1], parts[2])
            elif kind in node_kinds:
                if len(parts) != 2:
                    raise SystemExit(f"{path}:{lineno}: {kind} needs one "
                                     f"node label, got {line!r}")
                payload = parts[1]
            else:
                raise SystemExit(f"{path}:{lineno}: unknown query kind "
                                 f"{kind!r}")
            parsed.append((kind, len(groups[kind])))
            groups[kind].append(payload)
    answers = {
        "edge": tcm.edge_weights(groups["edge"]),
        "reach": (tcm.reachable_many(groups["reach"])
                  if groups["reach"] else []),
        "shortest": (tcm.shortest_path_weights(groups["shortest"])
                     if groups["shortest"] else []),
        "outflow": (tcm.out_flows(groups["outflow"])
                    if groups["outflow"] else []),
        "inflow": tcm.in_flows(groups["inflow"]) if groups["inflow"] else [],
        "flow": tcm.flows(groups["flow"]) if groups["flow"] else [],
    }
    for kind, idx in parsed:
        value = answers[kind][idx]
        if kind == "reach":
            print("reachable" if value else "unreachable")
        else:
            print(f"{float(value):g}")
    return 0


def _cmd_query(args) -> int:
    tcm = load_tcm(args.sketch)
    if args.batch is not None:
        return _run_query_batch(tcm, args.batch)
    kind = args.kind
    if kind is None or args.node1 is None:
        raise SystemExit("query needs a kind and node label(s) "
                         "(or --batch FILE)")
    if kind == "subgraph":
        from repro.core.query_parser import parse_subgraph_query
        query = parse_subgraph_query(args.node1)
        print(f"{tcm.subgraph_weight(query):g}")
    elif kind == "edge":
        if args.node2 is None:
            raise SystemExit("edge queries need two node labels")
        print(f"{tcm.edge_weight(args.node1, args.node2):g}")
    elif kind == "reach":
        if args.node2 is None:
            raise SystemExit("reach queries need two node labels")
        print("reachable" if tcm.reachable(args.node1, args.node2)
              else "unreachable")
    elif kind == "shortest":
        if args.node2 is None:
            raise SystemExit("shortest queries need two node labels")
        print(f"{tcm.shortest_path_weight(args.node1, args.node2):g}")
    elif kind == "outflow":
        print(f"{tcm.out_flow(args.node1):g}")
    elif kind == "inflow":
        print(f"{tcm.in_flow(args.node1):g}")
    elif kind == "flow":
        print(f"{tcm.flow(args.node1):g}")
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown query kind {kind!r}")
    return 0


def _cmd_serve(args) -> int:
    """``tcm serve``: the multi-tenant micro-batching sketch service.

    Binds the asyncio HTTP/JSON front end (docs/SERVER.md), enables
    observability (so ``/metrics`` and ``/stats`` are live) and a
    background runtime sampler, then runs until SIGINT/SIGTERM.  On
    shutdown every staged micro-batch is drained, and the per-endpoint
    latency quantiles (``repro.obs.runtime.latency_quantiles``) are
    printed as the final service report.
    """
    import asyncio
    import signal

    from repro.obs import instruments
    from repro.obs.runtime import RuntimeSampler, latency_quantiles
    from repro.server import SketchServer

    if args.max_batch < 1:
        raise SystemExit(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.max_delay_ms <= 0:
        raise SystemExit(
            f"--max-delay-ms must be positive, got {args.max_delay_ms}")
    if args.fsync_interval_ms <= 0:
        raise SystemExit(f"--fsync-interval-ms must be positive, "
                         f"got {args.fsync_interval_ms}")
    if args.rotate_mb <= 0:
        raise SystemExit(f"--rotate-mb must be positive, got {args.rotate_mb}")
    if args.max_body_mb <= 0:
        raise SystemExit(f"--max-body-mb must be positive, "
                         f"got {args.max_body_mb}")
    if args.lag_limit_ms <= 0:
        raise SystemExit(f"--lag-limit-ms must be positive, "
                         f"got {args.lag_limit_ms}")
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.workers > 1:
        return _cmd_serve_sharded(args)
    if not args.no_obs:
        instruments.enable()
    server = SketchServer(host=args.host, port=args.port,
                          max_batch=args.max_batch,
                          max_delay=args.max_delay_ms / 1000.0,
                          batching=not args.no_batching,
                          max_body=int(args.max_body_mb * (1 << 20)),
                          max_backlog=args.max_backlog,
                          max_connections=args.max_connections,
                          lag_limit=args.lag_limit_ms / 1000.0,
                          data_dir=args.data_dir,
                          fsync=args.fsync,
                          fsync_interval=args.fsync_interval_ms / 1000.0,
                          rotate_bytes=int(args.rotate_mb * (1 << 20)),
                          snapshot_interval=args.snapshot_interval)

    async def _run() -> None:
        port = await server.start()
        print(f"tcm serve: listening on http://{args.host}:{port} "
              f"(batching {'on' if server.batching else 'off'}, "
              f"max_batch={args.max_batch}, "
              f"max_delay={args.max_delay_ms:g}ms)", flush=True)
        if args.data_dir is not None:
            report = server.recovery_report or {}
            print(f"tcm serve: durable in {args.data_dir} "
                  f"(fsync={args.fsync}, "
                  f"snapshot every {args.snapshot_interval:g}s); "
                  f"recovered {len(report.get('tenants', {}))} tenants, "
                  f"{report.get('records', 0)} WAL records "
                  f"({report.get('elements', 0)} elements, "
                  f"{report.get('torn_frames', 0)} torn frames) "
                  f"in {report.get('seconds', 0.0):.3f}s", flush=True)
        sampler = None
        if not args.no_obs:
            sampler = RuntimeSampler()
            sampler.start(interval=args.sample_interval)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop.wait()
        await server.stop()
        if sampler is not None:
            sampler.stop()
        if not args.no_obs:
            for key, q in sorted(latency_quantiles().items()):
                if not key.startswith("server_request_seconds"):
                    continue
                print(f"tcm serve: {key} "
                      f"p50={q['p50'] * 1e3:.3f}ms "
                      f"p99={q['p99'] * 1e3:.3f}ms "
                      f"n={int(q['count'])}", flush=True)
        print("tcm serve: shut down cleanly", flush=True)

    asyncio.run(_run())
    return 0


def _cmd_serve_sharded(args) -> int:
    """``tcm serve --workers N``: the multi-process sharded service.

    Forks N complete servers (own event loop, coalescers, per-worker
    WAL directory) that share the listening port via ``SO_REUSEPORT``
    and own disjoint tenant sets by hash affinity -- see
    ``repro.server.sharding`` and docs/SERVER.md.  The parent only
    orchestrates (port map, signal relay, reaping); a clean SIGTERM
    drains every worker before the parent exits 0.
    """
    import os

    from repro.server.sharding import run_sharded

    def _worker(shard, channel, shared_port) -> int:
        import asyncio
        import signal

        from repro.obs import instruments
        from repro.server import SketchServer

        if not args.no_obs:
            instruments.enable()
        data_dir = (os.path.join(args.data_dir, f"worker-{shard.index}")
                    if args.data_dir is not None else None)
        server = SketchServer(host=args.host, port=shared_port,
                              max_batch=args.max_batch,
                              max_delay=args.max_delay_ms / 1000.0,
                              batching=not args.no_batching,
                              max_body=int(args.max_body_mb * (1 << 20)),
                              max_backlog=args.max_backlog,
                              max_connections=args.max_connections,
                              lag_limit=args.lag_limit_ms / 1000.0,
                              data_dir=data_dir,
                              fsync=args.fsync,
                              fsync_interval=args.fsync_interval_ms / 1000.0,
                              rotate_bytes=int(args.rotate_mb * (1 << 20)),
                              snapshot_interval=args.snapshot_interval,
                              shard=shard)

        async def _run() -> None:
            await server.start(reuse_port=True, direct_port=0)
            shard.ports[:] = channel.report(server.direct_port)
            if instruments.OBS.enabled:
                instruments.OBS.server_worker_index.set(shard.index)
                instruments.OBS.server_cluster_workers.set(shard.count)
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop.set)
                except NotImplementedError:  # pragma: no cover
                    pass
            await stop.wait()
            await server.stop()
            print(f"tcm serve: worker {shard.index} shut down cleanly",
                  flush=True)

        asyncio.run(_run())
        return 0

    def _banner(shared_port, reports) -> None:
        print(f"tcm serve: listening on http://{args.host}:{shared_port} "
              f"(batching {'on' if not args.no_batching else 'off'}, "
              f"max_batch={args.max_batch}, "
              f"max_delay={args.max_delay_ms:g}ms)", flush=True)
        ports = ", ".join(
            f"{i}:pid={r['pid']}:port={r['direct_port']}"
            for i, r in enumerate(reports))
        print(f"tcm serve: {args.workers} workers ({ports})", flush=True)
        if args.data_dir is not None:
            print(f"tcm serve: durable in {args.data_dir} "
                  f"(fsync={args.fsync}, one WAL dir per worker)",
                  flush=True)

    code = run_sharded(args.workers, args.host, args.port, _worker,
                       banner=_banner)
    if code == 0:
        print("tcm serve: shut down cleanly", flush=True)
    return code


def _cmd_recover(args) -> int:
    """``tcm recover``: offline recovery check for a ``--data-dir``.

    Rebuilds every tenant from its latest usable snapshot plus the WAL
    tail -- exactly what ``tcm serve --data-dir`` does at boot -- and
    prints the per-tenant report without starting a server.  Use it to
    audit a data directory after a crash, or to measure recovery time.
    Exits non-zero if any tenant fails to recover or the replay hit
    poison records.
    """
    import os

    from repro.server.durability import DurabilityManager
    from repro.server.registry import SketchRegistry

    if not os.path.isdir(args.data_dir):
        raise SystemExit(f"not a directory: {args.data_dir}")
    registry = SketchRegistry()
    manager = DurabilityManager(args.data_dir, fsync="off")
    try:
        report = manager.recover(registry)
    finally:
        manager.close_all(registry)
    print(f"tcm recover: {len(report['tenants'])} tenants, "
          f"{report['records']} WAL records "
          f"({report['elements']} elements) replayed "
          f"in {report['seconds']:.3f}s")
    print(f"  torn frames discarded: {report['torn_frames']}")
    print(f"  replay errors:         {report['replay_errors']}")
    for name in sorted(registry.names()):
        tenant = registry.get(name)
        print(f"  tenant {name!r}: kind={tenant.kind} "
              f"total_weight={tenant.sketch.total_weight_estimate():g}")
    return 1 if report["replay_errors"] else 0


def _cmd_loadgen(args) -> int:
    """``tcm loadgen``: resilient driver for a running ``tcm serve``.

    Pre-generates the request mix, fans it over persistent keep-alive
    connections (closed loop, or open loop with ``--rate``), retries
    transient failures with backoff, and prints throughput plus
    client-side p50/p99 (and the server's own histogram quantiles from
    ``/stats``).
    """
    import asyncio
    import json as _json

    from repro.server import run_loadgen

    if args.rate is not None and args.rate <= 0:
        raise SystemExit(f"--rate must be positive, got {args.rate}")
    sketch_config = {"kind": args.kind, "d": args.d, "width": args.width,
                     "seed": args.seed}
    if args.kind == "window":
        sketch_config["horizon"] = args.horizon
    summary = asyncio.run(run_loadgen(
        args.host, args.port, sketch=args.sketch,
        connections=args.connections, requests=args.requests,
        elements=args.elements, n_nodes=args.nodes,
        query_ratio=args.query_ratio, seed=args.seed,
        sketch_config=sketch_config, cleanup=args.cleanup,
        rate=args.rate, request_timeout=args.timeout,
        max_retries=args.retries, wire_mode=args.wire,
        encode=args.encode))
    lat = summary["latency_ms"]
    print(f"loadgen: {summary['requests']} requests over "
          f"{summary['connections']} connections in "
          f"{summary['seconds']:.2f}s ({summary['mode']} loop, "
          f"{summary['wire']} wire)")
    print(f"  {summary['req_per_s']:,.0f} req/s, "
          f"{summary['elements_per_s']:,.0f} elements/s "
          f"({summary['ingested_elements']} ingested, "
          f"{summary['errors']} errors, {summary['retries']} retries)")
    print(f"  latency p50 {lat['p50']:.3f}ms, p99 {lat['p99']:.3f}ms, "
          f"max {lat['max']:.3f}ms")
    if summary["errors_by_class"]:
        parts = ", ".join(f"{k}={v}" for k, v
                          in sorted(summary["errors_by_class"].items()))
        print(f"  errors by class: {parts}")
    sheds = summary["sheds"]
    if sheds["http_429"] or sheds["http_503"]:
        print(f"  sheds: 429={sheds['http_429']} 503={sheds['http_503']} "
              f"retry_after_honored={sheds['retry_after_honored']}")
    if args.out is not None:
        with open(args.out, "w") as fh:
            _json.dump(summary, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 1 if summary["errors"] else 0


def _cmd_diff(args) -> int:
    from repro.core.compare import (
        sketch_distance,
        top_changed_cells,
        top_changed_edges,
    )

    before = load_tcm(args.before)
    after = load_tcm(args.after)
    print(f"L1 distance   {sketch_distance(before, after, 'l1'):g}")
    print(f"Linf distance {sketch_distance(before, after, 'linf'):g}")
    if after.sketches[0].keeps_labels and before.sketches[0].keeps_labels:
        changes = top_changed_edges(before, after, k=args.top)
        if changes:
            print("\nbiggest edge changes:")
            for (x, y), delta in changes:
                sign = "+" if delta >= 0 else ""
                print(f"  {x} -> {y}: {sign}{delta:g}")
    else:
        cells = top_changed_cells(before, after, k=args.top)
        if cells:
            print("\nbiggest cell changes (build with --keep-labels for "
                  "label decoding):")
            for (row, col), delta in cells:
                sign = "+" if delta >= 0 else ""
                print(f"  cell ({row}, {col}): {sign}{delta:g}")
    return 0


def _cmd_obs_flight(args) -> int:
    """``tcm obs flight``: drive a drift workload, dump the black box.

    Runs a short instrumented soak -- stationary R-MAT, then a quadrant
    parameter shift -- with the accuracy tracker, runtime sampler and
    flight recorder attached, then prints (or writes with ``--out``) the
    recorder's JSON post-mortem: spans, saturation warnings, drift
    alarms and workload marks, oldest first.
    """
    import itertools

    from repro import obs
    from repro.streams.generators import rmat_edges_drifting

    obs.enable()
    obs.FLIGHT.clear()
    try:
        tcm = TCM(d=args.d, width=args.width, seed=args.seed)
        tracker = obs.AccuracyTracker(tcm, sample_size=args.sample_size,
                                      seed=args.seed, name="flight",
                                      flight=obs.FLIGHT)
        sampler = obs.RuntimeSampler()
        n_edges = {"tiny": 20_000, "small": 100_000,
                   "medium": 400_000}[args.scale]
        stream = rmat_edges_drifting(1 << 12, n_edges, seed=args.seed,
                                     rate=1000.0)
        obs.FLIGHT.mark("workload start", edges=n_edges,
                        drift="rmat quadrant shift at 50%")
        chunk_size = max(1, n_edges // 20)
        marked_drift = False
        seen = 0
        iterator = iter(stream)
        while True:
            chunk = list(itertools.islice(iterator, chunk_size))
            if not chunk:
                break
            sources = [e.source for e in chunk]
            targets = [e.target for e in chunk]
            weights = [e.weight for e in chunk]
            with obs.span("obs.flight.ingest", elements=len(chunk)):
                tcm.ingest_columns(sources, targets, weights)
            tracker.observe_columns(sources, targets, weights)
            tracker.tick(timestamp=chunk[-1].timestamp)
            sampler.sample()
            obs.FLIGHT.check_saturation(tcm, summary="flight")
            obs.FLIGHT.capture_spans()
            seen += len(chunk)
            if not marked_drift and seen >= n_edges // 2:
                obs.FLIGHT.mark("drift phase reached", elements=seen)
                marked_drift = True
        obs.FLIGHT.mark("workload end", elements=seen,
                        runtime=sampler.summary())
        dump = obs.FLIGHT.dump_json(indent=2)
        if args.out is not None:
            with open(args.out, "w") as fh:
                fh.write(dump)
            print(f"wrote flight post-mortem to {args.out} "
                  f"({len(obs.FLIGHT)} events)")
        else:
            print(dump)
    finally:
        obs.disable()
    return 0


def _cmd_obs(args) -> int:
    """Instrumented demo ingest: emit metrics, health and trace snapshots.

    Enables observability, replays a stream (a file if given, else a
    synthetic dataset) through an instrumented per-element ingest with
    the periodic reporter attached, runs a sample query workload to
    populate the latency histograms, then prints the Prometheus text
    exposition and/or the JSON snapshot.  ``tcm obs flight`` instead runs
    the drift workload and dumps the flight recorder's post-mortem.
    """
    from repro import obs
    from repro.experiments import datasets
    from repro.streams.replay import MonitoringHub

    if args.stream == "flight":
        return _cmd_obs_flight(args)

    obs.enable()
    try:
        if args.stream is not None:
            stream = read_stream(args.stream, directed=not args.undirected)
        else:
            stream = datasets.by_name(args.dataset, args.scale)

        tcm = TCM(d=args.d, width=args.width, seed=args.seed,
                  directed=stream.directed)
        reporter = obs.PeriodicReporter(every=args.every,
                                        emit=lambda line: print(line))
        hub = MonitoringHub()
        hub.attach("summary", tcm)
        hub.attach("reporter", reporter)
        tracker = None
        if args.accuracy:
            tracker = obs.AccuracyTracker(tcm, sample_size=args.sample_size,
                                          seed=args.seed, name="demo",
                                          flight=obs.FLIGHT)
            hub.attach("shadow-truth", tracker.comparator)
        with obs.span("obs.demo.ingest"):
            hub.replay(stream)
        reporter.report()
        if tracker is not None:
            report = tracker.tick()
            print(f"[obs] accuracy: {report.sampled_keys} sampled keys, "
                  f"mean ARE {report.mean_are:.4f}, "
                  f"observed epsilon {report.observed_epsilon:.6f}, "
                  f"FPR {report.false_positive_rate:.3f}")

        # A sample query workload so every latency histogram has data.
        with obs.span("obs.demo.queries"):
            edges = sorted(stream.distinct_edges, key=repr)[:args.queries]
            for x, y in edges:
                tcm.edge_weight(x, y)
            tcm.edge_weights(edges)
            nodes = sorted(stream.nodes, key=repr)[:args.queries]
            for node in nodes[:20]:
                if stream.directed:
                    tcm.out_flow(node)
                    tcm.in_flow(node)
                else:
                    tcm.flow(node)
            if edges:
                tcm.reachable(*edges[0])

        health = obs.publish_health(tcm, name="demo")
        for warning in obs.saturation_warnings(health):
            print(f"warning: {warning}")

        if args.format in ("prom", "both"):
            print(obs.render_prometheus())
        if args.format in ("json", "both"):
            print(obs.json_snapshot(tcms={"demo": tcm}, indent=2))
        if args.out is not None:
            with open(args.out, "w") as fh:
                fh.write(obs.json_snapshot(tcms={"demo": tcm}, indent=2))
            print(f"wrote JSON snapshot to {args.out}")
    finally:
        obs.disable()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tcm",
        description="TCM graph-stream summarization (SIGMOD'16 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic dataset to a stream file")
    generate.add_argument("dataset",
                          choices=("dblp", "ipflow", "gtgraph", "twitter"))
    generate.add_argument("output")
    generate.add_argument("--scale", choices=("tiny", "small", "medium"),
                          default="small")
    generate.set_defaults(handler=_cmd_generate)

    stats = commands.add_parser("stats", help="describe a stream file")
    stats.add_argument("stream")
    stats.add_argument("--undirected", action="store_true")
    stats.set_defaults(handler=_cmd_stats)

    summarize_cmd = commands.add_parser(
        "summarize", help="build a TCM from a stream file")
    summarize_cmd.add_argument("stream")
    summarize_cmd.add_argument("sketch")
    summarize_cmd.add_argument("--d", type=int, default=4)
    summarize_cmd.add_argument("--width", type=int, default=256)
    summarize_cmd.add_argument("--seed", type=int, default=0)
    summarize_cmd.add_argument("--undirected", action="store_true")
    summarize_cmd.add_argument("--keep-labels", action="store_true",
                               help="build the extended sketch (§5.1.4)")
    summarize_cmd.set_defaults(handler=_cmd_summarize)

    ingest = commands.add_parser(
        "ingest", help="chunked high-throughput (optionally parallel) "
                       "build from a stream file (docs/PERFORMANCE.md)")
    ingest.add_argument("stream")
    ingest.add_argument("sketch")
    ingest.add_argument("--d", type=int, default=4)
    ingest.add_argument("--width", type=int, default=256)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--undirected", action="store_true")
    ingest.add_argument("--keep-labels", action="store_true",
                        help="build the extended sketch (§5.1.4)")
    ingest.add_argument("--sparse", action="store_true",
                        help="dict-backed sparse backend (§5.1.1)")
    ingest.add_argument("--chunk-size", type=int, default=65536,
                        help="elements per ingest batch (default 65536)")
    ingest.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="worker processes for a sharded build "
                             "(same-seed TCMs, merged; default 1)")
    ingest.add_argument("--conservative", action="store_true",
                        help="conservative (Estan-Varghese) batched "
                             "ingest; insert-only, not mergeable")
    ingest.add_argument("--kernel", choices=("auto", "numpy", "numba"),
                        default=None,
                        help="scatter-kernel backend (default: "
                             "$REPRO_KERNEL or auto; see "
                             "docs/PERFORMANCE.md)")
    ingest.set_defaults(handler=_cmd_ingest)

    window = commands.add_parser(
        "window", help="maintain a sliding time-window summary over a "
                       "timestamped stream file (docs/PERFORMANCE.md)")
    window.add_argument("stream")
    window.add_argument("sketch", nargs="?", default=None,
                        help="optional output file for the final "
                             "windowed summary")
    window.add_argument("--horizon", type=float, required=True,
                        help="window length in stream time units")
    window.add_argument("--mode", choices=("exact", "rotating"),
                        default="exact",
                        help="exact batch-deletion window, or the "
                             "approximate rotating sub-sketch ring")
    window.add_argument("--buckets", type=int, default=8,
                        help="sub-sketches per horizon (rotating mode)")
    window.add_argument("--d", type=int, default=4)
    window.add_argument("--width", type=int, default=256)
    window.add_argument("--seed", type=int, default=0)
    window.add_argument("--undirected", action="store_true")
    window.add_argument("--sparse", action="store_true",
                        help="dict-backed sparse backend (§5.1.1)")
    window.add_argument("--chunk-size", type=int, default=65536,
                        help="elements per maintenance batch")
    window.set_defaults(handler=_cmd_window)

    info = commands.add_parser("info", help="describe a sketch file")
    info.add_argument("sketch")
    info.set_defaults(handler=_cmd_info)

    query = commands.add_parser("query", help="query a sketch file")
    query.add_argument("sketch")
    query.add_argument("kind", nargs="?", default=None,
                       choices=("edge", "reach", "shortest", "outflow",
                                "inflow", "flow", "subgraph"))
    query.add_argument("node1", nargs="?", default=None,
                       help="node label; for 'subgraph', the query text, "
                            "e.g. '*->b, b->c, c->*'")
    query.add_argument("node2", nargs="?", default=None)
    query.add_argument("--batch", metavar="FILE", default=None,
                       help="answer a file of queries ('edge x y', "
                            "'reach x y', 'shortest x y', 'outflow x', "
                            "'inflow x', 'flow x'; '#' comments) through "
                            "the batched kernels, results in input order")
    query.set_defaults(handler=_cmd_query)

    obs_cmd = commands.add_parser(
        "obs", help="instrumented demo ingest; emit metrics/health "
                    "snapshots (docs/OBSERVABILITY.md)")
    obs_cmd.add_argument("stream", nargs="?", default=None,
                         metavar="stream|flight",
                         help="optional stream file, or the literal "
                              "'flight' to run the drift workload and "
                              "dump the flight-recorder post-mortem; "
                              "default: a synthetic dataset "
                              "(--dataset/--scale)")
    obs_cmd.add_argument("--dataset",
                         choices=("dblp", "ipflow", "gtgraph", "twitter"),
                         default="gtgraph",
                         help="synthetic dataset (gtgraph = R-MAT)")
    obs_cmd.add_argument("--scale", choices=("tiny", "small", "medium"),
                         default="tiny")
    obs_cmd.add_argument("--d", type=int, default=4)
    obs_cmd.add_argument("--width", type=int, default=64)
    obs_cmd.add_argument("--seed", type=int, default=0)
    obs_cmd.add_argument("--undirected", action="store_true")
    obs_cmd.add_argument("--queries", type=int, default=100,
                         help="sample queries per family after ingest")
    obs_cmd.add_argument("--every", type=int, default=5000,
                         help="periodic-reporter cadence in elements")
    obs_cmd.add_argument("--accuracy", action="store_true",
                         help="attach a shadow-truth accuracy tracker and "
                              "print observed ARE/epsilon/FPR after ingest")
    obs_cmd.add_argument("--sample-size", type=int, default=256,
                         help="shadow-truth sampled edge keys "
                              "(--accuracy and flight modes)")
    obs_cmd.add_argument("--format", choices=("prom", "json", "both"),
                         default="both")
    obs_cmd.add_argument("--out", default=None,
                         help="also write the JSON snapshot to this file")
    obs_cmd.set_defaults(handler=_cmd_obs)

    serve = commands.add_parser(
        "serve", help="run the multi-tenant micro-batching sketch "
                      "service (docs/SERVER.md)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listening port (0 picks a free one)")
    serve.add_argument("--max-batch", type=int, default=4096,
                       help="flush a micro-batch at this many staged "
                            "elements (default 4096)")
    serve.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="flush a micro-batch when its oldest request "
                            "has waited this long (default 2ms)")
    serve.add_argument("--no-batching", action="store_true",
                       help="disable coalescing: apply every request "
                            "immediately via the scalar paths (the "
                            "BENCH_server.json baseline)")
    serve.add_argument("--no-obs", action="store_true",
                       help="skip enabling observability (faster, but "
                            "/metrics and /stats stay empty)")
    serve.add_argument("--sample-interval", type=float, default=5.0,
                       help="runtime-sampler cadence in seconds")
    serve.add_argument("--data-dir", default=None,
                       help="enable durability: per-tenant write-ahead "
                            "logs and snapshots under this directory, "
                            "with crash recovery at boot")
    serve.add_argument("--fsync", choices=("always", "interval", "off"),
                       default="interval",
                       help="WAL fsync policy: per record, time-based "
                            "(--fsync-interval-ms), or never "
                            "(default interval)")
    serve.add_argument("--fsync-interval-ms", type=float, default=50.0,
                       help="max seconds of acked data at risk with "
                            "--fsync interval (default 50ms)")
    serve.add_argument("--snapshot-interval", type=float, default=30.0,
                       help="background snapshot cadence in seconds; "
                            "0 disables periodic snapshots (default 30)")
    serve.add_argument("--rotate-mb", type=float, default=64.0,
                       help="rotate WAL segments at this size (default 64)")
    serve.add_argument("--max-body-mb", type=float, default=8.0,
                       help="reject request bodies larger than this "
                            "with 413 (default 8)")
    serve.add_argument("--max-backlog", type=int, default=None,
                       help="bound staged ingest elements per tenant; "
                            "admission beyond it sheds 429 "
                            "(default 8 * max_batch)")
    serve.add_argument("--max-connections", type=int, default=512,
                       help="concurrent connection cap; beyond it new "
                            "connections get 503 (default 512)")
    serve.add_argument("--lag-limit-ms", type=float, default=250.0,
                       help="event-loop lag threshold for shedding "
                            "ingest with 429 (default 250ms)")
    serve.add_argument("--workers", type=int, default=1,
                       help="fork this many sharded worker processes "
                            "sharing the port via SO_REUSEPORT, with "
                            "tenants assigned by hash affinity "
                            "(default 1: single process)")
    serve.set_defaults(handler=_cmd_serve)

    recover = commands.add_parser(
        "recover", help="offline crash-recovery check for a 'tcm serve' "
                        "--data-dir (docs/SERVER.md)")
    recover.add_argument("data_dir",
                         help="the --data-dir to recover tenants from")
    recover.set_defaults(handler=_cmd_recover)

    loadgen = commands.add_parser(
        "loadgen", help="drive a running 'tcm serve' with a concurrent "
                        "request mix and report throughput/latency")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8765)
    loadgen.add_argument("--sketch", default="loadgen",
                         help="tenant name to create and drive")
    loadgen.add_argument("--kind", choices=("tcm", "window"),
                         default="tcm")
    loadgen.add_argument("--horizon", type=float, default=1000.0,
                         help="window horizon (--kind window)")
    loadgen.add_argument("--d", type=int, default=4)
    loadgen.add_argument("--width", type=int, default=256)
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument("--connections", type=int, default=16,
                         help="persistent keep-alive connections")
    loadgen.add_argument("--requests", type=int, default=512,
                         help="total requests across all connections")
    loadgen.add_argument("--elements", type=int, default=256,
                         help="stream elements per ingest request")
    loadgen.add_argument("--nodes", type=int, default=4096,
                         help="node-id universe for the generated edges")
    loadgen.add_argument("--query-ratio", type=float, default=0.0,
                         help="fraction of requests that are batched "
                              "edge queries (default: all ingest)")
    loadgen.add_argument("--rate", type=float, default=None,
                         help="open-loop arrival rate in requests/s "
                              "(default: closed loop)")
    loadgen.add_argument("--timeout", type=float, default=30.0,
                         help="per-request timeout in seconds (default 30)")
    loadgen.add_argument("--retries", type=int, default=3,
                         help="max retries per request for transient "
                              "failures and 429/503 sheds (default 3)")
    loadgen.add_argument("--wire", choices=("json", "binary"),
                         default="json",
                         help="request encoding: JSON bodies or the "
                              "binary columnar wire protocol "
                              "(docs/SERVER.md; default json)")
    loadgen.add_argument("--encode", choices=("eager", "lazy"),
                         default="eager",
                         help="serialize request bodies before the clock "
                              "starts (eager) or inside the timed loop "
                              "(lazy, the honest end-to-end client cost; "
                              "default eager)")
    loadgen.add_argument("--cleanup", action="store_true",
                         help="delete the tenant when done")
    loadgen.add_argument("--out", default=None,
                         help="also write the JSON summary here")
    loadgen.set_defaults(handler=_cmd_loadgen)

    diff = commands.add_parser(
        "diff", help="compare two sketch files (graph evolution)")
    diff.add_argument("before")
    diff.add_argument("after")
    diff.add_argument("--top", type=int, default=10,
                      help="how many changed edges/cells to list")
    diff.set_defaults(handler=_cmd_diff)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
