"""A multi-tenant sketch service with request micro-batching.

The library's batch entry points (:meth:`~repro.core.tcm.TCM.ingest_keys`,
``edge_weights``/``flows``/``reachable_many``) are 1-2 orders of magnitude
faster per element than their scalar counterparts -- but an HTTP service
naturally receives *small* requests from *many* concurrent clients, which
would drive the scalar paths.  This package closes that gap with
per-sketch **coalescers**: concurrent requests stage their pre-hashed
columns into a shared buffer and one kernel call per batch window answers
all of them (flush on size or deadline; docs/SERVER.md).

- :class:`~repro.server.registry.SketchRegistry` -- named per-tenant
  ``TCM`` / ``RotatingWindowTCM`` instances plus their coalescers.
- :class:`~repro.server.coalescer.IngestCoalescer` /
  :class:`~repro.server.coalescer.QueryCoalescer` -- the micro-batching
  core (usable without the HTTP layer).
- :class:`~repro.server.http.SketchServer` -- the stdlib-only asyncio
  HTTP/JSON front end (``tcm serve``).
- :func:`~repro.server.loadgen.run_loadgen` -- the closed-loop load
  generator (``tcm loadgen``) behind ``BENCH_server.json``.
- :class:`~repro.server.durability.DurabilityManager` /
  :class:`~repro.server.durability.WalWriter` -- per-tenant write-ahead
  logging, snapshots and crash recovery (``tcm serve --data-dir``).
- :class:`~repro.server.faults.FaultPlan` -- deterministic storage-fault
  injection for the chaos harness (``benchmarks/bench_chaos.py``).
- :mod:`repro.server.wire` -- the length-prefixed binary columnar wire
  protocol (``Content-Type: application/x-tcm-columnar``).
- :mod:`repro.server.sharding` -- multi-process scale-out
  (``tcm serve --workers N``): tenant hash affinity, SO_REUSEPORT
  workers, cluster metrics aggregation.
"""

from repro.server.coalescer import (
    BacklogExceeded,
    IngestCoalescer,
    QueryCoalescer,
)
from repro.server.durability import (
    DurabilityManager,
    GroupCommitPipeline,
    WalWriter,
)
from repro.server.faults import FaultPlan
from repro.server.http import BackpressureController, SketchServer
from repro.server.loadgen import run_loadgen
from repro.server.registry import SketchRegistry, TenantSketch
from repro.server.sharding import ShardInfo, shard_of

__all__ = [
    "BacklogExceeded",
    "BackpressureController",
    "DurabilityManager",
    "FaultPlan",
    "GroupCommitPipeline",
    "IngestCoalescer",
    "QueryCoalescer",
    "ShardInfo",
    "SketchRegistry",
    "TenantSketch",
    "SketchServer",
    "WalWriter",
    "run_loadgen",
    "shard_of",
]
