"""The binary columnar wire protocol (``Content-Type: application/x-tcm-columnar``).

JSON is the service's lingua franca, but it is also where most ingest
cycles go: every element is decimal-encoded by the client, parsed into
Python objects by the server, then re-packed into the columnar staging
buffers the kernels actually consume.  This module removes that round
trip.  A binary request body *is* the columns: a fixed little-endian
header followed by raw ``uint64`` key / ``float64`` weight arrays, which
the server turns into numpy views with :func:`numpy.frombuffer` --
zero-copy -- and hands straight to the coalescer.

Frame layout (all little-endian)::

    offset  size  field
    0       4     magic           b"TCMW"
    4       1     version         1
    5       1     op              1=ingest 2=remove 3=query 4=advance
                                  5=values (response)
    6       1     flags           0x01 weights column present
                                  0x02 timestamps column present
                                  0x04 ids are uint32 (else uint64)
    7       1     kind            query-kind code (op=3), else 0
    8       4     count           elements (pairs/nodes for queries)
    12      2     tenant_len      bytes of tenant name (UTF-8)
    14      2     reserved        0
    16      pad(tenant_len)       tenant name, zero-padded to a multiple
                                  of 8 so the columns stay 8-byte aligned

followed by the columns, in order and with no gaps:

- **ingest / remove**: ``src ids``, ``dst ids`` (``uint64``, or
  ``uint32`` with flag ``0x04``), then ``float64 weights`` if flag
  ``0x01``, then ``float64 timestamps`` if flag ``0x02`` (window
  tenants).  Weights default to 1.0 server-side when omitted.
- **query**: for pair-shaped kinds (``edge``, ``reach``) two id columns
  (src, dst); for node-shaped kinds (``outflow``, ``inflow``, ``flow``)
  one id column; for ``total`` no columns (``count`` is 0).
- **advance**: one ``float64`` (the watermark), ``count`` = 1.
- **values** (response): one ``float64`` column of ``count`` answers.

Ids are the same 64-bit label keys the JSON path produces: integer
labels pass through :func:`repro.hashing.labels.label_key` unchanged
(masked to 64 bits), so a binary client that hashes its own string
labels with FNV-1a -- or simply uses integer ids -- is bit-compatible
with JSON clients talking to the same tenant.

Version negotiation: the only accepted version is
:data:`WIRE_VERSION`; a mismatch decodes to :class:`WireError`, which
the server answers with ``400`` naming the version it speaks, so a
newer client can fall back to JSON (which is never versioned away).

Responses are JSON by default even for binary requests (acks are tiny);
a client that sends ``Accept: application/x-tcm-columnar`` gets query
answers back as an op=5 frame instead (``reach`` booleans become
0.0/1.0).
"""

from __future__ import annotations

import struct
from typing import NamedTuple, Optional

import numpy as np

#: The negotiated content type for request and response bodies.
CONTENT_TYPE = "application/x-tcm-columnar"

WIRE_MAGIC = b"TCMW"
WIRE_VERSION = 1

OP_INGEST = 1
OP_REMOVE = 2
OP_QUERY = 3
OP_ADVANCE = 4
OP_VALUES = 5

OP_NAMES = {OP_INGEST: "ingest", OP_REMOVE: "remove", OP_QUERY: "query",
            OP_ADVANCE: "advance", OP_VALUES: "values"}

FLAG_WEIGHTS = 0x01
FLAG_TIMESTAMPS = 0x02
FLAG_U32_IDS = 0x04
_KNOWN_FLAGS = FLAG_WEIGHTS | FLAG_TIMESTAMPS | FLAG_U32_IDS

#: Query kinds on the wire; codes are stable protocol constants.
QUERY_CODES = {"edge": 1, "reach": 2, "outflow": 3, "inflow": 4,
               "flow": 5, "total": 6}
QUERY_KINDS_BY_CODE = {code: kind for kind, code in QUERY_CODES.items()}
#: Payload shape per kind code: 2 id columns, 1, or 0.
_ID_COLUMNS = {1: 2, 2: 2, 3: 1, 4: 1, 5: 1, 6: 0}

#: magic, version, op, flags, kind, count, tenant_len, reserved.
_HEADER = struct.Struct("<4sBBBBIHH")
HEADER_SIZE = _HEADER.size  # 16

#: Refuse to decode frames claiming more elements than this (a corrupt
#: count must not make the server allocate gigabytes).
MAX_COUNT = 1 << 28


class WireError(ValueError):
    """A frame the decoder refuses (bad magic/version/shape/length)."""


class WireFrame(NamedTuple):
    """One decoded request frame.

    ``sources``/``targets`` are ``uint64`` views into the request body
    (or copies when the frame used ``uint32`` ids); ``weights`` and
    ``timestamps`` are ``float64`` views or ``None`` when the column is
    absent.  For ``advance`` only ``timestamp`` is set; for node-shaped
    queries only ``sources`` is set; for ``total`` both are ``None``.
    """

    op: int
    tenant: str
    kind: Optional[str]          # query kind (op=OP_QUERY), else None
    count: int
    sources: Optional[np.ndarray]
    targets: Optional[np.ndarray]
    weights: Optional[np.ndarray]
    timestamps: Optional[np.ndarray]
    timestamp: Optional[float]   # advance watermark


def _pad(n: int) -> int:
    return -n % 8


def _encode_header(op: int, flags: int, kind_code: int, count: int,
                   tenant: str) -> bytes:
    name = tenant.encode("utf-8")
    if len(name) > 0xFFFF:
        raise WireError(f"tenant name too long ({len(name)} bytes)")
    head = _HEADER.pack(WIRE_MAGIC, WIRE_VERSION, op, flags, kind_code,
                        count, len(name), 0)
    return head + name + b"\x00" * _pad(len(name))


def _id_bytes(ids: np.ndarray, u32: bool) -> bytes:
    dtype = np.uint32 if u32 else np.uint64
    return np.ascontiguousarray(ids, dtype=dtype).tobytes()


def encode_ingest(tenant: str, sources: np.ndarray, targets: np.ndarray,
                  weights: Optional[np.ndarray] = None,
                  timestamps: Optional[np.ndarray] = None, *,
                  u32_ids: bool = False) -> bytes:
    """Encode one ingest request body."""
    n = len(sources)
    if len(targets) != n:
        raise WireError(f"got {n} sources but {len(targets)} targets")
    flags = 0
    parts = []
    if u32_ids:
        flags |= FLAG_U32_IDS
    parts.append(_id_bytes(sources, u32_ids))
    parts.append(_id_bytes(targets, u32_ids))
    if weights is not None:
        if len(weights) != n:
            raise WireError(f"got {n} sources but {len(weights)} weights")
        flags |= FLAG_WEIGHTS
        parts.append(np.ascontiguousarray(
            weights, dtype=np.float64).tobytes())
    if timestamps is not None:
        if len(timestamps) != n:
            raise WireError(
                f"got {n} sources but {len(timestamps)} timestamps")
        flags |= FLAG_TIMESTAMPS
        parts.append(np.ascontiguousarray(
            timestamps, dtype=np.float64).tobytes())
    return _encode_header(OP_INGEST, flags, 0, n, tenant) + b"".join(parts)


def encode_remove(tenant: str, sources: np.ndarray, targets: np.ndarray,
                  weights: Optional[np.ndarray] = None, *,
                  u32_ids: bool = False) -> bytes:
    """Encode one remove (deletion) request body."""
    body = encode_ingest(tenant, sources, targets, weights,
                         u32_ids=u32_ids)
    # Same columns, different op byte.
    return body[:5] + bytes([OP_REMOVE]) + body[6:]


def encode_query(tenant: str, kind: str,
                 sources: Optional[np.ndarray] = None,
                 targets: Optional[np.ndarray] = None, *,
                 u32_ids: bool = False) -> bytes:
    """Encode one query request body.

    Pair-shaped kinds take ``sources`` and ``targets``; node-shaped
    kinds take ``sources`` only; ``total`` takes neither.
    """
    code = QUERY_CODES.get(kind)
    if code is None:
        raise WireError(f"unknown query kind {kind!r} "
                        f"(expected one of {sorted(QUERY_CODES)})")
    columns = _ID_COLUMNS[code]
    flags = FLAG_U32_IDS if u32_ids else 0
    parts = []
    if columns >= 1:
        if sources is None:
            raise WireError(f"{kind} queries need an id column")
        parts.append(_id_bytes(sources, u32_ids))
        n = len(sources)
    else:
        n = 0
    if columns == 2:
        if targets is None or len(targets) != n:
            raise WireError(f"{kind} queries need matching src/dst columns")
        parts.append(_id_bytes(targets, u32_ids))
    elif targets is not None:
        raise WireError(f"{kind} queries take no target column")
    return _encode_header(OP_QUERY, flags, code, n, tenant) + b"".join(parts)


def encode_advance(tenant: str, timestamp: float) -> bytes:
    """Encode one watermark-advance request body."""
    return (_encode_header(OP_ADVANCE, 0, 0, 1, tenant)
            + struct.pack("<d", float(timestamp)))


def encode_values(values) -> bytes:
    """Encode a query answer as an op=5 response frame."""
    column = np.asarray(values, dtype=np.float64)
    return (_encode_header(OP_VALUES, 0, 0, len(column), "")
            + np.ascontiguousarray(column).tobytes())


def decode_values(body: bytes) -> np.ndarray:
    """Decode an op=5 response frame back into a float64 array."""
    frame = decode_frame(body)
    if frame.op != OP_VALUES:
        raise WireError(f"expected a values frame, got op={frame.op}")
    return frame.weights


def _column(body: bytes, offset: int, dtype, count: int) -> np.ndarray:
    return np.frombuffer(body, dtype=dtype, count=count, offset=offset)


def decode_frame(body: bytes) -> WireFrame:
    """Decode one request frame; raises :class:`WireError` on refusal.

    Id and float columns are zero-copy ``np.frombuffer`` views into
    ``body`` (read-only, which is all the coalescer's staging copy
    needs); ``uint32`` ids are widened to ``uint64`` with one copy.
    """
    if len(body) < HEADER_SIZE:
        raise WireError(f"frame too short ({len(body)} bytes)")
    magic, version, op, flags, kind_code, count, tenant_len, _reserved = \
        _HEADER.unpack_from(body)
    if magic != WIRE_MAGIC:
        raise WireError("bad magic (not a TCMW columnar frame)")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (this server speaks "
            f"version {WIRE_VERSION}; fall back to application/json)")
    if op not in OP_NAMES:
        raise WireError(f"unknown op {op}")
    if flags & ~_KNOWN_FLAGS:
        raise WireError(f"unknown flags 0x{flags & ~_KNOWN_FLAGS:02x}")
    if count > MAX_COUNT:
        raise WireError(f"count {count} exceeds limit {MAX_COUNT}")
    offset = HEADER_SIZE + tenant_len + _pad(tenant_len)
    if len(body) < offset:
        raise WireError("frame truncated inside the tenant name")
    try:
        tenant = body[HEADER_SIZE:HEADER_SIZE + tenant_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"tenant name is not valid UTF-8: {exc}")

    u32 = bool(flags & FLAG_U32_IDS)
    id_dtype = np.uint32 if u32 else np.uint64
    id_size = 4 if u32 else 8

    def ids(off: int) -> np.ndarray:
        column = _column(body, off, id_dtype, count)
        return column.astype(np.uint64) if u32 else column

    if op == OP_ADVANCE:
        if len(body) != offset + 8:
            raise WireError("advance frames carry exactly one float64")
        (timestamp,) = struct.unpack_from("<d", body, offset)
        return WireFrame(op, tenant, None, 1, None, None, None, None,
                         timestamp)

    if op == OP_VALUES:
        expected = offset + 8 * count
        if len(body) != expected:
            raise WireError(
                f"values frame is {len(body)} bytes, expected {expected}")
        return WireFrame(op, tenant, None, count, None, None,
                         _column(body, offset, np.float64, count), None,
                         None)

    if op == OP_QUERY:
        kind = QUERY_KINDS_BY_CODE.get(kind_code)
        if kind is None:
            raise WireError(f"unknown query kind code {kind_code}")
        columns = _ID_COLUMNS[kind_code]
        expected = offset + columns * id_size * count
        if len(body) != expected:
            raise WireError(
                f"query frame is {len(body)} bytes, expected {expected}")
        sources = targets = None
        if columns >= 1:
            sources = ids(offset)
        if columns == 2:
            targets = ids(offset + id_size * count)
        return WireFrame(op, tenant, kind, count, sources, targets, None,
                         None, None)

    # OP_INGEST / OP_REMOVE: src, dst, [weights], [timestamps].
    if op == OP_REMOVE and flags & FLAG_TIMESTAMPS:
        raise WireError("remove frames cannot carry timestamps")
    expected = offset + 2 * id_size * count
    if flags & FLAG_WEIGHTS:
        expected += 8 * count
    if flags & FLAG_TIMESTAMPS:
        expected += 8 * count
    if len(body) != expected:
        raise WireError(
            f"{OP_NAMES[op]} frame is {len(body)} bytes, "
            f"expected {expected}")
    sources = ids(offset)
    offset += id_size * count
    targets = ids(offset)
    offset += id_size * count
    weights = timestamps = None
    if flags & FLAG_WEIGHTS:
        weights = _column(body, offset, np.float64, count)
        offset += 8 * count
    if flags & FLAG_TIMESTAMPS:
        timestamps = _column(body, offset, np.float64, count)
    return WireFrame(op, tenant, None, count, sources, targets, weights,
                     timestamps, None)
