"""``python -m repro.server`` -- shorthand for ``tcm serve``."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["serve", *sys.argv[1:]]))
