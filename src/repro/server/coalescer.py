"""Request micro-batching: coalesce concurrent requests into kernel calls.

The service's throughput hinges on one observation: a TCM absorbs a
65k-element column batch through :meth:`~repro.core.tcm.TCM.ingest_keys`
at roughly the same wall cost as a few hundred scalar
:meth:`~repro.core.tcm.TCM.update` calls.  Individually small HTTP
requests would pay the scalar price; the coalescers below make them pay
the batch price instead.

:class:`IngestCoalescer` keeps a preallocated **columnar staging buffer**
(``uint64`` source/target keys, ``float64`` weights, optionally
``float64`` timestamps -- labels are FNV-hashed at request-parse time, so
staging is pure array writes).  Each request appends its columns and
receives an :class:`asyncio.Future`; the whole buffer is flushed through
ONE batch call when it reaches ``max_batch`` elements or when the oldest
staged request has waited ``max_delay`` seconds, whichever comes first.
Every staged future resolves from that single call.

:class:`QueryCoalescer` does the same for reads: requests are grouped by
query family and each family is answered with one batched engine call
(``edge_weights`` / ``reachable_many`` / ``flows`` / ...) per flush, with
per-request slices handed back through futures.  A query flush first
drains the tenant's ingest coalescer so a client always reads its own
acknowledged writes.

Both run entirely on the event-loop thread: ``add`` must be called from a
running loop, flushes are synchronous (the kernel call briefly occupies
the loop -- bounded by ``max_batch``), and no locks are needed.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.instruments import OBS

#: Flush when the staging buffer holds this many elements ...
DEFAULT_MAX_BATCH = 4096
#: ... or when the oldest staged request has waited this long (seconds).
DEFAULT_MAX_DELAY = 0.002


class BacklogExceeded(Exception):
    """Admission refused: staging this request would exceed the bound.

    The server maps this to ``429 Too Many Requests`` with a
    ``Retry-After`` hint -- the load-shedding contract, not an error in
    the request itself.
    """

    def __init__(self, staged: int, adding: int, max_backlog: int):
        super().__init__(
            f"ingest backlog full: {staged} staged + {adding} requested "
            f"> {max_backlog} allowed")
        self.staged = staged
        self.adding = adding
        self.max_backlog = max_backlog


class IngestCoalescer:
    """Stage per-request ingest columns; flush them as one kernel call.

    :param apply_batch: ``(source_keys, target_keys, weights, timestamps)``
        -- absorbs one staged batch (timestamps is ``None`` unless
        ``with_timestamps``).  Called synchronously on the loop thread.
    :param apply_scalar: same signature, used for every request when
        ``batching=False`` -- the honest per-request baseline the batched
        path is benchmarked against (scalar ``update`` loops).
    :param with_timestamps: stage a timestamp column (window tenants).
    :param batching: when ``False``, ``add`` applies immediately via
        ``apply_scalar`` and never stages.
    :param max_backlog: hard bound on staged elements; ``add`` raises
        :class:`BacklogExceeded` instead of staging past it (``None``
        leaves staging unbounded).  Normally the size trigger flushes
        well before this bound -- it is the safety valve for the case
        where flushes themselves are slow or failing (sick disk under a
        WAL) and the honest answer is to shed.
    :param ack_barrier: optional; called once per successful flush.  When
        it returns an :class:`asyncio.Future`, the flushed requests' acks
        are deferred until that future resolves (the WAL group-commit
        barrier: applied state is visible immediately, the 200 waits for
        durability).  ``None`` return means ack now.
    """

    def __init__(self, apply_batch: Callable, *,
                 apply_scalar: Optional[Callable] = None,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay: float = DEFAULT_MAX_DELAY,
                 with_timestamps: bool = False,
                 batching: bool = True,
                 max_backlog: Optional[int] = None,
                 ack_barrier: Optional[Callable[[], Any]] = None,
                 kind: str = "ingest"):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay <= 0:
            raise ValueError(f"max_delay must be positive, got {max_delay}")
        if max_backlog is not None and max_backlog < 1:
            raise ValueError(
                f"max_backlog must be >= 1, got {max_backlog}")
        self.apply_batch = apply_batch
        self.apply_scalar = apply_scalar
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.with_timestamps = with_timestamps
        self.batching = batching
        self.max_backlog = max_backlog
        self.ack_barrier = ack_barrier
        self.kind = kind
        self._cap = max_batch
        self._src = np.empty(self._cap, dtype=np.uint64)
        self._dst = np.empty(self._cap, dtype=np.uint64)
        self._wts = np.empty(self._cap, dtype=np.float64)
        self._ts = (np.empty(self._cap, dtype=np.float64)
                    if with_timestamps else None)
        self._n = 0
        self._futures: List[Tuple[asyncio.Future, int]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._first_staged: Optional[float] = None
        self.flushes = 0
        self.staged_elements = 0

    def __len__(self) -> int:
        """Elements currently staged."""
        return self._n

    @property
    def pending_requests(self) -> int:
        return len(self._futures)

    def _grow(self, needed: int) -> None:
        cap = self._cap
        while cap < needed:
            cap *= 2
        for name in ("_src", "_dst", "_wts", "_ts"):
            old = getattr(self, name)
            if old is None:
                continue
            fresh = np.empty(cap, dtype=old.dtype)
            fresh[:self._n] = old[:self._n]
            setattr(self, name, fresh)
        self._cap = cap

    def add(self, source_keys: np.ndarray, target_keys: np.ndarray,
            weights: Optional[np.ndarray] = None,
            timestamps=None) -> asyncio.Future:
        """Stage one request's columns; returns a future of its count.

        The future resolves when the batch containing this request is
        flushed (or immediately in unbatched mode), or raises whatever
        the batch application raised.  ``weights=None`` means unit
        weights; ``timestamps`` may be a column or a scalar applied to
        the whole request (both fill the staging buffer without
        materializing an intermediate array -- the binary wire path
        relies on this).
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        k = len(source_keys)
        if not self.batching:
            apply = self.apply_scalar or self.apply_batch
            if weights is None:
                weights = np.ones(k)
            if self.with_timestamps and not isinstance(
                    timestamps, np.ndarray):
                timestamps = np.full(
                    k, 0.0 if timestamps is None else float(timestamps))
            try:
                apply(source_keys, target_keys, weights, timestamps)
            except Exception as exc:
                future.set_exception(exc)
            else:
                self._ack([(future, k)])
            return future
        if k == 0:
            future.set_result(0)
            return future
        if (self.max_backlog is not None
                and self._n + k > self.max_backlog):
            raise BacklogExceeded(self._n, k, self.max_backlog)
        n = self._n
        if n + k > self._cap:
            self._grow(n + k)
        self._src[n:n + k] = source_keys
        self._dst[n:n + k] = target_keys
        self._wts[n:n + k] = 1.0 if weights is None else weights
        if self._ts is not None:
            if timestamps is None:
                raise ValueError(
                    "this coalescer stages timestamps; pass a column "
                    "or scalar")
            self._ts[n:n + k] = timestamps
        self._n = n + k
        self._futures.append((future, k))
        if self._first_staged is None:
            self._first_staged = time.perf_counter()
        if self._n >= self.max_batch:
            self.flush("size")
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_delay, self._on_deadline)
        return future

    def _on_deadline(self) -> None:
        self._timer = None
        self.flush("deadline")

    def flush(self, reason: str = "explicit") -> int:
        """Apply everything staged with one batch call; resolve futures.

        Returns the number of elements flushed (0 when nothing staged).
        Safe to call any time from the loop thread -- the query
        coalescer calls it as its read-your-writes barrier and shutdown
        calls it to drain.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        n, futures = self._n, self._futures
        if n == 0:
            return 0
        waited = (time.perf_counter() - self._first_staged
                  if self._first_staged is not None else 0.0)
        self._n = 0
        self._futures = []
        self._first_staged = None
        try:
            self.apply_batch(
                self._src[:n], self._dst[:n], self._wts[:n],
                self._ts[:n] if self._ts is not None else None)
        except Exception as exc:
            for future, _ in futures:
                if not future.done():
                    future.set_exception(exc)
            return n
        finally:
            self.flushes += 1
            self.staged_elements += n
            if OBS.enabled:
                OBS.server_batch_flushes.labels(self.kind, reason).inc()
                OBS.server_batch_elements.labels(self.kind).observe(n)
                OBS.server_batch_wait_seconds.observe(waited)
                if len(futures) > 1:
                    OBS.server_coalesced_requests.labels(self.kind).inc(
                        len(futures))
        self._ack(futures)
        return n

    def _ack(self, futures: List[Tuple[asyncio.Future, int]]) -> None:
        """Resolve request futures now, or after the durability barrier.

        The applied state is already visible (read-your-writes holds
        either way); what the barrier defers is only the *ack*, so a
        200 always means the batch reached the WAL's durability level.
        """
        barrier = (self.ack_barrier() if self.ack_barrier is not None
                   else None)
        if barrier is None:
            for future, count in futures:
                if not future.done():
                    future.set_result(count)
            return

        def _resolve(done: asyncio.Future) -> None:
            exc = (ConnectionAbortedError("group commit cancelled")
                   if done.cancelled() else done.exception())
            for future, count in futures:
                if future.done():
                    continue
                if exc is not None:
                    future.set_exception(exc)
                else:
                    future.set_result(count)

        barrier.add_done_callback(_resolve)


#: Query families and whether their payload items are pairs or nodes.
QUERY_KINDS: Dict[str, str] = {
    "edge": "pairs",
    "reach": "pairs",
    "outflow": "nodes",
    "inflow": "nodes",
    "flow": "nodes",
    "total": "none",
}


class QueryCoalescer:
    """Group concurrent read requests into one engine call per family.

    :param runner: ``(kind, payload_list) -> sequence`` -- answers one
        family's concatenated payload with a single batched call
        (``edge_weights`` for ``edge``, ``reachable_many`` for
        ``reach``, ...).  For ``total`` the payload is ignored and the
        scalar result is shared by every staged request.
    :param before_flush: called once per flush before any family runs --
        the registry wires the tenant's ingest-coalescer flush here, so
        a query never overtakes writes acknowledged before it.
    """

    def __init__(self, runner: Callable[[str, list], Any], *,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay: float = DEFAULT_MAX_DELAY,
                 batching: bool = True,
                 before_flush: Optional[Callable[[], Any]] = None,
                 kind: str = "query"):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay <= 0:
            raise ValueError(f"max_delay must be positive, got {max_delay}")
        self.runner = runner
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.batching = batching
        self.before_flush = before_flush
        self.kind = kind
        # kind -> (payload items, [(future, start, stop)])
        self._groups: Dict[str, Tuple[list, list]] = {}
        self._items = 0
        self._timer: Optional[asyncio.TimerHandle] = None
        self._first_staged: Optional[float] = None
        self.flushes = 0

    @property
    def pending_requests(self) -> int:
        return sum(len(futs) for _, futs in self._groups.values())

    def __len__(self) -> int:
        return self._items

    def add(self, kind: str, payload: Sequence) -> asyncio.Future:
        """Stage one request's queries; future of the result list.

        ``payload`` is a list of (pre-hashed) pairs or nodes per
        :data:`QUERY_KINDS`; for ``total`` it is ignored.  The future
        resolves to a plain Python list (JSON-ready).
        """
        if kind not in QUERY_KINDS:
            raise ValueError(f"unknown query kind {kind!r} "
                             f"(expected one of {sorted(QUERY_KINDS)})")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        if not self.batching:
            if self.before_flush is not None:
                self.before_flush()
            try:
                future.set_result(self._answer(kind, list(payload)))
            except Exception as exc:
                future.set_exception(exc)
            return future
        items, futures = self._groups.setdefault(kind, ([], []))
        start = len(items)
        items.extend(payload)
        futures.append((future, start, len(items)))
        self._items += max(len(items) - start, 1)
        if self._first_staged is None:
            self._first_staged = time.perf_counter()
        if self._items >= self.max_batch:
            self.flush("size")
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay, self._on_deadline)
        return future

    def _answer(self, kind: str, items: list) -> list:
        result = self.runner(kind, items)
        if kind == "total":
            return [float(result)]
        if isinstance(result, np.ndarray):
            return result.tolist()
        return list(result)

    def _on_deadline(self) -> None:
        self._timer = None
        self.flush("deadline")

    def flush(self, reason: str = "explicit") -> int:
        """Answer every staged family with one batched call each."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        groups = self._groups
        items = self._items
        if not groups:
            return 0
        waited = (time.perf_counter() - self._first_staged
                  if self._first_staged is not None else 0.0)
        self._groups = {}
        self._items = 0
        self._first_staged = None
        if self.before_flush is not None:
            self.before_flush()
        coalesced = 0
        for kind, (payload, futures) in groups.items():
            try:
                answers = self._answer(kind, payload)
            except Exception as exc:
                for future, _, _ in futures:
                    if not future.done():
                        future.set_exception(exc)
                continue
            if len(futures) > 1:
                coalesced += len(futures)
            for future, start, stop in futures:
                if future.done():
                    continue
                if kind == "total":
                    future.set_result(answers)
                else:
                    future.set_result(answers[start:stop])
        self.flushes += 1
        if OBS.enabled:
            OBS.server_batch_flushes.labels(self.kind, reason).inc()
            OBS.server_batch_elements.labels(self.kind).observe(items)
            OBS.server_batch_wait_seconds.observe(waited)
            if coalesced:
                OBS.server_coalesced_requests.labels(self.kind).inc(
                    coalesced)
        return items
