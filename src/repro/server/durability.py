"""Durability for the sketch service: per-tenant WAL, snapshots, recovery.

The service's state is rebuildable by construction -- a TCM is a pure
fold over its input columns, and label hashing is seed-deterministic --
so durability reduces to persisting the *inputs* cheaply and replaying
them on restart:

- **Write-ahead log** (:class:`WalWriter`): an append-only file of
  binary columnar records, one per coalesced *batch* (not per request --
  the coalescer already aggregates, so durability costs one write and at
  most one fsync per flush).  Each record is a CRC32-checksummed frame
  holding the exact ``uint64`` key / ``float64`` weight columns the
  kernel call consumed; replaying them through the same columnar entry
  points yields **bit-identical** matrices (integer keys pass through
  ``label_to_int`` unchanged).
- **Snapshots**: periodically the WAL is rotated and the full tenant
  state is written as one ``.npz`` (reusing
  :func:`repro.core.serialization.save_tcm`; window tenants embed one
  ``save_tcm`` payload per ring slot plus watermark/bucket cursor).
  A snapshot covering segment ``N`` lets every segment ``<= N`` be
  deleted -- the "big crunch" that keeps the data dir bounded.
- **Recovery** (:meth:`DurabilityManager.recover`): rebuild each tenant
  from ``meta.json`` (same config + seed => same hash functions), load
  the newest readable snapshot, then replay the WAL tail.  A torn or
  corrupt tail frame (partial write at crash time) fails its CRC or
  length check and is cleanly discarded; everything acked before it
  survives.

On-disk layout under ``--data-dir``::

    <data_dir>/tenants/<name>/meta.json          # kind + config
    <data_dir>/tenants/<name>/wal-00000007.log   # CRC-framed records
    <data_dir>/tenants/<name>/snapshot-00000006.npz  # covers segs <= 6

Durability contract (``--fsync`` policy):

- ``always``  -- fsync per record before the batch is applied/acked:
  an acked write survives kill -9 and power loss.
- ``interval`` -- group fsync every ``fsync_interval`` seconds: an
  acked write survives process crash (the kernel has the bytes); up to
  one interval of acked writes may be lost on *machine* loss.
- ``off``     -- never fsync explicitly; cheapest, weakest.

In every policy the record is *written* before the batch is applied and
the futures resolve, so the WAL is always a superset of acked state:
recovery yields exactly the acked prefix plus at most the records of
batches that were in flight (at-least-once for unacked work, exactly
once for acked work).
"""

from __future__ import annotations

import asyncio
import io
import json
import os
import shutil
import struct
import time
import zlib
from typing import (Any, Callable, Dict, List, NamedTuple, Optional, Tuple)
from zipfile import BadZipFile

import numpy as np

from repro.core.aggregation import Aggregation
from repro.core.serialization import save_tcm
from repro.obs.instruments import OBS
from repro.server.faults import FaultPlan

#: First 8 bytes of every WAL segment file.
SEGMENT_MAGIC = b"TCMWAL1\n"

#: Frame header: op (u8), flags (u8), reserved (u16), payload length
#: (u32), CRC32 of the payload (u32).
_FRAME_HEADER = struct.Struct("<BBHII")

OP_INGEST = 1
OP_REMOVE = 2
OP_ADVANCE = 3
#: Group-commit container: the payload is a sequence of sub-records
#: (each a :data:`_SUB_HEADER` + payload) covered by ONE crc32 in the
#: outer frame header -- one checksum pass and one write per barrier
#: instead of one per record.
OP_BATCH = 4
_OP_NAMES = {OP_INGEST: "ingest", OP_REMOVE: "remove", OP_ADVANCE: "advance"}

#: Sub-record header inside an OP_BATCH frame: op (u8), flags (u8),
#: reserved (u16), payload length (u32).  No per-record CRC -- the
#: outer frame's checksum covers the whole batch.
_SUB_HEADER = struct.Struct("<BBHI")

#: Record flags.
FLAG_TIMESTAMPS = 0x01  # payload carries a float64 timestamp column
FLAG_SCALAR = 0x02      # batch was applied through the scalar path

#: Sanity cap on a single frame's payload (a corrupt length field must
#: not make the scanner allocate gigabytes).
_MAX_PAYLOAD = 1 << 31

DEFAULT_ROTATE_BYTES = 64 * 1024 * 1024
DEFAULT_FSYNC_INTERVAL = 0.05
FSYNC_POLICIES = ("always", "interval", "off")

_META_NAME = "meta.json"


class SnapshotMismatch(ValueError):
    """A snapshot does not match the tenant rebuilt from ``meta.json``."""


class WalRecord(NamedTuple):
    """One decoded WAL record (column arrays are ``None`` for advance)."""

    op: str                              # "ingest" | "remove" | "advance"
    flags: int
    sources: Optional[np.ndarray]        # uint64 keys
    targets: Optional[np.ndarray]        # uint64 keys
    weights: Optional[np.ndarray]        # float64
    timestamps: Optional[np.ndarray]     # float64 (ingest w/ FLAG_TIMESTAMPS)
    timestamp: Optional[float]           # advance watermark

    @property
    def elements(self) -> int:
        return 0 if self.sources is None else len(self.sources)


# -- record encoding -------------------------------------------------------

def _encode_columns(sources: np.ndarray, targets: np.ndarray,
                    weights: np.ndarray,
                    timestamps: Optional[np.ndarray]) -> bytes:
    n = len(sources)
    parts = [struct.pack("<I", n),
             np.ascontiguousarray(sources, dtype=np.uint64).tobytes(),
             np.ascontiguousarray(targets, dtype=np.uint64).tobytes(),
             np.ascontiguousarray(weights, dtype=np.float64).tobytes()]
    if timestamps is not None:
        parts.append(
            np.ascontiguousarray(timestamps, dtype=np.float64).tobytes())
    return b"".join(parts)


def _decode_columns(payload: bytes, with_timestamps: bool) \
        -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
    if len(payload) < 4:
        raise ValueError("short column payload")
    (n,) = struct.unpack_from("<I", payload)
    columns = 4 if with_timestamps else 3
    expected = 4 + 8 * n * columns
    if len(payload) != expected:
        raise ValueError(
            f"column payload is {len(payload)} bytes, expected {expected}")
    offset = 4
    sources = np.frombuffer(payload, dtype=np.uint64, count=n, offset=offset)
    offset += 8 * n
    targets = np.frombuffer(payload, dtype=np.uint64, count=n, offset=offset)
    offset += 8 * n
    weights = np.frombuffer(payload, dtype=np.float64, count=n, offset=offset)
    offset += 8 * n
    timestamps = None
    if with_timestamps:
        timestamps = np.frombuffer(payload, dtype=np.float64, count=n,
                                   offset=offset)
    return sources, targets, weights, timestamps


def _decode_record(op: int, flags: int, payload: bytes) -> WalRecord:
    name = _OP_NAMES[op]
    if op == OP_ADVANCE:
        if len(payload) != 8:
            raise ValueError("advance payload must be 8 bytes")
        (timestamp,) = struct.unpack("<d", payload)
        return WalRecord(name, flags, None, None, None, None, timestamp)
    with_ts = bool(flags & FLAG_TIMESTAMPS)
    if op == OP_REMOVE and with_ts:
        raise ValueError("remove records cannot carry timestamps")
    src, dst, wts, ts = _decode_columns(payload, with_ts)
    return WalRecord(name, flags, src, dst, wts, ts, None)


def _decode_batch(payload: bytes) -> List[WalRecord]:
    """Expand an ``OP_BATCH`` frame into its sub-records, in order.

    The outer frame's CRC already covered ``payload``, so a structural
    error here means the frame was *written* malformed -- raise and let
    the scanner count it as torn rather than replay a partial group.
    """
    records: List[WalRecord] = []
    pos = 0
    size = len(payload)
    while pos < size:
        if pos + _SUB_HEADER.size > size:
            raise ValueError("truncated batch sub-header")
        op, flags, _, length = _SUB_HEADER.unpack_from(payload, pos)
        if op not in _OP_NAMES or length > _MAX_PAYLOAD:
            raise ValueError(f"bad batch sub-record op {op}")
        start = pos + _SUB_HEADER.size
        end = start + length
        if end > size:
            raise ValueError("truncated batch sub-record")
        records.append(_decode_record(op, flags, payload[start:end]))
        pos = end
    return records


# -- segment naming --------------------------------------------------------

def segment_path(directory: str, seq: int) -> str:
    return os.path.join(directory, f"wal-{seq:08d}.log")


def snapshot_path(directory: str, seq: int) -> str:
    return os.path.join(directory, f"snapshot-{seq:08d}.npz")


def _listed(directory: str, prefix: str, suffix: str) \
        -> List[Tuple[int, str]]:
    out = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return out
    for name in names:
        if not (name.startswith(prefix) and name.endswith(suffix)):
            continue
        middle = name[len(prefix):-len(suffix)]
        try:
            seq = int(middle)
        except ValueError:
            continue
        out.append((seq, os.path.join(directory, name)))
    out.sort()
    return out


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(seq, path)`` for every WAL segment, ascending."""
    return _listed(directory, "wal-", ".log")


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(seq, path)`` for every snapshot, ascending."""
    return _listed(directory, "snapshot-", ".npz")


def _prune_tmp_files(directory: str) -> int:
    """Delete orphan temp files left behind by a crash mid-write.

    Snapshots and ``meta.json`` both go tmp -> fsync -> rename, so a
    surviving ``.snapshot-*.tmp.npz`` / ``.meta.json.tmp`` means the
    rename never happened.  Such files are never restored from
    (:func:`list_snapshots` ignores dotfiles) but would accumulate
    forever; prune them at attach/boot time.
    """
    pruned = 0
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return 0
    for name in names:
        if not name.startswith("."):
            continue
        if not (name.endswith(".tmp") or ".tmp." in name):
            continue
        try:
            os.remove(os.path.join(directory, name))
            pruned += 1
        except OSError:
            pass
    return pruned


def _fsync_dir(directory: str) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover -- platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


# -- the writer ------------------------------------------------------------

class WalWriter:
    """Append CRC-framed records to size-rotated segment files.

    Single-writer, event-loop-owned (no locks).  A failed append is
    rolled back (the segment is truncated to the pre-record offset, or
    abandoned for a fresh segment if even that fails) so the on-disk log
    is always a clean prefix of attempted records -- the scanner's
    torn-tail handling only has to deal with *crash* artifacts.
    """

    def __init__(self, directory: str, *, fsync: str = "interval",
                 fsync_interval: float = DEFAULT_FSYNC_INTERVAL,
                 rotate_bytes: int = DEFAULT_ROTATE_BYTES,
                 start_segment: int = 1,
                 faults: Optional[FaultPlan] = None):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got "
                f"{fsync!r}")
        if fsync_interval <= 0:
            raise ValueError(
                f"fsync_interval must be positive, got {fsync_interval}")
        if rotate_bytes < 4096:
            raise ValueError(
                f"rotate_bytes must be >= 4096, got {rotate_bytes}")
        if start_segment < 1:
            raise ValueError(
                f"start_segment must be >= 1, got {start_segment}")
        self.directory = directory
        self.fsync_policy = fsync
        self.fsync_interval = fsync_interval
        self.rotate_bytes = rotate_bytes
        self.faults = faults
        self.records = 0
        self.bytes_written = 0
        self.records_in_segment = 0
        #: Set by :meth:`DurabilityManager.attach`.  While the pipeline
        #: is active, appends are *staged* with it instead of written
        #: inline; the commit task writes them as one group frame.
        self.group: Optional["GroupCommitPipeline"] = None
        self._seq = start_segment
        self._fh: Optional[io.BufferedWriter] = None
        self._last_sync = time.monotonic()
        self._needs_sync = False
        os.makedirs(directory, exist_ok=True)
        self._open_segment()

    @property
    def segment_seq(self) -> int:
        """Sequence number of the segment currently being appended."""
        return self._seq

    @property
    def path(self) -> str:
        return segment_path(self.directory, self._seq)

    # -- lifecycle ---------------------------------------------------------

    def _open_segment(self) -> None:
        self._fh = open(self.path, "ab")
        if self._fh.tell() == 0:
            self._fh.write(SEGMENT_MAGIC)
            self._fh.flush()
        self.records_in_segment = 0

    def rotate(self) -> int:
        """Close the current segment and start the next; returns the
        sequence number of the segment just closed."""
        closed = self._seq
        try:
            self.sync()
        except OSError:
            # A dying disk must not wedge rotation -- the new segment is
            # exactly how we get away from the bad tail.
            pass
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
        self._seq += 1
        self._open_segment()
        if OBS.enabled:
            OBS.wal_rotations.inc()
        return closed

    def sync(self) -> None:
        """Force an fsync of the current segment (ignores the policy)."""
        if self._fh is None or not self._needs_sync:
            return
        self._do_fsync()

    def close(self) -> None:
        if self._fh is None:
            return
        try:
            # Best-effort: a disk that cannot fsync at shutdown must not
            # turn a drained stop into an unclean exit -- the bytes are
            # already flushed to the kernel, and every record the disk
            # refused earlier was answered with a 503, never acked.
            self.sync()
        except OSError:
            pass
        finally:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    # -- appends -----------------------------------------------------------

    def append_ingest(self, sources: np.ndarray, targets: np.ndarray,
                      weights: np.ndarray,
                      timestamps: Optional[np.ndarray] = None, *,
                      scalar: bool = False) -> None:
        flags = 0
        if timestamps is not None:
            flags |= FLAG_TIMESTAMPS
        if scalar:
            flags |= FLAG_SCALAR
        self._append(OP_INGEST, flags,
                     _encode_columns(sources, targets, weights, timestamps))

    def append_remove(self, sources: np.ndarray, targets: np.ndarray,
                      weights: np.ndarray) -> None:
        self._append(OP_REMOVE, 0,
                     _encode_columns(sources, targets, weights, None))

    def append_advance(self, timestamp: float) -> None:
        self._append(OP_ADVANCE, 0, struct.pack("<d", timestamp))

    def _append(self, op: int, flags: int, payload: bytes) -> None:
        group = self.group
        if group is not None and group.active:
            # Group-commit fast path: stage with the pipeline and return
            # immediately.  The caller observes durability through
            # the tenant's barrier future, not through this call.
            group.stage(self, op, flags, payload)
            return
        if self._fh is None:
            self._open_segment()
        if self._fh.tell() >= self.rotate_bytes:
            self.rotate()
        frame = _FRAME_HEADER.pack(op, flags, 0, len(payload),
                                   zlib.crc32(payload)) + payload
        offset = self._fh.tell()
        try:
            if self.faults is not None:
                self.faults.on_write(len(frame))
            self._fh.write(frame)
            self._fh.flush()
            self._needs_sync = True
            if self.fsync_policy == "always":
                self._do_fsync()
            elif (self.fsync_policy == "interval"
                  and time.monotonic() - self._last_sync
                  >= self.fsync_interval):
                self._do_fsync()
        except Exception:
            if OBS.enabled:
                OBS.wal_append_errors.inc()
            self._rollback_to(offset)
            raise
        self.records += 1
        self.records_in_segment += 1
        self.bytes_written += len(frame)
        if OBS.enabled:
            OBS.wal_records.labels(_OP_NAMES[op]).inc()
            OBS.wal_bytes.inc(len(frame))
        if self.faults is not None:
            # Deterministic kill-mid-flush: record durable, batch not
            # yet applied, request not yet acked.
            self.faults.on_record()

    def _do_fsync(self) -> None:
        started = time.perf_counter()
        if self.faults is not None:
            self.faults.on_fsync()
        os.fsync(self._fh.fileno())
        self._needs_sync = False
        self._last_sync = time.monotonic()
        if OBS.enabled:
            OBS.wal_fsyncs.inc()
            OBS.wal_fsync_seconds.observe(time.perf_counter() - started)

    def _rollback_to(self, offset: int) -> None:
        """Undo a failed append so the segment stays a clean prefix.

        Reopen (dropping any half-flushed buffer) and truncate back.  If
        the disk won't even do that, abandon the segment: the scanner
        treats its torn tail as end-of-segment and recovery continues
        with later segments.
        """
        try:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
            self._fh = open(self.path, "ab")
            self._fh.truncate(offset)
        except OSError:
            self._fh = None
            self._seq += 1

    # -- group commit ------------------------------------------------------

    def _commit_group(self, items: List[Tuple[int, int, bytes]]) \
            -> Dict[str, Any]:
        """Write staged records as ONE frame and apply the fsync policy.

        Runs on the pipeline's commit thread, which owns this writer
        exclusively for the duration (staging keeps filling the *next*
        group on the loop thread meanwhile -- that is the pipelining).
        A single record is written as a plain frame (bit-identical to
        the non-pipelined path); two or more become an ``OP_BATCH``
        frame checksummed once over the whole payload.  No labelled
        metrics are touched here -- the registry is not thread-safe, so
        the pipeline increments them back on the loop thread from the
        stats this returns.
        """
        if self._fh is None:
            self._open_segment()
        if self._fh.tell() >= self.rotate_bytes:
            self.rotate()
        if len(items) == 1:
            op, flags, payload = items[0]
            frame = _FRAME_HEADER.pack(op, flags, 0, len(payload),
                                       zlib.crc32(payload)) + payload
        else:
            body = b"".join(
                _SUB_HEADER.pack(op, flags, 0, len(payload)) + payload
                for op, flags, payload in items)
            frame = _FRAME_HEADER.pack(OP_BATCH, 0, 0, len(body),
                                       zlib.crc32(body)) + body
        offset = self._fh.tell()
        try:
            if self.faults is not None:
                self.faults.on_write(len(frame))
            self._fh.write(frame)
            self._fh.flush()
            self._needs_sync = True
            if self.fsync_policy == "always":
                self._do_fsync()
            elif (self.fsync_policy == "interval"
                  and time.monotonic() - self._last_sync
                  >= self.fsync_interval):
                self._do_fsync()
        except Exception:
            self._rollback_to(offset)
            raise
        self.records += len(items)
        self.records_in_segment += len(items)
        self.bytes_written += len(frame)
        by_op: Dict[str, int] = {}
        for op, _, _ in items:
            name = _OP_NAMES[op]
            by_op[name] = by_op.get(name, 0) + 1
        if self.faults is not None:
            # Deterministic kill-mid-flush: every record in the group is
            # durable before any waiter is acked.
            for _ in items:
                self.faults.on_record()
        return {"records": len(items), "bytes": len(frame), "by_op": by_op}


# -- group-commit pipelining ------------------------------------------------

class GroupCommitPipeline:
    """Double-buffered, cross-tenant WAL group commit.

    Appends from the loop thread are *staged* into an open group per
    :class:`WalWriter` (:meth:`stage`); a single commit task drains all
    open groups at once and writes each as one frame -- one write and at
    most one fsync per WAL per cycle, regardless of how many coalesced
    batches landed since the last barrier.  The write+fsync runs in the
    default executor, so while group *N* is being made durable the loop
    thread keeps applying and staging group *N+1* -- apply/ack overlap
    with the next buffer's write instead of serialising behind fsync.

    Ordering and ack semantics:

    - Records stage in append order per WAL, and groups commit in the
      order they were opened, so the on-disk record order equals apply
      order -- recovery replays exactly what the live path did.
    - Every waiter acks through the group's barrier future, which
      resolves only after the frame is written (and fsynced under
      ``--fsync always``).  A commit failure rejects every waiter in
      that group with the original error; other WALs in the same cycle
      are isolated and still ack.
    - :meth:`run_exclusive` is the safe point for snapshots: it commits
      every staged group synchronously, then runs the callback with no
      commit in flight, so "applied state" and "durable state" coincide
      exactly while the callback runs.
    """

    def __init__(self) -> None:
        self.active = False
        self.cycles = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._task: Optional["asyncio.Task[None]"] = None
        self._wake: Optional[asyncio.Event] = None
        #: wal -> (staged records, shared barrier future)
        self._open: Dict[WalWriter, Tuple[List[Tuple[int, int, bytes]],
                                          "asyncio.Future[int]"]] = {}
        self._exclusive: List[Tuple[Callable[[], Any],
                                    "asyncio.Future[Any]"]] = []

    # -- lifecycle (loop thread) -------------------------------------------

    def start(self) -> None:
        if self.active:
            return
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self.active = True
        self._task = self._loop.create_task(self._run())

    async def stop(self) -> None:
        """Commit everything still staged, then stop the commit task."""
        if self._task is None:
            return
        self.active = False
        self._wake.set()
        await self._task
        self._task = None

    # -- staging (loop thread) ---------------------------------------------

    def stage(self, wal: WalWriter, op: int, flags: int,
              payload: bytes) -> "asyncio.Future[int]":
        """Add one record to ``wal``'s open group; returns its barrier."""
        entry = self._open.get(wal)
        if entry is None:
            future: "asyncio.Future[int]" = self._loop.create_future()
            # The barrier is shared by many waiters; if every one of
            # them detaches (client gone mid-request) the commit error
            # must not surface as "exception never retrieved" noise.
            future.add_done_callback(
                lambda f: None if f.cancelled() else f.exception())
            entry = ([], future)
            self._open[wal] = entry
        entry[0].append((op, flags, payload))
        self._wake.set()
        return entry[1]

    def barrier(self, wal: WalWriter) -> Optional["asyncio.Future[int]"]:
        """The open group's barrier future, or ``None`` if nothing is
        staged for ``wal`` (everything already committed)."""
        entry = self._open.get(wal)
        return None if entry is None else entry[1]

    async def run_exclusive(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn()`` at a commit safe point (no group in flight).

        Used by snapshots: a record that is applied but not yet written
        would otherwise replay on top of a snapshot that already
        contains it.  Committing every open group first (synchronously,
        on the loop thread) makes the WAL an exact superset of applied
        state for the duration of ``fn``.
        """
        if not self.active:
            return fn()
        future: "asyncio.Future[Any]" = self._loop.create_future()
        self._exclusive.append((fn, future))
        self._wake.set()
        return await future

    # -- the commit task ---------------------------------------------------

    async def _run(self) -> None:
        while True:
            if not (self._open or self._exclusive):
                if not self.active:
                    return
                await self._wake.wait()
                self._wake.clear()
                continue
            while self._exclusive:
                fn, future = self._exclusive.pop(0)
                self._drain_open_sync()
                if future.cancelled():
                    continue
                try:
                    future.set_result(fn())
                except Exception as exc:
                    future.set_exception(exc)
            if not self._open:
                continue
            groups = list(self._open.items())
            self._open = {}
            started = time.perf_counter()
            results = await self._loop.run_in_executor(
                None, self._commit_entries, groups)
            self._settle(groups, results, time.perf_counter() - started)

    def _drain_open_sync(self) -> None:
        """Commit every staged group inline (loop thread safe point)."""
        while self._open:
            groups = list(self._open.items())
            self._open = {}
            started = time.perf_counter()
            results = self._commit_entries(groups)
            self._settle(groups, results, time.perf_counter() - started)

    @staticmethod
    def _commit_entries(groups) -> List[Tuple[Optional[Dict[str, Any]],
                                              Optional[BaseException]]]:
        """Write each WAL's group; failures are isolated per WAL."""
        results = []
        for wal, (items, _future) in groups:
            try:
                results.append((wal._commit_group(items), None))
            except Exception as exc:
                results.append((None, exc))
        return results

    def _settle(self, groups, results, elapsed: float) -> None:
        """Resolve barriers and bump metrics (loop thread)."""
        self.cycles += 1
        for (wal, (items, future)), (stats, exc) in zip(groups, results):
            if exc is not None:
                if OBS.enabled:
                    OBS.wal_append_errors.inc()
                if not future.done():
                    future.set_exception(exc)
                continue
            if OBS.enabled:
                for name, count in stats["by_op"].items():
                    OBS.wal_records.labels(name).inc(count)
                OBS.wal_bytes.inc(stats["bytes"])
                OBS.wal_group_commits.inc()
                OBS.wal_group_commit_records.observe(stats["records"])
            if not future.done():
                future.set_result(stats["records"])
        if OBS.enabled:
            OBS.wal_group_commit_seconds.observe(elapsed)


# -- the scanner -----------------------------------------------------------

def scan_segment(path: str) -> Tuple[List[WalRecord], int]:
    """Decode every complete, checksummed record in one segment.

    Returns ``(records, torn)`` where ``torn`` is 1 if the segment ends
    in an incomplete / corrupt frame (which is *expected* after a crash
    mid-append) and 0 if it ends cleanly.  Never raises on corrupt
    input: scanning stops at the first bad frame, because nothing after
    an unreadable length/checksum can be trusted to be frame-aligned.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    if len(blob) < len(SEGMENT_MAGIC) or not blob.startswith(SEGMENT_MAGIC):
        return [], (1 if blob else 0)
    records: List[WalRecord] = []
    pos = len(SEGMENT_MAGIC)
    size = len(blob)
    while pos < size:
        if pos + _FRAME_HEADER.size > size:
            return records, 1
        op, flags, _, length, crc = _FRAME_HEADER.unpack_from(blob, pos)
        if ((op not in _OP_NAMES and op != OP_BATCH)
                or length > _MAX_PAYLOAD):
            return records, 1
        start = pos + _FRAME_HEADER.size
        end = start + length
        if end > size:
            return records, 1
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            return records, 1
        try:
            if op == OP_BATCH:
                records.extend(_decode_batch(payload))
            else:
                records.append(_decode_record(op, flags, payload))
        except ValueError:
            return records, 1
        pos = end
    return records, 0


# -- snapshots -------------------------------------------------------------

def _check_hash_params(archive, i: int, sketch) -> None:
    expect_row = np.array(
        [sketch._row_hash.a, sketch._row_hash.b, sketch._row_hash.width],
        dtype=np.uint64)
    if not np.array_equal(np.asarray(archive[f"row_hash_{i}"]), expect_row):
        raise SnapshotMismatch(
            f"sketch {i}: snapshot row-hash parameters do not match the "
            "tenant config (different seed or width?)")
    expect_col = np.array(
        [sketch._col_hash.a, sketch._col_hash.b, sketch._col_hash.width],
        dtype=np.uint64)
    if not np.array_equal(np.asarray(archive[f"col_hash_{i}"]), expect_col):
        raise SnapshotMismatch(
            f"sketch {i}: snapshot col-hash parameters do not match the "
            "tenant config")


def _restore_tcm_into(tcm, archive) -> None:
    """Copy a ``save_tcm`` archive's state into a freshly built TCM.

    Restoring *into* a config-built instance (rather than using
    :func:`load_tcm`'s reconstruction) keeps every derived attribute the
    constructor set -- columnar fast-path flags, backend selection --
    exactly as a live server would have them, which is what the
    bit-identity guarantee is about.
    """
    version = int(archive["format_version"])
    if version != 1:
        raise SnapshotMismatch(f"unsupported snapshot version {version}")
    if int(archive["d"]) != tcm.d:
        raise SnapshotMismatch(
            f"snapshot has d={int(archive['d'])}, tenant config d={tcm.d}")
    if bool(archive["directed"]) != tcm.directed:
        raise SnapshotMismatch("snapshot directedness does not match config")
    if str(archive["aggregation"]) != tcm.aggregation.value:
        raise SnapshotMismatch("snapshot aggregation does not match config")
    for i, sketch in enumerate(tcm.sketches):
        _check_hash_params(archive, i, sketch)
        matrix = np.asarray(archive[f"matrix_{i}"])
        if hasattr(sketch, "_matrix"):
            if matrix.shape != sketch._matrix.shape:
                raise SnapshotMismatch(
                    f"sketch {i}: snapshot matrix shape {matrix.shape} != "
                    f"configured {sketch._matrix.shape}")
            sketch._matrix[...] = matrix
            touched = getattr(sketch, "_touched", None)
            if touched is not None:
                if f"touched_{i}" not in archive:
                    raise SnapshotMismatch(
                        f"sketch {i}: config expects an occupancy mask "
                        "but the snapshot has none")
                touched[...] = archive[f"touched_{i}"]
        else:
            # Sparse backend: rebuild cells, marginals and adjacency
            # from the densified matrix through the same bookkeeping
            # the live path uses.  Zero-valued cells are dropped, which
            # is answer-preserving (only cells > 0 count as edges).
            sketch._cells.clear()
            sketch._row_sums.clear()
            sketch._col_sums.clear()
            sketch._row_adjacency.clear()
            sketch._col_adjacency.clear()
            rows, cols = np.nonzero(matrix)
            values = matrix[rows, cols]
            for r, c, v in zip(rows.tolist(), cols.tolist(),
                               values.tolist()):
                sketch._apply(r, c, v)
        sketch.bump_epoch()


def _write_window_snapshot(window, path: str) -> None:
    payload: Dict[str, Any] = {
        "window_format_version": np.int64(1),
        "watermark": np.float64(window._watermark),
        "has_bucket": np.bool_(window._bucket_index is not None),
        "bucket_index": np.int64(window._bucket_index or 0),
        "ring_slots": np.int64(len(window._ring)),
    }
    for i, sub in enumerate(window._ring):
        buf = io.BytesIO()
        save_tcm(sub, buf)
        payload[f"ring_{i}"] = np.frombuffer(buf.getvalue(), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def _restore_window_snapshot(window, path: str) -> None:
    with np.load(path, allow_pickle=False) as archive:
        if "window_format_version" not in archive:
            raise SnapshotMismatch(
                "snapshot is not a window snapshot (tenant kind mismatch)")
        if int(archive["window_format_version"]) != 1:
            raise SnapshotMismatch("unsupported window snapshot version")
        slots = int(archive["ring_slots"])
        if slots != len(window._ring):
            raise SnapshotMismatch(
                f"snapshot has {slots} ring slots, config has "
                f"{len(window._ring)} (different 'buckets'?)")
        with window._lock:
            for i, sub in enumerate(window._ring):
                blob = np.asarray(archive[f"ring_{i}"]).tobytes()
                with np.load(io.BytesIO(blob),
                             allow_pickle=False) as sub_archive:
                    _restore_tcm_into(sub, sub_archive)
            window._watermark = float(archive["watermark"])
            window._bucket_index = (int(archive["bucket_index"])
                                    if bool(archive["has_bucket"]) else None)
            window._merged_stale = True


def write_tenant_snapshot(tenant, directory: str, seq: int) -> str:
    """Atomically write ``snapshot-<seq>.npz`` for one tenant.

    The snapshot is written to a temp file, fsynced, then renamed into
    place (and the directory fsynced), so a crash mid-snapshot leaves
    either the old snapshot set or the new one -- never a torn archive
    under the final name.
    """
    final = snapshot_path(directory, seq)
    tmp = os.path.join(directory, f".snapshot-{seq:08d}.tmp.npz")
    if tenant.kind == "window":
        _write_window_snapshot(tenant.sketch, tmp)
    else:
        save_tcm(tenant.sketch, tmp)
    with open(tmp, "rb") as fh:
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    _fsync_dir(directory)
    return final


def restore_tenant_snapshot(tenant, path: str) -> None:
    """Load a snapshot written by :func:`write_tenant_snapshot`."""
    if tenant.kind == "window":
        _restore_window_snapshot(tenant.sketch, path)
    else:
        with np.load(path, allow_pickle=False) as archive:
            if "window_format_version" in archive:
                raise SnapshotMismatch(
                    "snapshot is a window snapshot (tenant kind mismatch)")
            _restore_tcm_into(tenant.sketch, archive)


# -- tenant metadata -------------------------------------------------------

def _config_json(config: Dict[str, Any]) -> Dict[str, Any]:
    return {k: (v.value if isinstance(v, Aggregation) else v)
            for k, v in config.items()}


def write_meta(directory: str, name: str, kind: str,
               config: Dict[str, Any]) -> None:
    meta = {"format_version": 1, "name": name, "kind": kind,
            "config": _config_json(config)}
    tmp = os.path.join(directory, f".{_META_NAME}.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, os.path.join(directory, _META_NAME))
    _fsync_dir(directory)


def read_meta(directory: str) -> Dict[str, Any]:
    with open(os.path.join(directory, _META_NAME), encoding="utf-8") as fh:
        meta = json.load(fh)
    if meta.get("format_version") != 1:
        raise ValueError(
            f"unsupported tenant meta version {meta.get('format_version')}")
    return meta


# -- the manager -----------------------------------------------------------

class DurabilityManager:
    """Owns the data dir: attaches WALs to tenants, snapshots, recovers.

    Event-loop-owned like the registry; all methods are synchronous and
    must be called from the loop thread (or before the loop runs).
    """

    def __init__(self, data_dir: str, *, fsync: str = "interval",
                 fsync_interval: float = DEFAULT_FSYNC_INTERVAL,
                 rotate_bytes: int = DEFAULT_ROTATE_BYTES,
                 faults: Optional[FaultPlan] = None):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got "
                f"{fsync!r}")
        self.data_dir = data_dir
        self.tenants_dir = os.path.join(data_dir, "tenants")
        self.fsync_policy = fsync
        self.fsync_interval = fsync_interval
        self.rotate_bytes = rotate_bytes
        self.faults = faults
        self.last_recovery: Optional[Dict[str, Any]] = None
        #: Shared across every tenant WAL; inert until
        #: :meth:`start_pipeline` flips it on (needs a running loop).
        self.pipeline = GroupCommitPipeline()
        os.makedirs(self.tenants_dir, exist_ok=True)
        # records-at-last-snapshot per tenant, to skip no-op snapshots.
        self._snapshot_marks: Dict[str, int] = {}

    def tenant_dir(self, name: str) -> str:
        return os.path.join(self.tenants_dir, name)

    # -- attach / detach ---------------------------------------------------

    def attach(self, tenant, *, write_meta_file: bool = True) -> None:
        """Give a tenant a WAL (new segment after any existing tail)."""
        directory = self.tenant_dir(tenant.name)
        os.makedirs(directory, exist_ok=True)
        pruned = _prune_tmp_files(directory)
        if pruned and OBS.enabled:
            OBS.wal_tmp_files_pruned.inc(pruned)
        if write_meta_file:
            write_meta(directory, tenant.name, tenant.kind, tenant.config)
        segments = list_segments(directory)
        snapshots = list_snapshots(directory)
        last = max([seq for seq, _ in segments]
                   + [seq for seq, _ in snapshots] + [0])
        tenant.wal = WalWriter(
            directory, fsync=self.fsync_policy,
            fsync_interval=self.fsync_interval,
            rotate_bytes=self.rotate_bytes,
            start_segment=last + 1, faults=self.faults)
        tenant.wal.group = self.pipeline

    # -- group-commit lifecycle -------------------------------------------

    def start_pipeline(self) -> None:
        """Turn on group-commit pipelining (requires a running loop)."""
        self.pipeline.start()

    async def stop_pipeline(self) -> None:
        """Commit every staged group and stop the commit task."""
        await self.pipeline.stop()

    async def snapshot_all_async(self, registry) -> List[Dict[str, Any]]:
        """Snapshot every tenant at a group-commit safe point.

        With the pipeline active, records can be *applied* before they
        are *written*; snapshotting mid-flight would bake such a record
        into the snapshot and then replay it again from a post-rotation
        segment.  ``run_exclusive`` commits everything staged first and
        blocks commits while the (synchronous) snapshot runs.
        """
        if self.pipeline.active:
            return await self.pipeline.run_exclusive(
                lambda: self.snapshot_all(registry))
        return self.snapshot_all(registry)

    def detach(self, name: str, wal: Optional[WalWriter], *,
               delete: bool = False) -> None:
        if wal is not None:
            wal.close()
        self._snapshot_marks.pop(name, None)
        if delete:
            shutil.rmtree(self.tenant_dir(name), ignore_errors=True)

    # -- snapshots ---------------------------------------------------------

    def snapshot_tenant(self, tenant) -> Optional[Dict[str, Any]]:
        """Rotate the WAL, snapshot current state, prune covered files.

        Returns a small report dict, or ``None`` when nothing was
        written since the last snapshot (no point churning the disk).
        Everything happens synchronously on the loop thread: between the
        rotate and the state capture no batch can land, so the snapshot
        covers exactly the segments before the rotation point.
        """
        wal = tenant.wal
        if wal is None:
            return None
        if self._snapshot_marks.get(tenant.name) == wal.records:
            return None
        started = time.perf_counter()
        directory = self.tenant_dir(tenant.name)
        covered = wal.rotate()
        write_tenant_snapshot(tenant, directory, covered)
        self._snapshot_marks[tenant.name] = wal.records
        pruned = 0
        for seq, path in list_segments(directory):
            if seq <= covered:
                try:
                    os.remove(path)
                    pruned += 1
                except OSError:
                    pass
        for seq, path in list_snapshots(directory):
            if seq < covered:
                try:
                    os.remove(path)
                except OSError:
                    pass
        elapsed = time.perf_counter() - started
        if OBS.enabled:
            OBS.wal_snapshots.inc()
            OBS.wal_snapshot_seconds.observe(elapsed)
            OBS.wal_segments_pruned.inc(pruned)
        return {"tenant": tenant.name, "covered_segment": covered,
                "segments_pruned": pruned, "seconds": elapsed}

    def snapshot_all(self, registry) -> List[Dict[str, Any]]:
        reports = []
        for name in registry.names():
            report = self.snapshot_tenant(registry.get(name))
            if report is not None:
                reports.append(report)
        return reports

    def sync_all(self, registry) -> None:
        """Force-fsync every tenant's WAL (shutdown path)."""
        for name in registry.names():
            wal = registry.get(name).wal
            if wal is not None:
                try:
                    wal.sync()
                except OSError:
                    pass

    def close_all(self, registry) -> None:
        for name in registry.names():
            tenant = registry.get(name)
            if tenant.wal is not None:
                tenant.wal.close()

    # -- recovery ----------------------------------------------------------

    def recover(self, registry) -> Dict[str, Any]:
        """Rebuild every persisted tenant into ``registry``.

        For each tenant dir: construct a fresh sketch from ``meta.json``
        (deterministic hashes), restore the newest readable snapshot,
        replay every WAL record after it, then attach a fresh WAL
        segment for new writes.  Torn tail frames are discarded (and
        counted); a torn frame in a *non-final* segment is also
        tolerated -- later segments still replay, because the writer
        only starts a new segment after abandoning a broken one.
        """
        started = time.perf_counter()
        report: Dict[str, Any] = {"tenants": {}, "records": 0,
                                  "elements": 0, "torn_frames": 0,
                                  "replay_errors": 0,
                                  "tmp_files_pruned": 0}
        try:
            names = sorted(os.listdir(self.tenants_dir))
        except FileNotFoundError:
            names = []
        for name in names:
            directory = self.tenant_dir(name)
            if not os.path.isdir(directory):
                continue
            tenant_report = self._recover_tenant(name, directory, registry)
            report["tenants"][name] = tenant_report
            report["records"] += tenant_report["records"]
            report["elements"] += tenant_report["elements"]
            report["torn_frames"] += tenant_report["torn_frames"]
            report["replay_errors"] += tenant_report["replay_errors"]
            report["tmp_files_pruned"] += tenant_report["tmp_files_pruned"]
        report["seconds"] = time.perf_counter() - started
        self.last_recovery = report
        if OBS.enabled:
            OBS.recovery_replayed_records.inc(report["records"])
            OBS.recovery_replayed_elements.inc(report["elements"])
            OBS.recovery_torn_frames.inc(report["torn_frames"])
            OBS.recovery_tenants.inc(len(report["tenants"]))
            OBS.recovery_seconds.observe(report["seconds"])
        return report

    def _recover_tenant(self, name: str, directory: str,
                        registry) -> Dict[str, Any]:
        from repro.server.registry import TenantSketch
        tmp_pruned = _prune_tmp_files(directory)
        if tmp_pruned and OBS.enabled:
            OBS.wal_tmp_files_pruned.inc(tmp_pruned)
        meta = read_meta(directory)
        tenant = TenantSketch(
            meta["name"], meta["kind"], dict(meta["config"]),
            max_batch=registry.max_batch, max_delay=registry.max_delay,
            batching=registry.batching,
            max_backlog=getattr(registry, "max_backlog", None))
        snapshot_seq = 0
        snapshot_loaded = None
        for seq, path in reversed(list_snapshots(directory)):
            try:
                restore_tenant_snapshot(tenant, path)
            except (SnapshotMismatch, ValueError, OSError, KeyError,
                    BadZipFile):
                # An unreadable snapshot (torn rename never happens, but
                # a mismatched config can) falls back to the previous
                # one; the WAL tail since it is still on disk.
                continue
            snapshot_seq = seq
            snapshot_loaded = path
            break
        records = elements = torn = replay_errors = 0
        for seq, path in list_segments(directory):
            if seq <= snapshot_seq:
                continue
            segment_records, segment_torn = scan_segment(path)
            torn += segment_torn
            for record in segment_records:
                try:
                    tenant.replay(record)
                except (ValueError, KeyError):
                    # A record the sketch refuses (e.g. a remove logged
                    # against state that no longer supports it) must not
                    # abort recovery of everything after it.
                    replay_errors += 1
                    continue
                records += 1
                elements += record.elements
        registry.adopt(tenant)
        self.attach(tenant, write_meta_file=False)
        return {"kind": tenant.kind, "snapshot": snapshot_loaded,
                "snapshot_segment": snapshot_seq, "records": records,
                "elements": elements, "torn_frames": torn,
                "replay_errors": replay_errors,
                "tmp_files_pruned": tmp_pruned}
