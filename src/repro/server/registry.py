"""The named-sketch registry: per-tenant summaries plus their coalescers.

Each tenant is one named summary -- a plain :class:`~repro.core.tcm.TCM`
(``kind="tcm"``) or a :class:`~repro.streams.rotating.RotatingWindowTCM`
(``kind="window"``) -- paired with its own
:class:`~repro.server.coalescer.IngestCoalescer` and
:class:`~repro.server.coalescer.QueryCoalescer`.  Coalescing is per
tenant: requests against the same sketch share batches (that is where
the win is), requests against different sketches never block each other
on a shared buffer.

The registry is the server's only mutable state; it is event-loop-owned
and needs no locks (the sketches themselves are additionally
thread-safe where it matters -- see ``RotatingWindowTCM``'s lock).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.aggregation import Aggregation
from repro.obs.instruments import OBS
from repro.server.coalescer import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY,
    IngestCoalescer,
    QueryCoalescer,
)

#: Constructor keys a tenant config may set, per kind.
_TCM_KEYS = frozenset({"d", "width", "seed", "directed", "aggregation",
                       "sparse"})
_WINDOW_KEYS = _TCM_KEYS | {"horizon", "buckets"}


def _parse_config(kind: str, config: Dict[str, Any]) -> Dict[str, Any]:
    if config.get("keep_labels"):
        raise ValueError(
            "keep_labels sketches are not servable: the extended sketch "
            "has no columnar fast path for the coalescer to ride")
    allowed = _WINDOW_KEYS if kind == "window" else _TCM_KEYS
    unknown = set(config) - allowed - {"keep_labels"}
    if unknown:
        raise ValueError(f"unknown sketch config keys: {sorted(unknown)}")
    parsed = dict(config)
    parsed.pop("keep_labels", None)
    if isinstance(parsed.get("aggregation"), str):
        try:
            parsed["aggregation"] = Aggregation(parsed["aggregation"])
        except ValueError:
            raise ValueError(
                f"unknown aggregation {parsed['aggregation']!r} (expected "
                f"one of {[a.value for a in Aggregation]})")
    if kind == "window" and "horizon" not in parsed:
        raise ValueError("window sketches need a 'horizon'")
    return parsed


class TenantSketch:
    """One named summary and its micro-batching state."""

    def __init__(self, name: str, kind: str, config: Dict[str, Any], *,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay: float = DEFAULT_MAX_DELAY,
                 batching: bool = True,
                 max_backlog: Optional[int] = None):
        if kind not in ("tcm", "window"):
            raise ValueError(
                f"unknown sketch kind {kind!r} (expected 'tcm' or 'window')")
        self.name = name
        self.kind = kind
        self.config = _parse_config(kind, config)
        #: Optional write-ahead log (attached by a DurabilityManager).
        #: When set, every applied batch is logged *before* it mutates
        #: the sketch, so an acked request is always recoverable.
        self.wal = None
        if kind == "window":
            from repro.streams.rotating import RotatingWindowTCM
            self.sketch = RotatingWindowTCM(**self.config)
            apply_batch = self._apply_window_batch
            apply_scalar = self._apply_window_scalar
        else:
            from repro.core.tcm import TCM
            self.sketch = TCM(**self.config)
            apply_batch = self._apply_tcm_batch
            apply_scalar = self._apply_tcm_scalar
        self.ingest = IngestCoalescer(
            apply_batch, apply_scalar=apply_scalar,
            max_batch=max_batch, max_delay=max_delay,
            with_timestamps=(kind == "window"), batching=batching,
            max_backlog=max_backlog, kind="ingest",
            ack_barrier=self.durable_barrier)
        self.queries = QueryCoalescer(
            self._run_queries, max_batch=max_batch, max_delay=max_delay,
            batching=batching, before_flush=self.ingest.flush,
            kind="query")

    # -- ingest applications (batch rides the kernels, scalar does not) ----

    def _apply_tcm_batch(self, src, dst, weights, _ts, *,
                         _log: bool = True) -> None:
        if _log and self.wal is not None:
            self.wal.append_ingest(src, dst, weights)
        self.sketch.ingest_keys(src, dst, weights)

    def _apply_tcm_scalar(self, src, dst, weights, _ts, *,
                          _log: bool = True) -> None:
        if _log and self.wal is not None:
            self.wal.append_ingest(src, dst, weights, scalar=True)
        update = self.sketch.update
        for s, t, w in zip(src.tolist(), dst.tolist(), weights.tolist()):
            update(s, t, w)

    def _apply_window_batch(self, src, dst, weights, ts, *,
                            _log: bool = True) -> None:
        if _log and self.wal is not None:
            self.wal.append_ingest(src, dst, weights, ts)
        self.sketch.observe_columns(src, dst, weights, ts)

    def _apply_window_scalar(self, src, dst, weights, ts, *,
                             _log: bool = True) -> None:
        if _log and self.wal is not None:
            self.wal.append_ingest(src, dst, weights, ts, scalar=True)
        observe = self.sketch.observe
        for s, t, w, when in zip(src.tolist(), dst.tolist(),
                                 weights.tolist(), ts.tolist()):
            # Same late policy as observe_columns: clamp, don't reject.
            observe(s, t, w, max(when, self.sketch.watermark))

    def durable_barrier(self):
        """The WAL group-commit barrier covering everything logged so far.

        Returns the open group's future when the pipeline is staging for
        this tenant's WAL, else ``None`` (no WAL, pipeline off, or
        nothing staged -- in all of which cases appends were written
        inline and durability is already settled).  Acks chained on the
        barrier resolve only after the group's frame is written (and
        fsynced under ``--fsync always``).
        """
        wal = self.wal
        if wal is None or wal.group is None or not wal.group.active:
            return None
        return wal.group.barrier(wal)

    def replay(self, record) -> None:
        """Re-apply one decoded WAL record (recovery path, no logging).

        Replays through the *same* apply function that produced the
        record -- the scalar/batch mode is carried in the record's flags
        -- so the recovered matrices are bit-identical to the pre-crash
        ones (the scalar and batch window paths clamp late timestamps
        at different granularities, so the mode matters).
        """
        from repro.server.durability import FLAG_SCALAR
        if record.op == "ingest":
            scalar = bool(record.flags & FLAG_SCALAR)
            if self.kind == "window":
                apply = (self._apply_window_scalar if scalar
                         else self._apply_window_batch)
            else:
                apply = (self._apply_tcm_scalar if scalar
                         else self._apply_tcm_batch)
            apply(record.sources, record.targets, record.weights,
                  record.timestamps, _log=False)
        elif record.op == "remove":
            self.sketch.remove_many(record.sources, record.targets,
                                    record.weights)
        elif record.op == "advance":
            self.sketch.advance_to(record.timestamp)
        else:  # pragma: no cover -- the decoder only emits the three ops
            raise ValueError(f"unknown WAL op {record.op!r}")

    # -- the batched query runner ------------------------------------------

    def _run_queries(self, kind: str, payload: list):
        sketch = self.sketch
        if kind == "edge":
            return sketch.edge_weights(payload)
        if kind == "reach":
            return sketch.reachable_many(payload)
        if kind == "outflow":
            return sketch.out_flows(payload)
        if kind == "inflow":
            return sketch.in_flows(payload)
        if kind == "flow":
            return sketch.flows(payload)
        if kind == "total":
            return sketch.total_weight_estimate()
        raise ValueError(f"unknown query kind {kind!r}")  # pragma: no cover

    # -- maintenance -------------------------------------------------------

    def remove(self, sources, targets, weights) -> int:
        """Apply deletions after draining staged inserts (order matters)."""
        if self.kind != "tcm":
            raise ValueError(
                "window sketches expire by rotation; deletions are only "
                "supported on kind='tcm'")
        self.ingest.flush("barrier")
        if self.wal is not None:
            # Validate before logging: a remove the sketch would reject
            # (non-invertible aggregation, bad lengths) must not leave a
            # poison record in the log.
            from repro.core.tcm import TCM
            if not self.sketch.aggregation.invertible:
                raise ValueError(
                    f"{self.sketch.aggregation.value} aggregation does "
                    "not support deletion")
            source_keys = TCM._deletion_keys(sources)
            target_keys = TCM._deletion_keys(targets)
            n = len(source_keys)
            if len(target_keys) != n:
                raise ValueError(
                    f"got {n} sources but {len(target_keys)} targets")
            wts = (np.ones(n) if weights is None
                   else np.asarray(weights, dtype=np.float64))
            if len(wts) != n:
                raise ValueError(
                    f"got {n} sources but {len(wts)} weights")
            self.wal.append_remove(source_keys, target_keys, wts)
            return self.sketch.remove_many(source_keys, target_keys, wts)
        return self.sketch.remove_many(sources, targets, weights)

    def advance(self, timestamp: float) -> Dict[str, float]:
        """Move a window tenant's watermark after draining staged inserts."""
        if self.kind != "window":
            raise ValueError("advance is only supported on kind='window'")
        self.ingest.flush("barrier")
        if self.wal is not None:
            if timestamp < self.sketch.watermark:
                raise ValueError(
                    f"cannot advance backwards: watermark is "
                    f"{self.sketch.watermark}, got {timestamp}")
            self.wal.append_advance(timestamp)
        self.sketch.advance_to(timestamp)
        return {"watermark": self.sketch.watermark}

    def drain(self) -> None:
        """Flush both coalescers (shutdown / deletion barrier)."""
        self.ingest.flush("shutdown")
        self.queries.flush("shutdown")

    def info(self) -> Dict[str, Any]:
        config = {k: (v.value if isinstance(v, Aggregation) else v)
                  for k, v in self.config.items()}
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "config": config,
            "memory_bytes": int(self.sketch.memory_bytes()),
            "total_weight": float(self.sketch.total_weight_estimate()),
            "staged_elements": len(self.ingest),
            "ingest_flushes": self.ingest.flushes,
            "ingested_elements": self.ingest.staged_elements,
        }
        if self.kind == "window":
            watermark = self.sketch.watermark
            out["watermark"] = watermark if np.isfinite(watermark) else None
        return out


class SketchRegistry:
    """Create / look up / drop named tenants; one coalescer pair each."""

    def __init__(self, *, max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay: float = DEFAULT_MAX_DELAY,
                 batching: bool = True,
                 max_backlog: Optional[int] = None):
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.batching = batching
        self.max_backlog = max_backlog
        #: Optional DurabilityManager; when set, created tenants get a
        #: WAL and deleted tenants have their on-disk state removed.
        self.durability = None
        self._tenants: Dict[str, TenantSketch] = {}

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def names(self) -> List[str]:
        return sorted(self._tenants)

    def create(self, name: str, kind: str = "tcm",
               **config: Any) -> TenantSketch:
        # Names double as data-dir entries once durability is on, so
        # path-walking names are invalid everywhere for consistency.
        if (not name or "/" in name or "\\" in name or "\x00" in name
                or name in (".", "..")):
            raise ValueError(f"invalid sketch name {name!r}")
        if name in self._tenants:
            raise ValueError(f"sketch {name!r} already exists")
        tenant = TenantSketch(name, kind, config,
                              max_batch=self.max_batch,
                              max_delay=self.max_delay,
                              batching=self.batching,
                              max_backlog=self.max_backlog)
        if self.durability is not None:
            self.durability.attach(tenant)
        self._tenants[name] = tenant
        if OBS.enabled:
            OBS.server_active_sketches.set(len(self._tenants))
        return tenant

    def adopt(self, tenant: TenantSketch) -> None:
        """Insert an already-built tenant (the recovery path)."""
        if tenant.name in self._tenants:
            raise ValueError(f"sketch {tenant.name!r} already exists")
        self._tenants[tenant.name] = tenant
        if OBS.enabled:
            OBS.server_active_sketches.set(len(self._tenants))

    def get(self, name: str) -> TenantSketch:
        try:
            return self._tenants[name]
        except KeyError:
            raise KeyError(f"no sketch named {name!r}")

    def delete(self, name: str) -> None:
        tenant = self.get(name)
        tenant.drain()
        if self.durability is not None:
            self.durability.detach(name, tenant.wal, delete=True)
            tenant.wal = None
        del self._tenants[name]
        if OBS.enabled:
            OBS.server_active_sketches.set(len(self._tenants))

    def drain_all(self) -> None:
        """Flush every tenant's staged work (server shutdown)."""
        for tenant in self._tenants.values():
            tenant.drain()

    def infos(self) -> List[Dict[str, Any]]:
        return [self._tenants[name].info() for name in self.names()]
