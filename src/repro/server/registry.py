"""The named-sketch registry: per-tenant summaries plus their coalescers.

Each tenant is one named summary -- a plain :class:`~repro.core.tcm.TCM`
(``kind="tcm"``) or a :class:`~repro.streams.rotating.RotatingWindowTCM`
(``kind="window"``) -- paired with its own
:class:`~repro.server.coalescer.IngestCoalescer` and
:class:`~repro.server.coalescer.QueryCoalescer`.  Coalescing is per
tenant: requests against the same sketch share batches (that is where
the win is), requests against different sketches never block each other
on a shared buffer.

The registry is the server's only mutable state; it is event-loop-owned
and needs no locks (the sketches themselves are additionally
thread-safe where it matters -- see ``RotatingWindowTCM``'s lock).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.aggregation import Aggregation
from repro.obs.instruments import OBS
from repro.server.coalescer import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY,
    IngestCoalescer,
    QueryCoalescer,
)

#: Constructor keys a tenant config may set, per kind.
_TCM_KEYS = frozenset({"d", "width", "seed", "directed", "aggregation",
                       "sparse"})
_WINDOW_KEYS = _TCM_KEYS | {"horizon", "buckets"}


def _parse_config(kind: str, config: Dict[str, Any]) -> Dict[str, Any]:
    if config.get("keep_labels"):
        raise ValueError(
            "keep_labels sketches are not servable: the extended sketch "
            "has no columnar fast path for the coalescer to ride")
    allowed = _WINDOW_KEYS if kind == "window" else _TCM_KEYS
    unknown = set(config) - allowed - {"keep_labels"}
    if unknown:
        raise ValueError(f"unknown sketch config keys: {sorted(unknown)}")
    parsed = dict(config)
    parsed.pop("keep_labels", None)
    if isinstance(parsed.get("aggregation"), str):
        try:
            parsed["aggregation"] = Aggregation(parsed["aggregation"])
        except ValueError:
            raise ValueError(
                f"unknown aggregation {parsed['aggregation']!r} (expected "
                f"one of {[a.value for a in Aggregation]})")
    if kind == "window" and "horizon" not in parsed:
        raise ValueError("window sketches need a 'horizon'")
    return parsed


class TenantSketch:
    """One named summary and its micro-batching state."""

    def __init__(self, name: str, kind: str, config: Dict[str, Any], *,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay: float = DEFAULT_MAX_DELAY,
                 batching: bool = True):
        if kind not in ("tcm", "window"):
            raise ValueError(
                f"unknown sketch kind {kind!r} (expected 'tcm' or 'window')")
        self.name = name
        self.kind = kind
        self.config = _parse_config(kind, config)
        if kind == "window":
            from repro.streams.rotating import RotatingWindowTCM
            self.sketch = RotatingWindowTCM(**self.config)
            apply_batch = self._apply_window_batch
            apply_scalar = self._apply_window_scalar
        else:
            from repro.core.tcm import TCM
            self.sketch = TCM(**self.config)
            apply_batch = self._apply_tcm_batch
            apply_scalar = self._apply_tcm_scalar
        self.ingest = IngestCoalescer(
            apply_batch, apply_scalar=apply_scalar,
            max_batch=max_batch, max_delay=max_delay,
            with_timestamps=(kind == "window"), batching=batching,
            kind="ingest")
        self.queries = QueryCoalescer(
            self._run_queries, max_batch=max_batch, max_delay=max_delay,
            batching=batching, before_flush=self.ingest.flush,
            kind="query")

    # -- ingest applications (batch rides the kernels, scalar does not) ----

    def _apply_tcm_batch(self, src, dst, weights, _ts) -> None:
        self.sketch.ingest_keys(src, dst, weights)

    def _apply_tcm_scalar(self, src, dst, weights, _ts) -> None:
        update = self.sketch.update
        for s, t, w in zip(src.tolist(), dst.tolist(), weights.tolist()):
            update(s, t, w)

    def _apply_window_batch(self, src, dst, weights, ts) -> None:
        self.sketch.observe_columns(src, dst, weights, ts)

    def _apply_window_scalar(self, src, dst, weights, ts) -> None:
        observe = self.sketch.observe
        for s, t, w, when in zip(src.tolist(), dst.tolist(),
                                 weights.tolist(), ts.tolist()):
            # Same late policy as observe_columns: clamp, don't reject.
            observe(s, t, w, max(when, self.sketch.watermark))

    # -- the batched query runner ------------------------------------------

    def _run_queries(self, kind: str, payload: list):
        sketch = self.sketch
        if kind == "edge":
            return sketch.edge_weights(payload)
        if kind == "reach":
            return sketch.reachable_many(payload)
        if kind == "outflow":
            return sketch.out_flows(payload)
        if kind == "inflow":
            return sketch.in_flows(payload)
        if kind == "flow":
            return sketch.flows(payload)
        if kind == "total":
            return sketch.total_weight_estimate()
        raise ValueError(f"unknown query kind {kind!r}")  # pragma: no cover

    # -- maintenance -------------------------------------------------------

    def remove(self, sources, targets, weights) -> int:
        """Apply deletions after draining staged inserts (order matters)."""
        if self.kind != "tcm":
            raise ValueError(
                "window sketches expire by rotation; deletions are only "
                "supported on kind='tcm'")
        self.ingest.flush("barrier")
        return self.sketch.remove_many(sources, targets, weights)

    def advance(self, timestamp: float) -> Dict[str, float]:
        """Move a window tenant's watermark after draining staged inserts."""
        if self.kind != "window":
            raise ValueError("advance is only supported on kind='window'")
        self.ingest.flush("barrier")
        self.sketch.advance_to(timestamp)
        return {"watermark": self.sketch.watermark}

    def drain(self) -> None:
        """Flush both coalescers (shutdown / deletion barrier)."""
        self.ingest.flush("shutdown")
        self.queries.flush("shutdown")

    def info(self) -> Dict[str, Any]:
        config = {k: (v.value if isinstance(v, Aggregation) else v)
                  for k, v in self.config.items()}
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "config": config,
            "memory_bytes": int(self.sketch.memory_bytes()),
            "total_weight": float(self.sketch.total_weight_estimate()),
            "staged_elements": len(self.ingest),
            "ingest_flushes": self.ingest.flushes,
            "ingested_elements": self.ingest.staged_elements,
        }
        if self.kind == "window":
            watermark = self.sketch.watermark
            out["watermark"] = watermark if np.isfinite(watermark) else None
        return out


class SketchRegistry:
    """Create / look up / drop named tenants; one coalescer pair each."""

    def __init__(self, *, max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay: float = DEFAULT_MAX_DELAY,
                 batching: bool = True):
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.batching = batching
        self._tenants: Dict[str, TenantSketch] = {}

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def names(self) -> List[str]:
        return sorted(self._tenants)

    def create(self, name: str, kind: str = "tcm",
               **config: Any) -> TenantSketch:
        if not name or "/" in name:
            raise ValueError(f"invalid sketch name {name!r}")
        if name in self._tenants:
            raise ValueError(f"sketch {name!r} already exists")
        tenant = TenantSketch(name, kind, config,
                              max_batch=self.max_batch,
                              max_delay=self.max_delay,
                              batching=self.batching)
        self._tenants[name] = tenant
        if OBS.enabled:
            OBS.server_active_sketches.set(len(self._tenants))
        return tenant

    def get(self, name: str) -> TenantSketch:
        try:
            return self._tenants[name]
        except KeyError:
            raise KeyError(f"no sketch named {name!r}")

    def delete(self, name: str) -> None:
        tenant = self.get(name)
        tenant.drain()
        del self._tenants[name]
        if OBS.enabled:
            OBS.server_active_sketches.set(len(self._tenants))

    def drain_all(self) -> None:
        """Flush every tenant's staged work (server shutdown)."""
        for tenant in self._tenants.values():
            tenant.drain()

    def infos(self) -> List[Dict[str, Any]]:
        return [self._tenants[name].info() for name in self.names()]
