"""Multi-process sharded serving: ``tcm serve --workers N``.

One Python process is one event loop is (at best) one core, so the
service scales out by *forking*: ``N`` worker processes, each a complete
:class:`~repro.server.http.SketchServer` with its own loop, coalescers,
and per-worker WAL directory (``<data_dir>/worker-<i>/``).  There is no
shared mutable state between workers -- the unit of ownership is the
**tenant**, assigned by deterministic hash affinity:

    ``shard_of(name, N) == label_key(name) % N``

Every worker binds the shared port with ``SO_REUSEPORT`` (the kernel
load-balances accepted connections) *plus* a private direct port.  A
request for a tenant the accepting worker does not own is answered with
``421 Misdirected Request`` carrying the owner's direct port, so
shard-aware clients (``tcm loadgen``) pin each tenant's traffic to its
owner and pay the redirect at most once.  Because affinity is a pure
function of the name, any client can also precompute the owner and skip
the 421 entirely.

The parent process only orchestrates: it resolves the shared port, forks
the workers, collects their direct ports over pipes, broadcasts the port
map, relays SIGINT/SIGTERM, and reaps.  It serves no traffic -- a worker
crash cannot take the parent's listener down with it.

``GET /cluster`` on any worker reports the topology; ``GET
/cluster/metrics`` aggregates every worker's ``/metrics`` into one
exposition with a ``worker`` label injected on each sample.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import sys
from typing import Any, Callable, Dict, List, Optional

from repro.hashing.labels import label_key

__all__ = ["ShardInfo", "shard_of", "aggregate_metrics", "run_sharded"]


def shard_of(name: str, workers: int) -> int:
    """The worker index owning tenant ``name`` (pure, stable hash)."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return label_key(name) % workers


class ShardInfo:
    """This worker's view of the cluster topology.

    ``ports`` (direct, worker-private ports) is filled in once the
    parent has collected every worker's report; it is mutated in place
    so the server object handed the instance at construction time sees
    the final map.
    """

    def __init__(self, index: int, count: int, host: str,
                 shared_port: int, ports: Optional[List[int]] = None):
        if not 0 <= index < count:
            raise ValueError(f"worker index {index} out of range 0..{count - 1}")
        self.index = index
        self.count = count
        self.host = host
        self.shared_port = shared_port
        self.ports: List[int] = list(ports) if ports else [0] * count

    def owner(self, name: str) -> int:
        return shard_of(name, self.count)

    def __repr__(self) -> str:  # pragma: no cover -- debugging aid
        return (f"ShardInfo(index={self.index}, count={self.count}, "
                f"host={self.host!r}, shared_port={self.shared_port}, "
                f"ports={self.ports})")


# -- /cluster/metrics aggregation -------------------------------------------

def _inject_worker_label(text: str, index: int) -> str:
    """Add ``worker="<i>"`` to every sample line of a Prometheus page."""
    out = []
    label = f'worker="{index}"'
    for line in text.splitlines():
        if not line or line.startswith("#"):
            out.append(line)
            continue
        name_part, _, rest = line.partition(" ")
        if "{" in name_part:
            head, _, tail = name_part.partition("{")
            out.append(f"{head}{{{label},{tail} {rest}")
        else:
            out.append(f"{name_part}{{{label}}} {rest}")
    return "\n".join(out)


async def _fetch_metrics(host: str, port: int,
                         timeout: float = 5.0) -> str:
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    try:
        writer.write((f"GET /metrics HTTP/1.1\r\nHost: {host}\r\n"
                      "Connection: close\r\n\r\n").encode())
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:  # pragma: no cover
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b" ", 2)
    if len(status) < 2 or status[1] != b"200":
        raise OSError(f"worker at {host}:{port} answered "
                      f"{status[1:2]!r} for /metrics")
    return body.decode("utf-8", "replace")


async def aggregate_metrics(host: str, ports: List[int], *, local: int,
                            local_registry=None) -> str:
    """Concatenate every worker's ``/metrics`` with a ``worker`` label.

    The local worker renders its own registry directly (no self-request
    over the socket it is currently serving); peers are fetched over
    their direct ports concurrently.  A dead peer contributes a comment
    line instead of failing the whole page -- partial visibility beats
    none during a rolling restart.
    """
    from repro.obs.export import render_prometheus

    async def one(index: int, port: int) -> str:
        if index == local and local_registry is not None:
            return _inject_worker_label(
                render_prometheus(local_registry), index)
        try:
            return _inject_worker_label(
                await _fetch_metrics(host, port), index)
        except (OSError, asyncio.TimeoutError) as exc:
            return f"# worker {index} at {host}:{port} unreachable: {exc}"

    pages = await asyncio.gather(
        *(one(i, port) for i, port in enumerate(ports)))
    return "\n".join(page.rstrip("\n") for page in pages) + "\n"


# -- the fork orchestrator ---------------------------------------------------

class ShardChannel:
    """The child side of the parent<->worker bootstrap pipes."""

    def __init__(self, up_fd: int, down_fd: int):
        self._up = up_fd      # child -> parent: readiness report
        self._down = down_fd  # parent -> child: the final port map

    def report(self, direct_port: int) -> List[int]:
        """Send this worker's direct port; block for the full map.

        Runs once at startup before the worker begins serving, so the
        brief blocking read (the parent answers as soon as every sibling
        has reported) is acceptable inside the loop.
        """
        os.write(self._up, (json.dumps(
            {"direct_port": int(direct_port), "pid": os.getpid()})
            + "\n").encode())
        return json.loads(_read_line(self._down))

    def close(self) -> None:
        for fd in (self._up, self._down):
            try:
                os.close(fd)
            except OSError:  # pragma: no cover
                pass


def _read_line(fd: int) -> str:
    chunks = []
    while True:
        byte = os.read(fd, 1)
        if not byte or byte == b"\n":
            return b"".join(chunks).decode()
        chunks.append(byte)


def _reserve_port(host: str, port: int) -> tuple:
    """Bind (not listen) a ``SO_REUSEPORT`` socket to pin the port.

    With ``--port 0`` the parent must pick ONE concrete port for every
    worker to share; holding a bound, non-listening reuseport socket
    reserves the number without participating in accept load-balancing.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover -- non-Linux
        sock.close()
        raise SystemExit("--workers needs SO_REUSEPORT (Linux/BSD only)")
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    return sock, sock.getsockname()[1]


def run_sharded(workers: int, host: str, port: int,
                worker_fn: Callable[[ShardInfo, ShardChannel, int], int],
                *, banner: Optional[Callable[[int, List[Dict[str, Any]]],
                                             None]] = None) -> int:
    """Fork ``workers`` processes and run ``worker_fn`` in each.

    ``worker_fn(shard, channel, shared_port)`` runs in the child and
    must (1) start its server with ``reuse_port=True`` and a direct
    port, (2) call ``channel.report(direct_port)`` and install the
    returned map into ``shard.ports``, then (3) serve until SIGTERM and
    return an exit code.  The parent relays SIGINT/SIGTERM to every
    child and exits 0 only if all children exited cleanly.

    ``banner(shared_port, reports)`` runs in the parent once all workers
    are up (for the CLI's "listening on" lines).
    """
    if workers < 2:
        raise ValueError(f"run_sharded needs >= 2 workers, got {workers}")
    reservation, shared_port = _reserve_port(host, port)
    pids: List[int] = []
    parent_up: List[int] = []    # read ends of child->parent pipes
    parent_down: List[int] = []  # write ends of parent->child pipes
    for index in range(workers):
        up_r, up_w = os.pipe()
        down_r, down_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            # -- child ------------------------------------------------------
            code = 1
            try:
                os.close(up_r)
                os.close(down_w)
                reservation.close()
                for fd in parent_up + parent_down:
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                shard = ShardInfo(index, workers, host, shared_port)
                channel = ShardChannel(up_w, down_r)
                code = worker_fn(shard, channel, shared_port)
            except BaseException:  # noqa: BLE001 -- nothing may escape a fork
                import traceback
                traceback.print_exc()
                code = 1
            finally:
                # os._exit: never run the parent's atexit/stdio teardown
                # twice from a forked child.
                sys.stdout.flush()
                sys.stderr.flush()
                os._exit(code)
        os.close(up_w)
        os.close(down_r)
        pids.append(pid)
        parent_up.append(up_r)
        parent_down.append(down_w)

    # Collect readiness reports (in worker order -- each child writes
    # exactly one line) and broadcast the assembled port map.
    reports: List[Dict[str, Any]] = []
    for fd in parent_up:
        reports.append(json.loads(_read_line(fd)))
    ports = [int(report["direct_port"]) for report in reports]
    blob = (json.dumps(ports) + "\n").encode()
    for fd in parent_down:
        os.write(fd, blob)
    if banner is not None:
        banner(shared_port, reports)

    # Relay termination signals; waitpid restarts on EINTR, so the
    # handler only needs to kick the children.
    def _relay(signum, _frame):
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    previous = {sig: signal.signal(sig, _relay)
                for sig in (signal.SIGINT, signal.SIGTERM)}
    try:
        failures = 0
        for pid in pids:
            _, status = os.waitpid(pid, 0)
            code = (os.waitstatus_to_exitcode(status)
                    if hasattr(os, "waitstatus_to_exitcode")
                    else os.WEXITSTATUS(status))
            if code != 0:
                failures += 1
                print(f"tcm serve: worker pid {pid} exited with "
                      f"{code}", file=sys.stderr, flush=True)
        return 1 if failures else 0
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        for fd in parent_up + parent_down:
            try:
                os.close(fd)
            except OSError:
                pass
        reservation.close()
