"""The stdlib-only asyncio HTTP/JSON front end (``tcm serve``).

One event loop, hand-rolled HTTP/1.1 with keep-alive, JSON bodies.  The
handler's job is deliberately thin: parse, **pre-hash labels to uint64
keys**, hand the columns to the tenant's coalescer, await the shared
batch's future, serialize.  All sketch work happens in the coalescer
flushes (see :mod:`repro.server.coalescer`).

Endpoints (docs/SERVER.md, docs/API.md):

- ``GET /healthz`` -- liveness.
- ``GET /metrics`` -- Prometheus text exposition of the process registry.
- ``GET /stats`` -- JSON: per-endpoint latency quantiles (via
  :func:`repro.obs.runtime.latency_quantiles`) plus per-sketch info.
- ``GET /sketches`` | ``PUT/GET/DELETE /sketches/{name}`` -- registry.
- ``POST /sketches/{name}/ingest`` -- ``{sources, targets, weights?,
  timestamps?}``; acknowledged when its micro-batch lands.
- ``POST /sketches/{name}/remove`` -- deletions (kind="tcm").
- ``POST /sketches/{name}/query`` -- ``{kind, pairs|nodes}``; coalesced
  per query family.
- ``POST /sketches/{name}/advance`` -- ``{timestamp}`` (kind="window").

With ``data_dir`` set the server is **durable**: tenant mutations are
write-ahead-logged before they are acked, snapshots truncate the log in
the background, and startup replays snapshot+tail back to the pre-crash
state (see :mod:`repro.server.durability`).

Under overload the server **degrades instead of melting**: a loop-lag
probe drives an admission controller that sheds expensive query classes
first, then ingest, with ``429 Too Many Requests`` + ``Retry-After``;
a connection cap turns accept storms into fast 503s; a bounded staging
buffer backstops the coalescer (:class:`~repro.server.coalescer.
BacklogExceeded` also maps to 429).
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from email.utils import formatdate
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.hashing.labels import label_key, label_keys
from repro.obs.instruments import OBS, REGISTRY
from repro.server import wire
from repro.server.coalescer import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY,
    QUERY_KINDS,
    BacklogExceeded,
)
from repro.server.registry import SketchRegistry

_MAX_BODY = 64 * 1024 * 1024
_STATUS_TEXT = {200: "OK", 201: "Created", 204: "No Content",
                400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 409: "Conflict",
                413: "Payload Too Large",
                421: "Misdirected Request", 429: "Too Many Requests",
                500: "Internal Server Error", 503: "Service Unavailable"}

#: ``Date`` header cache: (whole second, formatted header value).  The
#: hot response path re-formats the RFC 5322 date only once per second
#: instead of per request (visible in server profiles at high req/s).
_DATE_CACHE: Tuple[int, str] = (-1, "")


def _date_header() -> str:
    global _DATE_CACHE
    now = int(time.time())
    cached = _DATE_CACHE
    if cached[0] != now:
        cached = (now, formatdate(now, usegmt=True))
        _DATE_CACHE = cached
    return cached[1]

#: Query kinds the admission controller sheds first under load: they
#: build whole-graph indexes (closure bitsets) rather than probing a few
#: cells, so one of them can cost thousands of edge lookups.
EXPENSIVE_QUERY_KINDS = frozenset({"reach"})


class _HTTPError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class _ShedError(_HTTPError):
    """Load shed: 429 with a Retry-After hint (not a client mistake)."""

    def __init__(self, reason: str, retry_after: float,
                 message: Optional[str] = None):
        super().__init__(429, message or
                         f"overloaded ({reason}); retry after "
                         f"{retry_after:.3f}s")
        self.reason = reason
        self.retry_after = retry_after


class BackpressureController:
    """Loop-lag sensing + tiered admission control.

    The single-threaded server's honest overload signal is how late the
    event loop runs its callbacks: staged batches cannot pile up (the
    size trigger flushes synchronously), but a loop that is saturated
    with flush work and socket churn services everything late.  A
    periodic probe measures that lateness and keeps an EWMA; admission
    is then tiered by how much work a request class costs to serve:

    - ``lag >= 0.5 * lag_limit`` -- shed expensive query classes
      (:data:`EXPENSIVE_QUERY_KINDS`): they amplify load the most.
    - ``lag >= lag_limit`` -- shed ingest too: stop taking on new
      state-changing work.
    - ``lag >= 2 * lag_limit`` -- shed cheap queries as well; only
      health/metrics/admin traffic is still served.

    Shed responses carry ``Retry-After`` derived from the current lag,
    so well-behaved clients space out exactly as much as the server
    needs them to.
    """

    def __init__(self, *, lag_limit: float = 0.25,
                 probe_interval: float = 0.05):
        if lag_limit <= 0:
            raise ValueError(f"lag_limit must be positive, got {lag_limit}")
        self.lag_limit = lag_limit
        self.probe_interval = probe_interval
        self.lag = 0.0
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._probe())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _probe(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(self.probe_interval)
            sample = max(0.0, loop.time() - before - self.probe_interval)
            # Fast-attack, slow-decay EWMA: overload shows up within a
            # couple of probes, recovery is declared a bit lazily so the
            # shed decision does not flap.
            alpha = 0.5 if sample > self.lag else 0.25
            self.lag += alpha * (sample - self.lag)
            if OBS.enabled:
                OBS.server_loop_lag.set(self.lag)

    def retry_after(self) -> float:
        return round(max(2 * self.lag, 0.05), 3)

    def shed_reason(self, cost: str) -> Optional[str]:
        """``None`` to admit, else the shed reason for this cost class."""
        lag = self.lag
        if cost == "expensive_query":
            if lag >= 0.5 * self.lag_limit:
                return "query_class"
        elif cost == "ingest":
            if lag >= self.lag_limit:
                return "lag"
        elif cost == "cheap_query":
            if lag >= 2 * self.lag_limit:
                return "lag"
        return None


def _parse_labels(body: Dict, field: str) -> np.ndarray:
    values = body.get(field)
    if not isinstance(values, list):
        raise _HTTPError(400, f"'{field}' must be a list")
    try:
        return label_keys(values)
    except TypeError as exc:
        raise _HTTPError(400, f"bad label in '{field}': {exc}")


def _parse_floats(body: Dict, field: str, n: int,
                  default: Optional[float]) -> Optional[np.ndarray]:
    values = body.get(field)
    if values is None:
        if default is None:
            return None
        return np.full(n, default)
    if not isinstance(values, list) or len(values) != n:
        raise _HTTPError(
            400, f"'{field}' must be a list of {n} numbers")
    try:
        return np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError):
        raise _HTTPError(400, f"'{field}' must be numeric")


class SketchServer:
    """The asyncio service; owns a registry and a listening socket."""

    def __init__(self, registry: Optional[SketchRegistry] = None, *,
                 host: str = "127.0.0.1", port: int = 8765,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay: float = DEFAULT_MAX_DELAY,
                 batching: bool = True,
                 max_body: int = _MAX_BODY,
                 max_backlog: Optional[int] = None,
                 max_connections: int = 512,
                 lag_limit: float = 0.25,
                 data_dir: Optional[str] = None,
                 fsync: str = "interval",
                 fsync_interval: float = 0.05,
                 rotate_bytes: int = 64 * 1024 * 1024,
                 snapshot_interval: Optional[float] = 30.0,
                 faults=None,
                 shard=None):
        if max_backlog is None:
            # Default bound: several full batches of headroom -- never
            # hit while flushes are healthy, sheds when they are not.
            max_backlog = 8 * max_batch
        self.registry = registry if registry is not None else SketchRegistry(
            max_batch=max_batch, max_delay=max_delay, batching=batching,
            max_backlog=max_backlog)
        self.host = host
        self.port = port
        self.batching = self.registry.batching
        self.max_body = max_body
        self.max_connections = max_connections
        self.backpressure = BackpressureController(lag_limit=lag_limit)
        self.snapshot_interval = snapshot_interval
        self.durability = None
        self.recovery_report: Optional[Dict[str, Any]] = None
        if data_dir is not None:
            from repro.server.durability import DurabilityManager
            from repro.server.faults import FaultPlan
            if faults is None:
                faults = FaultPlan.from_env()
            self.durability = DurabilityManager(
                data_dir, fsync=fsync, fsync_interval=fsync_interval,
                rotate_bytes=rotate_bytes, faults=faults)
            self.registry.durability = self.durability
        #: Optional :class:`repro.server.sharding.ShardInfo`.  When set,
        #: this server is one worker of a sharded deployment: tenant
        #: routes it does not own answer 421 with the owner's address,
        #: and ``/cluster`` reports the topology.
        self.shard = shard
        self._server: Optional[asyncio.AbstractServer] = None
        self._direct_server: Optional[asyncio.AbstractServer] = None
        self.direct_port: Optional[int] = None
        self._snapshot_task: Optional[asyncio.Task] = None
        self._connections = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self, *, reuse_port: bool = False,
                    direct_port: Optional[int] = None) -> int:
        """Recover (if durable), bind and listen; returns the port.

        ``reuse_port`` binds with ``SO_REUSEPORT`` so sibling worker
        processes can share the port (the kernel load-balances accepted
        connections).  ``direct_port`` additionally binds a second,
        worker-private listener on that port (0 for ephemeral) -- the
        address shard-aware clients use to reach this worker directly.
        """
        if self.durability is not None and self.recovery_report is None:
            self.recovery_report = self.durability.recover(self.registry)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            reuse_port=reuse_port or None)
        self.port = self._server.sockets[0].getsockname()[1]
        if direct_port is not None:
            self._direct_server = await asyncio.start_server(
                self._handle_connection, self.host, direct_port)
            self.direct_port = \
                self._direct_server.sockets[0].getsockname()[1]
        self.backpressure.start()
        if self.durability is not None and self.batching:
            # Group-commit pipelining rides the coalescer's deferred
            # acks.  In --no-batching mode every request needs its WAL
            # write result synchronously (fail-fast: a rejected append
            # must surface *before* the sketch mutates), so the plain
            # inline append path stays in force there.
            self.durability.start_pipeline()
        if self.durability is not None and self.snapshot_interval:
            self._snapshot_task = asyncio.get_running_loop().create_task(
                self._snapshot_loop())
        return self.port

    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.snapshot_interval)
            try:
                await self.durability.snapshot_all_async(self.registry)
            except OSError:
                # A sick disk must not kill the loop; the next interval
                # retries and the WAL keeps the data recoverable.
                pass

    async def stop(self) -> None:
        """Drain every coalescer, sync the WALs, close the socket."""
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            try:
                await self._snapshot_task
            except asyncio.CancelledError:
                pass
            self._snapshot_task = None
        await self.backpressure.stop()
        self.registry.drain_all()
        if self.durability is not None:
            # Commit every staged group (resolving the drained futures)
            # before the final sync -- the pipeline owns the WAL files
            # while it runs.
            await self.durability.stop_pipeline()
            self.durability.sync_all(self.registry)
            self.durability.close_all(self.registry)
        for server in (self._server, self._direct_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = None
        self._direct_server = None

    # -- connection loop ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if self._connections >= self.max_connections:
            # Accept storm: answer cheaply and get off the loop.  A 503
            # with Retry-After beats letting the kernel queue grow and
            # every accepted request time out.
            if OBS.enabled:
                OBS.shed_requests.labels("connections").inc()
            retry = self.backpressure.retry_after()
            self._write_response(
                writer, 503,
                {"error": "connection limit reached", "retry_after": retry},
                keep_alive=False,
                headers={"Retry-After": str(max(1, math.ceil(retry)))})
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            writer.close()
            return
        self._connections += 1
        if OBS.enabled:
            OBS.server_open_connections.inc()
        try:
            while True:
                try:
                    request_line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized request line: not salvageable, close.
                    break
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                started = time.perf_counter()
                try:
                    method, path, version = \
                        request_line.decode("latin-1").split()
                except ValueError:
                    break
                headers: Dict[str, str] = {}
                malformed: Optional[str] = None
                while True:
                    try:
                        line = await reader.readline()
                    except (ValueError, asyncio.LimitOverrunError):
                        malformed = "oversized header line"
                        line = b""
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                if malformed is not None:
                    self._write_response(
                        writer, 400, {"error": malformed}, keep_alive=False)
                    await writer.drain()
                    break
                try:
                    length = int(headers.get("content-length", "0") or "0")
                    if length < 0:
                        raise ValueError
                except ValueError:
                    self._write_response(
                        writer, 400,
                        {"error": "bad Content-Length header"},
                        keep_alive=False)
                    await writer.drain()
                    break
                if length > self.max_body:
                    # The oversized body is never read, so the stream
                    # cannot be resynced -- close after answering.
                    self._write_response(
                        writer, 413,
                        {"error": f"body too large ({length} > "
                                  f"{self.max_body} bytes)"},
                        keep_alive=False)
                    await writer.drain()
                    break
                raw = await reader.readexactly(length) if length else b""
                endpoint = self._endpoint_family(method, path)
                extra_headers: Optional[Dict[str, str]] = None
                try:
                    status, payload, content_type = \
                        await self._dispatch(method, path, raw, headers)
                except _ShedError as exc:
                    status = exc.status
                    payload = {"error": exc.message,
                               "retry_after": exc.retry_after}
                    content_type = "application/json"
                    extra_headers = {"Retry-After": str(
                        max(1, math.ceil(exc.retry_after)))}
                    if OBS.enabled:
                        OBS.shed_requests.labels(exc.reason).inc()
                except _HTTPError as exc:
                    status, payload = exc.status, {"error": exc.message}
                    content_type = "application/json"
                except (KeyError, LookupError) as exc:
                    status, payload = 404, {"error": str(exc)}
                    content_type = "application/json"
                except ValueError as exc:
                    status, payload = 400, {"error": str(exc)}
                    content_type = "application/json"
                except asyncio.CancelledError:
                    raise
                except OSError as exc:
                    # Durability layer failure (disk full, dying fsync):
                    # the request is not acked, the server stays up.
                    status = 503
                    payload = {"error": f"storage error: {exc}"}
                    content_type = "application/json"
                except Exception as exc:  # noqa: BLE001 -- the 500 boundary
                    status = 500
                    payload = {"error": f"{type(exc).__name__}: {exc}"}
                    content_type = "application/json"
                keep_alive = (version == "HTTP/1.1"
                              and headers.get("connection", "").lower()
                              != "close")
                self._write_response(writer, status, payload, content_type,
                                     keep_alive=keep_alive,
                                     headers=extra_headers)
                await writer.drain()
                if OBS.enabled:
                    OBS.server_requests.labels(endpoint, str(status)).inc()
                    OBS.server_request_seconds.labels(endpoint).observe(
                        time.perf_counter() - started)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            self._connections -= 1
            if OBS.enabled:
                OBS.server_open_connections.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # Teardown-time cancellation (loop shutdown) must not
                # escape the finally -- the connection is gone either way.
                pass

    @staticmethod
    def _endpoint_family(method: str, path: str) -> str:
        parts = [p for p in path.split("?")[0].split("/") if p]
        if not parts:
            return "root"
        if parts[0] in ("healthz", "metrics", "stats"):
            return parts[0]
        if parts[0] == "sketches":
            if len(parts) == 3:
                return parts[2]
            return f"sketches:{method.lower()}"
        return "other"

    @staticmethod
    def _write_response(writer: asyncio.StreamWriter, status: int,
                        payload: Any,
                        content_type: str = "application/json", *,
                        keep_alive: bool = True,
                        headers: Optional[Dict[str, str]] = None) -> None:
        if isinstance(payload, bytes):
            body = payload
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = json.dumps(payload).encode("utf-8")
        reason = _STATUS_TEXT.get(status, "Unknown")
        extra = ""
        if headers:
            extra = "".join(f"{name}: {value}\r\n"
                            for name, value in headers.items())
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Date: {_date_header()}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n")
        writer.write(head.encode("latin-1") + body)

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, method: str, path: str, raw: bytes,
                        headers: Optional[Dict[str, str]] = None) \
            -> Tuple[int, Any, str]:
        headers = headers or {}
        path = path.split("?")[0]
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            payload = {"status": "ok",
                       "batching": self.batching,
                       "sketches": len(self.registry),
                       "durable": self.durability is not None,
                       "loop_lag": round(self.backpressure.lag, 6)}
            if self.shard is not None:
                payload["worker"] = self.shard.index
            return 200, payload, "application/json"
        if path == "/metrics" and method == "GET":
            from repro.obs.export import render_prometheus
            return 200, render_prometheus(REGISTRY), \
                "text/plain; version=0.0.4"
        if path == "/stats" and method == "GET":
            from repro.obs.runtime import latency_quantiles
            return 200, {"latency": latency_quantiles(REGISTRY),
                         "sketches": self.registry.infos()}, \
                "application/json"
        if parts and parts[0] == "cluster" and self.shard is not None:
            return await self._cluster_route(method, parts)
        if parts and parts[0] == "sketches":
            if len(parts) == 1:
                if method != "GET":
                    raise _HTTPError(405, "use GET /sketches")
                return 200, {"sketches": self.registry.names()}, \
                    "application/json"
            name = parts[1]
            if self.shard is not None and len(parts) in (2, 3):
                owner = self.shard.owner(name)
                if owner != self.shard.index:
                    if OBS.enabled:
                        OBS.server_misdirected_requests.inc()
                    return 421, {
                        "error": f"tenant {name!r} is owned by worker "
                                 f"{owner}; redirect to its direct port",
                        "worker": owner,
                        "port": self.shard.ports[owner],
                        "workers": self.shard.count,
                    }, "application/json"
            if len(parts) == 2:
                return await self._sketch_resource(method, name, raw)
            if len(parts) == 3 and method == "POST":
                return await self._sketch_action(name, parts[2], raw,
                                                 headers)
        raise _HTTPError(404, f"no route for {method} {path}")

    async def _cluster_route(self, method: str,
                             parts) -> Tuple[int, Any, str]:
        if len(parts) == 1 and method == "GET":
            return 200, {
                "workers": self.shard.count,
                "worker": self.shard.index,
                "host": self.shard.host,
                "shared_port": self.shard.shared_port,
                "ports": list(self.shard.ports),
                "sketches": self.registry.names(),
            }, "application/json"
        if len(parts) == 2 and parts[1] == "metrics" and method == "GET":
            from repro.server.sharding import aggregate_metrics
            text = await aggregate_metrics(
                self.shard.host, self.shard.ports, local=self.shard.index,
                local_registry=REGISTRY)
            return 200, text, "text/plain; version=0.0.4"
        raise _HTTPError(404, f"no cluster route for {method}")

    def _json_body(self, raw: bytes) -> Dict:
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HTTPError(400, f"bad JSON body: {exc}")
        except UnicodeDecodeError as exc:
            raise _HTTPError(400, f"body is not valid UTF-8: {exc}")
        if not isinstance(body, dict):
            raise _HTTPError(400, "body must be a JSON object")
        return body

    async def _sketch_resource(self, method: str, name: str,
                               raw: bytes) -> Tuple[int, Any, str]:
        if method == "PUT":
            body = self._json_body(raw)
            kind = body.pop("kind", "tcm")
            if name in self.registry:
                raise _HTTPError(409, f"sketch {name!r} already exists")
            tenant = self.registry.create(name, kind, **body)
            return 201, tenant.info(), "application/json"
        if method == "GET":
            return 200, self.registry.get(name).info(), "application/json"
        if method == "DELETE":
            self.registry.delete(name)
            return 200, {"deleted": name}, "application/json"
        raise _HTTPError(405, f"unsupported method {method} for a sketch")

    def _admit(self, cost: str) -> None:
        reason = self.backpressure.shed_reason(cost)
        if reason is not None:
            raise _ShedError(reason, self.backpressure.retry_after())

    @staticmethod
    async def _durable(tenant) -> None:
        """Await the tenant's group-commit barrier (no-op when plain)."""
        barrier = tenant.durable_barrier()
        if barrier is not None:
            await barrier

    async def _sketch_action(self, name: str, action: str, raw: bytes,
                             headers: Dict[str, str]) \
            -> Tuple[int, Any, str]:
        tenant = self.registry.get(name)
        # Admit before decoding: parsing a large JSON batch costs loop
        # time we cannot afford exactly when we are shedding.  Queries
        # are re-checked at the stricter expensive tier once the kind
        # is known.
        if action == "ingest":
            self._admit("ingest")
        elif action == "query":
            self._admit("cheap_query")
        content_type = headers.get("content-type", "")
        if content_type.partition(";")[0].strip().lower() == \
                wire.CONTENT_TYPE:
            return await self._sketch_action_wire(tenant, action, raw,
                                                  headers)
        body = self._json_body(raw)
        if action == "ingest":
            sources = _parse_labels(body, "sources")
            targets = _parse_labels(body, "targets")
            n = len(sources)
            if len(targets) != n:
                raise _HTTPError(
                    400, f"got {n} sources but {len(targets)} targets")
            weights = _parse_floats(body, "weights", n, 1.0)
            timestamps = None
            if tenant.kind == "window":
                watermark = tenant.sketch.watermark
                default_ts = watermark if np.isfinite(watermark) else 0.0
                timestamps = _parse_floats(body, "timestamps", n,
                                           default_ts)
            try:
                future = tenant.ingest.add(sources, targets, weights,
                                           timestamps)
            except BacklogExceeded:
                raise _ShedError("backlog", self.backpressure.retry_after())
            ingested = await future
            return 200, {"ingested": ingested,
                         "batched": tenant.ingest.batching}, \
                "application/json"
        if action == "remove":
            sources = _parse_labels(body, "sources")
            targets = _parse_labels(body, "targets")
            n = len(sources)
            if len(targets) != n:
                raise _HTTPError(
                    400, f"got {n} sources but {len(targets)} targets")
            weights = _parse_floats(body, "weights", n, 1.0)
            removed = tenant.remove(sources, targets, weights)
            await self._durable(tenant)
            return 200, {"removed": int(removed)}, "application/json"
        if action == "query":
            kind = body.get("kind")
            if kind not in QUERY_KINDS:
                raise _HTTPError(
                    400, f"query 'kind' must be one of "
                         f"{sorted(QUERY_KINDS)}, got {kind!r}")
            if kind in EXPENSIVE_QUERY_KINDS:
                self._admit("expensive_query")
            shape = QUERY_KINDS[kind]
            if shape == "pairs":
                pairs = body.get("pairs")
                if (not isinstance(pairs, list)
                        or any(not isinstance(p, list) or len(p) != 2
                               for p in pairs)):
                    raise _HTTPError(
                        400, f"{kind} queries need 'pairs': [[src, dst]]")
                try:
                    payload = [(label_key(s), label_key(t))
                               for s, t in pairs]
                except TypeError as exc:
                    raise _HTTPError(400, f"bad label in 'pairs': {exc}")
            elif shape == "nodes":
                nodes = body.get("nodes")
                if not isinstance(nodes, list):
                    raise _HTTPError(
                        400, f"{kind} queries need 'nodes': [node, ...]")
                try:
                    payload = [label_key(node) for node in nodes]
                except TypeError as exc:
                    raise _HTTPError(400, f"bad label in 'nodes': {exc}")
            else:
                payload = []
            values = await tenant.queries.add(kind, payload)
            if kind == "reach":
                values = [bool(v) for v in values]
            return 200, {"kind": kind, "values": values}, "application/json"
        if action == "advance":
            timestamp = body.get("timestamp")
            if not isinstance(timestamp, (int, float)):
                raise _HTTPError(400, "advance needs a numeric 'timestamp'")
            result = tenant.advance(float(timestamp))
            await self._durable(tenant)
            return 200, result, "application/json"
        raise _HTTPError(404, f"unknown action {action!r} (expected "
                              f"ingest, remove, query or advance)")

    #: HTTP action -> the wire op a binary frame must carry for it.
    _WIRE_OPS = {"ingest": wire.OP_INGEST, "remove": wire.OP_REMOVE,
                 "query": wire.OP_QUERY, "advance": wire.OP_ADVANCE}

    async def _sketch_action_wire(self, tenant, action: str, raw: bytes,
                                  headers: Dict[str, str]) \
            -> Tuple[int, Any, str]:
        """Serve one binary columnar request (already admitted).

        The frame's id/weight columns are ``np.frombuffer`` views into
        the request body; ingest hands them straight to the coalescer's
        staging copy -- no JSON parse, no Python-object churn.
        """
        try:
            frame = wire.decode_frame(raw)
        except wire.WireError as exc:
            raise _HTTPError(400, str(exc))
        if OBS.enabled:
            OBS.server_wire_requests.labels(
                wire.OP_NAMES[frame.op]).inc()
            OBS.server_wire_bytes.inc(len(raw))
        expected = self._WIRE_OPS.get(action)
        if expected is None:
            raise _HTTPError(
                404, f"unknown action {action!r} (expected ingest, "
                     f"remove, query or advance)")
        if frame.op != expected:
            raise _HTTPError(
                400, f"frame op {wire.OP_NAMES[frame.op]!r} does not "
                     f"match action {action!r}")
        if frame.tenant and frame.tenant != tenant.name:
            raise _HTTPError(
                400, f"frame tenant {frame.tenant!r} does not match "
                     f"path tenant {tenant.name!r}")
        if action == "ingest":
            timestamps: Any = None
            if tenant.kind == "window":
                timestamps = frame.timestamps
                if timestamps is None:
                    watermark = tenant.sketch.watermark
                    timestamps = (watermark if np.isfinite(watermark)
                                  else 0.0)
            try:
                future = tenant.ingest.add(frame.sources, frame.targets,
                                           frame.weights, timestamps)
            except BacklogExceeded:
                raise _ShedError("backlog", self.backpressure.retry_after())
            ingested = await future
            return 200, {"ingested": ingested,
                         "batched": tenant.ingest.batching}, \
                "application/json"
        if action == "query":
            kind = frame.kind
            if kind in EXPENSIVE_QUERY_KINDS:
                self._admit("expensive_query")
            if frame.targets is not None:
                payload = list(zip(frame.sources.tolist(),
                                   frame.targets.tolist()))
            elif frame.sources is not None:
                payload = frame.sources.tolist()
            else:
                payload = []
            values = await tenant.queries.add(kind, payload)
            if wire.CONTENT_TYPE in headers.get("accept", ""):
                return 200, wire.encode_values(
                    np.asarray(values, dtype=np.float64)), \
                    wire.CONTENT_TYPE
            if kind == "reach":
                values = [bool(v) for v in values]
            return 200, {"kind": kind, "values": values}, \
                "application/json"
        if action == "remove":
            removed = tenant.remove(frame.sources, frame.targets,
                                    frame.weights)
            await self._durable(tenant)
            return 200, {"removed": int(removed)}, "application/json"
        # advance
        result = tenant.advance(float(frame.timestamp))
        await self._durable(tenant)
        return 200, result, "application/json"
