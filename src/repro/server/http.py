"""The stdlib-only asyncio HTTP/JSON front end (``tcm serve``).

One event loop, hand-rolled HTTP/1.1 with keep-alive, JSON bodies.  The
handler's job is deliberately thin: parse, **pre-hash labels to uint64
keys**, hand the columns to the tenant's coalescer, await the shared
batch's future, serialize.  All sketch work happens in the coalescer
flushes (see :mod:`repro.server.coalescer`).

Endpoints (docs/SERVER.md, docs/API.md):

- ``GET /healthz`` -- liveness.
- ``GET /metrics`` -- Prometheus text exposition of the process registry.
- ``GET /stats`` -- JSON: per-endpoint latency quantiles (via
  :func:`repro.obs.runtime.latency_quantiles`) plus per-sketch info.
- ``GET /sketches`` | ``PUT/GET/DELETE /sketches/{name}`` -- registry.
- ``POST /sketches/{name}/ingest`` -- ``{sources, targets, weights?,
  timestamps?}``; acknowledged when its micro-batch lands.
- ``POST /sketches/{name}/remove`` -- deletions (kind="tcm").
- ``POST /sketches/{name}/query`` -- ``{kind, pairs|nodes}``; coalesced
  per query family.
- ``POST /sketches/{name}/advance`` -- ``{timestamp}`` (kind="window").
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.hashing.labels import label_key, label_keys
from repro.obs.instruments import OBS, REGISTRY
from repro.server.coalescer import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY,
    QUERY_KINDS,
)
from repro.server.registry import SketchRegistry

_MAX_BODY = 64 * 1024 * 1024
_STATUS_TEXT = {200: "OK", 201: "Created", 204: "No Content",
                400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 409: "Conflict",
                413: "Payload Too Large", 500: "Internal Server Error"}


class _HTTPError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _parse_labels(body: Dict, field: str) -> np.ndarray:
    values = body.get(field)
    if not isinstance(values, list):
        raise _HTTPError(400, f"'{field}' must be a list")
    try:
        return label_keys(values)
    except TypeError as exc:
        raise _HTTPError(400, f"bad label in '{field}': {exc}")


def _parse_floats(body: Dict, field: str, n: int,
                  default: Optional[float]) -> Optional[np.ndarray]:
    values = body.get(field)
    if values is None:
        if default is None:
            return None
        return np.full(n, default)
    if not isinstance(values, list) or len(values) != n:
        raise _HTTPError(
            400, f"'{field}' must be a list of {n} numbers")
    try:
        return np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError):
        raise _HTTPError(400, f"'{field}' must be numeric")


class SketchServer:
    """The asyncio service; owns a registry and a listening socket."""

    def __init__(self, registry: Optional[SketchRegistry] = None, *,
                 host: str = "127.0.0.1", port: int = 8765,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay: float = DEFAULT_MAX_DELAY,
                 batching: bool = True):
        self.registry = registry if registry is not None else SketchRegistry(
            max_batch=max_batch, max_delay=max_delay, batching=batching)
        self.host = host
        self.port = port
        self.batching = self.registry.batching
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> int:
        """Bind and listen; returns the actual port (for ``port=0``)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Drain every coalescer, then close the listening socket."""
        self.registry.drain_all()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection loop ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if OBS.enabled:
            OBS.server_open_connections.inc()
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                started = time.perf_counter()
                try:
                    method, path, version = \
                        request_line.decode("latin-1").split()
                except ValueError:
                    break
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or "0")
                if length > _MAX_BODY:
                    self._write_response(
                        writer, 413, {"error": "body too large"})
                    await writer.drain()
                    break
                raw = await reader.readexactly(length) if length else b""
                endpoint = self._endpoint_family(method, path)
                try:
                    status, payload, content_type = \
                        await self._dispatch(method, path, raw)
                except _HTTPError as exc:
                    status, payload = exc.status, {"error": exc.message}
                    content_type = "application/json"
                except (KeyError, LookupError) as exc:
                    status, payload = 404, {"error": str(exc)}
                    content_type = "application/json"
                except ValueError as exc:
                    status, payload = 400, {"error": str(exc)}
                    content_type = "application/json"
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 -- the 500 boundary
                    status = 500
                    payload = {"error": f"{type(exc).__name__}: {exc}"}
                    content_type = "application/json"
                keep_alive = (version == "HTTP/1.1"
                              and headers.get("connection", "").lower()
                              != "close")
                self._write_response(writer, status, payload, content_type,
                                     keep_alive=keep_alive)
                await writer.drain()
                if OBS.enabled:
                    OBS.server_requests.labels(endpoint, str(status)).inc()
                    OBS.server_request_seconds.labels(endpoint).observe(
                        time.perf_counter() - started)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            if OBS.enabled:
                OBS.server_open_connections.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # Teardown-time cancellation (loop shutdown) must not
                # escape the finally -- the connection is gone either way.
                pass

    @staticmethod
    def _endpoint_family(method: str, path: str) -> str:
        parts = [p for p in path.split("?")[0].split("/") if p]
        if not parts:
            return "root"
        if parts[0] in ("healthz", "metrics", "stats"):
            return parts[0]
        if parts[0] == "sketches":
            if len(parts) == 3:
                return parts[2]
            return f"sketches:{method.lower()}"
        return "other"

    @staticmethod
    def _write_response(writer: asyncio.StreamWriter, status: int,
                        payload: Any,
                        content_type: str = "application/json", *,
                        keep_alive: bool = True) -> None:
        if isinstance(payload, bytes):
            body = payload
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = json.dumps(payload).encode("utf-8")
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n")
        writer.write(head.encode("latin-1") + body)

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, method: str, path: str,
                        raw: bytes) -> Tuple[int, Any, str]:
        path = path.split("?")[0]
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok",
                         "batching": self.batching,
                         "sketches": len(self.registry)}, "application/json"
        if path == "/metrics" and method == "GET":
            from repro.obs.export import render_prometheus
            return 200, render_prometheus(REGISTRY), \
                "text/plain; version=0.0.4"
        if path == "/stats" and method == "GET":
            from repro.obs.runtime import latency_quantiles
            return 200, {"latency": latency_quantiles(REGISTRY),
                         "sketches": self.registry.infos()}, \
                "application/json"
        if parts and parts[0] == "sketches":
            if len(parts) == 1:
                if method != "GET":
                    raise _HTTPError(405, "use GET /sketches")
                return 200, {"sketches": self.registry.names()}, \
                    "application/json"
            name = parts[1]
            if len(parts) == 2:
                return await self._sketch_resource(method, name, raw)
            if len(parts) == 3 and method == "POST":
                return await self._sketch_action(name, parts[2], raw)
        raise _HTTPError(404, f"no route for {method} {path}")

    def _json_body(self, raw: bytes) -> Dict:
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HTTPError(400, f"bad JSON body: {exc}")
        if not isinstance(body, dict):
            raise _HTTPError(400, "body must be a JSON object")
        return body

    async def _sketch_resource(self, method: str, name: str,
                               raw: bytes) -> Tuple[int, Any, str]:
        if method == "PUT":
            body = self._json_body(raw)
            kind = body.pop("kind", "tcm")
            if name in self.registry:
                raise _HTTPError(409, f"sketch {name!r} already exists")
            tenant = self.registry.create(name, kind, **body)
            return 201, tenant.info(), "application/json"
        if method == "GET":
            return 200, self.registry.get(name).info(), "application/json"
        if method == "DELETE":
            self.registry.delete(name)
            return 200, {"deleted": name}, "application/json"
        raise _HTTPError(405, f"unsupported method {method} for a sketch")

    async def _sketch_action(self, name: str, action: str,
                             raw: bytes) -> Tuple[int, Any, str]:
        tenant = self.registry.get(name)
        body = self._json_body(raw)
        if action == "ingest":
            sources = _parse_labels(body, "sources")
            targets = _parse_labels(body, "targets")
            n = len(sources)
            if len(targets) != n:
                raise _HTTPError(
                    400, f"got {n} sources but {len(targets)} targets")
            weights = _parse_floats(body, "weights", n, 1.0)
            timestamps = None
            if tenant.kind == "window":
                watermark = tenant.sketch.watermark
                default_ts = watermark if np.isfinite(watermark) else 0.0
                timestamps = _parse_floats(body, "timestamps", n,
                                           default_ts)
            ingested = await tenant.ingest.add(sources, targets, weights,
                                               timestamps)
            return 200, {"ingested": ingested,
                         "batched": tenant.ingest.batching}, \
                "application/json"
        if action == "remove":
            sources = _parse_labels(body, "sources")
            targets = _parse_labels(body, "targets")
            n = len(sources)
            if len(targets) != n:
                raise _HTTPError(
                    400, f"got {n} sources but {len(targets)} targets")
            weights = _parse_floats(body, "weights", n, 1.0)
            removed = tenant.remove(sources, targets, weights)
            return 200, {"removed": int(removed)}, "application/json"
        if action == "query":
            kind = body.get("kind")
            if kind not in QUERY_KINDS:
                raise _HTTPError(
                    400, f"query 'kind' must be one of "
                         f"{sorted(QUERY_KINDS)}, got {kind!r}")
            shape = QUERY_KINDS[kind]
            if shape == "pairs":
                pairs = body.get("pairs")
                if (not isinstance(pairs, list)
                        or any(not isinstance(p, list) or len(p) != 2
                               for p in pairs)):
                    raise _HTTPError(
                        400, f"{kind} queries need 'pairs': [[src, dst]]")
                try:
                    payload = [(label_key(s), label_key(t))
                               for s, t in pairs]
                except TypeError as exc:
                    raise _HTTPError(400, f"bad label in 'pairs': {exc}")
            elif shape == "nodes":
                nodes = body.get("nodes")
                if not isinstance(nodes, list):
                    raise _HTTPError(
                        400, f"{kind} queries need 'nodes': [node, ...]")
                try:
                    payload = [label_key(node) for node in nodes]
                except TypeError as exc:
                    raise _HTTPError(400, f"bad label in 'nodes': {exc}")
            else:
                payload = []
            values = await tenant.queries.add(kind, payload)
            if kind == "reach":
                values = [bool(v) for v in values]
            return 200, {"kind": kind, "values": values}, "application/json"
        if action == "advance":
            timestamp = body.get("timestamp")
            if not isinstance(timestamp, (int, float)):
                raise _HTTPError(400, "advance needs a numeric 'timestamp'")
            return 200, tenant.advance(float(timestamp)), "application/json"
        raise _HTTPError(404, f"unknown action {action!r} (expected "
                              f"ingest, remove, query or advance)")
