"""Closed-loop load generator for the sketch service (``tcm loadgen``).

Drives N persistent keep-alive connections against a running
:class:`~repro.server.http.SketchServer`, each sending its share of
pre-generated JSON requests back-to-back (closed loop: a connection's
next request leaves when its previous response arrives).  Concurrency
across connections is what exercises the server's coalescers -- with one
connection every micro-batch holds one request; with 16, batches fill.

All request bodies are generated and JSON-encoded **before** the clock
starts, so measured time is wire + server work only.  Latency is
recorded per request; the summary reports client-side p50/p99 (exact,
``np.percentile``) and, when asked, the server's own
``/stats`` view (histogram-bucket quantiles via
:func:`repro.obs.runtime.latency_quantiles`).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

_DEFAULT_SKETCH = {"kind": "tcm", "d": 4, "width": 256, "seed": 7}


async def _request(reader: asyncio.StreamReader,
                   writer: asyncio.StreamWriter, method: str, path: str,
                   body: bytes = b"", host: str = "localhost") -> Tuple[int, bytes]:
    """One HTTP/1.1 request over an already-open keep-alive connection."""
    head = (f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n")
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = await reader.readexactly(length) if length else b""
    return status, payload


def _make_requests(n_requests: int, elements: int, n_nodes: int,
                   query_ratio: float, sketch: str,
                   seed: int) -> List[Tuple[str, str, bytes]]:
    """Pre-encode the request mix: (kind, path, body) per request."""
    rng = np.random.default_rng(seed)
    ingest_path = f"/sketches/{sketch}/ingest"
    query_path = f"/sketches/{sketch}/query"
    out: List[Tuple[str, str, bytes]] = []
    for _ in range(n_requests):
        if rng.random() < query_ratio:
            pairs = rng.integers(0, n_nodes,
                                 size=(max(1, elements // 8), 2))
            body = json.dumps({"kind": "edge",
                               "pairs": pairs.tolist()}).encode()
            out.append(("query", query_path, body))
        else:
            src = rng.integers(0, n_nodes, size=elements)
            dst = rng.integers(0, n_nodes, size=elements)
            body = json.dumps({"sources": src.tolist(),
                               "targets": dst.tolist()}).encode()
            out.append(("ingest", ingest_path, body))
    return out


async def run_loadgen(host: str, port: int, *,
                      sketch: str = "loadgen",
                      connections: int = 16,
                      requests: int = 512,
                      elements: int = 256,
                      n_nodes: int = 4096,
                      query_ratio: float = 0.0,
                      seed: int = 7,
                      create: bool = True,
                      sketch_config: Optional[Dict[str, Any]] = None,
                      fetch_server_stats: bool = True,
                      cleanup: bool = False) -> Dict[str, Any]:
    """Drive the mix and return the throughput/latency summary."""
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    workload = _make_requests(requests, elements, n_nodes, query_ratio,
                              sketch, seed)

    admin_reader, admin_writer = await asyncio.open_connection(host, port)
    try:
        if create:
            config = dict(_DEFAULT_SKETCH, **(sketch_config or {}))
            status, payload = await _request(
                admin_reader, admin_writer, "PUT", f"/sketches/{sketch}",
                json.dumps(config).encode(), host=host)
            if status not in (201, 409):
                raise RuntimeError(
                    f"creating sketch {sketch!r} failed: "
                    f"{status} {payload.decode(errors='replace')}")

        latencies_ms: List[float] = []
        errors = 0
        ingested = 0

        async def worker(worker_requests) -> None:
            nonlocal errors, ingested
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for kind, path, body in worker_requests:
                    started = time.perf_counter()
                    status, payload = await _request(
                        reader, writer, "POST", path, body, host=host)
                    latencies_ms.append(
                        (time.perf_counter() - started) * 1e3)
                    if status != 200:
                        errors += 1
                    elif kind == "ingest":
                        ingested += json.loads(payload)["ingested"]
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass

        shards = [workload[i::connections] for i in range(connections)]
        started = time.perf_counter()
        await asyncio.gather(*(worker(shard) for shard in shards if shard))
        elapsed = time.perf_counter() - started

        lat = np.asarray(latencies_ms)
        summary: Dict[str, Any] = {
            "connections": connections,
            "requests": requests,
            "elements_per_request": elements,
            "query_ratio": query_ratio,
            "seconds": round(elapsed, 4),
            "req_per_s": round(requests / elapsed, 1),
            "elements_per_s": round(ingested / elapsed, 1),
            "ingested_elements": int(ingested),
            "errors": int(errors),
            "latency_ms": {
                "p50": round(float(np.percentile(lat, 50)), 3),
                "p99": round(float(np.percentile(lat, 99)), 3),
                "mean": round(float(lat.mean()), 3),
                "max": round(float(lat.max()), 3),
            },
        }
        if fetch_server_stats:
            status, payload = await _request(
                admin_reader, admin_writer, "GET", "/stats", host=host)
            if status == 200:
                stats = json.loads(payload)
                summary["server_latency"] = {
                    key: value
                    for key, value in stats.get("latency", {}).items()
                    if key.startswith("server_")}
        if cleanup:
            await _request(admin_reader, admin_writer, "DELETE",
                           f"/sketches/{sketch}", host=host)
        return summary
    finally:
        admin_writer.close()
        try:
            await admin_writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
