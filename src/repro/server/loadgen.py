"""Resilient load generator for the sketch service (``tcm loadgen``).

Drives N persistent keep-alive connections against a running
:class:`~repro.server.http.SketchServer`.  Two pacing modes:

- **Closed loop** (default): each connection sends its share of
  pre-generated requests back-to-back -- a connection's next request
  leaves when its previous response arrives.  Concurrency across
  connections is what exercises the server's coalescers.
- **Open loop** (``rate``): requests are released on a fixed arrival
  schedule regardless of completions, which is how real overload looks
  -- the offered load does not politely slow down because the server
  did.  Latency is measured from the *scheduled* arrival, so queueing
  delay counts.  The chaos bench uses this to push 5x the sustainable
  throughput and verify the server sheds instead of melting.

The driver is built to survive a misbehaving server (that is its job in
the chaos harness): connection resets, refused connections, timeouts and
429/503 shed responses are counted per class in the summary -- with
bounded retries and exponential backoff + jitter -- instead of crashing
the run.  ``Retry-After`` hints from the server are honored.

All request *data* is generated before the clock starts.  By default
bodies are also pre-serialized (measured time is wire + server work
only); ``encode="lazy"`` defers serialization to send time so the
per-request encode cost -- which a real client always pays -- lands
inside the timed loop (used by ``bench_wire`` to compare wire formats
end to end).  The summary
reports client-side p50/p99 (exact, ``np.percentile``) over completed
requests, the same quantiles over *accepted* (HTTP 200) requests, and,
when asked, the server's own ``/stats`` view.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import time
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.instruments import OBS
from repro.server import wire as _wire

_DEFAULT_SKETCH = {"kind": "tcm", "d": 4, "width": 256, "seed": 7}

#: Error classes reported in ``summary["errors_by_class"]``.
ERROR_CLASSES = ("connection", "timeout", "http_429", "http_503",
                 "http_4xx", "http_5xx")

#: Request encodings ``run_loadgen(wire_mode=...)`` understands.
WIRE_MODES = ("json", "binary")


async def _request(reader: asyncio.StreamReader,
                   writer: asyncio.StreamWriter, method: str, path: str,
                   body: bytes = b"", host: str = "localhost",
                   content_type: str = "application/json") \
        -> Tuple[int, bytes]:
    """One HTTP/1.1 request over an already-open keep-alive connection."""
    head = (f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n")
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = await reader.readexactly(length) if length else b""
    return status, payload


def _make_requests(n_requests: int, elements: int, n_nodes: int,
                   query_ratio: float, sketch: str, seed: int,
                   wire_mode: str = "json", encode: str = "eager") \
        -> List[Tuple[str, str, Any, str]]:
    """Generate the request mix: (kind, path, body, content_type).

    ``wire_mode="binary"`` encodes the *same* integer columns (same rng,
    same seed) as length-prefixed columnar frames instead of JSON, so a
    binary run ingests bit-identical data to its JSON twin -- the only
    thing that changes is the wire format.

    ``encode="eager"`` (default) serializes every body before the clock
    starts, so measured time is wire + server work only.  ``"lazy"``
    defers serialization to send time (the body slot holds a zero-arg
    callable): the client pays the real per-request encode cost inside
    the timed loop, which is how a production client behaves and what
    the end-to-end wire-format comparison in ``bench_wire`` measures.
    The *data* is still pre-generated either way -- same columns, same
    requests, regardless of mode.
    """
    if wire_mode not in WIRE_MODES:
        raise ValueError(
            f"wire_mode must be one of {WIRE_MODES}, got {wire_mode!r}")
    if encode not in ("eager", "lazy"):
        raise ValueError(
            f"encode must be 'eager' or 'lazy', got {encode!r}")
    rng = np.random.default_rng(seed)
    ingest_path = f"/sketches/{sketch}/ingest"
    query_path = f"/sketches/{sketch}/query"
    binary = wire_mode == "binary"
    ctype = _wire.CONTENT_TYPE if binary else "application/json"

    def query_body(pairs):
        if binary:
            return _wire.encode_query(sketch, "edge",
                                      pairs[:, 0].astype(np.uint64),
                                      pairs[:, 1].astype(np.uint64))
        return json.dumps({"kind": "edge",
                           "pairs": pairs.tolist()}).encode()

    def ingest_body(src, dst):
        if binary:
            return _wire.encode_ingest(sketch, src.astype(np.uint64),
                                       dst.astype(np.uint64))
        return json.dumps({"sources": src.tolist(),
                           "targets": dst.tolist()}).encode()

    out: List[Tuple[str, str, Any, str]] = []
    for _ in range(n_requests):
        if rng.random() < query_ratio:
            pairs = rng.integers(0, n_nodes,
                                 size=(max(1, elements // 8), 2))
            body = (partial(query_body, pairs) if encode == "lazy"
                    else query_body(pairs))
            out.append(("query", query_path, body, ctype))
        else:
            src = rng.integers(0, n_nodes, size=elements)
            dst = rng.integers(0, n_nodes, size=elements)
            body = (partial(ingest_body, src, dst) if encode == "lazy"
                    else ingest_body(src, dst))
            out.append(("ingest", ingest_path, body, ctype))
    return out


def _retry_after_hint(payload: bytes) -> Optional[float]:
    try:
        hint = json.loads(payload).get("retry_after")
    except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
        return None
    if isinstance(hint, (int, float)) and 0 <= hint <= 60:
        return float(hint)
    return None


class _Driver:
    """Shared state for one loadgen run (single event-loop thread)."""

    def __init__(self, host: str, port: int, *, request_timeout: float,
                 max_retries: int, backoff_base: float, backoff_cap: float,
                 seed: int):
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.rng = random.Random(seed)
        self.errors_by_class: Dict[str, int] = {c: 0 for c in ERROR_CLASSES}
        self.retries = 0
        self.retry_after_honored = 0
        self.backoff_seconds = 0.0
        self.errors = 0          # requests that ultimately failed
        self.ingested = 0
        self.latencies_ms: List[float] = []
        self.accepted_ms: List[float] = []

    async def _backoff(self, attempt: int,
                       hint: Optional[float] = None) -> None:
        if hint is not None:
            self.retry_after_honored += 1
            delay = hint * (0.75 + 0.5 * self.rng.random())
        else:
            delay = (min(self.backoff_cap,
                         self.backoff_base * (2 ** attempt))
                     * (0.5 + self.rng.random()))
        self.backoff_seconds += delay
        if OBS.enabled:
            OBS.retry_backoff_seconds.inc(delay)
        await asyncio.sleep(delay)

    def _note_retry(self, reason: str) -> None:
        self.retries += 1
        if OBS.enabled:
            OBS.retry_attempts.labels(reason).inc()

    async def send(self, conn: Dict[str, Any], kind: str, path: str,
                   body,
                   content_type: str = "application/json") -> Optional[int]:
        """One request with reconnect + bounded retries.

        ``body`` is the raw bytes, or (lazy-encode mode) a zero-arg
        callable serialized here -- inside the timed loop, once, with
        retries reusing the encoded bytes.

        Returns the final HTTP status, or ``None`` if every attempt
        failed at the transport level.  Never raises for server-side
        or network trouble -- that is the whole point of this driver.
        """
        if callable(body):
            body = body()
        attempt = 0
        while True:
            try:
                if conn.get("writer") is None:
                    conn["reader"], conn["writer"] = await asyncio.wait_for(
                        asyncio.open_connection(self.host, self.port),
                        self.request_timeout)
                status, payload = await asyncio.wait_for(
                    _request(conn["reader"], conn["writer"], "POST", path,
                             body, host=self.host,
                             content_type=content_type),
                    self.request_timeout)
            except asyncio.TimeoutError:
                await self._drop(conn)
                if attempt >= self.max_retries:
                    self.errors_by_class["timeout"] += 1
                    self.errors += 1
                    return None
                self._note_retry("timeout")
                await self._backoff(attempt)
                attempt += 1
                continue
            except (ConnectionError, asyncio.IncompleteReadError,
                    OSError):
                await self._drop(conn)
                if attempt >= self.max_retries:
                    self.errors_by_class["connection"] += 1
                    self.errors += 1
                    return None
                self._note_retry("connection")
                await self._backoff(attempt)
                attempt += 1
                continue
            if status in (429, 503):
                key = f"http_{status}"
                self.errors_by_class[key] += 1
                if status == 503:
                    # The connection-cap 503 closes the connection.
                    await self._drop(conn)
                if attempt >= self.max_retries:
                    self.errors += 1
                    return status
                self._note_retry("http_429" if status == 429
                                 else "http_503")
                await self._backoff(attempt, _retry_after_hint(payload))
                attempt += 1
                continue
            if status != 200:
                bucket = "http_4xx" if status < 500 else "http_5xx"
                self.errors_by_class[bucket] += 1
                self.errors += 1
                return status
            if kind == "ingest":
                self.ingested += json.loads(payload)["ingested"]
            return status

    @staticmethod
    async def _drop(conn: Dict[str, Any]) -> None:
        writer = conn.get("writer")
        conn["reader"] = conn["writer"] = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


async def run_loadgen(host: str, port: int, *,
                      sketch: str = "loadgen",
                      connections: int = 16,
                      requests: int = 512,
                      elements: int = 256,
                      n_nodes: int = 4096,
                      query_ratio: float = 0.0,
                      seed: int = 7,
                      create: bool = True,
                      sketch_config: Optional[Dict[str, Any]] = None,
                      fetch_server_stats: bool = True,
                      cleanup: bool = False,
                      rate: Optional[float] = None,
                      request_timeout: float = 30.0,
                      max_retries: int = 3,
                      backoff_base: float = 0.05,
                      backoff_cap: float = 2.0,
                      wire_mode: str = "json",
                      encode: str = "eager") -> Dict[str, Any]:
    """Drive the mix and return the throughput/latency summary.

    ``rate`` switches to open-loop pacing: requests are released at
    ``rate`` per second across the connection pool and latency counts
    from each request's *scheduled* departure.  ``max_retries=0``
    disables retrying (each request gets exactly one attempt).
    ``wire_mode="binary"`` sends the columnar wire protocol instead of
    JSON (same generated data, same seed).

    Against a sharded server (``tcm serve --workers N``) the driver is
    cluster-aware: it probes ``GET /cluster``, computes the tenant's
    owner by hash affinity, and pins every connection to the owner's
    direct port -- no request ever pays the 421 redirect.
    """
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if rate is not None and rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    workload = _make_requests(requests, elements, n_nodes, query_ratio,
                              sketch, seed, wire_mode, encode)
    driver = _Driver(host, port, request_timeout=request_timeout,
                     max_retries=max_retries, backoff_base=backoff_base,
                     backoff_cap=backoff_cap, seed=seed)

    # Cluster awareness: one probe against whatever worker accepts the
    # connection; 404 means a single-process server and costs nothing.
    cluster: Optional[Dict[str, Any]] = None
    probe_reader, probe_writer = await asyncio.open_connection(host, port)
    try:
        status, payload = await _request(probe_reader, probe_writer, "GET",
                                         "/cluster", host=host)
        if status == 200:
            cluster = json.loads(payload)
    finally:
        probe_writer.close()
        try:
            await probe_writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    owner: Optional[int] = None
    if cluster is not None:
        from repro.server.sharding import shard_of
        owner = shard_of(sketch, int(cluster["workers"]))
        driver.port = int(cluster["ports"][owner])

    admin_reader, admin_writer = await asyncio.open_connection(
        host, driver.port)
    try:
        if create:
            config = dict(_DEFAULT_SKETCH, **(sketch_config or {}))
            status, payload = await _request(
                admin_reader, admin_writer, "PUT", f"/sketches/{sketch}",
                json.dumps(config).encode(), host=host)
            if status not in (201, 409):
                raise RuntimeError(
                    f"creating sketch {sketch!r} failed: "
                    f"{status} {payload.decode(errors='replace')}")

        loop = asyncio.get_running_loop()

        async def closed_worker(shard) -> None:
            conn: Dict[str, Any] = {"reader": None, "writer": None}
            try:
                for kind, path, body, ctype in shard:
                    started = time.perf_counter()
                    status = await driver.send(conn, kind, path, body,
                                               ctype)
                    latency = (time.perf_counter() - started) * 1e3
                    driver.latencies_ms.append(latency)
                    if status == 200:
                        driver.accepted_ms.append(latency)
            finally:
                await driver._drop(conn)

        async def open_worker(counter, t0: float) -> None:
            conn: Dict[str, Any] = {"reader": None, "writer": None}
            try:
                for i in counter:
                    if i >= requests:
                        return
                    kind, path, body, ctype = workload[i]
                    scheduled = t0 + i / rate
                    delay = scheduled - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
                    sent = loop.time()
                    status = await driver.send(conn, kind, path, body,
                                               ctype)
                    done = loop.time()
                    # End-to-end latency counts from the *scheduled*
                    # arrival (open-loop honesty: schedule slip is real
                    # waiting).  Accepted latency counts from the actual
                    # send -- the server's service time for the requests
                    # it admitted, which is what the overload gate is
                    # about.
                    driver.latencies_ms.append((done - scheduled) * 1e3)
                    if status == 200:
                        driver.accepted_ms.append((done - sent) * 1e3)
            finally:
                await driver._drop(conn)

        started = time.perf_counter()
        if rate is None:
            shards = [workload[i::connections] for i in range(connections)]
            await asyncio.gather(
                *(closed_worker(shard) for shard in shards if shard))
        else:
            counter = iter(itertools.count())
            t0 = loop.time()
            await asyncio.gather(
                *(open_worker(counter, t0) for _ in range(connections)))
        elapsed = time.perf_counter() - started

        def quantiles(values: List[float]) -> Dict[str, float]:
            if not values:
                return {"p50": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
            arr = np.asarray(values)
            return {"p50": round(float(np.percentile(arr, 50)), 3),
                    "p99": round(float(np.percentile(arr, 99)), 3),
                    "mean": round(float(arr.mean()), 3),
                    "max": round(float(arr.max()), 3)}

        accepted = len(driver.accepted_ms)
        summary: Dict[str, Any] = {
            "connections": connections,
            "requests": requests,
            "elements_per_request": elements,
            "query_ratio": query_ratio,
            "mode": "open" if rate is not None else "closed",
            "wire": wire_mode,
            "encode": encode,
            "seconds": round(elapsed, 4),
            "req_per_s": round(requests / elapsed, 1),
            "elements_per_s": round(driver.ingested / elapsed, 1),
            "ingested_elements": int(driver.ingested),
            "errors": int(driver.errors),
            "errors_by_class": {k: v for k, v
                                in driver.errors_by_class.items() if v},
            "retries": int(driver.retries),
            "backoff_seconds": round(driver.backoff_seconds, 3),
            "accepted_requests": accepted,
            "latency_ms": quantiles(driver.latencies_ms),
            "accepted_latency_ms": quantiles(driver.accepted_ms),
            # Machine-readable shed accounting: every 429/503 response
            # received (including ones later retried to success), and
            # how many carried a Retry-After hint the driver honored.
            "sheds": {
                "http_429": int(driver.errors_by_class["http_429"]),
                "http_503": int(driver.errors_by_class["http_503"]),
                "retry_after_honored": int(driver.retry_after_honored),
            },
        }
        if rate is not None:
            summary["offered_rate"] = rate
        if owner is not None:
            summary["worker"] = owner
            summary["workers"] = int(cluster["workers"])
        if fetch_server_stats:
            try:
                status, payload = await _request(
                    admin_reader, admin_writer, "GET", "/stats", host=host)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                status, payload = 0, b""
            if status == 200:
                stats = json.loads(payload)
                summary["server_latency"] = {
                    key: value
                    for key, value in stats.get("latency", {}).items()
                    if key.startswith("server_")}
        if cleanup:
            await _request(admin_reader, admin_writer, "DELETE",
                           f"/sketches/{sketch}", host=host)
        return summary
    finally:
        admin_writer.close()
        try:
            await admin_writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
