"""Deterministic fault injection for the durability layer (chaos harness).

A :class:`FaultPlan` is a small bag of counters the WAL writer consults
at well-defined points of its append path.  Each knob models one of the
storage failures a long-running sketch service actually meets:

- ``fsync_delay`` -- every fsync takes this many extra seconds (a
  saturated or failing disk; surfaces as loop lag and triggers the
  backpressure controller).
- ``fail_fsync_after`` -- after N successful fsyncs every further fsync
  raises ``EIO`` (dying disk; acked writes stop being durable, requests
  start failing with 503 while the process stays up).
- ``fail_write_after`` -- after N frame writes every further write
  raises ``ENOSPC`` (disk full).
- ``crash_after_records`` -- the process calls ``os._exit(137)``
  immediately after the Nth WAL record is durably appended, *before*
  the batch is applied or acked.  This is the deterministic stand-in
  for ``kill -9`` mid-flush: recovery must surface exactly the logged
  prefix (all acked batches plus at most the one in-flight record).

Plans are plain JSON so a benchmark can inject them into a server
subprocess through the ``REPRO_FAULT_PLAN`` environment variable::

    REPRO_FAULT_PLAN='{"crash_after_records": 20}' tcm serve --data-dir d

:func:`tear_tail` / :func:`append_garbage` mutate WAL segment files on
disk between runs -- the torn/corrupt-tail injections the recovery tests
and ``benchmarks/bench_chaos.py`` use.
"""

from __future__ import annotations

import errno
import json
import os
import time
from typing import Dict, Optional

_EXIT_KILLED = 137  # what a SIGKILLed process reports (128 + 9)

#: Environment variable the server checks for an injected plan.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class FaultInjected(OSError):
    """An injected storage failure (subclasses OSError so the server's
    durability error handling treats it exactly like the real thing)."""


class FaultPlan:
    """Counters + thresholds driving injected storage faults.

    All thresholds are "after N successes": ``fail_fsync_after=3`` lets
    three fsyncs through and fails every one from the fourth on.
    ``None`` disables a knob.  The plan is deliberately deterministic --
    no randomness -- so a chaos run that fails is replayable.
    """

    def __init__(self, *, fsync_delay: float = 0.0,
                 fail_fsync_after: Optional[int] = None,
                 fail_write_after: Optional[int] = None,
                 crash_after_records: Optional[int] = None):
        if fsync_delay < 0:
            raise ValueError(f"fsync_delay must be >= 0, got {fsync_delay}")
        for name, value in (("fail_fsync_after", fail_fsync_after),
                            ("fail_write_after", fail_write_after),
                            ("crash_after_records", crash_after_records)):
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        self.fsync_delay = fsync_delay
        self.fail_fsync_after = fail_fsync_after
        self.fail_write_after = fail_write_after
        self.crash_after_records = crash_after_records
        self.fsyncs = 0
        self.writes = 0
        self.records = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from its JSON object form (unknown keys rejected)."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad fault plan JSON: {exc}")
        if not isinstance(raw, dict):
            raise ValueError("fault plan must be a JSON object")
        allowed = {"fsync_delay", "fail_fsync_after", "fail_write_after",
                   "crash_after_records"}
        unknown = set(raw) - allowed
        if unknown:
            raise ValueError(
                f"unknown fault plan keys: {sorted(unknown)} "
                f"(expected a subset of {sorted(allowed)})")
        return cls(**raw)

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None) \
            -> Optional["FaultPlan"]:
        """The plan injected via ``REPRO_FAULT_PLAN``, or ``None``."""
        text = (env if env is not None else os.environ).get(FAULT_PLAN_ENV)
        if not text:
            return None
        return cls.from_json(text)

    def describe(self) -> Dict[str, object]:
        return {"fsync_delay": self.fsync_delay,
                "fail_fsync_after": self.fail_fsync_after,
                "fail_write_after": self.fail_write_after,
                "crash_after_records": self.crash_after_records}

    # -- injection points (called by WalWriter) ----------------------------

    def on_write(self, nbytes: int) -> None:
        """Before a frame's bytes hit the file (disk-full injection)."""
        if (self.fail_write_after is not None
                and self.writes >= self.fail_write_after):
            raise FaultInjected(
                errno.ENOSPC, "injected: no space left on device")
        self.writes += 1

    def on_fsync(self) -> None:
        """Before each fsync (slow-disk and dying-disk injection)."""
        if self.fsync_delay > 0:
            time.sleep(self.fsync_delay)
        if (self.fail_fsync_after is not None
                and self.fsyncs >= self.fail_fsync_after):
            raise FaultInjected(errno.EIO, "injected: fsync I/O error")
        self.fsyncs += 1

    def on_record(self) -> None:
        """After a record is durably appended, before it is applied.

        The crash point: the record is on disk (per the fsync policy)
        but the sketch was never mutated and the request never acked --
        the tightest window ``kill -9`` can hit.
        """
        self.records += 1
        if (self.crash_after_records is not None
                and self.records >= self.crash_after_records):
            os._exit(_EXIT_KILLED)


# -- on-disk tail corruption (used between server runs) --------------------

def tear_tail(path: str, drop_bytes: int) -> int:
    """Truncate ``drop_bytes`` off the end of a WAL segment.

    Models a frame that was only partially flushed when the process
    died.  Returns the new file size.
    """
    if drop_bytes < 0:
        raise ValueError(f"drop_bytes must be >= 0, got {drop_bytes}")
    size = os.path.getsize(path)
    new_size = max(0, size - drop_bytes)
    with open(path, "rb+") as fh:
        fh.truncate(new_size)
    return new_size


def append_garbage(path: str, nbytes: int = 64, seed: int = 0) -> int:
    """Append ``nbytes`` of deterministic garbage to a WAL segment.

    Models the torn tail left by a crash *mid-append*: a frame header or
    payload that never completed.  Recovery must discard it and keep
    every complete frame before it.  Returns the new file size.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    garbage = bytes((seed + 31 * i) % 251 for i in range(nbytes))
    with open(path, "ab") as fh:
        fh.write(garbage)
    return os.path.getsize(path)
