"""Triangle counting on graph views.

Triangle counting over streams is a classic hard problem (paper Related
Work cites Braverman et al. and DOULION); on a TCM it becomes a plain
graph computation over the sketch.  Note that node merging distorts the
count in both directions -- collisions manufacture triangles out of
unrelated edges and destroy triangles whose corners collapse into one
bucket -- so the per-sketch counts are estimates, not bounds.
"""

from __future__ import annotations

from repro.analytics.views import GraphView


def count_triangles(view: GraphView, directed: bool = True) -> int:
    """Count triangles in the view.

    Directed: cyclic triangles ``u -> v -> w -> u`` (each counted once).
    Undirected: unordered triples with all three symmetric edges (the view
    is expected to be symmetric, as undirected sketches/streams are).
    """
    nodes = list(view.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    count = 0
    if directed:
        for u in nodes:
            for v in view.successors(u):
                if v == u:
                    continue
                for w in view.successors(v):
                    if w == u or w == v:
                        continue
                    if view.has_edge(w, u):
                        count += 1
        # Every cyclic triangle is discovered from each of its 3 rotations.
        return count // 3
    for u in nodes:
        for v in view.successors(u):
            if index.get(v, -1) <= index[u]:
                continue
            for w in view.successors(v):
                if index.get(w, -1) <= index[v]:
                    continue
                if view.has_edge(w, u):
                    count += 1
    return count
